"""Detailed placement: window-based rip-up and re-place (Algorithm 2).

After legalization, the detail placer scans for resonators that are either
non-unified (|Ce| > 1) or sitting in a frequency hotspot (He > 0), builds
a processing window around each together with its adjacent resonators,
re-places them along maze-routed paths, and keeps the new window layout
only when it does not regress cluster count or hotspot score.
"""

from repro.detailed.windows import Window, find_violations, build_window
from repro.detailed.placer import DetailedPlacer, DetailedPlacementResult

__all__ = [
    "Window",
    "find_violations",
    "build_window",
    "DetailedPlacer",
    "DetailedPlacementResult",
]
