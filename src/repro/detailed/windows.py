"""Violation detection and processing-window construction (Fig. 7a-b).

A *violation* is a resonator with multiple clusters (``E_c`` of
Algorithm 2) or a positive hotspot score (``E_h``).  Its processing window
is the minimum site-rect bounding the resonator's blocks, its endpoint
qubits, and every *adjacent* resonator (one with blocks inside that
bounding box), inflated by a small halo so the re-placer has room to move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frequency.hotspots import resonator_hotspots
from repro.geometry import SiteGrid
from repro.netlist.clusters import cluster_count_map
from repro.netlist.netlist import QuantumNetlist
from repro.routing.crossings import count_crossings


@dataclass
class Window:
    """A processing window: site bounds plus the resonators inside it."""

    target_key: tuple
    bounds: tuple  # (lo_col, lo_row, hi_col, hi_row), inclusive
    resonator_keys: list = field(default_factory=list)

    def contains_site(self, site: tuple) -> bool:
        lo_col, lo_row, hi_col, hi_row = self.bounds
        return lo_col <= site[0] <= hi_col and lo_row <= site[1] <= hi_row


def find_violations(
    netlist: QuantumNetlist,
    lb: float,
    reach: float,
    delta_c: float,
    bins=None,
    hotspot_scores: dict = None,
    crossing_scores: dict = None,
) -> list:
    """Resonator keys needing detailed placement: ``E_c ∪ E_h ∪ E_x``.

    ``E_c`` — non-unified resonators; ``E_h`` — resonators with hotspot
    exposure; ``E_x`` — resonators whose connection trace crosses others
    (needs ``bins`` for occupancy; skipped when absent).  Ordered
    worst-first (cluster count, hotspot score, crossings) so the placer
    attacks the most fragmented resonators before the marginal ones.

    ``hotspot_scores`` / ``crossing_scores`` let a caller that already
    evaluated the layout (the detailed placer seeds its metric caches
    this way) pass the per-resonator maps instead of recomputing them.
    """
    if hotspot_scores is None:
        hotspot_scores = resonator_hotspots(netlist, reach, delta_c, lb=lb)
    if crossing_scores is None:
        crossing_scores = {}
        if bins is not None:
            crossing_scores = count_crossings(netlist, bins).per_resonator
    cluster_counts = cluster_count_map(netlist.resonators, lb)
    flagged = []
    for resonator in netlist.resonators:
        clusters = cluster_counts[resonator.key]
        score = hotspot_scores.get(resonator.key, 0.0)
        crossings = crossing_scores.get(resonator.key, 0)
        if clusters > 1 or score > 0.0 or crossings > 0:
            flagged.append((clusters, score, crossings, resonator.key))
    flagged.sort(key=lambda t: (-t[0], -t[1], -t[2], t[3]))
    return [key for _, _, _, key in flagged]


def build_window(
    netlist: QuantumNetlist,
    grid: SiteGrid,
    target_key: tuple,
    halo: int = 2,
) -> Window:
    """Window around ``target_key``: its blocks + qubits + adjacent resonators."""
    target = netlist.resonator(*target_key)
    qa = netlist.qubit(target.qi)
    qb = netlist.qubit(target.qj)
    sites = [grid.site_of(b.center) for b in target.blocks]
    for rect in (qa.rect, qb.rect):
        sites.extend(grid.sites_covered(rect))
    lo_col = min(s[0] for s in sites) - halo
    hi_col = max(s[0] for s in sites) + halo
    lo_row = min(s[1] for s in sites) - halo
    hi_row = max(s[1] for s in sites) + halo

    # Adjacent resonators: any with at least one block in the core bounds.
    members = [target_key]
    for resonator in netlist.resonators:
        if resonator.key == target_key:
            continue
        for block in resonator.blocks:
            col, row = grid.site_of(block.center)
            if lo_col <= col <= hi_col and lo_row <= row <= hi_row:
                members.append(resonator.key)
                break

    bounds = (
        max(0, lo_col),
        max(0, lo_row),
        min(grid.cols - 1, hi_col),
        min(grid.rows - 1, hi_row),
    )
    return Window(target_key=target_key, bounds=bounds, resonator_keys=members)
