"""The qGDP detailed placer (Algorithm 2, Fig. 7).

For each flagged resonator the placer rips its blocks out of the bin grid,
maze-routes a fresh corridor from qubit_i to qubit_j inside the processing
window (avoiding foreign blocks, steered away from near-resonant
components by an extra cost), lays the blocks contiguously along that
corridor, and grows any remainder with the Algorithm-1 adjacency rule.
The new window layout is kept only when neither the window's cluster count
nor its hotspot score regresses — otherwise everything is restored
(Algorithm 2 lines 7-9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import QGDPConfig
from repro.detailed.windows import build_window, find_violations
from repro.frequency.hotspots import resonator_hotspots
from repro.frequency.proximity import tau
from repro.legalization.bins import BinGrid
from repro.netlist.clusters import cluster_count
from repro.netlist.netlist import QuantumNetlist
from repro.routing.crossings import resonator_crossings
from repro.routing.maze import MazeRouter


@dataclass
class DetailedPlacementResult:
    """Summary of one detailed-placement run."""

    flagged: int
    attempted: int
    accepted: int
    reverted: int
    clusters_before: int
    clusters_after: int


class DetailedPlacer:
    """Window-based rip-up-and-re-place detail placer."""

    def __init__(self, config: QGDPConfig = None, halo: int = 2) -> None:
        self.config = config or QGDPConfig()
        self.halo = halo

    # -- helpers -----------------------------------------------------------
    def _window_clusters(self, netlist, keys) -> int:
        return sum(
            cluster_count(netlist.resonator(*k), self.config.lb) for k in keys
        )

    def _window_hotspots(self, netlist, keys) -> float:
        scores = resonator_hotspots(
            netlist, self.config.reach, self.config.delta_c, lb=self.config.lb
        )
        return sum(scores.get(k, 0.0) for k in keys)

    def _window_crossings(self, netlist, keys, bins) -> int:
        return sum(
            resonator_crossings(netlist, netlist.resonator(*k), bins)
            for k in keys
        )

    def _adjacent_sites(self, grid, rect) -> set:
        covered = set(grid.sites_covered(rect))
        out = set()
        for col, row in covered:
            for site in grid.neighbors4(col, row):
                if site not in covered:
                    out.add(site)
        return out

    def _frequency_cost(self, netlist, bins, freq: float):
        """Extra per-site cost near close-frequency components."""
        grid = bins.grid
        delta_c = self.config.delta_c

        def cost(site) -> float:
            penalty = 0.0
            for neighbor in grid.neighbors4(*site):
                owner = bins.occupant(*neighbor)
                if owner is None:
                    continue
                if owner[0] == "q":
                    other = netlist.qubit(owner[1]).frequency
                else:
                    other = netlist.resonator(*owner[1]).frequency
                penalty += 2.0 * tau(freq, other, delta_c)
            return penalty

        return cost

    def _replace_resonator(self, netlist, bins, resonator, window) -> bool:
        """Rip up and re-place one resonator inside its window.

        Returns True when a complete re-placement was committed (caller
        still decides accept/revert on metrics); False when no feasible
        placement existed (positions untouched).
        """
        grid = bins.grid
        old_sites = {}
        for block in resonator.blocks:
            site = grid.site_of(block.center)
            old_sites[block.ordinal] = (site, (block.x, block.y))
            bins.release(*site)

        qa = netlist.qubit(resonator.qi)
        qb = netlist.qubit(resonator.qj)
        router = MazeRouter(bins, crossing_cost=25.0)
        route = router.route(
            sources=self._adjacent_sites(grid, qa.rect),
            targets=self._adjacent_sites(grid, qb.rect),
            own_key=resonator.key,
            window=window.bounds,
            extra_cost=self._frequency_cost(netlist, bins, resonator.frequency),
        )

        ordered_sites = []
        if route is not None:
            ordered_sites = [s for s in route.path if bins.is_free(*s)]

        placed = []
        frontier = set()
        for block in resonator.blocks:
            site = None
            while ordered_sites:
                candidate = ordered_sites.pop(0)
                if bins.is_free(*candidate):
                    site = candidate
                    break
            if site is None and frontier:
                target = grid.site_of(block.center)
                site = min(
                    frontier,
                    key=lambda s: (
                        (s[0] - target[0]) ** 2 + (s[1] - target[1]) ** 2,
                        s[1],
                        s[0],
                    ),
                )
            if site is None:
                # No corridor and no frontier: give up, restore below.
                break
            bins.occupy(site[0], site[1], block.node_id)
            frontier.discard(site)
            center = grid.site_center(*site)
            block.move_to(center.x, center.y)
            placed.append((block, site))
            for neighbor in bins.free_neighbors(*site):
                if window.contains_site(neighbor):
                    frontier.add(neighbor)
            frontier = {s for s in frontier if bins.is_free(*s)}

        if len(placed) < resonator.num_blocks:
            for block, site in placed:
                bins.release(*site)
            self._restore(bins, resonator, old_sites)
            return False
        return True

    @staticmethod
    def _restore(bins, resonator, old_sites) -> None:
        for block in resonator.blocks:
            site, (x, y) = old_sites[block.ordinal]
            bins.occupy(site[0], site[1], block.node_id)
            block.move_to(x, y)

    # -- main entry ----------------------------------------------------------
    def run(self, netlist: QuantumNetlist, bins: BinGrid) -> DetailedPlacementResult:
        """Run Algorithm 2 over the whole layout in place."""
        cfg = self.config
        flagged = find_violations(
            netlist, cfg.lb, cfg.reach, cfg.delta_c, bins=bins
        )
        clusters_before_total = sum(
            cluster_count(r, cfg.lb) for r in netlist.resonators
        )
        attempted = accepted = reverted = 0

        for key in flagged:
            resonator = netlist.resonator(*key)
            window = build_window(netlist, bins.grid, key, self.halo)
            clusters_before = self._window_clusters(netlist, window.resonator_keys)
            hotspots_before = self._window_hotspots(netlist, window.resonator_keys)
            crossings_before = self._window_crossings(
                netlist, window.resonator_keys, bins
            )
            old_sites = {
                b.ordinal: (bins.grid.site_of(b.center), (b.x, b.y))
                for b in resonator.blocks
            }

            attempted += 1
            if not self._replace_resonator(netlist, bins, resonator, window):
                reverted += 1
                continue

            clusters_after = self._window_clusters(netlist, window.resonator_keys)
            hotspots_after = self._window_hotspots(netlist, window.resonator_keys)
            crossings_after = self._window_crossings(
                netlist, window.resonator_keys, bins
            )
            improved = (
                clusters_after <= clusters_before
                and hotspots_after <= hotspots_before + 1e-9
                and crossings_after <= crossings_before
                and (
                    clusters_after < clusters_before
                    or hotspots_after < hotspots_before - 1e-9
                    or crossings_after < crossings_before
                )
            )
            if improved:
                accepted += 1
            else:
                for block in resonator.blocks:
                    bins.release(*bins.grid.site_of(block.center))
                self._restore(bins, resonator, old_sites)
                reverted += 1

        clusters_after_total = sum(
            cluster_count(r, cfg.lb) for r in netlist.resonators
        )
        return DetailedPlacementResult(
            flagged=len(flagged),
            attempted=attempted,
            accepted=accepted,
            reverted=reverted,
            clusters_before=clusters_before_total,
            clusters_after=clusters_after_total,
        )
