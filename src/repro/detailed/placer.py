"""The qGDP detailed placer (Algorithm 2, Fig. 7).

For each flagged resonator the placer rips its blocks out of the bin grid,
maze-routes a fresh corridor from qubit_i to qubit_j inside the processing
window (avoiding foreign blocks, steered away from near-resonant
components by an extra cost), lays the blocks contiguously along that
corridor, and grows any remainder with the Algorithm-1 adjacency rule.
The new window layout is kept only when neither the window's cluster count
nor its hotspot score regresses — otherwise everything is restored
(Algorithm 2 lines 7-9).

The accept/revert metric evaluations dominated the runtime of a naive
implementation: every window check rebuilt every resonator's MST trace and
re-scored the whole netlist.  This placer is *incremental* instead — it
keeps per-resonator caches (traces, sampled trace sites, trace bboxes,
cluster counts, crossing counts, pairwise intersection counts and the
full hotspot score map) that are only invalidated for the ripped-up resonator and reinstated
wholesale on revert, which is exact because every other resonator's blocks
are untouched.  One :class:`~repro.routing.maze.MazeRouter` (and its
Dijkstra scratch arrays) is shared across all flagged resonators, and the
frequency steering cost is precomputed as a vectorized overlay instead of
a per-site callback.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.config import QGDPConfig
from repro.detailed.windows import build_window, find_violations
from repro.frequency.hotspots import qubit_hotspot_pairs, resonator_hotspots
from repro.legalization.bins import KIND_BLOCK, KIND_QUBIT, BinGrid
from repro.netlist.clusters import block_clusters, cluster_count_map
from repro.netlist.netlist import QuantumNetlist
from repro.netlist.traces import resonator_trace
from repro.routing.crossings import (
    build_traces,
    count_crossings,
    resonator_crossings,
    trace_bbox,
    trace_site_indices,
)
from repro.routing.maze import MazeRouter


@dataclass
class DetailedPlacementResult:
    """Summary of one detailed-placement run."""

    flagged: int
    attempted: int
    accepted: int
    reverted: int
    clusters_before: int
    clusters_after: int


class DetailedPlacer:
    """Window-based rip-up-and-re-place detail placer."""

    def __init__(self, config: QGDPConfig = None, halo: int = 2) -> None:
        self.config = config or QGDPConfig()
        self.halo = halo

    # -- helpers -----------------------------------------------------------
    def _adjacent_sites(self, grid, rect) -> set:
        covered = set(grid.sites_covered(rect))
        out = set()
        for col, row in covered:
            for site in grid.neighbors4(col, row):
                if site not in covered:
                    out.add(site)
        return out

    def _frequency_overlay(self, netlist, bins, freq: float) -> np.ndarray:
        """Vectorized extra per-site cost near close-frequency components.

        Equivalent to summing ``2 * tau(freq, neighbour frequency)`` over a
        site's occupied in-grid 4-neighbours, with the neighbour terms
        accumulated in the same (west, east, south, north) order as the
        scalar cost model so route costs stay bit-identical.
        """
        grid = bins.grid
        delta_c = self.config.delta_c
        kind = bins.kind_flat
        owner_idx = bins.owner_idx_flat

        freq_by_owner = np.empty(len(bins.owners), dtype=np.float64)
        for i, owner in enumerate(bins.owners):
            if owner[0] == "q":
                freq_by_owner[i] = netlist.qubit(owner[1]).frequency
            elif owner[0] == "b":
                freq_by_owner[i] = netlist.resonator(*owner[1]).frequency
            else:
                freq_by_owner[i] = np.inf  # unknown owner: zero tau weight

        site_freq = np.zeros(grid.num_sites, dtype=np.float64)
        occupied = (kind == KIND_QUBIT) | (kind == KIND_BLOCK)
        site_freq[occupied] = freq_by_owner[owner_idx[occupied]]
        detuning = np.abs(freq - site_freq)
        t = np.where(detuning >= delta_c, 0.0, 1.0 - detuning / delta_c)
        t[~occupied] = 0.0

        t2d = t.reshape(grid.cols, grid.rows)
        pen = np.zeros_like(t2d)
        pen[1:, :] += 2.0 * t2d[:-1, :]
        pen[:-1, :] += 2.0 * t2d[1:, :]
        pen[:, 1:] += 2.0 * t2d[:, :-1]
        pen[:, :-1] += 2.0 * t2d[:, 1:]
        return pen.reshape(-1)

    def _replace_resonator(
        self, netlist, bins, resonator, window, router
    ) -> bool:
        """Rip up and re-place one resonator inside its window.

        Returns True when a complete re-placement was committed (caller
        still decides accept/revert on metrics); False when no feasible
        placement existed (positions untouched).
        """
        grid = bins.grid
        old_sites = {}
        for block in resonator.blocks:
            site = grid.site_of(block.center)
            old_sites[block.ordinal] = (site, (block.x, block.y))
            bins.release(*site)

        qa = netlist.qubit(resonator.qi)
        qb = netlist.qubit(resonator.qj)
        route = router.route(
            sources=self._adjacent_sites(grid, qa.rect),
            targets=self._adjacent_sites(grid, qb.rect),
            own_key=resonator.key,
            window=window.bounds,
            extra_cost=self._frequency_overlay(
                netlist, bins, resonator.frequency
            ),
        )

        ordered_sites = deque()
        if route is not None:
            ordered_sites.extend(s for s in route.path if bins.is_free(*s))

        placed = []
        # The frontier only ever holds free sites: the sole occupancy
        # changes during this loop are our own placements, each discarded
        # from the frontier as it lands — no extra pruning pass needed.
        frontier = set()
        for block in resonator.blocks:
            site = None
            while ordered_sites:
                candidate = ordered_sites.popleft()
                if bins.is_free(*candidate):
                    site = candidate
                    break
            if site is None and frontier:
                target = grid.site_of(block.center)
                site = min(
                    frontier,
                    key=lambda s: (
                        (s[0] - target[0]) ** 2 + (s[1] - target[1]) ** 2,
                        s[1],
                        s[0],
                    ),
                )
            if site is None:
                # No corridor and no frontier: give up, restore below.
                break
            bins.occupy(site[0], site[1], block.node_id)
            frontier.discard(site)
            center = grid.site_center(*site)
            block.move_to(center.x, center.y)
            placed.append((block, site))
            for neighbor in bins.free_neighbors(*site):
                if window.contains_site(neighbor):
                    frontier.add(neighbor)

        if len(placed) < resonator.num_blocks:
            for block, site in placed:
                bins.release(*site)
            self._restore(bins, resonator, old_sites)
            return False
        return True

    @staticmethod
    def _restore(bins, resonator, old_sites) -> None:
        for block in resonator.blocks:
            site, (x, y) = old_sites[block.ordinal]
            bins.occupy(site[0], site[1], block.node_id)
            block.move_to(x, y)

    # -- main entry ----------------------------------------------------------
    def run(self, netlist: QuantumNetlist, bins: BinGrid) -> DetailedPlacementResult:
        """Run Algorithm 2 over the whole layout in place."""
        cfg = self.config
        lb = cfg.lb

        # Metric caches, valid for the *current* block positions.
        traces = build_traces(netlist, lb)
        samples = {
            key: trace_site_indices(trace, bins)
            for key, trace in traces.items()
        }
        bboxes = {key: trace_bbox(trace) for key, trace in traces.items()}
        # Qubit macros never move during detailed placement, so their
        # pairwise hotspot terms are computed once for the whole run.
        qubit_pairs = qubit_hotspot_pairs(netlist, cfg.reach, cfg.delta_c)
        hotspot_scores = resonator_hotspots(
            netlist,
            cfg.reach,
            cfg.delta_c,
            lb=lb,
            traces=traces,
            qubit_pairs=qubit_pairs,
        )
        crossing_report = count_crossings(
            netlist, bins, traces=traces, samples=samples, bboxes=bboxes
        )
        crossing_counts = dict(crossing_report.per_resonator)
        pair_counts = dict(crossing_report.pair_crossings)
        cluster_counts = cluster_count_map(netlist.resonators, lb)

        flagged = find_violations(
            netlist,
            lb,
            cfg.reach,
            cfg.delta_c,
            bins=bins,
            hotspot_scores=hotspot_scores,
            crossing_scores=crossing_counts,
        )
        clusters_before_total = sum(
            cluster_counts[r.key] for r in netlist.resonators
        )
        attempted = accepted = reverted = 0
        router = MazeRouter(bins, crossing_cost=25.0)

        def window_crossings(keys) -> int:
            total = 0
            for k in keys:
                if k not in crossing_counts:
                    crossing_counts[k] = resonator_crossings(
                        netlist,
                        netlist.resonator(*k),
                        bins,
                        traces=traces,
                        samples=samples.get(k),
                        pair_counts=pair_counts,
                        bboxes=bboxes,
                    )
                total += crossing_counts[k]
            return total

        def drop_pairs_involving(key) -> dict:
            removed = {
                pair: count
                for pair, count in pair_counts.items()
                if key in pair
            }
            for pair in removed:
                del pair_counts[pair]
            return removed

        for key in flagged:
            resonator = netlist.resonator(*key)
            window = build_window(netlist, bins.grid, key, self.halo)
            keys = window.resonator_keys
            clusters_before = sum(cluster_counts[k] for k in keys)
            hotspots_before = sum(hotspot_scores.get(k, 0.0) for k in keys)
            crossings_before = window_crossings(keys)
            old_sites = {
                b.ordinal: (bins.grid.site_of(b.center), (b.x, b.y))
                for b in resonator.blocks
            }

            attempted += 1
            if not self._replace_resonator(
                netlist, bins, resonator, window, router
            ):
                reverted += 1
                continue

            # The target's geometry changed; every other resonator's
            # blocks (hence trace, samples and cluster count) did not.
            old_trace = traces[key]
            old_samples = samples[key]
            old_bbox = bboxes[key]
            old_pairs = drop_pairs_involving(key)
            target_cluster_blocks = block_clusters(resonator, lb)
            traces[key] = resonator_trace(
                netlist, resonator, lb, clusters=target_cluster_blocks
            )
            samples[key] = trace_site_indices(traces[key], bins)
            bboxes[key] = trace_bbox(traces[key])
            target_clusters = len(target_cluster_blocks)

            clusters_after = sum(
                target_clusters if k == key else cluster_counts[k]
                for k in keys
            )
            after_scores = resonator_hotspots(
                netlist,
                cfg.reach,
                cfg.delta_c,
                lb=lb,
                traces=traces,
                qubit_pairs=qubit_pairs,
            )
            hotspots_after = sum(after_scores.get(k, 0.0) for k in keys)
            after_crossings = {
                k: resonator_crossings(
                    netlist,
                    netlist.resonator(*k),
                    bins,
                    traces=traces,
                    samples=samples.get(k),
                    pair_counts=pair_counts,
                    bboxes=bboxes,
                )
                for k in keys
            }
            crossings_after = sum(after_crossings.values())

            improved = (
                clusters_after <= clusters_before
                and hotspots_after <= hotspots_before + 1e-9
                and crossings_after <= crossings_before
                and (
                    clusters_after < clusters_before
                    or hotspots_after < hotspots_before - 1e-9
                    or crossings_after < crossings_before
                )
            )
            if improved:
                accepted += 1
                hotspot_scores = after_scores
                cluster_counts[key] = target_clusters
                # The target's occupancy moved, which can change any
                # resonator's bridged count — keep only the freshly
                # evaluated window keys and recompute the rest on demand.
                crossing_counts = dict(after_crossings)
            else:
                for block in resonator.blocks:
                    bins.release(*bins.grid.site_of(block.center))
                self._restore(bins, resonator, old_sites)
                reverted += 1
                # Positions are back to the pre-attempt state: reinstate
                # the caches touched while evaluating the attempt.
                traces[key] = old_trace
                samples[key] = old_samples
                bboxes[key] = old_bbox
                drop_pairs_involving(key)
                pair_counts.update(old_pairs)

        clusters_after_total = sum(
            cluster_counts[r.key] for r in netlist.resonators
        )
        return DetailedPlacementResult(
            flagged=len(flagged),
            attempted=attempted,
            accepted=accepted,
            reverted=reverted,
            clusters_before=clusters_before_total,
            clusters_after=clusters_after_total,
        )
