"""The Eq. 7 program fidelity estimator.

    F = Π_{q∈Q} (1 - εq) · Π_{g∈G} (1 - εg) · Π_{e∈E} (1 - εe)

Only actively engaged components contribute: εq runs over physical qubits
the transpiled program touches; εg over spatially violating qubit pairs
with at least one active member; εe over crossings and violating resonator
pairs involving at least one active resonator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import QGDPConfig
from repro.compiler.transpiler import TranspiledCircuit
from repro.crosstalk.errors import (
    crossing_error,
    qubit_error,
    rabi_crosstalk_error,
    resonator_pair_error,
)
from repro.crosstalk.parameters import DEFAULT_NOISE, NoiseParameters
from repro.frequency.hotspots import hotspot_pairs
from repro.geometry import gap_between
from repro.metrics.legality import qubit_spacing_violations
from repro.netlist.netlist import QuantumNetlist
from repro.routing.crossings import CrossingReport


@dataclass
class FidelityBreakdown:
    """Eq. 7 factors, separable for analysis."""

    fidelity: float
    qubit_factor: float
    qubit_crosstalk_factor: float
    resonator_factor: float
    num_violating_pairs: int
    num_active_crossings: int


def program_fidelity(
    netlist: QuantumNetlist,
    transpiled: TranspiledCircuit,
    crossings: CrossingReport,
    config: QGDPConfig = None,
    params: NoiseParameters = DEFAULT_NOISE,
    hotspots: list = None,
    violations: list = None,
) -> FidelityBreakdown:
    """Estimate worst-case program fidelity on the current layout.

    ``crossings`` comes from :func:`repro.routing.crossings.count_crossings`
    on the same layout; ``hotspots`` / ``violations`` optionally reuse
    precomputed :func:`~repro.frequency.hotspots.hotspot_pairs` /
    :func:`~repro.metrics.legality.qubit_spacing_violations` results so
    seed sweeps do not recompute layout-level analysis.
    """
    config = config or QGDPConfig()
    active_qubits = transpiled.active_qubits
    active_edges = transpiled.active_edges
    duration = transpiled.duration_ns

    # -- εq over active qubits ------------------------------------------
    # Decoherence charges each qubit its busy time plus a fraction of its
    # idle window: idling qubits dephase, but echo/dynamical-decoupling
    # keeps idle decay well below busy decay on real devices.
    qubit_factor = 1.0
    for q in active_qubits:
        busy = transpiled.timing.busy_ns.get(q, 0.0)
        idle = max(0.0, duration - busy)
        eps = qubit_error(
            transpiled.gates_1q.get(q, 0),
            transpiled.gates_2q.get(q, 0),
            busy + params.idle_decay_fraction * idle,
            params,
        )
        qubit_factor *= 1.0 - eps

    # -- εg over violating qubit pairs -----------------------------------
    qubit_crosstalk_factor = 1.0
    violating = (
        violations
        if violations is not None
        else qubit_spacing_violations(netlist, config.min_qubit_spacing)
    )
    num_pairs = 0
    for violation in violating:
        qa = netlist.qubit(violation.id_a[1])
        qb = netlist.qubit(violation.id_b[1])
        if qa.index not in active_qubits and qb.index not in active_qubits:
            continue
        num_pairs += 1
        eps = rabi_crosstalk_error(
            gap_between(qa.rect, qb.rect),
            qa.frequency,
            qb.frequency,
            duration,
            config.delta_c,
            params,
        )
        qubit_crosstalk_factor *= 1.0 - eps

    # -- εe: crossings on active resonators --------------------------------
    resonator_factor = 1.0
    num_active_crossings = 0
    for key, bridged in crossings.bridged_blocks.items():
        for owner in bridged:
            other_key = owner[1]
            if key not in active_edges and other_key not in active_edges:
                continue
            num_active_crossings += 1
            resonator_factor *= 1.0 - crossing_error(
                netlist.resonator(*key).frequency,
                netlist.resonator(*other_key).frequency,
                duration,
                config.delta_c,
                params,
                wire_to_wire=False,
            )
    for (key_a, key_b), count in crossings.pair_crossings.items():
        if key_a not in active_edges and key_b not in active_edges:
            continue
        num_active_crossings += count
        eps = crossing_error(
            netlist.resonator(*key_a).frequency,
            netlist.resonator(*key_b).frequency,
            duration,
            config.delta_c,
            params,
        )
        resonator_factor *= (1.0 - eps) ** count

    # -- εe: spatially violating resonator pairs ---------------------------
    # Trace-exposure hotspots arrive already aggregated per resonator
    # pair; each contributes one parasitic coupling (and one εe).
    if hotspots is None:
        hotspots = hotspot_pairs(netlist, config.reach, config.delta_c)
    for pair in hotspots:
        if pair.id_a[0] != "e" or pair.id_b[0] != "e":
            continue
        key_a, key_b = pair.id_a[1], pair.id_b[1]
        if key_a not in active_edges and key_b not in active_edges:
            continue
        resonator_factor *= 1.0 - resonator_pair_error(
            pair.contribution, duration, params
        )

    fidelity = qubit_factor * qubit_crosstalk_factor * resonator_factor
    return FidelityBreakdown(
        fidelity=fidelity,
        qubit_factor=qubit_factor,
        qubit_crosstalk_factor=qubit_crosstalk_factor,
        resonator_factor=resonator_factor,
        num_violating_pairs=num_pairs,
        num_active_crossings=num_active_crossings,
    )
