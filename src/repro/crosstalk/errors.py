"""Error models: εq (gates + decoherence), εg (Eq. 8), εe (resonators).

The Rabi transition probability ``Pr[t] = sin²(g_eff t)`` oscillates; over
a program whose duration is long compared to ``1/g_eff`` the observable
error is its envelope average.  We therefore use the saturating form

    ``ε(g, t) = 0.5 * (1 - exp(-(π g t)²))``

which matches ``sin²`` in the small-``gt`` limit (``≈ (π g t)²/2``) and
approaches the 0.5 time-average once the oscillation dephases.  (The
paper's Eq. 8 prints ``1 - sin²``, which would give ε = 1 at t = 0; we
take that as a typo for the transition probability itself.)
"""

from __future__ import annotations

import math

from repro.crosstalk.parameters import DEFAULT_NOISE, NoiseParameters
from repro.frequency.proximity import tau


def qubit_error(
    gates_1q: int,
    gates_2q: int,
    duration_ns: float,
    params: NoiseParameters = DEFAULT_NOISE,
) -> float:
    """εq — gate infidelity plus T1/T2 decay over the schedule makespan."""
    if gates_1q < 0 or gates_2q < 0 or duration_ns < 0:
        raise ValueError("gate counts and duration must be non-negative")
    survive = (1.0 - params.error_1q) ** gates_1q
    survive *= (1.0 - params.error_2q) ** gates_2q
    duration_us = duration_ns / 1000.0
    survive *= math.exp(-duration_us / params.t1_us)
    survive *= math.exp(-duration_us / params.t2_us)
    return 1.0 - survive


def _rabi_envelope(g_ghz: float, t_ns: float) -> float:
    """Saturating Rabi error envelope (see module docstring)."""
    phase = math.pi * g_ghz * t_ns
    return 0.5 * (1.0 - math.exp(-(phase * phase)))


def effective_coupling_ghz(
    gap_lb: float,
    freq_a: float,
    freq_b: float,
    delta_c: float,
    params: NoiseParameters = DEFAULT_NOISE,
) -> float:
    """g_eff between two qubits in spatial violation.

    Direct capacitive coupling decays exponentially with the edge gap;
    frequency proximity scales the *effective* exchange: near-resonant
    pairs swap excitations fully, detuned pairs retain a dispersive
    residual (``detuning_floor``).
    """
    if gap_lb < 0:
        gap_lb = 0.0
    proximity = params.detuning_floor + (1.0 - params.detuning_floor) * tau(
        freq_a, freq_b, delta_c
    )
    return params.g0_violation_ghz * math.exp(-gap_lb / params.gap_decay_lb) * proximity


def rabi_crosstalk_error(
    gap_lb: float,
    freq_a: float,
    freq_b: float,
    duration_ns: float,
    delta_c: float,
    params: NoiseParameters = DEFAULT_NOISE,
) -> float:
    """εg — Eq. 8 for one violating qubit pair over the program duration."""
    g = effective_coupling_ghz(gap_lb, freq_a, freq_b, delta_c, params)
    return _rabi_envelope(g, duration_ns)


def crossing_error(
    freq_a: float,
    freq_b: float,
    duration_ns: float,
    delta_c: float,
    params: NoiseParameters = DEFAULT_NOISE,
    wire_to_wire: bool = True,
) -> float:
    """εe for one airbridge crossing between two resonators.

    The 3.5 fF parasitic capacitance couples the crossing lines; the
    induced error depends on how well they are detuned (crossing
    resonators must be detuned — paper Section II-B).

    ``wire_to_wire=False`` models a trace bridging a foreign *padded
    block region* rather than an exposed wire: the reservation padding
    keeps the buried wire at distance, so only the residual
    (``detuning_floor``) coupling applies.
    """
    if wire_to_wire:
        proximity = params.detuning_floor + (
            1.0 - params.detuning_floor
        ) * tau(freq_a, freq_b, delta_c)
    else:
        proximity = params.detuning_floor
    g = params.cross_capacitance_ff * params.g_per_ff_ghz * proximity
    return _rabi_envelope(g, duration_ns)


def resonator_pair_error(
    hotspot_contribution: float,
    duration_ns: float,
    params: NoiseParameters = DEFAULT_NOISE,
) -> float:
    """εe for one spatially violating resonator block pair.

    The hotspot contribution (adjacency × distance decay × τ, Eq. 4 terms)
    already encodes geometry and detuning; it converts to a parasitic
    coupling via the adjacency-length capacitance ("the parasitic
    capacitance for spatial violation depends on adjacent length").
    """
    if hotspot_contribution <= 0.0:
        return 0.0
    g = params.g_adjacency_ghz * hotspot_contribution
    # Distributed weak couplings along an exposure add incoherently, so
    # the error is linear in the summed contribution (unlike the coherent
    # Rabi envelope used for point couplings), saturating at 0.5.
    phase = math.pi * g * duration_ns
    return 0.5 * (1.0 - math.exp(-phase))
