"""Crosstalk error models and the program fidelity estimator (Eq. 7).

Three error families, following the paper's Section IV metrics:

* εq — per-qubit gate and decoherence error (1q/2q gate infidelities plus
  T1/T2 decay over the schedule makespan);
* εg — Rabi-oscillation crosstalk between qubit pairs in spatial violation
  (Eq. 8), driven by an effective coupling that grows as the gap shrinks
  and the detuning closes;
* εe — resonator crosstalk from airbridge crossings (3.5 fF parasitic
  capacitance per crossing) and from spatially violating, insufficiently
  detuned resonator pairs.

Only actively engaged qubits and resonators contribute (paper note).
"""

from repro.crosstalk.parameters import NoiseParameters, DEFAULT_NOISE
from repro.crosstalk.errors import (
    qubit_error,
    rabi_crosstalk_error,
    effective_coupling_ghz,
    crossing_error,
    resonator_pair_error,
)
from repro.crosstalk.fidelity import program_fidelity, FidelityBreakdown

__all__ = [
    "NoiseParameters",
    "DEFAULT_NOISE",
    "qubit_error",
    "rabi_crosstalk_error",
    "effective_coupling_ghz",
    "crossing_error",
    "resonator_pair_error",
    "program_fidelity",
    "FidelityBreakdown",
]
