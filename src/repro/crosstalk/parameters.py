"""Physical noise parameters.

Representative published values for fixed-frequency transmon devices; the
paper's own calibration data is not public, so these are the documented
substitution (see DESIGN.md).  All frequencies are GHz, times ns unless
suffixed otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NoiseParameters:
    """Constants feeding the Eq. 7 fidelity estimator.

    Parameters
    ----------
    t1_us, t2_us:
        Relaxation and dephasing times (µs).
    error_1q, error_2q:
        Per-gate infidelities of native 1q / 2q gates.
    g0_violation_ghz:
        Effective qubit-qubit coupling at zero gap (direct capacitive
        coupling of touching pads), GHz.  Decays with the gap.
    gap_decay_lb:
        Exponential decay length of the coupling with edge gap, in
        standard-cell pitches.
    cross_capacitance_ff:
        Parasitic capacitance per airbridge crossing (3.5 fF, from the
        paper's AWR Microwave Office extraction).
    g_per_ff_ghz:
        Coupling per femtofarad for crossing parasitics, GHz/fF.
    g_adjacency_ghz:
        Coupling per unit hotspot contribution (adjacency-length ×
        proximity, Eq. 4 terms) for spatially violating resonator pairs.
    detuning_floor:
        Residual coupling fraction for well-detuned pairs (dispersive
        leakage never vanishes entirely).
    idle_decay_fraction:
        Fraction of a qubit's idle window charged as decoherence time
        (echo sequences suppress idle dephasing below busy-time decay).
    """

    t1_us: float = 100.0
    t2_us: float = 80.0
    error_1q: float = 1.0e-3
    error_2q: float = 8.0e-3
    g0_violation_ghz: float = 0.004
    gap_decay_lb: float = 0.6
    cross_capacitance_ff: float = 3.5
    g_per_ff_ghz: float = 7.0e-5
    g_adjacency_ghz: float = 2.5e-5
    detuning_floor: float = 0.05
    idle_decay_fraction: float = 0.15


#: Module-level default used across the evaluation harness.
DEFAULT_NOISE = NoiseParameters()
