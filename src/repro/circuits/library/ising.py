"""Digitized linear Ising spin-chain simulation [36]."""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def ising_chain(
    num_qubits: int,
    steps: int = 3,
    dt: float = 0.25,
    coupling: float = 1.0,
    field: float = 0.8,
) -> QuantumCircuit:
    """First-order Trotterized transverse-field Ising chain.

    Each step applies ``RZZ(2 J dt)`` on every chain bond followed by
    ``RX(2 h dt)`` on every spin — the digitized adiabatic evolution of
    Barends et al. [36] on a linear chain.
    """
    if num_qubits < 2:
        raise ValueError(f"Ising chain needs >= 2 qubits, got {num_qubits}")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")

    circuit = QuantumCircuit(num_qubits, name=f"ising-{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    for _step in range(steps):
        for q in range(num_qubits - 1):
            circuit.rzz(q, q + 1, 2.0 * coupling * dt)
        for q in range(num_qubits):
            circuit.rx(q, 2.0 * field * dt)
    return circuit
