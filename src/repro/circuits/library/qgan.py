"""QGAN generator ansatz [37].

Hardware-efficient layered ansatz: per-layer RY rotations followed by a
CX entangling ring — the generator circuit shape used in quantum GAN
training experiments.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def qgan_ansatz(num_qubits: int, layers: int = 2, seed: int = 7) -> QuantumCircuit:
    """QGAN generator with deterministic pseudo-random angles.

    Angles come from a tiny LCG seeded by ``seed`` so circuits are fully
    reproducible without dragging numpy into the IR layer.
    """
    if num_qubits < 2:
        raise ValueError(f"QGAN needs >= 2 qubits, got {num_qubits}")
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")

    state = seed & 0x7FFFFFFF

    def next_angle() -> float:
        nonlocal state
        state = (1103515245 * state + 12345) % (1 << 31)
        return 2.0 * 3.141592653589793 * state / float(1 << 31)

    circuit = QuantumCircuit(num_qubits, name=f"qgan-{num_qubits}")
    for _layer in range(layers):
        for q in range(num_qubits):
            circuit.ry(q, next_angle())
        for q in range(num_qubits):
            circuit.cx(q, (q + 1) % num_qubits)
    for q in range(num_qubits):
        circuit.ry(q, next_angle())
    return circuit
