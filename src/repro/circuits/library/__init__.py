"""Benchmark circuit generators (paper Table I)."""

from repro.circuits.library.bv import bernstein_vazirani
from repro.circuits.library.qaoa import qaoa_maxcut
from repro.circuits.library.ising import ising_chain
from repro.circuits.library.qgan import qgan_ansatz

__all__ = ["bernstein_vazirani", "qaoa_maxcut", "ising_chain", "qgan_ansatz"]
