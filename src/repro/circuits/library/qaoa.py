"""QAOA MaxCut ansatz [35]."""

from __future__ import annotations

import math

from repro.circuits.circuit import QuantumCircuit


def qaoa_maxcut(
    num_qubits: int,
    p: int = 1,
    gamma: float = 0.7,
    beta: float = 0.3,
    edges: list = None,
) -> QuantumCircuit:
    """QAOA level-``p`` MaxCut circuit.

    Defaults to the ring graph (every qubit coupled to its successor),
    the standard 4-qubit benchmark instance.
    """
    if num_qubits < 2:
        raise ValueError(f"QAOA needs >= 2 qubits, got {num_qubits}")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if edges is None:
        edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]

    circuit = QuantumCircuit(num_qubits, name=f"qaoa-{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    for _layer in range(p):
        for a, b in edges:
            circuit.rzz(a, b, 2.0 * gamma)
        for q in range(num_qubits):
            circuit.rx(q, 2.0 * beta)
    # Final basis alignment commonly used before sampling.
    for q in range(num_qubits):
        circuit.rz(q, math.pi / 4.0)
    return circuit
