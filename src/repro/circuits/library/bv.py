"""Bernstein-Vazirani circuits [34].

``bv-n`` uses ``n`` qubits total: ``n - 1`` input qubits plus one ancilla.
The oracle encodes a secret bitstring with CX gates from every set input
bit onto the ancilla; the all-ones secret (the default) maximizes oracle
size, matching the worst-case usage the paper evaluates.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def bernstein_vazirani(num_qubits: int, secret: str = None) -> QuantumCircuit:
    """BV on ``num_qubits`` qubits (``num_qubits - 1`` input + 1 ancilla).

    ``secret`` is an optional bitstring of length ``num_qubits - 1``;
    defaults to all ones.
    """
    if num_qubits < 2:
        raise ValueError(f"BV needs >= 2 qubits, got {num_qubits}")
    num_inputs = num_qubits - 1
    if secret is None:
        secret = "1" * num_inputs
    if len(secret) != num_inputs or set(secret) - {"0", "1"}:
        raise ValueError(f"secret must be {num_inputs} bits, got {secret!r}")

    circuit = QuantumCircuit(num_qubits, name=f"bv-{num_qubits}")
    ancilla = num_qubits - 1
    for q in range(num_inputs):
        circuit.h(q)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(q, ancilla)
    for q in range(num_inputs):
        circuit.h(q)
    return circuit
