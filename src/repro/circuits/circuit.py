"""A small gate-list quantum circuit IR."""

from __future__ import annotations

from repro.circuits.gates import Gate


class QuantumCircuit:
    """An ordered list of gates over ``num_qubits`` logical qubits.

    The IR is intentionally minimal: the fidelity model needs gate counts,
    connectivity demands, and a schedule, not simulation.
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise ValueError(f"need at least one qubit, got {num_qubits}")
        self.num_qubits = num_qubits
        self.name = name
        self.gates = []

    # -- gate builders -----------------------------------------------------
    def _append(self, name: str, qubits: tuple, params: tuple = ()) -> "QuantumCircuit":
        for q in qubits:
            if not (0 <= q < self.num_qubits):
                raise ValueError(f"qubit {q} outside 0..{self.num_qubits - 1}")
        self.gates.append(Gate(name, qubits, params))
        return self

    def h(self, q: int) -> "QuantumCircuit":
        """Hadamard."""
        return self._append("h", (q,))

    def x(self, q: int) -> "QuantumCircuit":
        """Pauli-X."""
        return self._append("x", (q,))

    def rx(self, q: int, theta: float) -> "QuantumCircuit":
        """X rotation."""
        return self._append("rx", (q,), (theta,))

    def ry(self, q: int, theta: float) -> "QuantumCircuit":
        """Y rotation."""
        return self._append("ry", (q,), (theta,))

    def rz(self, q: int, theta: float) -> "QuantumCircuit":
        """Z rotation."""
        return self._append("rz", (q,), (theta,))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """CNOT."""
        return self._append("cx", (control, target))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self._append("cz", (a, b))

    def rzz(self, a: int, b: int, theta: float) -> "QuantumCircuit":
        """ZZ interaction rotation."""
        return self._append("rzz", (a, b), (theta,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP (decomposed to 3 CX by the transpiler)."""
        return self._append("swap", (a, b))

    # -- stats ---------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        """Total gate count."""
        return len(self.gates)

    def count_1q(self) -> int:
        """Number of single-qubit gates."""
        return sum(1 for g in self.gates if g.num_qubits == 1)

    def count_2q(self) -> int:
        """Number of two-qubit gates."""
        return sum(1 for g in self.gates if g.num_qubits == 2)

    def two_qubit_pairs(self) -> list:
        """Logical qubit pairs touched by 2q gates, in order."""
        return [g.qubits for g in self.gates if g.num_qubits == 2]

    def depth(self) -> int:
        """Circuit depth counting every gate as one time step."""
        level = [0] * self.num_qubits
        for gate in self.gates:
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
        return max(level) if level else 0

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit({self.name!r}, qubits={self.num_qubits}, "
            f"gates={self.num_gates}, depth={self.depth()})"
        )
