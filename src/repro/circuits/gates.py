"""Gate primitives for the circuit IR.

The native set mirrors fixed-frequency transmon devices: arbitrary 1-qubit
rotations (microwave pulses) plus a single microwave-activated 2-qubit
entangler (CX after standard basis changes).  Durations are representative
published values; the fidelity model only needs the 1q/2q distinction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Representative gate durations in nanoseconds.
GATE_DURATIONS_NS = {1: 35.0, 2: 300.0}

_ONE_QUBIT = {"h", "x", "y", "z", "s", "t", "rx", "ry", "rz"}
_TWO_QUBIT = {"cx", "cz", "rzz", "swap"}


@dataclass(frozen=True)
class Gate:
    """One gate application.

    ``qubits`` are logical indices before transpilation, physical after.
    ``params`` carries rotation angles where applicable.
    """

    name: str
    qubits: tuple
    params: tuple = field(default=())

    def __post_init__(self) -> None:
        name = self.name.lower()
        if name in _ONE_QUBIT:
            expected = 1
        elif name in _TWO_QUBIT:
            expected = 2
        else:
            raise ValueError(f"unknown gate {self.name!r}")
        if len(self.qubits) != expected:
            raise ValueError(
                f"{self.name} expects {expected} qubit(s), got {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"{self.name} qubits must be distinct: {self.qubits}")

    @property
    def num_qubits(self) -> int:
        """1 or 2."""
        return len(self.qubits)

    @property
    def duration_ns(self) -> float:
        """Nominal duration."""
        return GATE_DURATIONS_NS[self.num_qubits]


def is_two_qubit(gate: Gate) -> bool:
    """True for entangling gates."""
    return gate.num_qubits == 2
