"""Benchmark registry: look circuits up by the paper's names."""

from __future__ import annotations

from repro.circuits.library import (
    bernstein_vazirani,
    ising_chain,
    qaoa_maxcut,
    qgan_ansatz,
)

#: Benchmark names in the order Fig. 8 presents them.
PAPER_BENCHMARKS = ["bv-4", "bv-9", "bv-16", "qaoa-4", "ising-4", "qgan-4", "qgan-9"]

_FAMILIES = {
    "bv": bernstein_vazirani,
    "qaoa": qaoa_maxcut,
    "ising": ising_chain,
    "qgan": qgan_ansatz,
}


def get_benchmark(name: str):
    """Build a benchmark circuit from a ``family-n`` name, e.g. ``"bv-9"``."""
    key = name.strip().lower()
    if "-" not in key:
        raise KeyError(f"benchmark names look like 'bv-4', got {name!r}")
    family, _, size = key.partition("-")
    if family not in _FAMILIES:
        raise KeyError(
            f"unknown benchmark family {family!r}; "
            f"available: {', '.join(sorted(_FAMILIES))}"
        )
    try:
        num_qubits = int(size)
    except ValueError:
        raise KeyError(f"benchmark size must be an integer, got {name!r}")
    return _FAMILIES[family](num_qubits)
