"""NISQ benchmark circuits (paper Table I).

A minimal gate-level IR plus generators for the benchmarks the paper
evaluates: Bernstein-Vazirani (bv-4/9/16), QAOA (qaoa-4), linear Ising
simulation (ising-4), and QGAN ansatz circuits (qgan-4/9).
"""

from repro.circuits.gates import Gate, GATE_DURATIONS_NS, is_two_qubit
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import (
    bernstein_vazirani,
    qaoa_maxcut,
    ising_chain,
    qgan_ansatz,
)
from repro.circuits.registry import get_benchmark, PAPER_BENCHMARKS

__all__ = [
    "Gate",
    "GATE_DURATIONS_NS",
    "is_two_qubit",
    "QuantumCircuit",
    "bernstein_vazirani",
    "qaoa_maxcut",
    "ising_chain",
    "qgan_ansatz",
    "get_benchmark",
    "PAPER_BENCHMARKS",
]
