"""Stage reports, the end-to-end flow result, and their serialization.

Layout snapshots and stage reports round-trip through plain JSON-safe
structures so the orchestration layer can persist them in the disk
artifact store and ship them across process boundaries.  Float positions
survive the round trip bit-exactly (``json`` serializes doubles via
``repr``, the shortest string that parses back to the same double), so a
restored snapshot reproduces the source layout exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def encode_snapshot(positions: dict) -> list:
    """Flatten a :meth:`QuantumNetlist.snapshot` dict into JSON-safe rows.

    Qubit entries become ``["q", index, x, y]`` and wire-block entries
    ``["b", qi, qj, ordinal, x, y]``; row order follows the snapshot's
    insertion order so decoding rebuilds an identical dict.
    """
    rows = []
    for node_id, (x, y) in positions.items():
        if node_id[0] == "q":
            rows.append(["q", node_id[1], x, y])
        elif node_id[0] == "b":
            (qi, qj) = node_id[1]
            rows.append(["b", qi, qj, node_id[2], x, y])
        else:
            raise ValueError(f"unknown snapshot node id {node_id!r}")
    return rows


def decode_snapshot(rows: list) -> dict:
    """Inverse of :func:`encode_snapshot`."""
    positions = {}
    for row in rows:
        if row[0] == "q":
            _, index, x, y = row
            positions[("q", index)] = (x, y)
        elif row[0] == "b":
            _, qi, qj, ordinal, x, y = row
            positions[("b", (qi, qj), ordinal)] = (x, y)
        else:
            raise ValueError(f"unknown snapshot row {row!r}")
    return positions


@dataclass
class StageReport:
    """Metrics snapshot after one flow stage (GP, LG, DP).

    ``positions`` is a netlist snapshot (node id → (x, y)) so layouts can
    be compared or restored; ``metrics`` holds stage-appropriate numbers
    (hpwl, displacement, Ph, cluster counts, runtimes...).
    """

    stage: str
    runtime_s: float
    positions: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def metric(self, key: str, default=None):
        """Convenience accessor into ``metrics``."""
        return self.metrics.get(key, default)

    def to_dict(self) -> dict:
        """JSON-safe representation (see :func:`encode_snapshot`)."""
        return {
            "stage": self.stage,
            "runtime_s": self.runtime_s,
            "positions": encode_snapshot(self.positions),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageReport":
        """Rebuild a report serialized with :meth:`to_dict`."""
        return cls(
            stage=data["stage"],
            runtime_s=data["runtime_s"],
            positions=decode_snapshot(data["positions"]),
            metrics=dict(data["metrics"]),
        )


@dataclass
class FlowResult:
    """Everything a qGDP flow run produced."""

    topology_name: str
    engine: str
    stages: list = field(default_factory=list)

    def stage(self, name: str) -> StageReport:
        """Look a stage up by name (e.g. ``"qubit_lg"``)."""
        for report in self.stages:
            if report.stage == name:
                return report
        raise KeyError(f"no stage {name!r} in flow result")

    @property
    def final(self) -> StageReport:
        """The last completed stage."""
        if not self.stages:
            raise ValueError("flow has no stages")
        return self.stages[-1]

    def to_dict(self) -> dict:
        """JSON-safe representation of the whole flow outcome."""
        return {
            "topology_name": self.topology_name,
            "engine": self.engine,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlowResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        return cls(
            topology_name=data["topology_name"],
            engine=data["engine"],
            stages=[StageReport.from_dict(s) for s in data["stages"]],
        )
