"""Stage reports and the end-to-end flow result."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageReport:
    """Metrics snapshot after one flow stage (GP, LG, DP).

    ``positions`` is a netlist snapshot (node id → (x, y)) so layouts can
    be compared or restored; ``metrics`` holds stage-appropriate numbers
    (hpwl, displacement, Ph, cluster counts, runtimes...).
    """

    stage: str
    runtime_s: float
    positions: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def metric(self, key: str, default=None):
        """Convenience accessor into ``metrics``."""
        return self.metrics.get(key, default)


@dataclass
class FlowResult:
    """Everything a qGDP flow run produced."""

    topology_name: str
    engine: str
    stages: list = field(default_factory=list)

    def stage(self, name: str) -> StageReport:
        """Look a stage up by name (e.g. ``"qubit_lg"``)."""
        for report in self.stages:
            if report.stage == name:
                return report
        raise KeyError(f"no stage {name!r} in flow result")

    @property
    def final(self) -> StageReport:
        """The last completed stage."""
        if not self.stages:
            raise ValueError("flow has no stages")
        return self.stages[-1]
