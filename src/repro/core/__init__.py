"""End-to-end qGDP flow: configuration, pipeline, and stage reports."""

from repro.core.config import QGDPConfig
from repro.core.result import StageReport, FlowResult

__all__ = ["QGDPConfig", "StageReport", "FlowResult", "QGDPFlow", "run_flow"]


def __getattr__(name: str):
    # Lazy import: the pipeline pulls in every stage (legalization,
    # detailed placement, routing); importing it here would make
    # ``repro.core.config`` unimportable during partial builds and would
    # slow down light-weight users of the config alone.
    if name in ("QGDPFlow", "run_flow"):
        from repro.core import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
