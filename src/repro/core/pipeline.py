"""The end-to-end qGDP flow: build → GP → LG → DP with stage reports."""

from __future__ import annotations

import time

from repro.core.config import QGDPConfig
from repro.core.result import FlowResult, StageReport
from repro.detailed.placer import DetailedPlacer
from repro.legalization.engines import get_engine, run_legalization
from repro.metrics.report import layout_metrics
from repro.netlist.pseudo import ConnectionStyle
from repro.placement.builder import build_layout
from repro.placement.global_placer import GlobalPlacer
from repro.topologies.base import Topology
from repro.topologies.registry import get_topology


class QGDPFlow:
    """Drives one topology through the full placement flow.

    Typical use::

        flow = QGDPFlow("falcon")
        result = flow.run(engine="qgdp", detailed=True)
        print(result.final.metrics["ph_percent"])

    After :meth:`run`, ``flow.netlist`` and ``flow.bins`` hold the final
    layout for further analysis (fidelity evaluation, visualization...).
    """

    def __init__(self, topology, config: QGDPConfig = None) -> None:
        self.topology = (
            topology if isinstance(topology, Topology) else get_topology(topology)
        )
        self.config = config or QGDPConfig()
        self.netlist = None
        self.grid = None
        self.bins = None

    def _metrics_dict(self) -> dict:
        metrics = layout_metrics(self.netlist, self.bins, self.config)
        return {
            "num_cells": metrics.num_cells,
            "unified": metrics.unified,
            "total_resonators": metrics.total_resonators,
            "iedge": metrics.iedge,
            "clusters": metrics.clusters,
            "crossings": metrics.crossings,
            "ph_percent": metrics.ph_percent,
            "hq": metrics.hq,
            "legality_violations": metrics.legality_violations,
            "spacing_violations": metrics.spacing_violations,
        }

    def run(
        self,
        engine: str = "qgdp",
        detailed: bool = True,
        seed: int = None,
        style: ConnectionStyle = ConnectionStyle.PSEUDO,
    ) -> FlowResult:
        """Run GP → legalization → (optional) detailed placement.

        ``engine`` picks the legalization strategy (see
        :mod:`repro.legalization.engines`); the detailed placer only makes
        sense on top of qGDP-LG but can be applied after any engine.
        """
        cfg = self.config
        result = FlowResult(topology_name=self.topology.name, engine=engine)

        t0 = time.perf_counter()
        self.netlist, self.grid = build_layout(self.topology, cfg)
        placer = GlobalPlacer(cfg)
        gp_summary = placer.run(
            self.netlist, self.grid, style=style, seed=seed
        )
        result.stages.append(
            StageReport(
                stage="gp",
                runtime_s=time.perf_counter() - t0,
                positions=self.netlist.snapshot(),
                metrics={
                    "hpwl": gp_summary.hpwl,
                    "max_bin_overflow": gp_summary.max_bin_overflow,
                },
            )
        )

        t0 = time.perf_counter()
        outcome = run_legalization(
            self.netlist, self.grid, get_engine(engine), cfg
        )
        self.bins = outcome.bins
        lg_metrics = self._metrics_dict()
        lg_metrics.update(
            {
                "qubit_time_s": outcome.qubit_time_s,
                "resonator_time_s": outcome.resonator_time_s,
                "qubit_displacement": outcome.qubit_displacement,
                "qubit_spacing_used": outcome.qubit_spacing_used,
            }
        )
        result.stages.append(
            StageReport(
                stage="lg",
                runtime_s=time.perf_counter() - t0,
                positions=self.netlist.snapshot(),
                metrics=lg_metrics,
            )
        )

        if detailed:
            t0 = time.perf_counter()
            dp_summary = DetailedPlacer(cfg).run(self.netlist, self.bins)
            dp_metrics = self._metrics_dict()
            dp_metrics.update(
                {
                    "flagged": dp_summary.flagged,
                    "accepted": dp_summary.accepted,
                    "reverted": dp_summary.reverted,
                }
            )
            result.stages.append(
                StageReport(
                    stage="dp",
                    runtime_s=time.perf_counter() - t0,
                    positions=self.netlist.snapshot(),
                    metrics=dp_metrics,
                )
            )
        return result


def run_flow(
    topology,
    engine: str = "qgdp",
    detailed: bool = True,
    config: QGDPConfig = None,
    seed: int = None,
) -> tuple:
    """One-call convenience: returns ``(flow, FlowResult)``."""
    flow = QGDPFlow(topology, config)
    result = flow.run(engine=engine, detailed=detailed, seed=seed)
    return (flow, result)
