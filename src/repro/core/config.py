"""Configuration for the qGDP flow.

All geometric quantities are in layout units where the standard-cell pitch
``lb`` (one wire-block side) is 1.0 — the paper's convention of treating
the resonator segment as the standard cell and qubits as macros.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frequency.assignment import DEFAULT_QUBIT_BANDS, DEFAULT_RESONATOR_BANDS


@dataclass
class QGDPConfig:
    """Tunable parameters of the layout flow.

    Parameters
    ----------
    lb:
        Standard-cell (wire block) pitch; the site grid unit.
    qubit_size:
        Qubit macro side length in multiples of ``lb`` (macros ≫ cells).
    min_qubit_spacing:
        Quantum minimum edge-to-edge spacing between qubit macros, in
        ``lb`` (Section III-C: at least one standard cell).
    initial_qubit_spacing:
        Where the greedy relaxation starts; relaxed one ``lb`` at a time
        down to ``min_qubit_spacing`` when the LP is infeasible.
    resonator_length:
        Reference resonator wirelength ``L`` at the centre band frequency,
        in ``lb``; actual length scales as ``f_ref / f`` (a λ/4 resonator
        is longer at lower frequency).  Chosen so Eq. 6 yields ≈ 11-12
        blocks per resonator, matching the paper's Table III cell counts.
    pad:
        Padding width ``l_pad`` of Eq. 6.
    utilization:
        Target substrate area utilization used when sizing the die.
    margin:
        Border margin around the ideal footprint, in ideal units.
    reach:
        Hotspot interaction reach (layout units), see
        :mod:`repro.frequency.hotspots`.
    delta_c:
        Frequency-proximity threshold Δc in GHz.
    qubit_bands, resonator_bands:
        Frequency allocation bands in GHz.
    gp_iterations, gp_attraction, gp_anchor, gp_density, gp_step, gp_noise:
        Global-placer schedule knobs (see
        :class:`repro.placement.global_placer.GlobalPlacer`).
    seed:
        Base RNG seed for every stochastic stage.
    """

    lb: float = 1.0
    qubit_size: float = 3.0
    min_qubit_spacing: float = 1.0
    initial_qubit_spacing: float = 2.0
    resonator_length: float = 11.3
    pad: float = 1.0
    utilization: float = 0.72
    margin: float = 0.9
    reach: float = 2.0
    delta_c: float = 0.04
    qubit_bands: tuple = field(default=DEFAULT_QUBIT_BANDS)
    resonator_bands: tuple = field(default=DEFAULT_RESONATOR_BANDS)
    gp_iterations: int = 250
    gp_attraction: float = 0.65
    gp_anchor: float = 0.05
    gp_density: float = 0.08
    gp_step: float = 0.8
    gp_noise: float = 0.15
    seed: int = 2025

    def __post_init__(self) -> None:
        if self.lb <= 0:
            raise ValueError(f"lb must be positive, got {self.lb}")
        if self.qubit_size < self.lb:
            raise ValueError("qubit macros must be at least one site wide")
        if self.min_qubit_spacing < 0:
            raise ValueError("min_qubit_spacing cannot be negative")
        if self.initial_qubit_spacing < self.min_qubit_spacing:
            raise ValueError(
                "initial_qubit_spacing must be >= min_qubit_spacing "
                f"({self.initial_qubit_spacing} < {self.min_qubit_spacing})"
            )
        if not (0.05 <= self.utilization <= 0.95):
            raise ValueError(f"utilization out of range: {self.utilization}")
