"""Formatters that print the paper's tables and figures as text.

Each formatter takes harness outputs and returns a string whose rows and
columns mirror the corresponding artifact in the paper, so bench runs can
be compared against it side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.legalization.engines import ENGINES


def _fmt_fidelity(value: float) -> str:
    return "<1e-4" if value < 1e-4 else f"{value:.4f}"


def format_fig8(results: dict, topologies: list, benchmarks: list, engines: list) -> str:
    """Fig. 8: fidelity per topology × benchmark × engine (plus the mean)."""
    lines = []
    for topo in topologies:
        lines.append(f"== {topo} ==")
        header = f"{'engine':<10}" + "".join(f"{b:>9}" for b in benchmarks) + f"{'Mean':>9}"
        lines.append(header)
        for engine in engines:
            cells = []
            means = []
            for bench in benchmarks:
                cell = results.get((topo, bench, engine))
                if cell is None:
                    cells.append(f"{'-':>9}")
                else:
                    cells.append(f"{_fmt_fidelity(cell.mean):>9}")
                    means.append(cell.mean)
            mean = sum(means) / len(means) if means else 0.0
            label = ENGINES[engine].display_name
            lines.append(f"{label:<10}" + "".join(cells) + f"{_fmt_fidelity(mean):>9}")
        lines.append("")
    return "\n".join(lines)


def format_fig9(evaluations: dict, topologies: list, engines: list) -> str:
    """Fig. 9: Ph (%) and crossings X per topology × engine, with means."""
    lines = []
    for metric, title in (("ph_percent", "Ph (%)"), ("crossings", "Coupler Crosses (X)")):
        lines.append(f"-- {title} --")
        header = f"{'engine':<10}" + "".join(f"{t:>10}" for t in topologies) + f"{'Mean':>10}"
        lines.append(header)
        for engine in engines:
            row = []
            values = []
            for topo in topologies:
                ev = evaluations[topo][engine]
                value = getattr(ev.metrics, metric)
                values.append(float(value))
                row.append(
                    f"{value:>10.2f}" if metric == "ph_percent" else f"{value:>10d}"
                )
            mean = sum(values) / len(values)
            label = ENGINES[engine].display_name
            lines.append(f"{label:<10}" + "".join(row) + f"{mean:>10.2f}")
        lines.append("")
    return "\n".join(lines)


def format_table2(evaluations: dict, topologies: list, engines: list) -> str:
    """Table II: legalization runtimes tq / te in milliseconds."""
    lines = []
    header = f"{'Topology':<10}"
    for engine in engines:
        label = ENGINES[engine].display_name
        header += f"{label + ' tq':>14}{label + ' te':>14}"
    lines.append(header)
    sums = {engine: [0.0, 0.0] for engine in engines}
    for topo in topologies:
        row = f"{topo:<10}"
        for engine in engines:
            ev = evaluations[topo][engine]
            tq_ms = ev.qubit_time_s * 1e3
            te_ms = ev.resonator_time_s * 1e3
            sums[engine][0] += tq_ms
            sums[engine][1] += te_ms
            row += f"{tq_ms:>14.2f}{te_ms:>14.2f}"
        lines.append(row)
    row = f"{'Mean':<10}"
    for engine in engines:
        row += (
            f"{sums[engine][0] / len(topologies):>14.2f}"
            f"{sums[engine][1] / len(topologies):>14.2f}"
        )
    lines.append(row)
    return "\n".join(lines)


def format_table3(evaluations: dict, topologies: list) -> str:
    """Table III: qGDP-LG vs qGDP-DP on #Cells, Iedge, X, Ph, HQ."""
    lines = [
        f"{'Topology':<10}{'#Cells':>8} | "
        f"{'LG Iedge':>9}{'X':>5}{'Ph(%)':>7}{'HQ':>5} | "
        f"{'DP Iedge':>9}{'X':>5}{'Ph(%)':>7}{'HQ':>5}"
    ]
    for topo in topologies:
        ev = evaluations[topo]["qgdp"]
        lg = ev.metrics
        dp = ev.dp_metrics if ev.dp_metrics is not None else lg
        lines.append(
            f"{topo:<10}{lg.num_cells:>8} | "
            f"{lg.iedge:>9}{lg.crossings:>5}{lg.ph_percent:>7.2f}{lg.hq:>5} | "
            f"{dp.iedge:>9}{dp.crossings:>5}{dp.ph_percent:>7.2f}{dp.hq:>5}"
        )
    return "\n".join(lines)
