"""Golden flow fingerprints: compact, exact digests of a full qGDP run.

A fingerprint captures one topology's end-to-end flow outcome as a
SHA-256 over the rounded final positions plus the headline layout
metrics (unified/total clusters, crossings, hotspot percentage).  The
committed baselines under ``tests/golden/baselines/`` pin these values
exactly, so any change to the placement arithmetic — a new LP presolve,
a different arc set, a reordered reduction — either reproduces the flow
bit-for-bit or shows up as a failing golden test.

Deliberate changes are re-baselined with ``tools/write_baselines.py``,
which prints the field-level diff it is committing; silent drift is the
thing this module exists to prevent.  Positions are rounded to
:data:`POSITION_DECIMALS` before hashing so the digest is stable across
platforms while still resolving far below the site pitch.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.pipeline import run_flow

#: Decimal places kept when hashing positions — 1e-6 layout units is far
#: below the site pitch, so any real movement changes the digest.
POSITION_DECIMALS = 6

#: Metric fields copied (rounded where float) into the fingerprint.
_METRIC_FIELDS = ("unified", "total_resonators", "clusters", "crossings")


def positions_digest(positions: dict) -> str:
    """SHA-256 hex digest of a position snapshot (order-independent).

    ``positions`` is a netlist snapshot: node id → ``(x, y)``.  Entries
    are serialized sorted by their stringified node id with coordinates
    rounded to :data:`POSITION_DECIMALS`.
    """
    rows = sorted(
        (
            str(node_id),
            round(float(x), POSITION_DECIMALS),
            round(float(y), POSITION_DECIMALS),
        )
        for node_id, (x, y) in positions.items()
    )
    payload = json.dumps(rows, separators=(",", ":")).encode("ascii")
    return hashlib.sha256(payload).hexdigest()


def flow_fingerprint(
    topology_name: str, engine: str = "qgdp", detailed: bool = True
) -> dict:
    """Run the full flow on one topology and fingerprint the outcome."""
    _, result = run_flow(topology_name, engine=engine, detailed=detailed)
    final = result.final
    fingerprint = {
        "topology": topology_name,
        "engine": engine,
        "stage": final.stage,
        "positions_sha256": positions_digest(final.positions),
    }
    for fieldname in _METRIC_FIELDS:
        fingerprint[fieldname] = final.metrics[fieldname]
    fingerprint["ph_percent"] = round(
        float(final.metrics["ph_percent"]), POSITION_DECIMALS
    )
    return fingerprint


def fingerprint_diff(old: dict, new: dict) -> list:
    """Human-readable field diffs between two fingerprints."""
    lines = []
    for key in sorted(set(old) | set(new)):
        before = old.get(key, "<absent>")
        after = new.get(key, "<absent>")
        if before != after:
            lines.append(f"{key}: {before} -> {after}")
    return lines
