"""Evaluation harness: topology × benchmark × engine × mapping-seed sweeps.

The paper's protocol (Section V): for every topology and legalization
strategy, the same GP solution is legalized, then each benchmark is mapped
50 times with random initial placements and the mean Eq. 7 fidelity is
reported.  Layout-level metrics (Ph, HQ, X, Iedge, runtimes) come from the
same legalized layouts.

Since the orchestration subsystem landed, this module is a thin facade:
:func:`evaluate_engines` and :func:`evaluate_fidelity` plan the same
content-addressed job graphs the ``repro sweep`` CLI runs (GP once per
topology, transpilations once per (topology, benchmark, seed), layout
analysis once per (topology, engine)) and execute them with the in-process
serial executor.  Results are bit-identical whether the jobs run here, in
a worker pool, or come back from the disk artifact cache — see
``docs/orchestration.md``.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.config import QGDPConfig
from repro.crosstalk.parameters import DEFAULT_NOISE, NoiseParameters
from repro.orchestration.executor import RunStats, run_jobs
from repro.orchestration.jobs import Job, JobGraph, canonical_json
from repro.orchestration.stages import (
    config_to_dict,
    metrics_from_dict,
    noise_to_dict,
)
from repro.orchestration.store import ArtifactStore, resolve_store
from repro.orchestration.sweep import SweepSpec, run_sweep


@dataclass
class EvaluationConfig:
    """Knobs of the sweep (defaults mirror the paper, seeds reduced)."""

    num_seeds: int = 50
    base_seed: int = 11
    detailed: bool = False
    config: QGDPConfig = field(default_factory=QGDPConfig)
    noise: NoiseParameters = field(default_factory=lambda: DEFAULT_NOISE)


@dataclass
class FidelityCell:
    """Mean fidelity of one (topology, benchmark, engine) cell."""

    topology: str
    benchmark: str
    engine: str
    mean: float
    minimum: float
    maximum: float
    samples: list = field(default_factory=list)


@dataclass
class EngineEvaluation:
    """Layout-level outcome of one engine on one topology."""

    topology: str
    engine: str
    metrics: object  # LayoutMetrics
    qubit_time_s: float
    resonator_time_s: float
    dp_time_s: float = 0.0
    dp_metrics: object = None


def sweep_spec(
    topology_names: list,
    benchmark_names: list,
    engine_names: list,
    eval_config: EvaluationConfig = None,
) -> SweepSpec:
    """The :class:`SweepSpec` equivalent of an :class:`EvaluationConfig`."""
    eval_config = eval_config or EvaluationConfig()
    return SweepSpec(
        topologies=tuple(topology_names),
        benchmarks=tuple(benchmark_names),
        engines=tuple(engine_names),
        num_seeds=eval_config.num_seeds,
        base_seed=eval_config.base_seed,
        detailed=eval_config.detailed,
        config=config_to_dict(eval_config.config),
        noise=noise_to_dict(eval_config.noise),
    )


def cells_from_sweep(sweep_cells: dict) -> dict:
    """Wrap raw sweep cell stats into :class:`FidelityCell` values."""
    return {
        (topo, bench, engine): FidelityCell(
            topology=topo,
            benchmark=bench,
            engine=engine,
            mean=cell["mean"],
            minimum=cell["minimum"],
            maximum=cell["maximum"],
            samples=cell["samples"],
        )
        for (topo, bench, engine), cell in sweep_cells.items()
    }


def plan_engine_evaluations(
    topology_names: list,
    engine_names: list,
    eval_config: EvaluationConfig = None,
    with_dp_for: tuple = ("qgdp",),
) -> tuple:
    """Plan the Fig. 9 / Table II–III job graph.

    Per topology: one ``gp`` job, one ``lg`` job per engine, a ``dp``
    job for engines in ``with_dp_for``, and one ``metrics`` job per
    (topology, engine) that assembles the layout-quality report from the
    stage payloads.  The gp/lg/dp params are **identical** to the ones
    :func:`~repro.orchestration.sweep.plan_sweep` emits, so tables and
    fidelity sweeps sharing a cache directory share those artifacts.
    For DP engines that means both an ``lg`` and a ``dp`` job (the dp
    runner replays legalization internally): a deliberate trade — one
    duplicated legalization on a cold cache, in exchange for cache hits
    against both detailed and non-detailed sweeps and an unchanged dp
    payload schema.

    Returns ``(graph, keys)`` with ``keys`` mapping
    ``(topology, engine) -> metrics job key``.
    """
    eval_config = eval_config or EvaluationConfig()
    cfg_dict = config_to_dict(eval_config.config)
    graph = JobGraph()
    keys = {}
    for topology_name in topology_names:
        gp = graph.add(
            Job.create(
                "gp",
                {
                    "topology": topology_name,
                    "config": cfg_dict,
                    "seed": eval_config.config.seed,
                },
            )
        )
        for engine_name in engine_names:
            layout_params = {
                "topology": topology_name,
                "engine": engine_name,
                "config": cfg_dict,
            }
            lg = graph.add(Job.create("lg", layout_params, deps=(gp.key,)))
            deps = [lg.key]
            if engine_name in with_dp_for:
                dp = graph.add(Job.create("dp", layout_params, deps=(gp.key,)))
                deps.append(dp.key)
            metrics = graph.add(
                Job.create("metrics", layout_params, deps=tuple(deps))
            )
            keys[(topology_name, engine_name)] = metrics.key
    return (graph, keys)


@dataclass
class EngineSweepResult:
    """What :func:`run_engine_evaluations` produced."""

    evaluations: dict  # topology -> {engine: EngineEvaluation}
    stats: RunStats
    manifest: dict

    @property
    def rows(self) -> list:
        """JSONL-ready result rows, one per (topology, engine)."""
        rows = []
        for topo, engines in self.evaluations.items():
            for engine, ev in engines.items():
                rows.append(
                    {
                        "topology": topo,
                        "engine": engine,
                        "metrics": asdict(ev.metrics),
                        "dp_metrics": (
                            None
                            if ev.dp_metrics is None
                            else asdict(ev.dp_metrics)
                        ),
                        "qubit_time_s": ev.qubit_time_s,
                        "resonator_time_s": ev.resonator_time_s,
                        "dp_time_s": ev.dp_time_s,
                    }
                )
        return rows


def run_engine_evaluations(
    topology_names: list,
    engine_names: list,
    eval_config: EvaluationConfig = None,
    with_dp_for: tuple = ("qgdp",),
    cache_dir: Optional[str] = None,
    workers: int = 0,
    resume: bool = False,
    retries: int = 0,
    timeout_s: Optional[float] = None,
    store: Optional[ArtifactStore] = None,
    progress=None,
    cache_url: Optional[str] = None,
) -> EngineSweepResult:
    """Evaluate every engine on every topology through the orchestrator.

    The cached counterpart of :func:`evaluate_engines` and the engine
    behind ``repro tables``: plans the graph from
    :func:`plan_engine_evaluations` and executes it with the shared
    executor, so ``cache_dir`` / ``cache_url`` / ``resume`` /
    ``workers`` / ``retries`` / ``timeout_s`` behave exactly as they do
    for fidelity sweeps (``cache_url`` selects a storage backend by URL
    — ``dir:``, ``sqlite:``, ``http://`` — see ``docs/storage.md``).
    On a warm cache every job — including the ``metrics`` payloads that
    carry the Table II timings — is a cache hit, making regenerated
    tables byte-identical to the run that populated the cache.
    """
    eval_config = eval_config or EvaluationConfig()
    graph, keys = plan_engine_evaluations(
        topology_names, engine_names, eval_config, with_dp_for
    )
    owns_store = store is None
    if owns_store:
        store = resolve_store(cache_url=cache_url, cache_dir=cache_dir)
    try:
        payloads, stats = run_jobs(
            graph,
            store,
            workers=workers,
            resume=resume,
            progress=progress,
            retries=retries,
            timeout_s=timeout_s,
        )
    finally:
        # Close self-opened stores (sqlite handles); leave caller-owned
        # stores open for reuse.
        if owns_store:
            store.close()

    evaluations = {name: {} for name in topology_names}
    for (topology_name, engine_name), key in keys.items():
        payload = payloads[key]
        evaluation = EngineEvaluation(
            topology=topology_name,
            engine=engine_name,
            metrics=metrics_from_dict(payload["metrics"]),
            qubit_time_s=payload["qubit_time_s"],
            resonator_time_s=payload["resonator_time_s"],
        )
        if "dp_metrics" in payload:
            evaluation.dp_metrics = metrics_from_dict(payload["dp_metrics"])
            evaluation.dp_time_s = payload["dp_time_s"]
        evaluations[topology_name][engine_name] = evaluation

    spec = {
        "kind": "tables",
        "topologies": list(topology_names),
        "engines": list(engine_names),
        "with_dp_for": list(with_dp_for),
        "config": config_to_dict(eval_config.config),
    }
    run_id = hashlib.sha256(
        canonical_json(spec).encode("utf-8")
    ).hexdigest()[:12] + "-tables"
    manifest = {
        "run_id": run_id,
        "spec": spec,
        "workers": workers,
        "resume": resume,
        "retries": retries,
        "timeout_s": timeout_s,
        "jobs": stats.to_dict(),
        "num_rows": sum(len(engines) for engines in evaluations.values()),
    }
    return EngineSweepResult(
        evaluations=evaluations, stats=stats, manifest=manifest
    )


def evaluate_engines(
    topology_name: str,
    engines: list,
    eval_config: EvaluationConfig = None,
    with_dp_for: tuple = ("qgdp",),
) -> dict:
    """Legalize one topology with every engine; return layout evaluations.

    ``with_dp_for`` lists engines that additionally get a detailed
    placement pass (reported separately as ``dp_metrics``); the paper only
    runs qGDP-DP on top of qGDP-LG.  This is the in-process serial facade
    over :func:`run_engine_evaluations`; pass a cache there for warm-cache
    table regeneration.
    """
    outcome = run_engine_evaluations(
        [topology_name], engines, eval_config, with_dp_for
    )
    return outcome.evaluations[topology_name]


def evaluate_fidelity(
    topology_names: list,
    benchmark_names: list,
    engine_names: list,
    eval_config: EvaluationConfig = None,
    progress=None,
) -> dict:
    """Full Fig. 8 sweep.

    Returns ``{(topology, benchmark, engine): FidelityCell}``.  ``progress``
    is an optional callable ``(topology, engine) -> None`` for reporting.
    """
    spec = sweep_spec(topology_names, benchmark_names, engine_names, eval_config)

    job_progress = None
    if progress is not None:

        def job_progress(job, status):
            if job.kind in ("lg", "dp") and status in ("start", "cached"):
                progress(job.params["topology"], job.params["engine"])

    outcome = run_sweep(spec, progress=job_progress)
    return cells_from_sweep(outcome.cells)
