"""Evaluation harness: topology × benchmark × engine × mapping-seed sweeps.

The paper's protocol (Section V): for every topology and legalization
strategy, the same GP solution is legalized, then each benchmark is mapped
50 times with random initial placements and the mean Eq. 7 fidelity is
reported.  Layout-level metrics (Ph, HQ, X, Iedge, runtimes) come from the
same legalized layouts.

Since the orchestration subsystem landed, this module is a thin facade:
:func:`evaluate_engines` and :func:`evaluate_fidelity` plan the same
content-addressed job graphs the ``repro sweep`` CLI runs (GP once per
topology, transpilations once per (topology, benchmark, seed), layout
analysis once per (topology, engine)) and execute them with the in-process
serial executor.  Results are bit-identical whether the jobs run here, in
a worker pool, or come back from the disk artifact cache — see
``docs/orchestration.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import QGDPConfig
from repro.crosstalk.parameters import DEFAULT_NOISE, NoiseParameters
from repro.orchestration.executor import run_jobs
from repro.orchestration.jobs import Job, JobGraph
from repro.orchestration.stages import (
    config_to_dict,
    metrics_from_dict,
    noise_to_dict,
)
from repro.orchestration.store import ArtifactStore
from repro.orchestration.sweep import SweepSpec, run_sweep


@dataclass
class EvaluationConfig:
    """Knobs of the sweep (defaults mirror the paper, seeds reduced)."""

    num_seeds: int = 50
    base_seed: int = 11
    detailed: bool = False
    config: QGDPConfig = field(default_factory=QGDPConfig)
    noise: NoiseParameters = field(default_factory=lambda: DEFAULT_NOISE)


@dataclass
class FidelityCell:
    """Mean fidelity of one (topology, benchmark, engine) cell."""

    topology: str
    benchmark: str
    engine: str
    mean: float
    minimum: float
    maximum: float
    samples: list = field(default_factory=list)


@dataclass
class EngineEvaluation:
    """Layout-level outcome of one engine on one topology."""

    topology: str
    engine: str
    metrics: object  # LayoutMetrics
    qubit_time_s: float
    resonator_time_s: float
    dp_time_s: float = 0.0
    dp_metrics: object = None


def sweep_spec(
    topology_names: list,
    benchmark_names: list,
    engine_names: list,
    eval_config: EvaluationConfig = None,
) -> SweepSpec:
    """The :class:`SweepSpec` equivalent of an :class:`EvaluationConfig`."""
    eval_config = eval_config or EvaluationConfig()
    return SweepSpec(
        topologies=tuple(topology_names),
        benchmarks=tuple(benchmark_names),
        engines=tuple(engine_names),
        num_seeds=eval_config.num_seeds,
        base_seed=eval_config.base_seed,
        detailed=eval_config.detailed,
        config=config_to_dict(eval_config.config),
        noise=noise_to_dict(eval_config.noise),
    )


def cells_from_sweep(sweep_cells: dict) -> dict:
    """Wrap raw sweep cell stats into :class:`FidelityCell` values."""
    return {
        (topo, bench, engine): FidelityCell(
            topology=topo,
            benchmark=bench,
            engine=engine,
            mean=cell["mean"],
            minimum=cell["minimum"],
            maximum=cell["maximum"],
            samples=cell["samples"],
        )
        for (topo, bench, engine), cell in sweep_cells.items()
    }


def evaluate_engines(
    topology_name: str,
    engines: list,
    eval_config: EvaluationConfig = None,
    with_dp_for: tuple = ("qgdp",),
) -> dict:
    """Legalize one topology with every engine; return layout evaluations.

    ``with_dp_for`` lists engines that additionally get a detailed
    placement pass (reported separately as ``dp_metrics``); the paper only
    runs qGDP-DP on top of qGDP-LG.
    """
    eval_config = eval_config or EvaluationConfig()
    cfg_dict = config_to_dict(eval_config.config)

    graph = JobGraph()
    gp = graph.add(
        Job.create(
            "gp",
            {
                "topology": topology_name,
                "config": cfg_dict,
                "seed": eval_config.config.seed,
            },
        )
    )
    layout_keys = {}
    for engine_name in engines:
        params = {
            "topology": topology_name,
            "engine": engine_name,
            "config": cfg_dict,
            "metrics": True,
        }
        # A dp job legalizes and reports the LG stage on the way, so DP
        # engines need one job, not an lg job plus a second replay.
        kind = "dp" if engine_name in with_dp_for else "lg"
        layout_keys[engine_name] = graph.add(
            Job.create(kind, params, deps=(gp.key,))
        ).key

    payloads, _stats = run_jobs(graph, ArtifactStore())

    results = {}
    for engine_name in engines:
        payload = payloads[layout_keys[engine_name]]
        with_dp = engine_name in with_dp_for
        evaluation = EngineEvaluation(
            topology=topology_name,
            engine=engine_name,
            metrics=metrics_from_dict(
                payload["lg_metrics"] if with_dp else payload["metrics"]
            ),
            qubit_time_s=payload["qubit_time_s"],
            resonator_time_s=payload["resonator_time_s"],
        )
        if with_dp:
            evaluation.dp_time_s = payload["dp_time_s"]
            evaluation.dp_metrics = metrics_from_dict(payload["metrics"])
        results[engine_name] = evaluation
    return results


def evaluate_fidelity(
    topology_names: list,
    benchmark_names: list,
    engine_names: list,
    eval_config: EvaluationConfig = None,
    progress=None,
) -> dict:
    """Full Fig. 8 sweep.

    Returns ``{(topology, benchmark, engine): FidelityCell}``.  ``progress``
    is an optional callable ``(topology, engine) -> None`` for reporting.
    """
    spec = sweep_spec(topology_names, benchmark_names, engine_names, eval_config)

    job_progress = None
    if progress is not None:

        def job_progress(job, status):
            if job.kind in ("lg", "dp") and status in ("start", "cached"):
                progress(job.params["topology"], job.params["engine"])

    outcome = run_sweep(spec, progress=job_progress)
    return cells_from_sweep(outcome.cells)
