"""Evaluation harness: topology × benchmark × engine × mapping-seed sweeps.

The paper's protocol (Section V): for every topology and legalization
strategy, the same GP solution is legalized, then each benchmark is mapped
50 times with random initial placements and the mean Eq. 7 fidelity is
reported.  Layout-level metrics (Ph, HQ, X, Iedge, runtimes) come from the
same legalized layouts.

The harness caches aggressively: GP runs once per topology, transpilations
once per (topology, benchmark, seed) — they do not depend on the engine —
and layout analysis (violations, hotspots, crossings) once per
(topology, engine).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.circuits.registry import get_benchmark
from repro.compiler.transpiler import transpile
from repro.core.config import QGDPConfig
from repro.crosstalk.fidelity import program_fidelity
from repro.crosstalk.parameters import DEFAULT_NOISE, NoiseParameters
from repro.detailed.placer import DetailedPlacer
from repro.frequency.hotspots import hotspot_pairs, hotspot_report
from repro.legalization.engines import get_engine, run_legalization
from repro.metrics.legality import qubit_spacing_violations
from repro.metrics.report import layout_metrics
from repro.placement.builder import build_layout
from repro.placement.global_placer import GlobalPlacer
from repro.routing.crossings import count_crossings
from repro.topologies.registry import get_topology


@dataclass
class EvaluationConfig:
    """Knobs of the sweep (defaults mirror the paper, seeds reduced)."""

    num_seeds: int = 50
    base_seed: int = 11
    detailed: bool = False
    config: QGDPConfig = field(default_factory=QGDPConfig)
    noise: NoiseParameters = field(default_factory=lambda: DEFAULT_NOISE)


@dataclass
class FidelityCell:
    """Mean fidelity of one (topology, benchmark, engine) cell."""

    topology: str
    benchmark: str
    engine: str
    mean: float
    minimum: float
    maximum: float
    samples: list = field(default_factory=list)


@dataclass
class EngineEvaluation:
    """Layout-level outcome of one engine on one topology."""

    topology: str
    engine: str
    metrics: object  # LayoutMetrics
    qubit_time_s: float
    resonator_time_s: float
    dp_time_s: float = 0.0
    dp_metrics: object = None


def _layout_artifacts(netlist, bins, config):
    """Per-layout analysis reused across benchmarks and seeds."""
    return {
        "violations": qubit_spacing_violations(netlist, config.min_qubit_spacing),
        "hotspots": hotspot_pairs(netlist, config.reach, config.delta_c),
        "crossings": count_crossings(netlist, bins),
    }


def evaluate_engines(
    topology_name: str,
    engines: list,
    eval_config: EvaluationConfig = None,
    with_dp_for: tuple = ("qgdp",),
) -> dict:
    """Legalize one topology with every engine; return layout evaluations.

    ``with_dp_for`` lists engines that additionally get a detailed
    placement pass (reported separately as ``dp_metrics``); the paper only
    runs qGDP-DP on top of qGDP-LG.
    """
    eval_config = eval_config or EvaluationConfig()
    cfg = eval_config.config
    topology = get_topology(topology_name)
    netlist, grid = build_layout(topology, cfg)
    GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)
    gp_positions = netlist.snapshot()

    results = {}
    for engine_name in engines:
        netlist.restore(gp_positions)
        outcome = run_legalization(netlist, grid, get_engine(engine_name), cfg)
        metrics = layout_metrics(netlist, outcome.bins, cfg)
        evaluation = EngineEvaluation(
            topology=topology_name,
            engine=engine_name,
            metrics=metrics,
            qubit_time_s=outcome.qubit_time_s,
            resonator_time_s=outcome.resonator_time_s,
        )
        if engine_name in with_dp_for:
            t0 = time.perf_counter()
            DetailedPlacer(cfg).run(netlist, outcome.bins)
            evaluation.dp_time_s = time.perf_counter() - t0
            evaluation.dp_metrics = layout_metrics(netlist, outcome.bins, cfg)
        results[engine_name] = evaluation
    return results


def evaluate_fidelity(
    topology_names: list,
    benchmark_names: list,
    engine_names: list,
    eval_config: EvaluationConfig = None,
    progress=None,
) -> dict:
    """Full Fig. 8 sweep.

    Returns ``{(topology, benchmark, engine): FidelityCell}``.  ``progress``
    is an optional callable ``(topology, engine) -> None`` for reporting.
    """
    eval_config = eval_config or EvaluationConfig()
    cfg = eval_config.config
    results = {}

    for topo_name in topology_names:
        topology = get_topology(topo_name)
        netlist, grid = build_layout(topology, cfg)
        GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)
        gp_positions = netlist.snapshot()

        # Transpilations are engine-independent: cache per (benchmark, seed).
        transpiled_cache = {}
        for bench_name in benchmark_names:
            circuit = get_benchmark(bench_name)
            if circuit.num_qubits > topology.num_qubits:
                continue
            for k in range(eval_config.num_seeds):
                seed = eval_config.base_seed + 977 * k
                transpiled_cache[(bench_name, k)] = transpile(
                    circuit, topology, seed=seed
                )

        for engine_name in engine_names:
            if progress is not None:
                progress(topo_name, engine_name)
            netlist.restore(gp_positions)
            outcome = run_legalization(
                netlist, grid, get_engine(engine_name), cfg
            )
            if eval_config.detailed and engine_name == "qgdp":
                DetailedPlacer(cfg).run(netlist, outcome.bins)
            artifacts = _layout_artifacts(netlist, outcome.bins, cfg)

            for bench_name in benchmark_names:
                samples = []
                for k in range(eval_config.num_seeds):
                    transpiled = transpiled_cache.get((bench_name, k))
                    if transpiled is None:
                        continue
                    breakdown = program_fidelity(
                        netlist,
                        transpiled,
                        artifacts["crossings"],
                        cfg,
                        eval_config.noise,
                        hotspots=artifacts["hotspots"],
                        violations=artifacts["violations"],
                    )
                    samples.append(breakdown.fidelity)
                if not samples:
                    continue
                results[(topo_name, bench_name, engine_name)] = FidelityCell(
                    topology=topo_name,
                    benchmark=bench_name,
                    engine=engine_name,
                    mean=sum(samples) / len(samples),
                    minimum=min(samples),
                    maximum=max(samples),
                    samples=samples,
                )
    return results
