"""Evaluation harness reproducing the paper's tables and figures."""

from repro.evaluation.harness import (
    EvaluationConfig,
    evaluate_fidelity,
    evaluate_engines,
    cells_from_sweep,
    plan_engine_evaluations,
    run_engine_evaluations,
    sweep_spec,
    EngineSweepResult,
    FidelityCell,
    EngineEvaluation,
)
from repro.evaluation.fingerprint import (
    fingerprint_diff,
    flow_fingerprint,
    positions_digest,
)
from repro.evaluation.tables import (
    format_fig8,
    format_fig9,
    format_table2,
    format_table3,
)

__all__ = [
    "EvaluationConfig",
    "evaluate_fidelity",
    "evaluate_engines",
    "cells_from_sweep",
    "plan_engine_evaluations",
    "run_engine_evaluations",
    "sweep_spec",
    "EngineSweepResult",
    "FidelityCell",
    "EngineEvaluation",
    "fingerprint_diff",
    "flow_fingerprint",
    "positions_digest",
    "format_fig8",
    "format_fig9",
    "format_table2",
    "format_table3",
]
