"""qGDP: quantum legalization and detailed placement for superconducting QCs.

A from-scratch reproduction of *qGDP: Quantum Legalization and Detailed
Placement for Superconducting Quantum Computers* (DATE 2025).  The library
covers the whole flow the paper evaluates:

* device topologies and quantum netlists (qubits, partitioned resonators),
* a global-placement substrate with pseudo connections,
* the qGDP quantum legalizer (LP qubit macro legalization with minimum
  spacing + integration-aware resonator legalization) and the four
  classical baselines (Tetris, Abacus, and their quantum-qubit hybrids),
* the window-based detailed placer,
* crosstalk/fidelity models, NISQ benchmark circuits and a transpiler,
* an evaluation harness that regenerates every table and figure,
* an orchestration subsystem running sweeps as parallel, resumable,
  disk-cached job graphs (``repro.orchestration`` / ``repro sweep``).

Quickstart::

    from repro import run_flow
    flow, result = run_flow("falcon", engine="qgdp")
    print(result.final.metrics["iedge"], result.final.metrics["ph_percent"])
"""

from repro.core.config import QGDPConfig
from repro.core.pipeline import QGDPFlow, run_flow
from repro.core.result import FlowResult, StageReport
from repro.circuits import QuantumCircuit, get_benchmark, PAPER_BENCHMARKS
from repro.compiler import transpile, TranspiledCircuit
from repro.crosstalk import NoiseParameters, program_fidelity
from repro.evaluation import (
    EvaluationConfig,
    evaluate_engines,
    evaluate_fidelity,
    format_fig8,
    format_fig9,
    format_table2,
    format_table3,
    run_engine_evaluations,
)
from repro.legalization import ENGINES, PAPER_ENGINE_ORDER, get_engine
from repro.metrics import layout_metrics
from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock
from repro.orchestration import ArtifactStore, SweepSpec, run_sweep
from repro.topologies import PAPER_TOPOLOGIES, Topology, get_topology

__version__ = "0.1.0"

__all__ = [
    "QGDPConfig",
    "QGDPFlow",
    "run_flow",
    "FlowResult",
    "StageReport",
    "QuantumCircuit",
    "get_benchmark",
    "PAPER_BENCHMARKS",
    "transpile",
    "TranspiledCircuit",
    "NoiseParameters",
    "program_fidelity",
    "EvaluationConfig",
    "evaluate_engines",
    "evaluate_fidelity",
    "format_fig8",
    "format_fig9",
    "format_table2",
    "format_table3",
    "run_engine_evaluations",
    "ENGINES",
    "PAPER_ENGINE_ORDER",
    "get_engine",
    "layout_metrics",
    "QuantumNetlist",
    "Qubit",
    "Resonator",
    "WireBlock",
    "ArtifactStore",
    "SweepSpec",
    "run_sweep",
    "PAPER_TOPOLOGIES",
    "Topology",
    "get_topology",
    "__version__",
]
