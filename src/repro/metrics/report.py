"""One-stop layout quality report used by benches and the pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import QGDPConfig
from repro.frequency.hotspots import hotspot_report
from repro.legalization.bins import BinGrid
from repro.metrics.integration import integration_ratio, total_clusters
from repro.metrics.legality import check_legality, qubit_spacing_violations
from repro.netlist.netlist import QuantumNetlist
from repro.routing.crossings import count_crossings


@dataclass
class LayoutMetrics:
    """The Table III metric set plus legality information."""

    num_cells: int
    unified: int
    total_resonators: int
    clusters: int
    crossings: int
    ph_percent: float
    hq: int
    legality_violations: int
    spacing_violations: int

    @property
    def iedge(self) -> str:
        """Iedge formatted as the paper prints it, e.g. ``"37/40"``."""
        return f"{self.unified}/{self.total_resonators}"


def layout_metrics(
    netlist: QuantumNetlist,
    bins: BinGrid,
    config: QGDPConfig = None,
) -> LayoutMetrics:
    """Compute the full metric set on the current (legalized) layout."""
    config = config or QGDPConfig()
    unified, total = integration_ratio(netlist, config.lb)
    hotspots = hotspot_report(netlist, config.reach, config.delta_c)
    crossings = count_crossings(netlist, bins)
    return LayoutMetrics(
        num_cells=netlist.num_cells,
        unified=unified,
        total_resonators=total,
        clusters=total_clusters(netlist, config.lb),
        crossings=crossings.total,
        ph_percent=hotspots.ph_percent,
        hq=hotspots.hq,
        legality_violations=len(check_legality(netlist, bins.grid)),
        spacing_violations=len(
            qubit_spacing_violations(netlist, config.min_qubit_spacing)
        ),
    )
