"""Layout quality metrics: legality, displacement, integration, reports."""

from repro.metrics.legality import (
    LegalityViolation,
    check_legality,
    is_legal,
    qubit_spacing_violations,
)
from repro.metrics.displacement import displacement_stats, DisplacementStats
from repro.metrics.integration import integration_ratio, total_clusters
from repro.metrics.report import LayoutMetrics, layout_metrics

__all__ = [
    "LegalityViolation",
    "check_legality",
    "is_legal",
    "qubit_spacing_violations",
    "displacement_stats",
    "DisplacementStats",
    "integration_ratio",
    "total_clusters",
    "LayoutMetrics",
    "layout_metrics",
]
