"""Legality checking: Eq. 1 (non-overlap), Eq. 2 (borders), and the
quantum minimum-spacing rule of Section III-C.

Checks use a spatial hash so full-layout validation is near-linear; the
qGDP test-suite runs them after every legalization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry import Rect, SiteGrid, gap_between
from repro.netlist.netlist import QuantumNetlist


@dataclass(frozen=True)
class LegalityViolation:
    """One broken design rule."""

    kind: str  # "overlap" | "border" | "qubit_spacing"
    id_a: tuple
    id_b: tuple = None
    amount: float = 0.0

    def __str__(self) -> str:
        if self.id_b is None:
            return f"{self.kind}: {self.id_a} by {self.amount:.3f}"
        return f"{self.kind}: {self.id_a} vs {self.id_b} by {self.amount:.3f}"


def _all_rects(netlist: QuantumNetlist) -> list:
    out = [(("q", q.index), q.rect) for q in netlist.qubits]
    out.extend(
        (("b", b.resonator_key, b.ordinal), b.rect) for b in netlist.wire_blocks
    )
    return out


def check_legality(
    netlist: QuantumNetlist,
    grid: SiteGrid,
    tol: float = 1e-6,
) -> list:
    """All overlap and border violations in the current layout."""
    violations = []
    border = grid.border
    rects = _all_rects(netlist)

    for cid, rect in rects:
        if not rect.inside(border, tol):
            excess = max(
                border.xlo - rect.xlo,
                rect.xhi - border.xhi,
                border.ylo - rect.ylo,
                rect.yhi - border.yhi,
            )
            violations.append(LegalityViolation("border", cid, None, excess))

    cell = max(max(r.w, r.h) for _, r in rects)
    buckets = {}
    for k, (_cid, rect) in enumerate(rects):
        key = (int(math.floor(rect.cx / cell)), int(math.floor(rect.cy / cell)))
        buckets.setdefault(key, []).append(k)
    for (bx, by), members in buckets.items():
        neighborhood = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighborhood.extend(buckets.get((bx + dx, by + dy), ()))
        for i in members:
            cid_i, rect_i = rects[i]
            for j in neighborhood:
                if j <= i:
                    continue
                cid_j, rect_j = rects[j]
                if rect_i.overlaps(rect_j, tol):
                    overlap = min(
                        rect_i.xhi - rect_j.xlo,
                        rect_j.xhi - rect_i.xlo,
                        rect_i.yhi - rect_j.ylo,
                        rect_j.yhi - rect_i.ylo,
                    )
                    violations.append(
                        LegalityViolation("overlap", cid_i, cid_j, overlap)
                    )
    return violations


def is_legal(netlist: QuantumNetlist, grid: SiteGrid, tol: float = 1e-6) -> bool:
    """True when the layout satisfies Eq. 1 and Eq. 2."""
    return not check_legality(netlist, grid, tol)


def qubit_spacing_violations(
    netlist: QuantumNetlist,
    min_spacing: float,
    tol: float = 1e-6,
) -> list:
    """Qubit pairs closer (edge-to-edge) than the quantum minimum spacing.

    These are the "spatial constraint violations" that feed the Rabi
    crosstalk error εg (Eq. 8): qubits without a resonator between them
    act as if directly capacitively coupled.
    """
    violations = []
    qubits = netlist.qubits
    for a_pos, qa in enumerate(qubits):
        for qb in qubits[a_pos + 1 :]:
            gap = gap_between(qa.rect, qb.rect)
            if gap < min_spacing - tol:
                violations.append(
                    LegalityViolation(
                        "qubit_spacing",
                        ("q", qa.index),
                        ("q", qb.index),
                        min_spacing - gap,
                    )
                )
    return violations
