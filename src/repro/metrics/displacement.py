"""Displacement between two layout snapshots (preserving GP quality)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DisplacementStats:
    """Manhattan displacement summary between two snapshots."""

    total: float
    mean: float
    maximum: float
    count: int


def displacement_stats(before: dict, after: dict, prefix: str = None) -> DisplacementStats:
    """Compare two netlist snapshots (node id → (x, y)).

    ``prefix`` restricts the comparison to one component class:
    ``"q"`` for qubits, ``"b"`` for wire blocks, None for everything.
    Node ids present in only one snapshot are ignored.
    """
    moves = []
    for node_id, (x0, y0) in before.items():
        if prefix is not None and node_id[0] != prefix:
            continue
        if node_id not in after:
            continue
        x1, y1 = after[node_id]
        moves.append(abs(x1 - x0) + abs(y1 - y0))
    if not moves:
        return DisplacementStats(0.0, 0.0, 0.0, 0)
    total = float(sum(moves))
    return DisplacementStats(
        total=total,
        mean=total / len(moves),
        maximum=float(max(moves)),
        count=len(moves),
    )
