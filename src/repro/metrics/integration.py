"""Resonator integration metrics: cluster totals and Iedge (Table III)."""

from __future__ import annotations

from repro.netlist.clusters import cluster_count
from repro.netlist.netlist import QuantumNetlist


def total_clusters(netlist: QuantumNetlist, lb: float = 1.0) -> int:
    """``Σ_e |C_e|`` — the Eq. 3 objective over the whole layout."""
    return sum(cluster_count(r, lb) for r in netlist.resonators)


def integration_ratio(netlist: QuantumNetlist, lb: float = 1.0) -> tuple:
    """``Iedge`` as ``(unified, total)`` — e.g. (37, 40) reads "37/40"."""
    unified = sum(
        1 for r in netlist.resonators if cluster_count(r, lb) == 1
    )
    return (unified, netlist.num_resonators)
