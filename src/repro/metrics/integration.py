"""Resonator integration metrics: cluster totals and Iedge (Table III)."""

from __future__ import annotations

from repro.netlist.clusters import cluster_count_map
from repro.netlist.netlist import QuantumNetlist


def total_clusters(netlist: QuantumNetlist, lb: float = 1.0) -> int:
    """``Σ_e |C_e|`` — the Eq. 3 objective over the whole layout."""
    return sum(cluster_count_map(netlist.resonators, lb).values())


def integration_ratio(netlist: QuantumNetlist, lb: float = 1.0) -> tuple:
    """``Iedge`` as ``(unified, total)`` — e.g. (37, 40) reads "37/40"."""
    counts = cluster_count_map(netlist.resonators, lb)
    unified = sum(1 for count in counts.values() if count == 1)
    return (unified, netlist.num_resonators)
