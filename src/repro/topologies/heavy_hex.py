"""IBM heavy-hex topologies: Falcon (27) and Eagle (127).

The heavy-hex lattice is rows of linearly coupled qubits joined by
dedicated *connector* qubits every four columns, with the connector column
offset alternating by two between row gaps.  :func:`heavy_hex_lattice`
generates the general pattern; :func:`falcon_topology` and
:func:`eagle_topology` produce the two processors the paper evaluates.

Edge counts match the paper's Table III resonator totals: Falcon 28,
Eagle 144.
"""

from __future__ import annotations

from repro.topologies.base import Topology

# The 27-qubit Falcon coupling map (IBM Falcon r5.11, e.g. ibm_cairo).
_FALCON_EDGES = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
]

# Falcon qubit coordinates following IBM's published diagram: two qubit
# rows (y=1 bottom, y=3 top) joined by three vertical rungs (2, 13, 24)
# with six pendant qubits above/below.
_FALCON_POSITIONS = {
    # top row
    1: (0.0, 3.0), 4: (1.0, 3.0), 7: (2.0, 3.0), 10: (3.0, 3.0),
    12: (4.0, 3.0), 15: (5.0, 3.0), 18: (6.0, 3.0), 21: (7.0, 3.0),
    23: (8.0, 3.0),
    # bottom row
    3: (0.0, 1.0), 5: (1.0, 1.0), 8: (2.0, 1.0), 11: (3.0, 1.0),
    14: (4.0, 1.0), 16: (5.0, 1.0), 19: (6.0, 1.0), 22: (7.0, 1.0),
    25: (8.0, 1.0),
    # vertical rungs
    2: (0.0, 2.0), 13: (4.0, 2.0), 24: (8.0, 2.0),
    # pendants
    0: (0.0, 4.0), 6: (2.0, 4.0), 17: (6.0, 4.0),
    9: (2.0, 0.0), 20: (6.0, 0.0), 26: (8.0, 0.0),
}


def falcon_topology() -> Topology:
    """27-qubit IBM Falcon processor (heavy hex)."""
    return Topology(
        name="falcon",
        display_name="Falcon",
        num_qubits=27,
        edges=sorted(_FALCON_EDGES),
        ideal_positions=dict(_FALCON_POSITIONS),
        description="Falcon processor from IBM (heavy hex, 27 qubits)",
    )


def heavy_hex_lattice(rows: int, row_len: int, connectors: int) -> tuple:
    """General heavy-hex lattice generator.

    Parameters
    ----------
    rows:
        Number of qubit rows.
    row_len:
        Qubits per interior row (first and last rows have one fewer,
        as on the Eagle die).
    connectors:
        Connector qubits per row gap.

    Returns ``(num_qubits, edges, positions)``.  Row qubits are numbered
    left-to-right, then the connectors below them, row by row — the IBM
    Eagle numbering scheme.
    """
    if rows < 2 or row_len < 5 or connectors < 1:
        raise ValueError(
            f"degenerate heavy hex ({rows} rows, {row_len} len, {connectors} conn)"
        )
    spacing = (row_len - 3) // (connectors - 1) if connectors > 1 else 4
    edges = []
    positions = {}
    next_index = 0
    row_start = {}
    for row in range(rows):
        length = row_len - 1 if row in (0, rows - 1) else row_len
        # First/last rows are one qubit shorter; shift the last row right by
        # one column so its connector offsets line up (Eagle pattern).
        col0 = 1 if row == rows - 1 else 0
        row_start[row] = (next_index, col0, length)
        for col in range(length):
            positions[next_index + col] = (float(col0 + col), float(2 * row))
        edges.extend(
            (next_index + c, next_index + c + 1) for c in range(length - 1)
        )
        next_index += length
        if row == rows - 1:
            break
        # Connector qubits: offset alternates 0 / 2 between row gaps.
        offset = 0 if row % 2 == 0 else 2
        for k in range(connectors):
            col = offset + k * spacing
            positions[next_index + k] = (float(col), float(2 * row + 1))
        row_start[(row, "conn")] = (next_index, offset)
        next_index += connectors
    # Attach connectors to the rows above and below.
    for row in range(rows - 1):
        conn_start, offset = row_start[(row, "conn")]
        up_start, up_col0, up_len = row_start[row]
        dn_start, dn_col0, dn_len = row_start[row + 1]
        for k in range(connectors):
            col = offset + k * spacing
            up_q = up_start + (col - up_col0)
            dn_q = dn_start + (col - dn_col0)
            if not (0 <= col - up_col0 < up_len and 0 <= col - dn_col0 < dn_len):
                raise ValueError(f"connector column {col} misses a row")
            conn = conn_start + k
            edges.append((min(up_q, conn), max(up_q, conn)))
            edges.append((min(conn, dn_q), max(conn, dn_q)))
    edges = sorted((min(a, b), max(a, b)) for a, b in edges)
    return (next_index, edges, positions)


def eagle_topology() -> Topology:
    """127-qubit IBM Eagle processor (heavy hex, 144 resonators)."""
    num_qubits, edges, positions = heavy_hex_lattice(rows=7, row_len=15, connectors=4)
    if num_qubits != 127 or len(edges) != 144:
        raise AssertionError(
            f"eagle generator drifted: {num_qubits} qubits, {len(edges)} edges"
        )
    return Topology(
        name="eagle",
        display_name="Eagle",
        num_qubits=num_qubits,
        edges=edges,
        ideal_positions=positions,
        description="Eagle processor from IBM (heavy hex, 127 qubits)",
    )
