"""Square-lattice topology (QEC-friendly, Google Sycamore style)."""

from __future__ import annotations

from repro.topologies.base import Topology


def grid_topology(side: int = 5) -> Topology:
    """``side`` × ``side`` nearest-neighbour lattice (default Grid-25).

    Qubit ``q = row * side + col``; edges join horizontal and vertical
    neighbours, giving ``2 * side * (side - 1)`` resonators (40 for 5x5,
    matching Table III).
    """
    if side < 2:
        raise ValueError(f"grid side must be >= 2, got {side}")
    num_qubits = side * side
    edges = []
    positions = {}
    for row in range(side):
        for col in range(side):
            q = row * side + col
            positions[q] = (float(col), float(row))
            if col + 1 < side:
                edges.append((q, q + 1))
            if row + 1 < side:
                edges.append((q, q + side))
    edges = sorted((min(a, b), max(a, b)) for a, b in edges)
    return Topology(
        name="grid" if side == 5 else f"grid{side}",
        display_name="Grid",
        num_qubits=num_qubits,
        edges=edges,
        ideal_positions=positions,
        description="Quantum error correction friendly architecture",
    )
