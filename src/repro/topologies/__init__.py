"""Device connectivity topologies evaluated in the paper (Table I).

Six superconducting-device topologies, 25-127 qubits:

========== ====== ============================================
name       qubits description
========== ====== ============================================
grid       25     5x5 lattice, QEC friendly [2], [30]
falcon     27     IBM Falcon heavy-hex processor [31]
eagle      127    IBM Eagle heavy-hex processor [31]
aspen11    40     Rigetti Aspen-11 octagon processor [32]
aspenm     80     Rigetti Aspen-M octagon processor [32]
xtree      53     Pauli-string-efficient X-tree, level 3 [33]
========== ====== ============================================

Each topology provides the coupling graph, ideal (unit-cell) qubit
coordinates, and enough geometry hints to size the substrate.  The edge
counts match the resonator totals the paper reports in Table III
(40, 28, 144, 52, 48 and 106 respectively).
"""

from repro.topologies.base import Topology
from repro.topologies.grid import grid_topology
from repro.topologies.heavy_hex import falcon_topology, eagle_topology, heavy_hex_lattice
from repro.topologies.octagon import aspen11_topology, aspenm_topology, octagon_lattice
from repro.topologies.xtree import xtree_topology
from repro.topologies.registry import get_topology, available_topologies, PAPER_TOPOLOGIES

__all__ = [
    "Topology",
    "grid_topology",
    "falcon_topology",
    "eagle_topology",
    "heavy_hex_lattice",
    "aspen11_topology",
    "aspenm_topology",
    "octagon_lattice",
    "xtree_topology",
    "get_topology",
    "available_topologies",
    "PAPER_TOPOLOGIES",
]
