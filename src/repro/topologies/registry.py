"""Topology registry: look devices up by name."""

from __future__ import annotations

from repro.topologies.base import Topology
from repro.topologies.grid import grid_topology
from repro.topologies.heavy_hex import eagle_topology, falcon_topology
from repro.topologies.octagon import aspen11_topology, aspenm_topology
from repro.topologies.xtree import xtree_topology

_BUILDERS = {
    "grid": grid_topology,
    "falcon": falcon_topology,
    "eagle": eagle_topology,
    "aspen11": aspen11_topology,
    "aspenm": aspenm_topology,
    "xtree": xtree_topology,
}

#: Topology names in the order the paper's tables present them.
PAPER_TOPOLOGIES = ["grid", "xtree", "falcon", "eagle", "aspen11", "aspenm"]


def available_topologies() -> list:
    """All registered topology names, sorted."""
    return sorted(_BUILDERS)


def get_topology(name: str) -> Topology:
    """Build a topology by registry name (case-insensitive).

    Raises ``KeyError`` with the available names when unknown.
    """
    key = name.strip().lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown topology {name!r}; available: {', '.join(available_topologies())}"
        )
    return _BUILDERS[key]()
