"""Rigetti Aspen octagon topologies: Aspen-11 (40) and Aspen-M (80).

Aspen devices tile 8-qubit octagonal rings.  Horizontally adjacent rings
are joined by two couplers between their facing sides, vertically adjacent
rings likewise.  Ring-local indices follow Rigetti's convention: index 0
at the lower-left vertex, counting counter-clockwise, so indices 1 and 2
lie on the right side and 5, 6 on the left side; 0, 7 on the bottom and
3, 4 on the top.

Edge counts match the paper's Table III resonator totals: Aspen-11 48,
Aspen-M 106.
"""

from __future__ import annotations

import math

from repro.topologies.base import Topology

# Octagon-local coordinates, unit circumradius, index 0 at angle 247.5°
# counting counter-clockwise (Rigetti diagram orientation).
_OCT_ANGLES = [247.5, 292.5, 337.5, 22.5, 67.5, 112.5, 157.5, 202.5]
_RING_SPAN = 3.0  # centre-to-centre spacing between adjacent octagons


def _ring_positions(ring_col: int, ring_row: int) -> list:
    """Coordinates of one octagon's 8 qubits."""
    cx = ring_col * _RING_SPAN
    cy = ring_row * _RING_SPAN
    out = []
    for angle_deg in _OCT_ANGLES:
        theta = math.radians(angle_deg)
        out.append((cx + math.cos(theta), cy + math.sin(theta)))
    return out


def octagon_lattice(ring_cols: int, ring_rows: int) -> tuple:
    """Tile ``ring_cols`` × ``ring_rows`` octagons into an Aspen lattice.

    Returns ``(num_qubits, edges, positions)``.  Ring ``(col, row)`` holds
    qubits ``8 * (row * ring_cols + col) .. +7`` (local index order above).
    Horizontal neighbours couple local ``(2, 5)`` and ``(3, 4)`` pairs;
    vertical neighbours couple ``(4, 7)`` and ``(3, 0)`` pairs.
    """
    if ring_cols < 1 or ring_rows < 1:
        raise ValueError(f"need at least one ring, got {ring_cols}x{ring_rows}")
    edges = []
    positions = {}
    for row in range(ring_rows):
        for col in range(ring_cols):
            ring = row * ring_cols + col
            base = 8 * ring
            for local, pos in enumerate(_ring_positions(col, row)):
                positions[base + local] = pos
            # ring-internal cycle
            edges.extend(
                (base + i, base + (i + 1) % 8) for i in range(8)
            )
            # couple to the ring on the right: right side (2, 3) faces
            # the neighbour's left side (5, 4).
            if col + 1 < ring_cols:
                right = base + 8
                edges.append((base + 2, right + 5))
                edges.append((base + 3, right + 4))
            # couple to the ring above: top side (3, 4) faces the upper
            # neighbour's bottom side (0, 7).
            if row + 1 < ring_rows:
                upper = base + 8 * ring_cols
                edges.append((base + 4, upper + 7))
                edges.append((base + 3, upper + 0))
    num_qubits = 8 * ring_cols * ring_rows
    edges = sorted((min(a, b), max(a, b)) for a, b in edges)
    return (num_qubits, edges, positions)


def aspen11_topology() -> Topology:
    """40-qubit Rigetti Aspen-11 (5 octagons in a row, 48 resonators)."""
    num_qubits, edges, positions = octagon_lattice(ring_cols=5, ring_rows=1)
    if num_qubits != 40 or len(edges) != 48:
        raise AssertionError(
            f"aspen11 generator drifted: {num_qubits} qubits, {len(edges)} edges"
        )
    return Topology(
        name="aspen11",
        display_name="Aspen-11",
        num_qubits=num_qubits,
        edges=edges,
        ideal_positions=positions,
        description="Aspen-11 processor from Rigetti (octagon, 40 qubits)",
    )


def aspenm_topology() -> Topology:
    """80-qubit Rigetti Aspen-M (2 x 5 octagons, 106 resonators)."""
    num_qubits, edges, positions = octagon_lattice(ring_cols=5, ring_rows=2)
    if num_qubits != 80 or len(edges) != 106:
        raise AssertionError(
            f"aspenm generator drifted: {num_qubits} qubits, {len(edges)} edges"
        )
    return Topology(
        name="aspenm",
        display_name="Aspen-M",
        num_qubits=num_qubits,
        edges=edges,
        ideal_positions=positions,
        description="Aspen-M processor from Rigetti (octagon, 80 qubits)",
    )
