"""X-tree topology (Pauli-string-efficient architecture, level 3 [33]).

Li et al. (ISCA'21) propose tree-shaped coupling for computational
chemistry: Pauli-string circuits use CNOT trees, so a tree topology
serves them with little routing.  The level-3 X-tree used in the paper
has 53 qubits: a root, 4 level-1 children, 4 children under each of
those (16), and 2 leaves under each level-2 node (32) — 1+4+16+32 = 53
qubits and 52 resonators, matching Table III.
"""

from __future__ import annotations

import math

from repro.topologies.base import Topology


def xtree_topology(branching: tuple = (4, 4, 2)) -> Topology:
    """Build an X-tree with the given per-level branching factors.

    The default ``(4, 4, 2)`` is the paper's 53-qubit level-3 tree.
    Qubits are numbered breadth-first from the root.  Ideal positions come
    from a radial layout: level ``k`` sits on a circle of radius ``2k``,
    children spread within their parent's angular sector.
    """
    if not branching or any(b < 1 for b in branching):
        raise ValueError(f"branching factors must be positive, got {branching}")
    edges = []
    positions = {0: (0.0, 0.0)}
    # (index, sector_lo, sector_hi) for the frontier of the current level
    frontier = [(0, 0.0, 2.0 * math.pi)]
    next_index = 1
    for level, fanout in enumerate(branching, start=1):
        radius = 2.0 * level
        new_frontier = []
        for parent, lo, hi in frontier:
            span = (hi - lo) / fanout
            for k in range(fanout):
                child = next_index
                next_index += 1
                child_lo = lo + k * span
                child_hi = child_lo + span
                theta = (child_lo + child_hi) / 2.0
                positions[child] = (
                    radius * math.cos(theta),
                    radius * math.sin(theta),
                )
                edges.append((parent, child))
                new_frontier.append((child, child_lo, child_hi))
        frontier = new_frontier
    num_qubits = next_index
    edges = sorted((min(a, b), max(a, b)) for a, b in edges)
    name = "xtree" if branching == (4, 4, 2) else "xtree" + "x".join(map(str, branching))
    return Topology(
        name=name,
        display_name="Xtree",
        num_qubits=num_qubits,
        edges=edges,
        ideal_positions=positions,
        description="Pauli-string efficient X-tree architecture, level 3",
    )
