"""Topology container shared by all device families."""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx


@dataclass
class Topology:
    """A device connectivity topology plus ideal qubit geometry.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"falcon"``.
    display_name:
        Human-readable name used in reports, e.g. ``"Falcon"``.
    num_qubits:
        Number of physical qubits.
    edges:
        Coupling pairs ``(qi, qj)`` with ``qi < qj`` — one resonator each.
    ideal_positions:
        Map qubit index → ``(x, y)`` in abstract unit-cell coordinates;
        the global placer scales these onto the substrate.
    description:
        Table I description string.
    """

    name: str
    display_name: str
    num_qubits: int
    edges: list
    ideal_positions: dict
    description: str = ""
    _graph: nx.Graph = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        seen = set()
        for qi, qj in self.edges:
            if not (0 <= qi < self.num_qubits and 0 <= qj < self.num_qubits):
                raise ValueError(f"edge ({qi},{qj}) outside 0..{self.num_qubits - 1}")
            if qi >= qj:
                raise ValueError(f"edges must be canonical (qi < qj), got ({qi},{qj})")
            if (qi, qj) in seen:
                raise ValueError(f"duplicate edge ({qi},{qj})")
            seen.add((qi, qj))
        missing = set(range(self.num_qubits)) - set(self.ideal_positions)
        if missing:
            raise ValueError(f"qubits without ideal positions: {sorted(missing)}")

    @property
    def num_edges(self) -> int:
        """Number of couplers (= resonators)."""
        return len(self.edges)

    @property
    def graph(self) -> nx.Graph:
        """The coupling graph (cached)."""
        if self._graph is None:
            graph = nx.Graph()
            graph.add_nodes_from(range(self.num_qubits))
            graph.add_edges_from(self.edges)
            self._graph = graph
        return self._graph

    def degree(self, qubit: int) -> int:
        """Coupling degree of a qubit."""
        return self.graph.degree[qubit]

    def neighbors(self, qubit: int) -> list:
        """Coupled qubits, sorted."""
        return sorted(self.graph.neighbors(qubit))

    def extent(self) -> tuple:
        """``(width, height)`` of the ideal coordinate bounding box."""
        xs = [p[0] for p in self.ideal_positions.values()]
        ys = [p[1] for p in self.ideal_positions.values()]
        return (max(xs) - min(xs), max(ys) - min(ys))

    def edge_length(self, qi: int, qj: int) -> float:
        """Euclidean length of a coupler in ideal coordinates."""
        xi, yi = self.ideal_positions[qi]
        xj, yj = self.ideal_positions[qj]
        return ((xi - xj) ** 2 + (yi - yj) ** 2) ** 0.5
