"""Lease-based work-stealing coordination for fleet sweeps.

The static ``--shard i/n`` split assumes every worker survives the whole
sweep; one killed machine strands its shard.  The
:class:`FleetCoordinator` replaces that with dynamic scheduling: a
submitter enqueues a planned job DAG once, workers *pull* ready jobs in
small leased batches, and the coordinator re-queues any job whose lease
expires without a heartbeat — a dead or hung worker costs one lease TTL,
not the sweep.

The protocol (served by ``repro serve-cache --fleet`` next to the
artifact endpoints; see :mod:`repro.orchestration.cache_server`):

=====================================  ====================================
``POST /v1/fleet/enqueue``             register a job DAG (idempotent)
``POST /v1/fleet/lease``               lease up to N ready jobs (TTL'd)
``POST /v1/fleet/heartbeat``           extend a worker's leases
``POST /v1/fleet/complete``            report computed/cached/failed/released
``GET  /v1/fleet/status``              progress counters + ledgers
=====================================  ====================================

Scheduling invariants (the hypothesis lease-lifecycle suite pins them):

* a job is never leased to two workers concurrently — an expired lease
  is revoked (and logged as a ``LeaseExpired`` failure) before the job
  becomes leasable again;
* a job is only leased once every dependency is done, so a worker can
  always read its dependency payloads from the shared artifact store;
* no job is ever lost: every enqueued job ends ``done`` or — after its
  attempt budget is spent — permanently ``failed``, with dependents of
  a failed job failed in cascade (``UpstreamFailed``) so a watcher
  polling :meth:`FleetCoordinator.status` always terminates.

Jobs are content-addressed (the same keys the artifact store uses), so
the scheduler is naturally idempotent: re-enqueueing a DAG is a no-op
for jobs already known, and a "late" completion from a worker whose
lease expired is accepted — the artifact it wrote is byte-identical to
the one the re-leased worker would write.  See ``docs/fleet.md``.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.orchestration.backends import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    StoreError,
    StoreUnavailable,
)
from repro.orchestration.jobs import JobGraph

#: A job's scheduling states inside the coordinator.  ``cancelled`` is
#: terminal like ``done``/``failed``: a withdrawn job never runs and
#: never counts as outstanding.
JOB_STATES = ("pending", "ready", "leased", "done", "failed", "cancelled")

#: Params echoed into ledger rows (mirrors RunStats.record's columns).
_LEDGER_PARAMS = ("topology", "engine", "benchmark", "seed")


class FleetError(RuntimeError):
    """The fleet finished, but some jobs failed permanently.

    Carries the coordinator's ``failures`` ledger (one JSON-safe entry
    per failed attempt / expired lease, same rows as the run manifest's
    ``jobs.failures``) so a fleet abort is as attributable as a local
    :class:`~repro.orchestration.executor.JobFailure`.
    """

    def __init__(self, message: str, failures: Optional[list] = None) -> None:
        super().__init__(message)
        self.failures = list(failures or [])


def serialize_graph(graph: JobGraph) -> List[dict]:
    """A job graph as the JSON-safe rows ``enqueue`` accepts.

    Each row carries the dependency *kinds* next to the keys so a worker
    can fetch dependency payloads from the artifact store (backends are
    addressed by ``(kind, key)``) without holding the whole plan.
    """
    rows = []
    for job in graph.ordered():
        rows.append(
            {
                "kind": job.kind,
                "key": job.key,
                "params": job.params,
                "deps": list(job.deps),
                "dep_kinds": [graph[d].kind for d in job.deps],
            }
        )
    return rows


@dataclass
class _FleetJob:
    """One job's scheduling record inside the coordinator."""

    kind: str
    key: str
    params: dict
    deps: list
    dep_kinds: list
    state: str = "pending"
    attempts: int = 0  # lease grants consumed so far
    worker: Optional[str] = None  # current lease holder
    deadline: Optional[float] = None  # lease expiry (coordinator clock)
    result: Optional[str] = None  # "computed" | "cached" once done

    def to_wire(self) -> dict:
        """The lease-response form a worker executes from."""
        return {
            "kind": self.kind,
            "key": self.key,
            "params": self.params,
            "deps": self.deps,
            "dep_kinds": self.dep_kinds,
            "attempt": self.attempts,
        }

    def ledger_row(self) -> dict:
        row = {"key": self.key, "kind": self.kind}
        for name in _LEDGER_PARAMS:
            row[name] = self.params.get(name)
        row["status"] = self.result
        row["worker"] = self.worker
        return row


class FleetCoordinator:
    """In-memory lease scheduler over a content-addressed job DAG.

    Thread-safe (one lock; served by the threading cache server).  Time
    is injectable for tests (``clock`` must be monotonic).  Lease expiry
    is evaluated lazily on every API call — no background reaper thread,
    so a test can drive the full expire/re-lease cycle deterministically
    by advancing its fake clock.

    ``lease_ttl_s`` is how long a worker may go without a heartbeat
    before its leases are revoked; ``max_attempts`` is the per-job lease
    budget (a lease that expires or fails consumes one attempt; a
    ``released`` job — graceful drain — refunds its attempt).
    """

    def __init__(
        self,
        lease_ttl_s: float = 60.0,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive, got {lease_ttl_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_ttl_s = lease_ttl_s
        self.max_attempts = max_attempts
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs = {}  # guarded-by: _lock — key -> _FleetJob, topo order
        self._dependents = {}  # guarded-by: _lock — key -> [dependents]
        self._waiting = {}  # guarded-by: _lock — key -> unfinished deps
        self._workers = {}  # guarded-by: _lock — worker id -> last seen
        self.failures = []  # guarded-by: _lock — failure ledger rows
        self.entries = []  # guarded-by: _lock — completion ledger rows

    # -- internals (lock held) --------------------------------------------
    def _record_failure(  # holds: _lock
        self, job: _FleetJob, error_type: str, error: str,
        worker: Optional[str], traceback_text: Optional[str] = None,
    ) -> None:
        self.failures.append(
            {
                "key": job.key,
                "kind": job.kind,
                "topology": job.params.get("topology"),
                "error_type": error_type,
                "error": error,
                "traceback": traceback_text or "",
                "attempt": job.attempts,
                "worker": worker,
            }
        )

    def _fail_permanently(self, job: _FleetJob) -> None:  # holds: _lock
        """Mark a job failed and cascade to its transitive dependents."""
        stack = [job.key]
        first = True
        while stack:
            key = stack.pop()
            record = self._jobs[key]
            if record.state in ("done", "failed", "cancelled"):
                continue
            record.state = "failed"
            record.worker = None
            record.deadline = None
            if not first:
                self._record_failure(
                    record,
                    "UpstreamFailed",
                    f"dependency {job.kind} {job.key[:12]} failed permanently",
                    worker=None,
                )
            first = False
            stack.extend(self._dependents.get(key, ()))

    def _release_dependents(self, key: str) -> None:  # holds: _lock
        for dep_key in self._dependents.get(key, ()):
            child = self._jobs[dep_key]
            self._waiting[dep_key] -= 1
            if self._waiting[dep_key] == 0 and child.state == "pending":
                child.state = "ready"

    def _requeue(self, job: _FleetJob) -> None:  # holds: _lock
        """Put a revoked/failed lease back on the queue or fail it."""
        job.worker = None
        job.deadline = None
        if job.attempts >= self.max_attempts:
            self._fail_permanently(job)
        else:
            job.state = "ready"

    def _expire(self, now: float) -> int:  # holds: _lock
        """Revoke expired leases; returns how many were revoked."""
        expired = 0
        for job in self._jobs.values():
            if job.state == "leased" and job.deadline is not None \
                    and job.deadline < now:
                expired += 1
                self._record_failure(
                    job,
                    "LeaseExpired",
                    f"lease expired after {self.lease_ttl_s:g}s without a "
                    f"heartbeat from worker {job.worker!r}",
                    worker=job.worker,
                )
                self._requeue(job)
        return expired

    def _counts(self) -> dict:  # holds: _lock
        counts = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            counts[job.state] += 1
        counts["total"] = len(self._jobs)
        counts["outstanding"] = (
            counts["total"]
            - counts["done"]
            - counts["failed"]
            - counts["cancelled"]
        )
        return counts

    def _select_ready(self, max_jobs: int) -> List[_FleetJob]:  # holds: _lock
        """The ready jobs to lease next, in insertion (= topo) order.

        The single scheduling-policy override point: the multi-tenant
        job service's fair scheduler replaces this with a round-robin
        pick across runs without re-implementing lease bookkeeping.
        """
        granted: List[_FleetJob] = []
        for job in self._jobs.values():
            if len(granted) >= max_jobs:
                break
            if job.state == "ready":
                granted.append(job)
        return granted

    # -- the five fleet verbs ---------------------------------------------
    def enqueue(self, jobs: List[dict]) -> dict:
        """Register a job DAG; idempotent by content key.

        ``jobs`` are :func:`serialize_graph` rows in topological order
        (dependencies must appear before dependents, or already be
        known).  Jobs already registered are skipped — two submitters
        enqueueing overlapping DAGs share the overlap's work.
        """
        with self._lock:
            accepted = known = resurrected = 0
            for row in jobs:
                key = row["key"]
                existing = self._jobs.get(key)
                if existing is not None:
                    if existing.state == "cancelled":
                        # A withdrawn job a new submitter wants again:
                        # bring it back with a fresh attempt budget.
                        # Rows arrive in topo order, so cancelled deps
                        # were resurrected just above; the _dependents
                        # edges from the original registration are
                        # still in place (cancellation never removes
                        # them), only _waiting needs recomputing.
                        unfinished = [
                            d for d in existing.deps
                            if self._jobs[d].state != "done"
                        ]
                        self._waiting[key] = len(unfinished)
                        existing.state = "pending" if unfinished else "ready"
                        existing.attempts = 0
                        existing.worker = None
                        existing.deadline = None
                        resurrected += 1
                    else:
                        known += 1
                    continue
                deps = list(row.get("deps", ()))
                for dep in deps:
                    if dep not in self._jobs:
                        raise ValueError(
                            f"job {row['kind']}:{key[:12]} depends on "
                            f"unknown job {dep[:12]} (enqueue DAGs in "
                            "topological order)"
                        )
                job = _FleetJob(
                    kind=row["kind"],
                    key=key,
                    params=row.get("params", {}),
                    deps=deps,
                    dep_kinds=list(
                        row.get("dep_kinds")
                        or (self._jobs[d].kind for d in deps)
                    ),
                )
                unfinished = [
                    d for d in deps if self._jobs[d].state != "done"
                ]
                self._waiting[key] = len(unfinished)
                for dep in unfinished:
                    self._dependents.setdefault(dep, []).append(key)
                job.state = "pending" if unfinished else "ready"
                self._jobs[key] = job
                accepted += 1
                failed_dep = next(
                    (d for d in deps if self._jobs[d].state == "failed"),
                    None,
                )
                if failed_dep is not None:
                    # Enqueued under an already-dead upstream: fail it
                    # now so a watcher never waits on the unrunnable.
                    self._record_failure(
                        job,
                        "UpstreamFailed",
                        f"dependency {failed_dep[:12]} already failed "
                        "permanently",
                        worker=None,
                    )
                    self._fail_permanently(job)
            summary = self._counts()
            summary.update(
                {
                    "accepted": accepted,
                    "known": known,
                    "resurrected": resurrected,
                }
            )
            return summary

    def lease(self, worker: str, max_jobs: int = 1) -> dict:
        """Lease up to ``max_jobs`` ready jobs to ``worker``.

        Returns ``{"jobs": [...], "lease_ttl_s": ttl, "outstanding": n}``;
        an empty ``jobs`` with ``outstanding > 0`` means "poll again"
        (work is leased out or blocked), while ``outstanding == 0``
        means the fleet is finished and the worker may exit.
        """
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {max_jobs}")
        with self._lock:
            now = self._clock()
            self._expire(now)
            self._workers[worker] = now
            granted = []
            for job in self._select_ready(max_jobs):
                job.state = "leased"
                job.worker = worker
                job.deadline = now + self.lease_ttl_s
                job.attempts += 1
                granted.append(job.to_wire())
            counts = self._counts()
            return {
                "jobs": granted,
                "lease_ttl_s": self.lease_ttl_s,
                "outstanding": counts["outstanding"],
            }

    def heartbeat(self, worker: str) -> dict:
        """Extend every lease ``worker`` still holds; returns their keys.

        A worker whose leases already expired learns that here (the
        ``keys`` it gets back no longer include the revoked jobs); it
        may keep computing them — a late completion is accepted — but
        must expect another worker to finish first.
        """
        with self._lock:
            now = self._clock()
            self._expire(now)
            self._workers[worker] = now
            held = []
            for job in self._jobs.values():
                if job.state == "leased" and job.worker == worker:
                    job.deadline = now + self.lease_ttl_s
                    held.append(job.key)
            return {"keys": held, "lease_ttl_s": self.lease_ttl_s}

    def complete(
        self,
        worker: str,
        key: str,
        status: str,
        error: Optional[dict] = None,
    ) -> dict:
        """Report the outcome of a leased job.

        ``status`` is one of ``computed`` / ``cached`` (success — the
        artifact is in the shared store), ``failed`` (the attempt
        failed; ``error`` carries ``{"error_type", "error",
        "traceback"}``), or ``released`` (graceful drain: the worker
        never started the job; its attempt is refunded).  A success is
        accepted even from a worker whose lease expired — content-
        addressed artifacts make duplicate completions byte-identical —
        and reported as ``{"result": "duplicate"}`` when the job was
        already done.
        """
        if status not in ("computed", "cached", "failed", "released"):
            raise ValueError(f"unknown completion status {status!r}")
        with self._lock:
            now = self._clock()
            self._expire(now)
            self._workers[worker] = now
            job = self._jobs.get(key)
            if job is None:
                raise ValueError(f"unknown job key {key[:12]}")
            if job.state == "done":
                return {"result": "duplicate", "outstanding":
                        self._counts()["outstanding"]}
            if job.state == "failed":
                # Permanently failed jobs stay failed: a late success
                # from an expired lease must not resurrect a DAG whose
                # dependents were already failed in cascade.
                return {"result": "already-failed", "outstanding":
                        self._counts()["outstanding"]}
            if job.state == "cancelled":
                # Withdrawn after this worker's lease expired; the run
                # that wanted the artifact is gone, so just acknowledge.
                return {"result": "cancelled", "outstanding":
                        self._counts()["outstanding"]}
            if status in ("computed", "cached"):
                job.state = "done"
                job.result = status
                job.worker = worker
                job.deadline = None
                self.entries.append(job.ledger_row())
                self._release_dependents(key)
            elif status == "failed":
                error = error or {}
                self._record_failure(
                    job,
                    error.get("error_type", "WorkerFailure"),
                    error.get("error", "worker reported failure"),
                    worker=worker,
                    traceback_text=error.get("traceback"),
                )
                self._requeue(job)
            else:  # released: graceful drain, refund the attempt
                if job.state == "leased" and job.worker == worker:
                    job.attempts = max(0, job.attempts - 1)
                    job.state = "ready"
                    job.worker = None
                    job.deadline = None
            counts = self._counts()
            return {"result": status, "outstanding": counts["outstanding"]}

    def withdraw(self, keys: List[str]) -> dict:
        """Cancel queued (pending / ready) jobs; cascades to dependents.

        A job that is already leased, done, failed or cancelled is left
        alone — cancellation never interrupts a running worker and
        never un-does a terminal state.  Dependents of a cancelled job
        are cancelled in cascade (they could never run), which keeps
        the "every job reaches a terminal state" liveness invariant
        even when a caller withdraws a non-closed key set.  Callers
        multiplexing tenants (the job service) must only withdraw keys
        no other live run needs — content-addressed DAGs make the
        shared-ness check a set intersection on the callers' side.

        Returns ``{"cancelled": n, "skipped": m, "outstanding": k}``.
        """
        with self._lock:
            now = self._clock()
            self._expire(now)
            cancelled = skipped = 0
            stack = []
            for key in keys:
                job = self._jobs.get(key)
                if job is None:
                    raise ValueError(f"unknown job key {key[:12]}")
                stack.append(key)
            # Each job is judged once: a key reached both directly and
            # through the cascade must not inflate ``skipped`` (which
            # counts jobs that were genuinely leased/terminal already).
            seen: set = set()
            while stack:
                key = stack.pop()
                if key in seen:
                    continue
                seen.add(key)
                job = self._jobs[key]
                if job.state not in ("pending", "ready"):
                    skipped += 1
                    continue
                job.state = "cancelled"
                job.worker = None
                job.deadline = None
                cancelled += 1
                stack.extend(self._dependents.get(key, ()))
            counts = self._counts()
            return {
                "cancelled": cancelled,
                "skipped": skipped,
                "outstanding": counts["outstanding"],
            }

    def status(self) -> dict:
        """Progress counters plus the completion / failure ledgers."""
        with self._lock:
            now = self._clock()
            self._expire(now)
            counts = self._counts()
            workers = {
                name: round(now - seen, 3)
                for name, seen in sorted(self._workers.items())
            }
            return {
                "counts": counts,
                "outstanding": counts["outstanding"],
                "lease_ttl_s": self.lease_ttl_s,
                "max_attempts": self.max_attempts,
                "workers": workers,  # id -> seconds since last seen
                "entries": list(self.entries),
                "failures": list(self.failures),
            }


class FleetClient:
    """HTTP client for the coordinator protocol (stdlib only).

    The five verbs of :class:`FleetCoordinator`, JSON over HTTP against
    a ``repro serve-cache --fleet`` server, with the same bounded
    retry/backoff policy remote stores use — a worker briefly unable to
    reach the coordinator backs off and retries instead of dying.
    Connection-level failures raise
    :class:`~repro.orchestration.backends.StoreUnavailable` once the
    budget is exhausted; protocol errors (a server without ``--fleet``,
    a malformed request) raise :class:`FleetError` immediately.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry or DEFAULT_RETRY_POLICY
        self._sleep = sleep
        # repro: lint-ignore[RPR001] RPC retry jitter must decorrelate
        # across workers; it never reaches a payload or content key
        self._rng = rng or random.Random()

    def _call_once(self, path: str, document: Optional[dict]) -> dict:
        # repro: lint-ignore[RPR002] fleet RPC bodies are transport, not
        # content-keyed artifacts; field order is free
        body = None if document is None else json.dumps(document).encode()
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method="GET" if document is None else "POST",
        )
        if body is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                status, payload = response.status, response.read()
        except urllib.error.HTTPError as exc:
            status, payload = exc.code, exc.read()
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise StoreUnavailable(
                f"coordinator {self.base_url} unreachable: {exc}"
            ) from exc
        if status in (500, 502, 503, 504, 429):
            raise StoreUnavailable(
                f"coordinator {self.base_url}{path}: HTTP {status}"
            )
        try:
            parsed = json.loads(payload.decode("utf-8"))
        except ValueError:
            raise StoreError(
                f"coordinator {self.base_url}{path}: invalid JSON response"
            ) from None
        if status != 200:
            raise FleetError(
                f"coordinator {self.base_url}{path}: HTTP {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def _call(self, path: str, document: Optional[dict] = None) -> dict:
        failures = 0
        while True:
            try:
                return self._call_once(path, document)
            except StoreUnavailable:
                failures += 1
                if failures >= self.retry.attempts:
                    raise
                self._sleep(self.retry.delay_s(failures, self._rng))

    def enqueue(self, jobs: List[dict]) -> dict:
        """Register a serialized DAG (see :func:`serialize_graph`)."""
        return self._call("/v1/fleet/enqueue", {"jobs": jobs})

    def lease(self, worker: str, max_jobs: int = 1) -> dict:
        """Lease up to ``max_jobs`` ready jobs."""
        return self._call(
            "/v1/fleet/lease", {"worker": worker, "max_jobs": max_jobs}
        )

    def heartbeat(self, worker: str) -> dict:
        """Extend the worker's leases."""
        return self._call("/v1/fleet/heartbeat", {"worker": worker})

    def complete(
        self,
        worker: str,
        key: str,
        status: str,
        error: Optional[dict] = None,
    ) -> dict:
        """Report one job's outcome."""
        document = {"worker": worker, "key": key, "status": status}
        if error is not None:
            document["error"] = error
        return self._call("/v1/fleet/complete", document)

    def withdraw(self, keys: List[str]) -> dict:
        """Cancel queued jobs (see :meth:`FleetCoordinator.withdraw`)."""
        return self._call("/v1/fleet/withdraw", {"keys": keys})

    def status(self) -> dict:
        """The coordinator's progress counters and ledgers."""
        return self._call("/v1/fleet/status")


class LocalFleetClient:
    """The fleet-client protocol bound to an in-process coordinator.

    :func:`~repro.orchestration.worker.run_worker` accepts any object
    speaking enqueue/lease/heartbeat/complete/status; this adapter lets
    worker loops run as threads inside the same process as their
    coordinator — the job service's executor pool — with zero HTTP in
    the path and the exact same semantics the wire protocol has.
    """

    #: Mirrors :attr:`FleetClient.base_url` for manifest provenance.
    base_url = "local:"

    def __init__(self, coordinator: FleetCoordinator) -> None:
        self._coordinator = coordinator

    def enqueue(self, jobs: List[dict]) -> dict:
        return self._coordinator.enqueue(jobs)

    def lease(self, worker: str, max_jobs: int = 1) -> dict:
        return self._coordinator.lease(worker, max_jobs)

    def heartbeat(self, worker: str) -> dict:
        return self._coordinator.heartbeat(worker)

    def complete(
        self,
        worker: str,
        key: str,
        status: str,
        error: Optional[dict] = None,
    ) -> dict:
        return self._coordinator.complete(worker, key, status, error=error)

    def withdraw(self, keys: List[str]) -> dict:
        return self._coordinator.withdraw(keys)

    def status(self) -> dict:
        return self._coordinator.status()
