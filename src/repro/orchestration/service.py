"""``repro serve``: placement-as-a-service over the shared fleet stack.

The cache server gives the fleet a shared artifact store and the
coordinator gives it lease-based execution, but a client still has to
own the process pool.  The job service is the missing front door: one
process that accepts sweep submissions from many authenticated tenants,
schedules them fairly over one shared worker pool
(:class:`~repro.orchestration.scheduler.FairScheduler`) and one shared
store, and streams each run's results back incrementally.  Because
jobs are content-addressed, overlapping submissions from different
tenants compute the overlap **once** fleet-wide — each run's manifest
charges a shared job as ``computed`` to exactly one tenant and
``cached`` to every other, so the counters add up across tenants.

The HTTP protocol (everything the cache server speaks, plus):

=====================================  ==================================
``POST   /v1/run``                     submit a sweep → ``{"run_id"}``
``GET    /v1/run/<id>``                status: counts, state, failures
``GET    /v1/run/<id>/results``        result rows (``?after=N`` resumes)
``GET    /v1/run/<id>/manifest``       diff-compatible run manifest
``DELETE /v1/run/<id>``                cancel the run's queued jobs
=====================================  ==================================

**Every** endpoint — including the inherited artifact and fleet routes —
requires ``Authorization: Bearer <token>``; tokens are compared in
constant time (:func:`hmac.compare_digest`, all tokens always checked)
and may carry an expiry.  A request without a valid live token gets
``401 {"error": "unauthorized"}`` and nothing else — no path echo, no
hint which part failed.  The trusted-network ``repro serve-cache``
stays unauthenticated; run the service when the network isn't trusted
or tenants must be told apart.

Submissions are :class:`~repro.orchestration.sweep.SweepSpec` documents
(or the single-flow shorthand ``{"topology", "benchmark", "engine"}``);
planning reuses :func:`~repro.orchestration.sweep.plan_sweep`,
execution reuses the coordinator/worker stack in-process, and results
are bit-identical to a serial :func:`~repro.orchestration.sweep
.run_sweep` of the same spec.  Completed runs are persisted under
``<runs_root>/<run_id>/`` as ``results.jsonl`` + ``manifest.json``,
the same layout every other run producer writes (``repro diff`` reads
them directly).  See ``docs/service.md``.
"""

from __future__ import annotations

import hmac
import json
import os
import re
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.orchestration.backends import StoreBackend
from repro.orchestration.cache_server import CacheServer, _CacheRequestHandler
from repro.orchestration.coordinator import LocalFleetClient, serialize_graph
from repro.orchestration.executor import RunStats
from repro.orchestration.scheduler import FairScheduler
from repro.orchestration.sink import RunSink
from repro.orchestration.store import ArtifactStore
from repro.orchestration.sweep import SweepSpec, plan_sweep
from repro.orchestration.worker import run_worker

#: The states a run can report; terminal ones end a client's polling.
TERMINAL_RUN_STATES = ("done", "failed", "cancelled")

#: Fields a submitted spec document may carry (SweepSpec's surface).
_SPEC_FIELDS = (
    "topologies",
    "benchmarks",
    "engines",
    "num_seeds",
    "base_seed",
    "detailed",
    "config",
    "noise",
)

#: Fields of the single-flow shorthand.
_FLOW_FIELDS = (
    "topology",
    "benchmark",
    "engine",
    "num_seeds",
    "base_seed",
    "detailed",
    "config",
    "noise",
)

_RUN_ID_PATTERN = r"[A-Za-z0-9][A-Za-z0-9_.-]*"
_RUN_PATH = re.compile(rf"^/v1/run/({_RUN_ID_PATTERN})$")
_RESULTS_PATH = re.compile(rf"^/v1/run/({_RUN_ID_PATTERN})/results$")
_MANIFEST_PATH = re.compile(rf"^/v1/run/({_RUN_ID_PATTERN})/manifest$")


class ServiceError(RuntimeError):
    """A job-service request failed (client side)."""


@dataclass(frozen=True)
class ServiceToken:
    """One bearer token: the secret, its tenant, an optional expiry.

    ``expires_s`` is a timestamp on the *service's* clock (the
    injectable ``clock`` passed to :class:`JobService`, monotonic by
    default); ``None`` never expires.
    """

    secret: str
    tenant: str = "default"
    expires_s: Optional[float] = None


def spec_from_document(document: dict) -> SweepSpec:
    """Build a :class:`SweepSpec` from a submitted JSON document.

    Accepts either the full spec form (``topologies`` / ``benchmarks``
    / ``engines`` lists plus the optional seed/config fields) or the
    single-flow shorthand (``topology`` / ``benchmark`` / ``engine``
    strings).  Unknown fields are rejected so a typo like ``topologys``
    fails loudly instead of silently running the defaults.
    """
    if not isinstance(document, dict):
        raise ValueError("submission must be a JSON object")
    if "topology" in document:
        unknown = set(document) - set(_FLOW_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown flow fields: {', '.join(sorted(unknown))}"
            )
        for name in ("topology", "benchmark", "engine"):
            if name not in document:
                raise ValueError(f"flow submission is missing {name!r}")
        translated = {
            "topologies": (document["topology"],),
            "benchmarks": (document["benchmark"],),
            "engines": (document["engine"],),
        }
        for name in ("num_seeds", "base_seed", "detailed", "config", "noise"):
            if name in document:
                translated[name] = document[name]
        return SweepSpec(**translated)
    unknown = set(document) - set(_SPEC_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown spec fields: {', '.join(sorted(unknown))}"
        )
    for name in ("topologies", "benchmarks", "engines"):
        if not document.get(name):
            raise ValueError(f"spec is missing {name!r}")
    return SweepSpec(**{k: document[k] for k in _SPEC_FIELDS if k in document})


@dataclass
class _ServiceRun:
    """One submitted run's service-side bookkeeping."""

    run_id: str
    tenant: str
    spec: dict  # JSON-safe SweepSpec form
    cells: List[dict]  # {"topology","benchmark","engine","key"}, plan order
    num_jobs: int
    rows: List[dict] = field(default_factory=list)  # guarded-by: _runs_lock
    cells_done: int = 0  # guarded-by: _runs_lock — cells consumed into rows
    persisted: bool = False  # guarded-by: _runs_lock


class _ServiceRequestHandler(_CacheRequestHandler):
    """The cache-server protocol plus ``/v1/run``, all behind auth."""

    server_version = "repro-service/1.0"

    @property
    def service(self) -> "JobService":
        return self.server.service

    def _tenant(self) -> Optional[str]:
        """The tenant of a valid live bearer token, else None."""
        header = self.headers.get("Authorization") or ""
        if not header.startswith("Bearer "):
            return None
        return self.service.authenticate(header[len("Bearer "):])

    def _reject(self) -> None:
        # Exactly this body on every auth failure: no path echo, no
        # missing-vs-wrong-vs-expired distinction to probe.
        self._send_json(401, {"error": "unauthorized"})

    def _unknown_run(self) -> None:
        self._send_json(404, {"error": "unknown run"})

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        tenant = self._tenant()
        if tenant is None:
            self._reject()
            return
        parsed = urllib.parse.urlsplit(self.path)
        matched = _RUN_PATH.match(parsed.path)
        if matched:
            try:
                document = self.service.run_status(matched.group(1))
            except ValueError:
                self._unknown_run()
            else:
                self._send_json(200, document)
            return
        matched = _RESULTS_PATH.match(parsed.path)
        if matched:
            query = urllib.parse.parse_qs(parsed.query)
            try:
                after = int(query.get("after", ["0"])[0])
            except ValueError:
                self._bad_request("after must be an integer")
                return
            if after < 0:
                self._bad_request("after must be >= 0")
                return
            try:
                document = self.service.run_results(matched.group(1), after)
            except ValueError:
                self._unknown_run()
            else:
                self._send_json(200, document)
            return
        matched = _MANIFEST_PATH.match(parsed.path)
        if matched:
            try:
                document = self.service.run_manifest(matched.group(1))
            except ValueError:
                self._unknown_run()
            else:
                self._send_json(200, document)
            return
        _CacheRequestHandler.do_GET(self)

    def do_POST(self) -> None:  # noqa: N802
        tenant = self._tenant()
        if tenant is None:
            self._reject()
            return
        if self.path == "/v1/run":
            body = self._read_body()
            if body is None:
                return
            try:
                document = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                self._bad_request("body is not valid JSON")
                return
            try:
                reply = self.service.submit(document, tenant)
            except (KeyError, TypeError, ValueError) as exc:
                self._bad_request(f"invalid submission: {exc}")
                return
            self._send_json(200, reply)
            return
        _CacheRequestHandler.do_POST(self)

    def do_DELETE(self) -> None:  # noqa: N802
        tenant = self._tenant()
        if tenant is None:
            self._reject()
            return
        matched = _RUN_PATH.match(self.path)
        if matched:
            try:
                reply = self.service.cancel(matched.group(1))
            except ValueError:
                self._unknown_run()
            else:
                self._send_json(200, reply)
            return
        _CacheRequestHandler.do_DELETE(self)

    def do_HEAD(self) -> None:  # noqa: N802
        if self._tenant() is None:
            self._reject()
            return
        _CacheRequestHandler.do_HEAD(self)

    def do_PUT(self) -> None:  # noqa: N802
        if self._tenant() is None:
            self._reject()
            return
        _CacheRequestHandler.do_PUT(self)


class JobService:
    """A running multi-tenant job service (embeddable; used by the CLI).

    Owns the HTTP front door (a :class:`~repro.orchestration
    .cache_server.CacheServer` with the service handler), the
    :class:`~repro.orchestration.scheduler.FairScheduler`, and a pool
    of in-process worker threads pulling from it through
    :class:`~repro.orchestration.coordinator.LocalFleetClient`.  Binds
    on construction (``port=0`` → ephemeral, read back from
    :attr:`url`); serves and executes after :meth:`start`.  Usable as a
    context manager::

        tokens = [ServiceToken("s3cret", tenant="alice")]
        with JobService("dir:.repro_cache", tokens, workers=2) as service:
            client = ServiceClient(service.url, "s3cret")
            run = client.submit({"topologies": [...], ...})
            client.wait(run["run_id"])

    ``store`` may be a store URL, a backend, or an
    :class:`~repro.orchestration.store.ArtifactStore`; it must persist
    through a backend (the HTTP artifact endpoints serve it).  A store
    the service opened from a URL/backend is closed on :meth:`stop`; a
    caller-supplied :class:`ArtifactStore` stays open for the caller.
    """

    def __init__(
        self,
        store: Union[str, StoreBackend, ArtifactStore],
        tokens: Iterable[Union[str, ServiceToken]],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        runs_root: Optional[str] = None,
        lease_ttl_s: float = 60.0,
        max_attempts: int = 3,
        poll_s: float = 0.05,
        quiet: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        # workers=0 is the front-door-only mode: submissions queue but
        # nothing executes until workers attach — the acceptance tests
        # use it to pin queue-state semantics deterministically.
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        normalized: List[ServiceToken] = []
        for index, token in enumerate(tokens):
            if isinstance(token, ServiceToken):
                normalized.append(token)
            else:
                normalized.append(
                    ServiceToken(secret=token, tenant=f"tenant{index + 1}")
                )
        if not normalized:
            raise ValueError(
                "at least one bearer token is required — the service "
                "never runs unauthenticated (use serve-cache on a "
                "trusted network instead)"
            )
        self._tokens = tuple(normalized)
        self._owns_store = not isinstance(store, ArtifactStore)
        if isinstance(store, ArtifactStore):
            self.store = store
        elif isinstance(store, StoreBackend):
            self.store = ArtifactStore(backend=store)
        else:
            self.store = ArtifactStore.from_url(store)
        if self.store.backend is None:
            raise ValueError(
                "the service store must persist through a backend "
                "(the HTTP artifact endpoints serve it)"
            )
        self._clock = clock
        self.runs_root = runs_root
        self.workers = workers
        self.poll_s = poll_s
        self.scheduler = FairScheduler(
            lease_ttl_s=lease_ttl_s, max_attempts=max_attempts, clock=clock
        )
        self._cache = CacheServer(
            self.store.backend,
            host=host,
            port=port,
            quiet=quiet,
            coordinator=self.scheduler,
            handler_class=_ServiceRequestHandler,
        )
        self._cache._httpd.service = self
        self.host, self.port = self._cache.host, self._cache.port
        self._runs: Dict[str, _ServiceRun] = {}  # guarded-by: _runs_lock
        self._runs_lock = threading.Lock()
        self._seq = 0  # guarded-by: _runs_lock — run-id counter
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    @property
    def url(self) -> str:
        """The base URL tenants pass to :class:`ServiceClient`."""
        return f"http://{self.host}:{self.port}"

    # -- auth --------------------------------------------------------------
    def authenticate(self, presented: str) -> Optional[str]:
        """The tenant of a matching live token, else None.

        Every configured token is always compared (no early exit) and
        each comparison is constant-time, so response timing reveals
        neither which token matched nor how close a guess came.
        """
        presented_bytes = presented.strip().encode("utf-8")
        now = self._clock()
        tenant: Optional[str] = None
        for token in self._tokens:
            match = hmac.compare_digest(
                token.secret.encode("utf-8"), presented_bytes
            )
            live = token.expires_s is None or now < token.expires_s
            if match and live and tenant is None:
                tenant = token.tenant
        return tenant

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "JobService":
        """Start serving and executing; returns self for chaining."""
        self._cache.start()
        for index in range(self.workers):
            thread = threading.Thread(
                target=run_worker,
                kwargs={
                    "coordinator": LocalFleetClient(self.scheduler),
                    "store": self.store,
                    "worker_id": f"svc-worker-{index}",
                    "batch_size": 1,
                    "poll_s": self.poll_s,
                    "exit_when_idle": False,
                    "stop": self._stop,
                },
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Drain the workers and shut the server down; idempotent."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads = []
        self._cache.stop()
        if self._owns_store:
            self.store.close()
            self._owns_store = False

    def __enter__(self) -> "JobService":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()

    # -- the run API (called by the handler and by embedders) --------------
    def submit(self, document: dict, tenant: str) -> dict:
        """Plan and register a run; returns the submission receipt.

        ``shared_jobs`` in the receipt counts the jobs another live run
        had already enqueued — the fleet computes them once and this
        run simply consumes the artifacts.
        """
        spec = spec_from_document(document)
        plan = plan_sweep(spec)
        rows = serialize_graph(plan.graph)
        cells = [
            {"topology": t, "benchmark": b, "engine": e, "key": key}
            for (t, b, e), key in plan.cells.items()
        ]
        with self._runs_lock:
            self._seq += 1
            run_id = f"run{self._seq:04d}-{spec.spec_hash[:8]}"
        reply = self.scheduler.register_run(run_id, tenant, rows)
        with self._runs_lock:
            self._runs[run_id] = _ServiceRun(
                run_id=run_id,
                tenant=tenant,
                spec=spec.to_dict(),
                cells=cells,
                num_jobs=len(rows),
            )
        return {
            "run_id": run_id,
            "tenant": tenant,
            "num_jobs": len(rows),
            "num_cells": len(cells),
            "shared_jobs": reply["known"],
            "resurrected_jobs": reply["resurrected"],
        }

    def _get_run(self, run_id: str) -> _ServiceRun:
        with self._runs_lock:
            run = self._runs.get(run_id)
        if run is None:
            raise ValueError(f"unknown run id {run_id!r}")
        return run

    def _advance_results(self, run: _ServiceRun, snapshot: dict) -> None:
        """Consume newly finished cells into the run's result rows.

        Rows are appended strictly in plan order — a cell is consumed
        only once every cell before it is done — so incremental reads
        see a stable, deterministic prefix of the final stream, exactly
        the order a serial ``run_sweep`` would emit.  Cells whose
        payload has no samples are skipped, matching ``run_sweep``.
        """
        states = snapshot["states"]
        with self._runs_lock:
            while run.cells_done < len(run.cells):
                cell = run.cells[run.cells_done]
                if states.get(cell["key"]) != "done":
                    break
                payload = self.store.get("fidelity", cell["key"])
                if payload is None:
                    break  # store lagging the ledger: retry next poll
                run.cells_done += 1
                samples = payload["samples"]
                if not samples:
                    continue
                run.rows.append(
                    {
                        "topology": cell["topology"],
                        "benchmark": cell["benchmark"],
                        "engine": cell["engine"],
                        "mean": sum(samples) / len(samples),
                        "minimum": min(samples),
                        "maximum": max(samples),
                        "num_samples": len(samples),
                        "samples": samples,
                    }
                )

    def run_status(self, run_id: str) -> dict:
        """One run's progress: state, counts, attribution, failures."""
        run = self._get_run(run_id)
        snapshot = self.scheduler.run_snapshot(run_id)
        self._advance_results(run, snapshot)
        charged = set(snapshot["charged"])
        results = snapshot["results"]
        computed = sum(
            1
            for key in charged
            if results.get(key) == "computed"
        )
        cached = snapshot["counts"]["done"] - computed
        with self._runs_lock:
            cells_done = run.cells_done
            num_rows = len(run.rows)
        document = {
            "run_id": run_id,
            "tenant": run.tenant,
            "state": snapshot["state"],
            "counts": snapshot["counts"],
            "computed": computed,
            "cached": cached,
            "num_cells": len(run.cells),
            "cells_done": cells_done,
            "num_rows": num_rows,
            "failures": snapshot["failures"],
        }
        self._maybe_persist(run, snapshot)
        return document

    def run_results(self, run_id: str, after: int = 0) -> dict:
        """Result rows from ``after`` on, plus the resume cursor.

        ``complete=True`` means the stream is final (every cell
        consumed); a non-``done`` terminal ``state`` with
        ``complete=False`` means the stream will never finish and the
        client should stop polling.
        """
        run = self._get_run(run_id)
        snapshot = self.scheduler.run_snapshot(run_id)
        self._advance_results(run, snapshot)
        with self._runs_lock:
            rows = [dict(row) for row in run.rows[after:]]
            cursor = len(run.rows)
            complete = run.cells_done == len(run.cells)
        self._maybe_persist(run, snapshot)
        return {
            "run_id": run_id,
            "state": snapshot["state"],
            "rows": rows,
            "next": cursor,
            "complete": complete,
        }

    def run_manifest(self, run_id: str) -> dict:
        """The run's diff-compatible manifest (as persisted on disk).

        A shared job appears as ``computed`` in the manifest of the run
        it was *charged* to (the run whose fair-share slot scheduled
        it) and ``cached`` everywhere else, so summing ``jobs.computed``
        across overlapping runs counts every union job exactly once.
        """
        run = self._get_run(run_id)
        snapshot = self.scheduler.run_snapshot(run_id)
        self._advance_results(run, snapshot)
        return self._build_manifest(run, snapshot)

    def _build_manifest(self, run: _ServiceRun, snapshot: dict) -> dict:
        charged = set(snapshot["charged"])
        results = snapshot["results"]
        order = {key: i for i, key in enumerate(snapshot["states"])}
        stats = RunStats(total=snapshot["counts"]["total"])
        entries = sorted(
            snapshot["entries"], key=lambda entry: order[entry["key"]]
        )
        for entry in entries:
            key = entry["key"]
            computed = (
                key in charged and results.get(key) == "computed"
            )
            row = dict(entry)
            row["status"] = "computed" if computed else "cached"
            slot = stats.by_kind.setdefault(
                row["kind"], {"computed": 0, "cached": 0}
            )
            if computed:
                stats.computed += 1
                slot["computed"] += 1
            else:
                stats.cached += 1
                slot["cached"] += 1
            stats.entries.append(row)
        stats.failures = snapshot["failures"]
        with self._runs_lock:
            num_cells = len(run.rows)
        return {
            "run_id": run.run_id,
            "spec": run.spec,
            "shard": None,
            "workers": 0,
            "resume": True,
            "retries": None,
            "timeout_s": None,
            "service": {
                "tenant": run.tenant,
                "scheduler": "fair-round-robin",
                "lease_ttl_s": snapshot["lease_ttl_s"],
                "max_attempts": snapshot["max_attempts"],
            },
            "jobs": stats.to_dict(),
            "num_cells": num_cells,
        }

    def _maybe_persist(self, run: _ServiceRun, snapshot: dict) -> None:
        """Write results.jsonl + manifest.json once a run completes."""
        if self.runs_root is None or snapshot["state"] != "done":
            return
        with self._runs_lock:
            if run.persisted or run.cells_done < len(run.cells):
                return
            run.persisted = True
            rows = [dict(row) for row in run.rows]
        manifest = self._build_manifest(run, snapshot)
        sink = RunSink(os.path.join(self.runs_root, run.run_id))
        sink.write_results(rows)
        sink.write_manifest(manifest)

    def cancel(self, run_id: str) -> dict:
        """Cancel a run's queued jobs (shared/leased jobs keep going)."""
        self._get_run(run_id)
        return self.scheduler.cancel_run(run_id)


class ServiceClient:
    """HTTP client for the job service (stdlib only).

    Sends ``Authorization: Bearer <token>`` on every request; protocol
    and auth failures raise :class:`ServiceError` with the server's
    error message (``401`` surfaces as ``unauthorized``).
    """

    def __init__(
        self,
        base_url: str,
        token: str,
        timeout_s: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout_s = timeout_s

    def _call(
        self,
        method: str,
        path: str,
        document: Optional[dict] = None,
    ) -> dict:
        # repro: lint-ignore[RPR002] service RPC bodies are transport,
        # not content-keyed artifacts; field order is free
        body = None if document is None else json.dumps(document).encode()
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/json")
        request.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                status, payload = response.status, response.read()
        except urllib.error.HTTPError as exc:
            status, payload = exc.code, exc.read()
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServiceError(
                f"service {self.base_url} unreachable: {exc}"
            ) from exc
        try:
            parsed = json.loads(payload.decode("utf-8"))
        except ValueError:
            raise ServiceError(
                f"{method} {path}: invalid JSON response "
                f"(HTTP {status})"
            ) from None
        if status != 200:
            raise ServiceError(
                f"{method} {path}: HTTP {status}: "
                f"{parsed.get('error', 'unknown error')}"
            )
        return parsed

    def ping(self) -> dict:
        """The server's ping document (raises on bad auth)."""
        return self._call("GET", "/v1/ping")

    def submit(self, document: dict) -> dict:
        """Submit a sweep spec (or single-flow) document."""
        return self._call("POST", "/v1/run", document)

    def status(self, run_id: str) -> dict:
        """One run's progress document."""
        return self._call("GET", f"/v1/run/{run_id}")

    def results(self, run_id: str, after: int = 0) -> dict:
        """Result rows from ``after`` on (incremental streaming)."""
        return self._call(
            "GET", f"/v1/run/{run_id}/results?after={int(after)}"
        )

    def manifest(self, run_id: str) -> dict:
        """The run's diff-compatible manifest."""
        return self._call("GET", f"/v1/run/{run_id}/manifest")

    def cancel(self, run_id: str) -> dict:
        """Cancel the run's queued jobs."""
        return self._call("DELETE", f"/v1/run/{run_id}")

    def wait(
        self,
        run_id: str,
        poll_s: float = 0.2,
        timeout_s: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> dict:
        """Poll until the run reaches a terminal state; returns it.

        Raises :class:`ServiceError` when ``timeout_s`` elapses first.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while True:
            status = self.status(run_id)
            if status["state"] in TERMINAL_RUN_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"run {run_id} still {status['state']!r} after "
                    f"{timeout_s:g}s"
                )
            sleep(poll_s)


def serve_jobs(
    store_url: str,
    tokens: Iterable[Union[str, ServiceToken]],
    host: str = "127.0.0.1",
    port: int = 8766,
    workers: int = 2,
    runs_root: Optional[str] = None,
    lease_ttl_s: float = 60.0,
    max_attempts: int = 3,
    quiet: bool = False,
) -> JobService:
    """Open ``store_url`` and return a bound (not yet serving) service."""
    return JobService(
        store_url,
        tokens,
        host=host,
        port=port,
        workers=workers,
        runs_root=runs_root,
        lease_ttl_s=lease_ttl_s,
        max_attempts=max_attempts,
        quiet=quiet,
    )
