"""Dependency-aware job execution: serial, or across worker processes.

The serial executor is the reference semantics (and the debugging mode):
jobs run in graph (= topological) order in the parent process.  The
parallel executor fans ready jobs out to a
:class:`concurrent.futures.ProcessPoolExecutor`, releasing dependents as
their dependencies complete; because runners are pure functions of
(params, dependency payloads) and payloads are canonicalized JSON, both
executors produce byte-identical payload sets — scheduling only changes
wall-clock, never results.

Cache interaction: with ``resume=True``, jobs whose payload already
exists in the artifact store are not executed at all; they are counted
as *cached* in the returned :class:`RunStats` (the run-manifest counters
the resume acceptance test checks).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.orchestration.jobs import JobGraph
from repro.orchestration.stages import execute_job
from repro.orchestration.store import ArtifactStore


@dataclass
class RunStats:
    """What an executor run did: per-kind computed vs. cache-hit counts."""

    total: int = 0
    computed: int = 0
    cached: int = 0
    wall_s: float = 0.0
    by_kind: dict = field(default_factory=dict)

    def record(self, kind: str, cached: bool) -> None:
        """Count one finished job."""
        slot = self.by_kind.setdefault(kind, {"computed": 0, "cached": 0})
        if cached:
            self.cached += 1
            slot["cached"] += 1
        else:
            self.computed += 1
            slot["computed"] += 1

    def to_dict(self) -> dict:
        """JSON-safe form for the run manifest."""
        return {
            "total": self.total,
            "computed": self.computed,
            "cached": self.cached,
            "wall_s": self.wall_s,
            "by_kind": self.by_kind,
        }


class JobFailure(RuntimeError):
    """A job raised; carries the job identity for diagnostics."""

    def __init__(self, job, cause) -> None:
        super().__init__(
            f"{job.kind} job {job.key[:12]} failed "
            f"({job.params.get('topology', '?')}): {cause}"
        )
        self.job = job


def _notify(progress, job, status) -> None:
    if progress is not None:
        progress(job, status)


def run_jobs(
    graph: JobGraph,
    store: ArtifactStore,
    workers: int = 0,
    resume: bool = False,
    progress=None,
) -> tuple:
    """Execute a job graph; returns ``(results, stats)``.

    ``results`` maps job key → payload for every job in the graph, in
    graph order.  ``workers <= 1`` runs serially in-process; otherwise a
    process pool of that size is used.  ``progress`` is an optional
    callable ``(job, status)`` with status in ``{"cached", "start",
    "done"}``.
    """
    t0 = time.perf_counter()
    stats = RunStats(total=len(graph))
    results = {}
    pending = []

    for job in graph.ordered():
        payload = store.get(job.kind, job.key) if resume else None
        if payload is not None:
            results[job.key] = payload
            stats.record(job.kind, cached=True)
            _notify(progress, job, "cached")
        else:
            pending.append(job)

    if workers <= 1:
        for job in pending:
            _notify(progress, job, "start")
            deps = [results[d] for d in job.deps]
            try:
                payload = execute_job(job.kind, job.params, deps)
            except Exception as exc:
                raise JobFailure(job, exc) from exc
            results[job.key] = store.put(job.kind, job.key, payload)
            stats.record(job.kind, cached=False)
            _notify(progress, job, "done")
    else:
        _run_pool(pending, results, store, stats, workers, progress)

    stats.wall_s = time.perf_counter() - t0
    ordered = {job.key: results[job.key] for job in graph.ordered()}
    return ordered, stats


def _run_pool(pending, results, store, stats, workers, progress) -> None:
    """Fan pending jobs out to a process pool, honoring dependencies."""
    waiting_on = {}  # job key -> number of unfinished deps
    dependents = {}  # job key -> jobs waiting on it
    ready = []
    pending_keys = {job.key for job in pending}
    order_index = {job.key: i for i, job in enumerate(pending)}
    for job in pending:
        unfinished = [d for d in job.deps if d in pending_keys]
        waiting_on[job.key] = len(unfinished)
        for dep in unfinished:
            dependents.setdefault(dep, []).append(job)
        if not unfinished:
            ready.append(job)

    with ProcessPoolExecutor(max_workers=workers) as pool:
        in_flight = {}
        ready.reverse()  # pop() from the tail keeps graph order

        def submit_ready():
            while ready:
                job = ready.pop()
                deps = [results[d] for d in job.deps]
                future = pool.submit(execute_job, job.kind, job.params, deps)
                in_flight[future] = job
                _notify(progress, job, "start")

        submit_ready()
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            newly_ready = []
            for future in done:
                job = in_flight.pop(future)
                try:
                    payload = future.result()
                except Exception as exc:
                    for other in in_flight:
                        other.cancel()
                    raise JobFailure(job, exc) from exc
                results[job.key] = store.put(job.kind, job.key, payload)
                stats.record(job.kind, cached=False)
                _notify(progress, job, "done")
                for child in dependents.get(job.key, ()):
                    waiting_on[child.key] -= 1
                    if waiting_on[child.key] == 0:
                        newly_ready.append(child)
            # Unlock dependents in deterministic (graph) order.
            newly_ready.sort(key=lambda j: order_index[j.key])
            for job in reversed(newly_ready):
                ready.append(job)
            submit_ready()
