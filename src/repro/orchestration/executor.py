"""Dependency-aware job execution: serial, or across worker processes.

The serial executor is the reference semantics (and the debugging mode):
jobs run in graph (= topological) order in the parent process.  The
parallel executor fans ready jobs out to a
:class:`concurrent.futures.ProcessPoolExecutor`, releasing dependents as
their dependencies complete; because runners are pure functions of
(params, dependency payloads) and payloads are canonicalized JSON, both
executors produce byte-identical payload sets — scheduling only changes
wall-clock, never results.

Cache interaction: with ``resume=True``, jobs whose payload already
exists in the artifact store are not executed at all; they are counted
as *cached* in the returned :class:`RunStats` (the run-manifest counters
the resume acceptance test checks).
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro.orchestration.jobs import JobGraph
from repro.orchestration.stages import execute_job
from repro.orchestration.store import ArtifactStore


@dataclass
class RunStats:
    """What an executor run did: per-kind computed vs. cache-hit counts.

    ``failures`` is the run-manifest failure log: one JSON-safe entry per
    failed *attempt* (job key, kind, exception type, traceback string and
    the 1-based attempt number), so a retried-then-recovered flaky job
    still leaves its trace in the manifest, and a permanently failed job
    is fully attributable instead of vanishing into a bare exception.
    """

    total: int = 0
    computed: int = 0
    cached: int = 0
    wall_s: float = 0.0
    by_kind: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)

    def record(self, kind: str, cached: bool) -> None:
        """Count one finished job."""
        slot = self.by_kind.setdefault(kind, {"computed": 0, "cached": 0})
        if cached:
            self.cached += 1
            slot["cached"] += 1
        else:
            self.computed += 1
            slot["computed"] += 1

    def record_failure(self, job, exc: BaseException, attempt: int) -> dict:
        """Log one failed attempt; returns the failure-log entry."""
        entry = {
            "key": job.key,
            "kind": job.kind,
            "topology": job.params.get("topology"),
            "error_type": type(exc).__name__,
            "error": str(exc),
            "traceback": "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            "attempt": attempt,
        }
        self.failures.append(entry)
        return entry

    def to_dict(self) -> dict:
        """JSON-safe form for the run manifest."""
        return {
            "total": self.total,
            "computed": self.computed,
            "cached": self.cached,
            "wall_s": self.wall_s,
            "by_kind": self.by_kind,
            "failures": self.failures,
        }


class JobFailure(RuntimeError):
    """A job raised on every attempt; carries identity + failure log."""

    def __init__(self, job, cause, failures: list = None) -> None:
        super().__init__(
            f"{job.kind} job {job.key[:12]} failed "
            f"({job.params.get('topology', '?')}): {cause}"
        )
        self.job = job
        self.failures = list(failures or [])


def _notify(progress, job, status) -> None:
    if progress is not None:
        progress(job, status)


def run_jobs(
    graph: JobGraph,
    store: ArtifactStore,
    workers: int = 0,
    resume: bool = False,
    progress=None,
    retries: int = 0,
) -> tuple:
    """Execute a job graph; returns ``(results, stats)``.

    ``results`` maps job key → payload for every job in the graph, in
    graph order.  ``workers <= 1`` runs serially in-process; otherwise a
    process pool of that size is used.  ``progress`` is an optional
    callable ``(job, status)`` with status in ``{"cached", "start",
    "done"}``.  ``retries`` re-runs a failing job up to that many extra
    times before raising :class:`JobFailure`; every failed attempt is
    logged in ``stats.failures`` (and on the raised exception), so one
    flaky worker no longer kills a sweep silently.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    t0 = time.perf_counter()
    stats = RunStats(total=len(graph))
    results = {}
    pending = []

    for job in graph.ordered():
        payload = store.get(job.kind, job.key) if resume else None
        if payload is not None:
            results[job.key] = payload
            stats.record(job.kind, cached=True)
            _notify(progress, job, "cached")
        else:
            pending.append(job)

    if workers <= 1:
        for job in pending:
            _notify(progress, job, "start")
            deps = [results[d] for d in job.deps]
            for attempt in range(1, retries + 2):
                try:
                    payload = execute_job(job.kind, job.params, deps)
                    break
                except Exception as exc:
                    stats.record_failure(job, exc, attempt)
                    if attempt > retries:
                        raise JobFailure(
                            job, exc, failures=stats.failures
                        ) from exc
            results[job.key] = store.put(job.kind, job.key, payload)
            stats.record(job.kind, cached=False)
            _notify(progress, job, "done")
    else:
        _run_pool(pending, results, store, stats, workers, progress, retries)

    stats.wall_s = time.perf_counter() - t0
    ordered = {job.key: results[job.key] for job in graph.ordered()}
    return ordered, stats


def _run_pool(
    pending, results, store, stats, workers, progress, retries=0
) -> None:
    """Fan pending jobs out to a process pool, honoring dependencies.

    A failing job is resubmitted up to ``retries`` times (each failed
    attempt logged in ``stats.failures``) before the run is aborted with
    :class:`JobFailure` — so a transiently flaky *job* costs one
    resubmission, not the whole sweep.  A worker process dying abruptly
    (:class:`BrokenExecutor`) breaks the whole pool, which cannot serve
    further submissions — that aborts immediately with
    :class:`JobFailure` (carrying the failure log) rather than leaking a
    raw pool exception from the resubmission.
    """
    waiting_on = {}  # job key -> number of unfinished deps
    dependents = {}  # job key -> jobs waiting on it
    ready = []
    pending_keys = {job.key for job in pending}
    order_index = {job.key: i for i, job in enumerate(pending)}
    attempts = {}  # job key -> failed attempts so far
    for job in pending:
        unfinished = [d for d in job.deps if d in pending_keys]
        waiting_on[job.key] = len(unfinished)
        for dep in unfinished:
            dependents.setdefault(dep, []).append(job)
        if not unfinished:
            ready.append(job)

    with ProcessPoolExecutor(max_workers=workers) as pool:
        in_flight = {}
        ready.reverse()  # pop() from the tail keeps graph order

        def submit(job):
            deps = [results[d] for d in job.deps]
            future = pool.submit(execute_job, job.kind, job.params, deps)
            in_flight[future] = job

        def submit_ready():
            while ready:
                job = ready.pop()
                submit(job)
                _notify(progress, job, "start")

        submit_ready()
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            newly_ready = []
            for future in done:
                job = in_flight.pop(future)
                try:
                    payload = future.result()
                except Exception as exc:
                    attempts[job.key] = attempts.get(job.key, 0) + 1
                    stats.record_failure(job, exc, attempts[job.key])
                    retryable = attempts[job.key] <= retries and not isinstance(
                        exc, BrokenExecutor
                    )
                    if retryable:
                        try:
                            submit(job)
                        except BrokenExecutor as broken:
                            raise JobFailure(
                                job, broken, failures=stats.failures
                            ) from broken
                        continue
                    for other in in_flight:
                        other.cancel()
                    raise JobFailure(
                        job, exc, failures=stats.failures
                    ) from exc
                results[job.key] = store.put(job.kind, job.key, payload)
                stats.record(job.kind, cached=False)
                _notify(progress, job, "done")
                for child in dependents.get(job.key, ()):
                    waiting_on[child.key] -= 1
                    if waiting_on[child.key] == 0:
                        newly_ready.append(child)
            # Unlock dependents in deterministic (graph) order.
            newly_ready.sort(key=lambda j: order_index[j.key])
            for job in reversed(newly_ready):
                ready.append(job)
            submit_ready()
