"""Dependency-aware job execution: serial, or across worker processes.

The serial executor is the reference semantics (and the debugging mode):
jobs run in graph (= topological) order in the parent process.  The
parallel executor fans ready jobs out to a
:class:`concurrent.futures.ProcessPoolExecutor`, releasing dependents as
their dependencies complete; because runners are pure functions of
(params, dependency payloads) and payloads are canonicalized JSON, both
executors produce byte-identical payload sets — scheduling only changes
wall-clock, never results.

Cache interaction: with ``resume=True``, jobs whose payload already
exists in the artifact store are not executed at all; they are counted
as *cached* in the returned :class:`RunStats` (the run-manifest counters
the resume acceptance test checks).  The executor only ever speaks the
store's get/put/has API — which persistence backend sits underneath
(directory, SQLite, a remote cache server, a tiered stack; see
:mod:`repro.orchestration.backends`) is invisible here, and the
backend-parity suite holds every backend to byte-identical results.

Wall-clock control: ``timeout_s`` bounds each job *attempt*.  The job is
executed in a forked child process the parent can actually terminate, so
a hung solver or runaway stage cannot wedge a sweep; a timed-out attempt
raises :class:`JobTimeout` and flows through the same retry / failure-log
plumbing as any other job exception.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.orchestration.jobs import Job, JobGraph
from repro.orchestration.stages import execute_job
from repro.orchestration.store import ArtifactStore


@dataclass
class RunStats:
    """What an executor run did: per-kind computed vs. cache-hit counts.

    ``entries`` is the per-job ledger written into the run manifest: one
    JSON-safe row per finished job (key, kind, the identifying params and
    whether it was computed or a cache hit).  ``repro diff`` compares two
    manifests through these rows to report added / removed / recomputed
    jobs between runs.

    ``failures`` is the run-manifest failure log: one JSON-safe entry per
    failed *attempt* (job key, kind, exception type, traceback string and
    the 1-based attempt number), so a retried-then-recovered flaky job
    still leaves its trace in the manifest, and a permanently failed job
    is fully attributable instead of vanishing into a bare exception.
    """

    total: int = 0
    computed: int = 0
    cached: int = 0
    wall_s: float = 0.0
    by_kind: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    entries: list = field(default_factory=list)

    def record(self, job: Job, cached: bool) -> None:
        """Count one finished job and append its manifest ledger row."""
        slot = self.by_kind.setdefault(job.kind, {"computed": 0, "cached": 0})
        if cached:
            self.cached += 1
            slot["cached"] += 1
        else:
            self.computed += 1
            slot["computed"] += 1
        self.entries.append(
            {
                "key": job.key,
                "kind": job.kind,
                "topology": job.params.get("topology"),
                "engine": job.params.get("engine"),
                "benchmark": job.params.get("benchmark"),
                "seed": job.params.get("seed"),
                "status": "cached" if cached else "computed",
            }
        )

    def record_failure(
        self, job: Job, exc: BaseException, attempt: int
    ) -> dict:
        """Log one failed attempt; returns the failure-log entry."""
        # A timeout-wrapped job's exception crossed a process boundary,
        # where tracebacks don't pickle; the child formatted its own and
        # attached it so the log still points at the failing stage frame.
        formatted = getattr(exc, "remote_traceback", None) or "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        entry = {
            "key": job.key,
            "kind": job.kind,
            "topology": job.params.get("topology"),
            "error_type": type(exc).__name__,
            "error": str(exc),
            "traceback": formatted,
            "attempt": attempt,
        }
        self.failures.append(entry)
        return entry

    def to_dict(self) -> dict:
        """JSON-safe form for the run manifest."""
        return {
            "total": self.total,
            "computed": self.computed,
            "cached": self.cached,
            "wall_s": self.wall_s,
            "by_kind": self.by_kind,
            "failures": self.failures,
            "entries": self.entries,
        }


class JobFailure(RuntimeError):
    """A job failed on every allowed attempt and the run was aborted.

    Raised by :func:`run_jobs` (and therefore by
    :func:`~repro.orchestration.sweep.run_sweep` and the CLI commands
    built on it) once a job has exhausted ``retries`` extra attempts.
    Attributes:

    * ``job`` — the failing :class:`~repro.orchestration.jobs.Job`
      (kind, content key, params), so the failure is attributable without
      parsing the message;
    * ``failures`` — the run's accumulated failure log, one JSON-safe
      entry per failed attempt (the same rows a successful run would have
      written to the manifest's ``jobs.failures``; no manifest is written
      on an aborted run, so the log rides on the exception instead).

    Timed-out attempts (see ``timeout_s``) appear in the log with
    ``error_type: "JobTimeout"``.
    """

    def __init__(
        self,
        job: Job,
        cause: object,
        failures: Optional[list] = None,
    ) -> None:
        super().__init__(
            f"{job.kind} job {job.key[:12]} failed "
            f"({job.params.get('topology', '?')}): {cause}"
        )
        self.job = job
        self.failures = list(failures or [])


class JobTimeout(RuntimeError):
    """One job attempt exceeded the run's ``timeout_s`` wall-clock budget."""


def _child_execute(
    conn: multiprocessing.connection.Connection,
    kind: str,
    params: dict,
    deps: list,
) -> None:
    """Child-process entry point for timeout-bounded execution.

    Sends ``("ok", payload)`` or ``("error", exception, traceback_str)``
    over the pipe — tracebacks don't pickle, so the child formats its own
    and the parent re-attaches it for the failure log.  Runs the
    module-global ``execute_job`` so test monkeypatching (with the
    default fork start method) behaves exactly like the serial path.
    """
    try:
        payload = execute_job(kind, params, deps)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        formatted = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        try:
            conn.send(("error", exc, formatted))
        except Exception:
            # Unpicklable exception: forward type + message instead.
            conn.send(
                (
                    "error",
                    RuntimeError(f"{type(exc).__name__}: {exc}"),
                    formatted,
                )
            )
    else:
        conn.send(("ok", payload))
    finally:
        conn.close()


def execute_job_with_timeout(
    kind: str, params: dict, deps: list, timeout_s: float
) -> dict:
    """Run one job in a child process, killing it after ``timeout_s``.

    ``ProcessPoolExecutor`` cannot interrupt a running task, so the only
    honest wall-clock bound is a dedicated child process the caller owns:
    the job runs in a fork, the parent waits on a pipe with a deadline,
    and on expiry the child is terminated and :class:`JobTimeout` raised.
    Job exceptions are forwarded with their original type so the failure
    log stays as attributable as the in-process path.  Runners are pure
    and payloads canonicalized, so the extra process hop cannot change
    results — only enforce the deadline.
    """
    ctx = multiprocessing.get_context()
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_child_execute, args=(send, kind, params, deps))
    proc.start()
    send.close()
    try:
        if not recv.poll(timeout_s):
            raise JobTimeout(
                f"{kind} job exceeded --timeout-s {timeout_s:g}s wall clock"
            )
        try:
            message = recv.recv()
        except EOFError:
            raise RuntimeError(
                f"{kind} job process died without a result"
            ) from None
    finally:
        if proc.is_alive():
            proc.terminate()
        proc.join()
        recv.close()
    if message[0] == "ok":
        return message[1]
    _status, exc, formatted = message
    exc.remote_traceback = formatted
    raise exc


def _notify(
    progress: Optional[Callable], job: Job, status: str
) -> None:
    if progress is not None:
        progress(job, status)


def run_jobs(
    graph: JobGraph,
    store: ArtifactStore,
    workers: int = 0,
    resume: bool = False,
    progress: Optional[Callable] = None,
    retries: int = 0,
    timeout_s: Optional[float] = None,
) -> tuple:
    """Execute a job graph; returns ``(results, stats)``.

    ``results`` maps job key → payload for every job in the graph, in
    graph order.  ``workers <= 1`` runs serially in-process; otherwise a
    process pool of that size is used.  ``progress`` is an optional
    callable ``(job, status)`` with status in ``{"cached", "start",
    "done"}``.  ``retries`` re-runs a failing job up to that many extra
    times before raising :class:`JobFailure`; every failed attempt is
    logged in ``stats.failures`` (and on the raised exception), so one
    flaky worker no longer kills a sweep silently.  ``timeout_s`` bounds
    each job *attempt*'s wall clock (``None`` = unbounded): the job runs
    in a terminatable child process and an expired attempt raises
    :class:`JobTimeout`, which counts as a failed attempt for ``retries``.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    t0 = time.perf_counter()
    stats = RunStats(total=len(graph))
    results = {}
    pending = []

    ordered = graph.ordered()
    if resume:
        # One batched pass warms the store's memory layer, so the
        # per-job gets below are memory reads — against a remote
        # backend the resume check costs ceil(N / batch_size) round
        # trips instead of one per job.
        store.prefetch([(job.kind, job.key) for job in ordered])
    for job in ordered:
        payload = store.get(job.kind, job.key) if resume else None
        if payload is not None:
            results[job.key] = payload
            stats.record(job, cached=True)
            _notify(progress, job, "cached")
        else:
            pending.append(job)

    if workers <= 1:
        for job in pending:
            _notify(progress, job, "start")
            deps = [results[d] for d in job.deps]
            for attempt in range(1, retries + 2):
                try:
                    if timeout_s is None:
                        payload = execute_job(job.kind, job.params, deps)
                    else:
                        payload = execute_job_with_timeout(
                            job.kind, job.params, deps, timeout_s
                        )
                    break
                except Exception as exc:
                    stats.record_failure(job, exc, attempt)
                    if attempt > retries:
                        raise JobFailure(
                            job, exc, failures=stats.failures
                        ) from exc
            results[job.key] = store.put(job.kind, job.key, payload)
            stats.record(job, cached=False)
            _notify(progress, job, "done")
    else:
        _run_pool(
            pending, results, store, stats, workers, progress, retries,
            timeout_s,
        )

    stats.wall_s = time.perf_counter() - t0
    # Pool completion order is scheduling-dependent; the manifest ledger
    # must not be, so entries are normalized to graph order.
    order = {job.key: index for index, job in enumerate(graph.ordered())}
    stats.entries.sort(key=lambda entry: order[entry["key"]])
    ordered = {job.key: results[job.key] for job in graph.ordered()}
    return ordered, stats


def _run_pool(
    pending: List[Job],
    results: Dict[str, dict],
    store: ArtifactStore,
    stats: RunStats,
    workers: int,
    progress: Optional[Callable],
    retries: int = 0,
    timeout_s: Optional[float] = None,
) -> None:
    """Fan pending jobs out to a process pool, honoring dependencies.

    A failing job is resubmitted up to ``retries`` times (each failed
    attempt logged in ``stats.failures``) before the run is aborted with
    :class:`JobFailure` — so a transiently flaky *job* costs one
    resubmission, not the whole sweep.

    A pool worker dying abruptly (SIGKILL, OOM — surfacing as
    :class:`BrokenExecutor` / ``BrokenProcessPool``) poisons the whole
    pool: every in-flight future fails with it, and the pool cannot
    serve further submissions.  That no longer aborts the run: each
    in-flight job gets a failure-log entry, the dead pool is torn down
    and a fresh one built, and the jobs are resubmitted to continue the
    remaining DAG.  Because the breakage cannot be attributed to one
    job, every in-flight job's attempt budget is stretched by one grace
    attempt (``retries + 1`` pool-break failures allowed) — so a
    ``retries=0`` sweep survives a killed worker, while a job that
    *deterministically* kills its worker still exhausts the budget and
    aborts with :class:`JobFailure` instead of rebuilding forever.

    With ``timeout_s`` set, each pool worker runs the job through
    :func:`execute_job_with_timeout` — the deadline is enforced inside
    the worker (pool workers are non-daemonic and may fork), and a
    :class:`JobTimeout` propagates through the future like any other job
    exception, so retries and the failure log behave identically.
    """
    waiting_on = {}  # job key -> number of unfinished deps
    dependents = {}  # job key -> jobs waiting on it
    ready = []
    pending_keys = {job.key for job in pending}
    order_index = {job.key: i for i, job in enumerate(pending)}
    attempts = {}  # job key -> failed attempts so far
    for job in pending:
        unfinished = [d for d in job.deps if d in pending_keys]
        waiting_on[job.key] = len(unfinished)
        for dep in unfinished:
            dependents.setdefault(dep, []).append(job)
        if not unfinished:
            ready.append(job)

    pool = ProcessPoolExecutor(max_workers=workers)
    in_flight = {}
    ready.reverse()  # pop() from the tail keeps graph order

    def requeue_or_abort(job: Job, exc: BaseException) -> None:
        """Log one pool-break failure; requeue within the grace budget."""
        attempts[job.key] = attempts.get(job.key, 0) + 1
        stats.record_failure(job, exc, attempts[job.key])
        if attempts[job.key] > retries + 1:
            raise JobFailure(job, exc, failures=stats.failures) from exc
        ready.append(job)

    def rebuild_pool(job: Job, exc: BaseException) -> None:
        """The pool is poisoned: requeue everything, build a fresh one."""
        nonlocal pool
        requeue_or_abort(job, exc)
        # Every other in-flight future is doomed with the same pool;
        # requeue them now rather than harvesting N copies of the error.
        for victim in list(in_flight.values()):
            requeue_or_abort(victim, exc)
        in_flight.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=workers)

    def submit(job: Job) -> None:
        deps = [results[d] for d in job.deps]
        if timeout_s is None:
            future = pool.submit(execute_job, job.kind, job.params, deps)
        else:
            future = pool.submit(
                execute_job_with_timeout,
                job.kind,
                job.params,
                deps,
                timeout_s,
            )
        in_flight[future] = job

    def submit_ready() -> None:
        while ready:
            job = ready.pop()
            try:
                submit(job)
            except BrokenExecutor as exc:
                # The pool died between wait rounds; rebuild and keep
                # draining ready — the next submit goes to the new pool.
                rebuild_pool(job, exc)
                continue
            _notify(progress, job, "start")

    try:
        submit_ready()
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            newly_ready = []
            for future in done:
                job = in_flight.pop(future, None)
                if job is None:
                    continue  # requeued when an earlier future broke the pool
                try:
                    payload = future.result()
                except BrokenExecutor as exc:
                    rebuild_pool(job, exc)
                    continue
                except Exception as exc:
                    attempts[job.key] = attempts.get(job.key, 0) + 1
                    stats.record_failure(job, exc, attempts[job.key])
                    if attempts[job.key] <= retries:
                        ready.append(job)  # resubmitted by submit_ready
                        continue
                    for other in in_flight:
                        other.cancel()
                    raise JobFailure(
                        job, exc, failures=stats.failures
                    ) from exc
                results[job.key] = store.put(job.kind, job.key, payload)
                stats.record(job, cached=False)
                _notify(progress, job, "done")
                for child in dependents.get(job.key, ()):
                    waiting_on[child.key] -= 1
                    if waiting_on[child.key] == 0:
                        newly_ready.append(child)
            # Unlock dependents in deterministic (graph) order.
            newly_ready.sort(key=lambda j: order_index[j.key])
            for job in reversed(newly_ready):
                ready.append(job)
            submit_ready()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
