"""Disk-backed artifact store for stage outputs.

Artifacts are JSON documents addressed by job key.  The store keeps an
in-memory layer for the current run and, when given a root directory
(``.repro_cache/`` by convention), persists every payload to
``<root>/<kind>/<key>.json`` with an atomic write (tmp file + rename), so
interrupted sweeps never leave half-written artifacts and a ``--resume``
run picks up exactly where the previous one stopped.

Payloads are canonicalized through a JSON round trip on ``put`` so the
in-memory and on-disk representations are byte-for-byte the same thing:
a job consuming a freshly computed payload sees exactly what it would
have read back from disk (floats round-trip exactly; dict insertion
order is preserved).
"""

from __future__ import annotations

import json
import os
import tempfile


class ArtifactStore:
    """JSON artifact cache: in-memory, optionally persisted under ``root``.

    The store is the cache behind ``--resume`` / ``--cache-dir``:
    payloads are addressed by job content key (``has`` / ``get`` /
    ``put``), live in memory for the current run, and — when ``root`` is
    given — persist to ``<root>/<kind>/<key>.json`` via atomic writes.
    Every client that shares a ``root`` shares the artifacts: a sweep, a
    ``repro tables`` regeneration and a sharded run on another machine
    all hit the same files for the same job keys.

    The API is deliberately just get/put/has over JSON documents so
    alternative backends (an object store, a shared filesystem, a
    content-addressed service) can slot in without touching the executor.
    ``put`` returns the canonicalized (JSON round-trip) payload, and
    callers must use that returned form — it is byte-identical to what a
    later ``get`` would read back from disk.
    """

    def __init__(self, root: str = None) -> None:
        self.root = root
        self._memory = {}
        if root is not None:
            os.makedirs(root, exist_ok=True)

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, kind, f"{key}.json")

    def has(self, kind: str, key: str) -> bool:
        """True when an artifact exists in memory or on disk."""
        if key in self._memory:
            return True
        return self.root is not None and os.path.exists(self._path(kind, key))

    def get(self, kind: str, key: str):
        """Load an artifact payload, or None when absent."""
        if key in self._memory:
            return self._memory[key]
        if self.root is None:
            return None
        path = self._path(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        self._memory[key] = payload
        return payload

    def put(self, kind: str, key: str, payload) -> dict:
        """Store a payload; returns the canonicalized (JSON round-trip) form."""
        text = json.dumps(payload)
        canonical = json.loads(text)
        self._memory[key] = canonical
        if self.root is not None:
            path = self._path(kind, key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(text)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        return canonical
