"""The artifact store: an in-memory layer over a pluggable backend.

Artifacts are JSON documents addressed by job key.  The store keeps an
in-memory layer for the current run and, when given a persistence
backend (see :mod:`repro.orchestration.backends`), writes every payload
through it as canonical JSON text.  The default backend is the
historical directory layout — ``<root>/<kind>/<key>.json`` under
``.repro_cache/`` by convention, atomic tmp-file + rename writes — so
``ArtifactStore(root)`` behaves exactly as it always has and existing
caches keep working; a single-file SQLite database
(``sqlite:PATH``) and a remote ``repro serve-cache``
(``http://host:port``), optionally tiered behind a local layer, slot in
through :meth:`ArtifactStore.from_url` / :func:`resolve_store` without
the executor noticing.  Interrupted sweeps never leave half-written
artifacts and a ``--resume`` run picks up exactly where the previous
one stopped, whichever backend persisted them.

Payloads are canonicalized through a JSON round trip on ``put`` so the
in-memory and persisted representations are byte-for-byte the same
thing: a job consuming a freshly computed payload sees exactly what it
would have read back from the backend (floats round-trip exactly; dict
insertion order is preserved).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.orchestration.backends import (
    DirBackend,
    RemoteHTTPBackend,
    StoreBackend,
    TieredBackend,
    backend_from_url,
)


class ArtifactStore:
    """JSON artifact cache: in-memory, optionally persisted by a backend.

    The store is the cache behind ``--resume`` / ``--cache-dir`` /
    ``--cache-url``: payloads are addressed by job content key (``has``
    / ``get`` / ``put``), live in memory for the current run, and — when
    a backend is attached — persist through it as canonical JSON text.
    Every client that shares a backend shares the artifacts: a sweep, a
    ``repro tables`` regeneration and a sharded run on another machine
    all resolve the same content keys to the same bytes, whether the
    backend is a directory, a SQLite file or a remote cache server.

    The API is deliberately just get/put/has over JSON documents, and
    the persistence contract below it (:class:`~repro.orchestration
    .backends.StoreBackend`) is get/put/has over JSON *text* — so
    alternative backends slot in without touching the executor.
    ``put`` returns the canonicalized (JSON round-trip) payload, and
    callers must use that returned form — it is byte-identical to what
    a later ``get`` would read back from any backend.

    ``ArtifactStore(root)`` keeps the historical signature: a bare
    directory path opens the byte-compatible directory backend.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        if root is not None and backend is not None:
            raise ValueError("pass either root or backend, not both")
        if root is not None:
            backend = DirBackend(root)
        self.root = root
        self.backend = backend
        self._memory = {}

    @classmethod
    def from_url(cls, url: Union[str, StoreBackend]) -> "ArtifactStore":
        """Open a store from a URL: ``dir:PATH``, ``sqlite:PATH``,
        ``http://host:port``, or a bare directory path."""
        return cls(backend=backend_from_url(url))

    def describe(self) -> str:
        """The store's URL form (``memory:`` when nothing persists)."""
        return "memory:" if self.backend is None else self.backend.describe()

    def has(self, kind: str, key: str) -> bool:
        """True when an artifact exists in memory or in the backend."""
        if key in self._memory:
            return True
        return self.backend is not None and self.backend.has(kind, key)

    def get(self, kind: str, key: str) -> Optional[dict]:
        """Load an artifact payload, or None when absent."""
        if key in self._memory:
            return self._memory[key]
        if self.backend is None:
            return None
        text = self.backend.get_text(kind, key)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            return None  # corrupt artifact: treat as a miss, recompute
        self._memory[key] = payload
        return payload

    def prefetch(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], Optional[dict]]:
        """Warm the in-memory layer for several artifacts in one pass.

        Pairs already in memory are served from it; the rest go through
        the backend's :meth:`~repro.orchestration.backends.StoreBackend
        .get_many`, which remote backends batch — a resume check over N
        artifacts costs ``ceil(N / batch_size)`` round trips instead of
        N.  Returns ``(kind, key) -> payload`` (None = absent), and a
        subsequent :meth:`get` for any returned hit is a pure memory
        read.
        """
        wanted = list(pairs)
        out: Dict[Tuple[str, str], Optional[dict]] = {}
        misses = []
        for kind, key in wanted:
            if key in self._memory:
                out[(kind, key)] = self._memory[key]
            else:
                misses.append((kind, key))
        if self.backend is None:
            out.update({pair: None for pair in misses})
            return out
        for (kind, key), text in self.backend.get_many(misses).items():
            if text is None:
                out[(kind, key)] = None
                continue
            try:
                payload = json.loads(text)
            except ValueError:
                out[(kind, key)] = None  # corrupt: miss, recompute
                continue
            self._memory[key] = payload
            out[(kind, key)] = payload
        return out

    def put(self, kind: str, key: str, payload: dict) -> dict:
        """Store a payload; returns the canonicalized (JSON round-trip) form."""
        text = json.dumps(payload)
        canonical = json.loads(text)
        self._memory[key] = canonical
        if self.backend is not None:
            self.backend.put_text(kind, key, text)
        return canonical

    def close(self) -> None:
        """Release the backend's resources (connections); idempotent."""
        if self.backend is not None:
            self.backend.close()


class TieredStore(ArtifactStore):
    """An artifact store with a fast local layer over a remote backend.

    Reads are served locally when possible; remote hits are written back
    to the local layer, and writes go to both — so a fleet of sweep
    machines behind one ``repro serve-cache`` shares a warm cache while
    repeated reads stay off the network.  Layers may be given as
    backends or store URLs::

        store = TieredStore("dir:.repro_cache", "http://cache-host:8765")
        run_sweep(spec, store=store, resume=True)

    The CLI builds exactly this when ``--cache-url http://...`` is
    combined with a ``--cache-dir`` (the default).
    """

    def __init__(
        self,
        local: Union[str, StoreBackend],
        remote: Union[str, StoreBackend],
    ) -> None:
        super().__init__(
            backend=TieredBackend(
                backend_from_url(local), backend_from_url(remote)
            )
        )


def resolve_store(
    cache_url: Optional[str] = None,
    cache_dir: Optional[str] = None,
) -> ArtifactStore:
    """Build the store the CLI flags describe.

    * Neither flag → memory-only store (``--no-cache``).
    * ``cache_dir`` only → the historical directory store.
    * ``cache_url`` of ``dir:`` / ``sqlite:`` → that backend (a local
      ``cache_dir`` would be redundant tiering over another local
      store, so it is ignored for artifacts — it still hosts run
      outputs).
    * An ``http(s)://`` ``cache_url`` *plus* a ``cache_dir`` → a
      :class:`TieredStore`: local fast layer, remote shared layer.
      Without a ``cache_dir`` the remote is used directly.
    """
    if cache_url is None:
        return ArtifactStore(cache_dir)
    backend = backend_from_url(cache_url)
    if isinstance(backend, RemoteHTTPBackend) and cache_dir is not None:
        return TieredStore(DirBackend(cache_dir), backend)
    return ArtifactStore(backend=backend)
