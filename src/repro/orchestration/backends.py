"""Pluggable persistence backends for the artifact store.

The :class:`~repro.orchestration.store.ArtifactStore` API is
deliberately just get/put/has over JSON documents; this module supplies
the persistence layer behind it as interchangeable
:class:`StoreBackend` implementations:

* :class:`DirBackend` — one ``<root>/<kind>/<key>.json`` file per
  artifact, byte-compatible with the ``.repro_cache/`` layout every
  release so far has written (atomic tmp-file + rename writes);
* :class:`SqliteBackend` — one WAL-mode SQLite database file holding
  every artifact, safe for concurrent sharded writers and free of the
  100k-inode sprawl a large sweep leaves behind as individual files;
* :class:`RemoteHTTPBackend` — a client for the tiny JSON protocol
  ``repro serve-cache`` speaks (see
  :mod:`repro.orchestration.cache_server`), so machines share one warm
  cache over the network;
* :class:`TieredBackend` — a fast local layer over a remote one:
  reads check local first and write remote hits back locally,
  writes go to both, so a fleet of sweep machines behind one
  ``serve-cache`` converges on warm local caches.

Backends move artifacts as **canonical JSON text** (the exact bytes the
store would write to disk), never re-encoding payloads, so any chain of
``push`` / ``pull`` / tiering hops is byte-preserving: the content key
always addresses the same bytes, whichever backend serves them.

``backend_from_url`` resolves the user-facing store URL schemes
(``dir:PATH``, ``sqlite:PATH``, ``http://...``; a bare path means
``dir:``), and :func:`sync_stores` copies one backend into another by
content key — the engine behind ``repro cache push`` / ``pull``.  See
``docs/storage.md``.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import tempfile
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union


class StoreError(RuntimeError):
    """A storage backend rejected or failed an operation."""


class StoreUnavailable(StoreError):
    """A remote store could not be reached (network / server down).

    Raised instead of silently treating the remote as empty: a flaky
    cache server must fail a resume loudly, not trigger a silent fleet
    recomputation of every artifact.
    """


#: HTTP statuses treated as transient server trouble, worth retrying.
RETRYABLE_HTTP_STATUSES = frozenset({429, 500, 502, 503, 504})


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for transient faults.

    ``attempts`` is the *total* number of tries (first call included);
    the delay before the n-th retry is ``base_delay_s * 2**(n-1)``
    capped at ``max_delay_s``, then shrunk by up to ``jitter`` of itself
    (decorrelated jitter: a fleet of workers hammered by the same outage
    must not retry in lockstep).  ``attempts=1`` disables retrying.
    """

    attempts: int = 5
    base_delay_s: float = 0.1
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(self, failures: int, rng: random.Random) -> float:
        """The sleep before the next try after ``failures`` failed tries."""
        delay = min(self.max_delay_s, self.base_delay_s * 2 ** (failures - 1))
        if self.jitter:
            delay *= 1.0 - self.jitter * rng.random()
        return delay


#: The default transient-fault budget for remote stores and fleet RPCs.
DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_call(
    operation: Callable,
    policy: Optional[RetryPolicy] = None,
    transient: tuple = (StoreUnavailable,),
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
    on_retry: Optional[Callable] = None,
) -> object:
    """Run ``operation()`` under ``policy``, retrying transient failures.

    Exceptions in ``transient`` are swallowed and retried with backoff
    until the policy's attempt budget is exhausted, then re-raised —
    so callers still see :class:`StoreUnavailable`, just later and only
    for genuinely persistent outages.  Any other exception propagates
    immediately.  ``on_retry(failures, exc)`` is an observability hook
    (the worker loop counts transient faults through it).
    """
    policy = policy or DEFAULT_RETRY_POLICY
    # repro: lint-ignore[RPR001] backoff jitter must decorrelate across
    # workers; it never reaches a payload or content key
    rng = rng or random.Random()
    failures = 0
    while True:
        try:
            return operation()
        except transient as exc:
            failures += 1
            if on_retry is not None:
                on_retry(failures, exc)
            if failures >= policy.attempts:
                raise
            sleep(policy.delay_s(failures, rng))


@dataclass(frozen=True)
class ArtifactEntry:
    """One stored artifact: identity plus the bookkeeping gc/stats need."""

    kind: str
    key: str
    size: int  # canonical JSON text, UTF-8 bytes
    mtime: float  # seconds since the epoch, backend-local clock


class StoreBackend(ABC):
    """The persistence contract behind :class:`ArtifactStore`.

    Implementations store canonical JSON *text* addressed by
    ``(kind, key)`` and must be safe to call from multiple threads (the
    cache server serves one backend from a threading HTTP server).
    ``get_text`` returns ``None`` for absent or unreadable artifacts;
    only genuine backend failures raise :class:`StoreError`.
    """

    @abstractmethod
    def get_text(self, kind: str, key: str) -> Optional[str]:
        """The artifact's canonical JSON text, or ``None`` when absent."""

    @abstractmethod
    def put_text(self, kind: str, key: str, text: str) -> None:
        """Store canonical JSON text (atomically / transactionally)."""

    @abstractmethod
    def has(self, kind: str, key: str) -> bool:
        """True when the artifact exists."""

    @abstractmethod
    def entries(self) -> List[ArtifactEntry]:
        """Every stored artifact (the inventory gc / stats / sync walk)."""

    @abstractmethod
    def delete(self, kind: str, key: str) -> bool:
        """Remove one artifact; True when something was deleted."""

    @abstractmethod
    def describe(self) -> str:
        """The backend's canonical store URL (``dir:...``, etc.)."""

    def get_many(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], Optional[str]]:
        """Fetch several artifacts: ``(kind, key) -> text`` (None = absent).

        The default loops over :meth:`get_text`; remote backends
        override it with a batched protocol so a resume check over N
        artifacts costs ``ceil(N / batch_size)`` round trips, not N.
        """
        return {(kind, key): self.get_text(kind, key) for kind, key in pairs}

    def has_many(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], bool]:
        """Existence probes for several artifacts at once (see get_many)."""
        return {(kind, key): self.has(kind, key) for kind, key in pairs}

    def close(self) -> None:
        """Release backend resources (connections, sockets); idempotent."""

    def __enter__(self) -> "StoreBackend":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class DirBackend(StoreBackend):
    """Directory layout: ``<root>/<kind>/<key>.json``, atomic writes.

    Byte-compatible with the historical ``.repro_cache/`` directory —
    an existing cache keeps working unchanged, and artifacts written
    through any other backend then ``repro cache push``-ed here are
    byte-identical to ones this backend wrote itself.  Run outputs under
    ``<root>/runs/<run_id>/`` live one level deeper and are therefore
    never mistaken for artifacts by :meth:`entries`.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, kind, f"{key}.json")

    def get_text(self, kind: str, key: str) -> Optional[str]:
        try:
            with open(self._path(kind, key), "r", encoding="utf-8") as fh:
                return fh.read()
        except OSError:
            return None

    def put_text(self, kind: str, key: str, text: str) -> None:
        path = self._path(kind, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def has(self, kind: str, key: str) -> bool:
        return os.path.exists(self._path(kind, key))

    def entries(self) -> List[ArtifactEntry]:
        found = []
        try:
            kinds = sorted(os.listdir(self.root))
        except OSError:
            return found
        for kind in kinds:
            kind_dir = os.path.join(self.root, kind)
            if not os.path.isdir(kind_dir):
                continue
            for name in sorted(os.listdir(kind_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(kind_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                found.append(
                    ArtifactEntry(
                        kind=kind,
                        key=name[: -len(".json")],
                        size=stat.st_size,
                        mtime=stat.st_mtime,
                    )
                )
        return found

    def delete(self, kind: str, key: str) -> bool:
        try:
            os.unlink(self._path(kind, key))
            return True
        except OSError:
            return False

    def describe(self) -> str:
        return f"dir:{self.root}"


class SqliteBackend(StoreBackend):
    """One WAL-mode SQLite database file holding every artifact.

    A large sweep stores one row per artifact instead of one inode per
    artifact, and WAL journaling with a generous busy timeout makes the
    file safe for concurrent writers **on one host** — several sweep
    processes, sharded ``repro sweep --shard i/n`` runs, or a
    ``serve-cache`` thread pool all landing on the same local database.
    WAL's shared-memory index does not work across network filesystems,
    so never point two *machines* at one ``sqlite:`` path over NFS —
    that is exactly what ``repro serve-cache`` over this backend is
    for.  A single connection guarded by a lock serves each backend
    instance (SQLite serializes writers anyway; the lock keeps one
    instance thread-safe for the HTTP server).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(  # guarded-by: _lock
            path, check_same_thread=False
        )
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS artifacts ("
                " kind TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " created_at REAL NOT NULL,"
                " PRIMARY KEY (kind, key))"
            )
            self._conn.commit()

    def get_text(self, kind: str, key: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM artifacts WHERE kind = ? AND key = ?",
                (kind, key),
            ).fetchone()
        return None if row is None else row[0]

    def put_text(self, kind: str, key: str, text: str) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO artifacts"
                " (kind, key, payload, created_at) VALUES (?, ?, ?, ?)",
                # repro: lint-ignore[RPR001] created_at is gc bookkeeping
                # (the dir backend's mtime analogue), never in a payload
                (kind, key, text, time.time()),
            )
            self._conn.commit()

    def has(self, kind: str, key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM artifacts WHERE kind = ? AND key = ?",
                (kind, key),
            ).fetchone()
        return row is not None

    def entries(self) -> List[ArtifactEntry]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT kind, key, length(CAST(payload AS BLOB)), created_at"
                " FROM artifacts ORDER BY kind, key"
            ).fetchall()
        return [
            ArtifactEntry(kind=kind, key=key, size=size, mtime=mtime)
            for kind, key, size, mtime in rows
        ]

    def delete(self, kind: str, key: str) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM artifacts WHERE kind = ? AND key = ?",
                (kind, key),
            )
            self._conn.commit()
        return cursor.rowcount > 0

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def describe(self) -> str:
        return f"sqlite:{self.path}"


class RemoteHTTPBackend(StoreBackend):
    """Client for the ``repro serve-cache`` JSON protocol.

    The protocol is four verbs on
    ``/v1/artifact/<kind>/<key>`` (GET / HEAD / PUT / DELETE) plus
    ``GET /v1/list``, ``GET /v1/stats`` and ``GET /v1/ping`` — see
    :mod:`repro.orchestration.cache_server` and ``docs/storage.md``.
    Connection-level failures raise :class:`StoreUnavailable` (a flaky
    server must not silently look like an empty cache); HTTP 404 is the
    one *expected* error and maps to ``None`` / ``False``.

    Transient faults — connection resets, timeouts, and the 5xx / 429
    statuses in :data:`RETRYABLE_HTTP_STATUSES` — are retried under
    ``retry`` (bounded exponential backoff with jitter; see
    :class:`RetryPolicy`), so :class:`StoreUnavailable` surfaces only
    once the whole budget is exhausted: a dropped TCP connection or one
    503 from a busy cache server costs a short sleep, not a sweep.
    ``transient_failures`` counts the faults absorbed this way.

    Multi-key reads (:meth:`get_many` / :meth:`has_many`) use the
    batched ``POST /v1/artifacts/get`` / ``.../head`` protocol in
    chunks of ``batch_size``, so a fleet resume check over N artifacts
    costs ``ceil(N / batch_size)`` round trips instead of N.  A server
    predating the batch endpoints (which answers them 404 — or 400 for
    the oldest protocol revision) is detected on the first batched call
    and the backend silently degrades to per-key requests; every
    degraded multi-key call is counted in ``batch_fallbacks``, and
    ``requests`` counts HTTP round trips issued (the batch acceptance
    test pins the N → ceil(N/batch) reduction through it).

    ``token`` attaches ``Authorization: Bearer <token>`` to every
    request — required when the server is an authenticated ``repro
    serve`` service rather than a trusted-network ``serve-cache``.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        batch_size: int = 128,
        token: Optional[str] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.batch_size = batch_size
        self.token = token
        self._stats_lock = threading.Lock()
        self.transient_failures = 0  # guarded-by: _stats_lock
        self.requests = 0  # guarded-by: _stats_lock — HTTP round trips
        self.batch_fallbacks = 0  # guarded-by: _stats_lock
        self._batch_supported: Optional[bool] = None  # guarded-by: _stats_lock
        self._sleep = sleep
        # repro: lint-ignore[RPR001] retry jitter must decorrelate across
        # workers; it never reaches a payload or content key
        self._rng = rng or random.Random()

    def _artifact_url(self, kind: str, key: str) -> str:
        return (
            f"{self.base_url}/v1/artifact/"
            f"{urllib.parse.quote(kind, safe='')}/"
            f"{urllib.parse.quote(key, safe='')}"
        )

    def _request_once(
        self,
        url: str,
        method: str = "GET",
        body: Optional[bytes] = None,
    ) -> Tuple[int, bytes]:
        """One HTTP round trip; connection faults raise StoreUnavailable."""
        with self._stats_lock:
            self.requests += 1
        request = urllib.request.Request(url, data=body, method=method)
        if body is not None:
            request.add_header("Content-Type", "application/json")
        if self.token is not None:
            request.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read()
            return exc.code, detail
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise StoreUnavailable(
                f"cache server {self.base_url} unreachable: {exc}"
            ) from exc

    def _request(
        self,
        url: str,
        method: str = "GET",
        body: Optional[bytes] = None,
    ) -> Tuple[int, bytes]:
        """An HTTP round trip with the transient-fault retry budget."""
        failures = 0
        while True:
            try:
                status, payload = self._request_once(url, method, body)
            except StoreUnavailable:
                with self._stats_lock:
                    self.transient_failures += 1
                failures += 1
                if failures >= self.retry.attempts:
                    raise
            else:
                if status not in RETRYABLE_HTTP_STATUSES:
                    return status, payload
                with self._stats_lock:
                    self.transient_failures += 1
                failures += 1
                if failures >= self.retry.attempts:
                    raise StoreUnavailable(
                        f"cache server {self.base_url} still failing "
                        f"(HTTP {status}) after {failures} attempts"
                    )
            self._sleep(self.retry.delay_s(failures, self._rng))

    def get_text(self, kind: str, key: str) -> Optional[str]:
        status, body = self._request(self._artifact_url(kind, key))
        if status == 404:
            return None
        if status != 200:
            raise StoreError(
                f"GET {kind}/{key[:12]} failed: HTTP {status}"
            )
        return body.decode("utf-8")

    def put_text(self, kind: str, key: str, text: str) -> None:
        status, body = self._request(
            self._artifact_url(kind, key),
            method="PUT",
            body=text.encode("utf-8"),
        )
        if status not in (200, 204):
            raise StoreError(
                f"PUT {kind}/{key[:12]} failed: HTTP {status} "
                f"{body.decode('utf-8', 'replace')[:200]}"
            )

    def has(self, kind: str, key: str) -> bool:
        status, _body = self._request(
            self._artifact_url(kind, key), method="HEAD"
        )
        if status == 200:
            return True
        if status == 404:
            return False
        raise StoreError(f"HEAD {kind}/{key[:12]} failed: HTTP {status}")

    def _batch_request(
        self, verb: str, chunk: List[Tuple[str, str]]
    ) -> Optional[List[object]]:
        """One batched round trip; None means the server lacks the endpoint.

        ``verb`` is ``get`` or ``head``; the reply's ``items`` list is
        positional (one entry per requested pair): text-or-null for
        ``get``, booleans for ``head``.  Legacy servers answer the
        batch path with 404 (or 400 on the oldest protocol revision,
        whose POST handler rejected unknown paths wholesale); both mean
        "fall back to per-key calls", not an error.
        """
        body = json.dumps(  # repro: lint-ignore[RPR002] transport body
            {"items": [{"kind": kind, "key": key} for kind, key in chunk]}
        ).encode("utf-8")
        status, payload = self._request(
            f"{self.base_url}/v1/artifacts/{verb}", method="POST", body=body
        )
        if status in (400, 404):
            return None
        if status != 200:
            raise StoreError(
                f"POST /v1/artifacts/{verb} failed: HTTP {status}"
            )
        items = json.loads(payload.decode("utf-8"))["items"]
        if not isinstance(items, list) or len(items) != len(chunk):
            raise StoreError(
                f"batch {verb} returned {len(items)} items for "
                f"{len(chunk)} keys"
            )
        return items

    def _many(
        self, verb: str, pairs: Iterable[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], Optional[str]]:
        """Shared chunking/fallback driver for get_many and has_many.

        For ``head`` the per-pair value is the sentinel ``""`` when the
        artifact exists and None when absent (callers map to bool).
        """
        todo = list(pairs)
        out: Dict[Tuple[str, str], Optional[str]] = {}
        with self._stats_lock:
            supported = self._batch_supported
        if supported is not False:
            while todo:
                chunk = todo[: self.batch_size]
                items = self._batch_request(verb, chunk)
                if items is None:
                    with self._stats_lock:
                        self._batch_supported = False
                    break
                with self._stats_lock:
                    self._batch_supported = True
                for (kind, key), item in zip(chunk, items):
                    if verb == "head":
                        out[(kind, key)] = "" if item else None
                    elif item is None or isinstance(item, str):
                        out[(kind, key)] = item
                    else:
                        raise StoreError(
                            f"batch get returned a non-text item for "
                            f"{kind}/{key[:12]}"
                        )
                todo = todo[self.batch_size:]
        if todo:
            with self._stats_lock:
                self.batch_fallbacks += 1
        for kind, key in todo:
            if verb == "head":
                out[(kind, key)] = "" if self.has(kind, key) else None
            else:
                out[(kind, key)] = self.get_text(kind, key)
        return out

    def get_many(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], Optional[str]]:
        return self._many("get", pairs)

    def has_many(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], bool]:
        return {
            pair: value is not None
            for pair, value in self._many("head", pairs).items()
        }

    def entries(self) -> List[ArtifactEntry]:
        status, body = self._request(f"{self.base_url}/v1/list")
        if status != 200:
            raise StoreError(f"GET /v1/list failed: HTTP {status}")
        listed = json.loads(body.decode("utf-8"))["entries"]
        return [
            ArtifactEntry(
                kind=entry["kind"],
                key=entry["key"],
                size=entry["size"],
                mtime=entry["mtime"],
            )
            for entry in listed
        ]

    def delete(self, kind: str, key: str) -> bool:
        status, _body = self._request(
            self._artifact_url(kind, key), method="DELETE"
        )
        if status in (200, 204):
            return True
        if status == 404:
            return False
        raise StoreError(f"DELETE {kind}/{key[:12]} failed: HTTP {status}")

    def ping(self) -> dict:
        """The server's ``/v1/ping`` document (raises when unreachable)."""
        status, body = self._request(f"{self.base_url}/v1/ping")
        if status != 200:
            raise StoreError(f"GET /v1/ping failed: HTTP {status}")
        return json.loads(body.decode("utf-8"))

    def describe(self) -> str:
        return self.base_url


class TieredBackend(StoreBackend):
    """A fast local layer over a remote backend (read-through cache).

    * ``get_text`` serves from local when possible; a remote hit is
      written back to the local layer, so repeated reads never touch
      the network twice for the same key.
    * ``put_text`` writes to **both** layers: the machine that computed
      an artifact warms the fleet-wide cache immediately.
    * ``entries`` reports the union of both layers (the remote is
      authoritative for anything the local layer hasn't seen yet).

    ``has`` consults local first, then remote — against an *empty*
    local layer every hit is therefore proof the remote served it,
    which is exactly what the backend-parity acceptance test leans on.

    With ``degrade=True`` (the default) a remote outage that survives
    the remote's own retry budget no longer aborts the run: reads fall
    back to local-only misses, writes land in the local layer alone,
    and each skipped remote operation is counted in ``degraded_reads``
    / ``degraded_writes`` (with one ``RuntimeWarning`` the first time).
    The local layer keeps everything, so once the remote is back a
    ``repro cache push`` / :func:`sync_stores` pass re-converges the
    fleet cache — results are never wrong, only less shared.  Pass
    ``degrade=False`` to keep the strict fail-fast behavior.
    """

    def __init__(
        self,
        local: StoreBackend,
        remote: StoreBackend,
        degrade: bool = True,
    ) -> None:
        self.local = local
        self.remote = remote
        self.degrade = degrade
        # The store contract requires thread-safety (serve-cache fronts
        # one backend with a threading HTTP server), so the degradation
        # counters are guarded — unsynchronized += would drop counts.
        self._stats_lock = threading.Lock()
        self.degraded_reads = 0  # guarded-by: _stats_lock
        self.degraded_writes = 0  # guarded-by: _stats_lock
        self._warned = False  # guarded-by: _stats_lock

    @property
    def degraded_ops(self) -> int:
        """Remote operations skipped because the remote was unreachable."""
        with self._stats_lock:
            return self.degraded_reads + self.degraded_writes

    def _remote_down(self, write: bool, exc: StoreUnavailable) -> None:
        with self._stats_lock:
            if write:
                self.degraded_writes += 1
            else:
                self.degraded_reads += 1
            warn_now = not self._warned
            self._warned = True
        if warn_now:
            warnings.warn(
                f"remote store {self.remote.describe()} unreachable "
                f"({exc}); degrading to local-only operation — re-sync "
                "with `repro cache push` once it is back",
                RuntimeWarning,
                stacklevel=3,
            )

    def get_text(self, kind: str, key: str) -> Optional[str]:
        text = self.local.get_text(kind, key)
        if text is not None:
            return text
        try:
            text = self.remote.get_text(kind, key)
        except StoreUnavailable as exc:
            if not self.degrade:
                raise
            self._remote_down(write=False, exc=exc)
            return None
        if text is not None:
            self.local.put_text(kind, key, text)
        return text

    def put_text(self, kind: str, key: str, text: str) -> None:
        self.local.put_text(kind, key, text)
        try:
            self.remote.put_text(kind, key, text)
        except StoreUnavailable as exc:
            if not self.degrade:
                raise
            self._remote_down(write=True, exc=exc)

    def has(self, kind: str, key: str) -> bool:
        if self.local.has(kind, key):
            return True
        try:
            return self.remote.has(kind, key)
        except StoreUnavailable as exc:
            if not self.degrade:
                raise
            self._remote_down(write=False, exc=exc)
            return False

    def get_many(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], Optional[str]]:
        """Local first, then one batched remote fetch for the misses.

        Remote hits are written back to the local layer (same
        read-through contract as :meth:`get_text`), so a warm resume
        check costs one batch per :attr:`RemoteHTTPBackend.batch_size`
        chunk, then nothing.
        """
        wanted = list(pairs)
        out: Dict[Tuple[str, str], Optional[str]] = {}
        misses: List[Tuple[str, str]] = []
        for kind, key in wanted:
            text = self.local.get_text(kind, key)
            if text is None:
                misses.append((kind, key))
            else:
                out[(kind, key)] = text
        if misses:
            try:
                fetched = self.remote.get_many(misses)
            except StoreUnavailable as exc:
                if not self.degrade:
                    raise
                self._remote_down(write=False, exc=exc)
                fetched = {pair: None for pair in misses}
            for (kind, key), text in fetched.items():
                if text is not None:
                    self.local.put_text(kind, key, text)
                out[(kind, key)] = text
        return out

    def has_many(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], bool]:
        wanted = list(pairs)
        out: Dict[Tuple[str, str], bool] = {}
        misses: List[Tuple[str, str]] = []
        for kind, key in wanted:
            if self.local.has(kind, key):
                out[(kind, key)] = True
            else:
                misses.append((kind, key))
        if misses:
            try:
                out.update(self.remote.has_many(misses))
            except StoreUnavailable as exc:
                if not self.degrade:
                    raise
                self._remote_down(write=False, exc=exc)
                out.update({pair: False for pair in misses})
        return out

    def entries(self) -> List[ArtifactEntry]:
        try:
            merged = {(e.kind, e.key): e for e in self.remote.entries()}
        except StoreUnavailable as exc:
            if not self.degrade:
                raise
            self._remote_down(write=False, exc=exc)
            merged = {}
        for entry in self.local.entries():
            merged[(entry.kind, entry.key)] = entry
        return [merged[pair] for pair in sorted(merged)]

    def delete(self, kind: str, key: str) -> bool:
        local = self.local.delete(kind, key)
        try:
            remote = self.remote.delete(kind, key)
        except StoreUnavailable as exc:
            if not self.degrade:
                raise
            self._remote_down(write=True, exc=exc)
            remote = False
        return local or remote

    def close(self) -> None:
        self.local.close()
        self.remote.close()

    def describe(self) -> str:
        return f"tier({self.local.describe()} -> {self.remote.describe()})"


#: URL schemes ``backend_from_url`` understands, for error messages.
SUPPORTED_SCHEMES = ("dir:PATH", "sqlite:PATH", "http://HOST:PORT")


def backend_from_url(url: Union[str, StoreBackend]) -> StoreBackend:
    """Resolve a store URL to a backend instance.

    ``dir:PATH`` (or a bare path) opens the directory layout,
    ``sqlite:PATH`` the single-file database, and ``http://`` /
    ``https://`` a remote ``repro serve-cache``.  An already-constructed
    backend passes through unchanged, so APIs can accept either form.
    """
    if isinstance(url, StoreBackend):
        return url
    if url.startswith("dir:"):
        return DirBackend(url[len("dir:"):])
    if url.startswith("sqlite:"):
        return SqliteBackend(url[len("sqlite:"):])
    if url.startswith(("http://", "https://")):
        return RemoteHTTPBackend(url)
    scheme, sep, _rest = url.partition(":")
    if (
        sep
        and "/" not in scheme
        and scheme not in ("", ".")
        # A single letter before ":" is a Windows drive (C:\cache), not
        # a URL scheme — fall through to the bare-path branch.
        and not (len(scheme) == 1 and scheme.isalpha())
    ):
        raise ValueError(
            f"unsupported store URL scheme {scheme!r} in {url!r}; "
            f"supported: {', '.join(SUPPORTED_SCHEMES)} or a bare path"
        )
    return DirBackend(url)  # a bare path is a directory store


@dataclass
class SyncStats:
    """What one :func:`sync_stores` pass did."""

    copied: int = 0
    skipped: int = 0
    bytes_copied: int = 0


def sync_stores(
    source: Union[str, StoreBackend],
    destination: Union[str, StoreBackend],
) -> SyncStats:
    """Copy every artifact ``source`` has and ``destination`` lacks.

    Content keys make the sync idempotent and conflict-free: an artifact
    the destination already holds under the same ``(kind, key)`` is the
    same bytes by construction, so it is skipped, never rewritten.  Text
    moves verbatim (no JSON re-encoding), keeping the byte-identical
    guarantee across any chain of pushes.  The destination's inventory
    is fetched once up front (one ``/v1/list`` round trip for a remote)
    rather than probed per artifact, so pushing a 100k-artifact cache
    costs one listing, not 100k HEAD requests.  This is the engine
    behind ``repro cache push`` / ``pull``.
    """
    src = backend_from_url(source)
    dst = backend_from_url(destination)
    stats = SyncStats()
    existing = {(entry.kind, entry.key) for entry in dst.entries()}
    for entry in src.entries():
        if (entry.kind, entry.key) in existing:
            stats.skipped += 1
            continue
        text = src.get_text(entry.kind, entry.key)
        if text is None:  # vanished mid-walk (concurrent gc); skip honestly
            stats.skipped += 1
            continue
        dst.put_text(entry.kind, entry.key, text)
        stats.copied += 1
        stats.bytes_copied += len(text.encode("utf-8"))
    return stats
