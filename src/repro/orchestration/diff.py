"""Incremental-sweep UX: diff two run manifests.

``repro sweep`` and ``repro tables`` write a manifest whose ``jobs.entries``
ledger lists every job of the run (content key, kind, identifying params,
computed-vs-cached status) next to a ``results.jsonl`` of result rows.
:func:`diff_runs` compares two such runs and reports

* **added / removed jobs** — content keys present in one run only (a
  spec change upstream re-keys every downstream job, so this is exactly
  "what work does the new spec imply");
* **recomputed jobs** — keys present in both runs that the second run
  computed instead of taking from the cache (an incremental rerun of an
  unchanged spec should recompute nothing);
* **added / removed / changed cells** — result rows keyed by
  (topology, benchmark, engine), compared field-by-field with wall-clock
  timings ignored (timings are measurements, not results).

Two runs of the same spec against a shared cache therefore produce an
empty diff, and any non-empty report pinpoints what changed between two
experiments — the manifest-level answer to "is this rerun the same
experiment, and if not, where does it differ?".
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.orchestration.sink import read_jsonl

#: Wall-clock fields ignored when comparing result rows: they vary run to
#: run whenever a stage is actually recomputed, but are not results.
WALLCLOCK_FIELDS = frozenset(
    {"runtime_s", "qubit_time_s", "resonator_time_s", "dp_time_s", "wall_s"}
)

#: How many rows a formatted section lists before eliding the rest.
_MAX_LISTED = 20


def load_run(path: str) -> dict:
    """Load one run for diffing from a run directory or manifest path.

    ``path`` may be the run directory (``.repro_cache/runs/<run_id>/``)
    or its ``manifest.json`` directly.  Returns ``{"manifest", "rows",
    "path"}``; ``rows`` is the parsed ``results.jsonl`` next to the
    manifest, or ``None`` when the run wrote no results file.  Raises
    :class:`ValueError` for unreadable manifests or manifests written
    before the per-job ledger existed.
    """
    manifest_path = path
    if os.path.isdir(path):
        manifest_path = os.path.join(path, "manifest.json")
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as exc:
        raise ValueError(f"cannot read manifest {manifest_path!r}: {exc}")
    except ValueError:
        raise ValueError(f"{manifest_path!r} is not valid JSON")
    entries = manifest.get("jobs", {}).get("entries")
    if entries is None:
        raise ValueError(
            f"{manifest_path!r} has no jobs.entries ledger (written by an "
            "older version?); re-run the sweep to get a diffable manifest"
        )
    rows = None
    results_path = os.path.join(os.path.dirname(manifest_path), "results.jsonl")
    if os.path.exists(results_path):
        try:
            rows = read_jsonl(results_path)
        except (OSError, ValueError) as exc:
            raise ValueError(f"cannot read results {results_path!r}: {exc}")
    return {"manifest": manifest, "rows": rows, "path": manifest_path}


@dataclass
class RunDiff:
    """What changed between two runs (see :func:`diff_runs`)."""

    added_jobs: list = field(default_factory=list)
    removed_jobs: list = field(default_factory=list)
    recomputed_jobs: list = field(default_factory=list)
    added_cells: list = field(default_factory=list)
    removed_cells: list = field(default_factory=list)
    changed_cells: list = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the two runs are the same experiment with the same
        results and the second run reused every shared artifact."""
        return not (
            self.added_jobs
            or self.removed_jobs
            or self.recomputed_jobs
            or self.added_cells
            or self.removed_cells
            or self.changed_cells
        )


def _cell_key(row: dict) -> tuple:
    return (row.get("topology"), row.get("benchmark"), row.get("engine"))


def _comparable(row: dict) -> dict:
    return {k: v for k, v in row.items() if k not in WALLCLOCK_FIELDS}


def diff_runs(run_a: dict, run_b: dict) -> RunDiff:
    """Compare two loaded runs (see :func:`load_run`); A is the baseline.

    Job-level comparison is by content key, so it is exact: two jobs
    share a key iff they have the same kind, params and (transitively)
    upstream parameters.  Cell-level comparison keys result rows by
    (topology, benchmark, engine) and ignores :data:`WALLCLOCK_FIELDS`.
    """
    jobs_a = {e["key"]: e for e in run_a["manifest"]["jobs"]["entries"]}
    jobs_b = {e["key"]: e for e in run_b["manifest"]["jobs"]["entries"]}
    diff = RunDiff(
        added_jobs=[jobs_b[k] for k in jobs_b if k not in jobs_a],
        removed_jobs=[jobs_a[k] for k in jobs_a if k not in jobs_b],
        recomputed_jobs=[
            jobs_b[k]
            for k in jobs_b
            if k in jobs_a and jobs_b[k]["status"] == "computed"
        ],
    )

    rows_a = {_cell_key(r): r for r in (run_a["rows"] or [])}
    rows_b = {_cell_key(r): r for r in (run_b["rows"] or [])}
    diff.added_cells = [list(k) for k in rows_b if k not in rows_a]
    diff.removed_cells = [list(k) for k in rows_a if k not in rows_b]
    for key in rows_a:
        if key not in rows_b:
            continue
        a, b = _comparable(rows_a[key]), _comparable(rows_b[key])
        fields = sorted(
            name
            for name in set(a) | set(b)
            if a.get(name) != b.get(name)
        )
        if fields:
            diff.changed_cells.append({"cell": list(key), "fields": fields})
    return diff


def _describe_job(entry: dict) -> str:
    parts = [entry["kind"]]
    for name in ("topology", "engine", "benchmark"):
        if entry.get(name):
            parts.append(str(entry[name]))
    if entry.get("seed") is not None:
        parts.append(f"seed={entry['seed']}")
    return f"{' '.join(parts)} ({entry['key'][:12]})"


def _describe_cell(key: list) -> str:
    return "/".join(str(part) for part in key if part is not None)


def _section(
    lines: list, title: str, rows: list, render: Callable
) -> None:
    if not rows:
        return
    lines.append(f"{title} ({len(rows)}):")
    for row in rows[:_MAX_LISTED]:
        lines.append(f"  {render(row)}")
    if len(rows) > _MAX_LISTED:
        lines.append(f"  ... and {len(rows) - _MAX_LISTED} more")


def format_diff(diff: RunDiff) -> str:
    """Human-readable report of a :class:`RunDiff` (empty diff included)."""
    if diff.is_empty:
        return "runs are identical: same jobs, nothing recomputed, same cells"
    lines = [
        f"jobs: +{len(diff.added_jobs)} added, "
        f"-{len(diff.removed_jobs)} removed, "
        f"{len(diff.recomputed_jobs)} recomputed; "
        f"cells: +{len(diff.added_cells)} added, "
        f"-{len(diff.removed_cells)} removed, "
        f"{len(diff.changed_cells)} changed"
    ]
    _section(lines, "added jobs", diff.added_jobs, lambda e: f"+ {_describe_job(e)}")
    _section(
        lines, "removed jobs", diff.removed_jobs, lambda e: f"- {_describe_job(e)}"
    )
    _section(
        lines,
        "recomputed jobs",
        diff.recomputed_jobs,
        lambda e: f"* {_describe_job(e)}",
    )
    _section(
        lines, "added cells", diff.added_cells, lambda k: f"+ {_describe_cell(k)}"
    )
    _section(
        lines,
        "removed cells",
        diff.removed_cells,
        lambda k: f"- {_describe_cell(k)}",
    )
    _section(
        lines,
        "changed cells",
        diff.changed_cells,
        lambda c: f"~ {_describe_cell(c['cell'])}: {', '.join(c['fields'])}",
    )
    return "\n".join(lines)
