"""Content-addressed job model for experiment sweeps.

A sweep decomposes into small *jobs* — ``gp`` (global placement), ``lg``
(legalization), ``dp`` (detailed placement), ``transpile``, ``analyze``
(layout-level crosstalk analysis), ``fidelity`` and ``metrics`` (the
Fig. 9 / Table II–III layout-quality report) — wired into a
dependency DAG.  Every job is identified by a
stable SHA-256 over its kind, its code-relevant parameters and the keys
of its dependencies (a Merkle chain: a parameter change upstream changes
every downstream key).  The key doubles as the artifact-store address, so
re-running a sweep with identical parameters finds every stage output
already on disk.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable

#: The stage kinds a sweep decomposes into.
JOB_KINDS = ("gp", "lg", "dp", "transpile", "analyze", "fidelity", "metrics")


def canonical_json(obj: object) -> str:
    """Deterministic JSON encoding used for hashing (sorted keys, no ws)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def job_key(kind: str, params: dict, dep_keys: tuple = ()) -> str:
    """Stable content hash of a job: kind + params + dependency keys."""
    payload = canonical_json(
        {"kind": kind, "params": params, "deps": list(dep_keys)}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work.

    ``params`` must be JSON-safe (it is hashed canonically); ``deps`` are
    the keys of jobs whose payloads this job consumes, in the order the
    runner expects them.
    """

    kind: str
    key: str
    params: dict
    deps: tuple = ()

    @classmethod
    def create(cls, kind: str, params: dict, deps: tuple = ()) -> "Job":
        """Build a job, deriving its content-addressed key."""
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}; expected {JOB_KINDS}")
        return cls(
            kind=kind,
            key=job_key(kind, params, tuple(deps)),
            params=params,
            deps=tuple(deps),
        )


@dataclass
class JobGraph:
    """An ordered DAG of jobs (insertion order is a topological order)."""

    jobs: dict = field(default_factory=dict)  # key -> Job

    def add(self, job: Job) -> Job:
        """Register a job; dependencies must already be present.

        Adding an identical job twice is a no-op (shared upstream stages
        are naturally deduplicated by their content key).
        """
        if job.key in self.jobs:
            return self.jobs[job.key]
        for dep in job.deps:
            if dep not in self.jobs:
                raise ValueError(
                    f"job {job.kind}:{job.key[:12]} depends on unknown {dep[:12]}"
                )
        self.jobs[job.key] = job
        return job

    def __len__(self) -> int:
        return len(self.jobs)

    def __contains__(self, key: str) -> bool:
        return key in self.jobs

    def __getitem__(self, key: str) -> Job:
        return self.jobs[key]

    def ordered(self) -> list:
        """Jobs in insertion (= topological) order."""
        return list(self.jobs.values())

    def restricted_to(self, keys: Iterable[str]) -> "JobGraph":
        """The sub-graph reaching ``keys`` (transitive dependency closure).

        Used by sharding: a shard keeps only the jobs its cells need,
        while shared upstream stages stay content-addressed so different
        shards hitting the same cache never duplicate work.
        """
        needed = set()
        stack = list(keys)
        while stack:
            key = stack.pop()
            if key in needed:
                continue
            needed.add(key)
            stack.extend(self.jobs[key].deps)
        sub = JobGraph()
        for key, job in self.jobs.items():
            if key in needed:
                sub.jobs[key] = job
        return sub
