"""Run outputs: a JSONL result stream plus a JSON run manifest.

Each sweep run owns a directory (by convention
``.repro_cache/runs/<run_id>/``) holding

* ``results.jsonl`` — one JSON object per fidelity cell, written in
  sweep-plan order (deterministic regardless of execution order), and
* ``manifest.json`` — the sweep spec, sharding, worker count, and the
  per-kind computed/cached job counters (the resume acceptance check
  reads ``jobs.computed`` here).
"""

from __future__ import annotations

import json
import os


class RunSink:
    """Writes a run's results and manifest into one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    @property
    def results_path(self) -> str:
        """Path of the JSONL result stream."""
        return os.path.join(self.directory, "results.jsonl")

    @property
    def manifest_path(self) -> str:
        """Path of the run manifest."""
        return os.path.join(self.directory, "manifest.json")

    def write_results(self, rows: list) -> str:
        """Write all result rows as JSON Lines (one object per line)."""
        with open(self.results_path, "w", encoding="utf-8") as fh:
            for row in rows:
                # repro: lint-ignore[RPR002] rows keep their insertion
                # order — sorting here would rewrite historical streams
                fh.write(json.dumps(row))
                fh.write("\n")
        return self.results_path

    def write_manifest(self, manifest: dict) -> str:
        """Write the run manifest (pretty-printed, stable key order)."""
        with open(self.manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return self.manifest_path


def read_jsonl(path: str) -> list:
    """Load a JSONL file back into a list of dicts (test/analysis helper)."""
    rows = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
