"""Orchestration: parallel, resumable, disk-cached experiment sweeps.

The subsystem decomposes a sweep into content-addressed stage jobs
(:mod:`~repro.orchestration.jobs`), persists stage outputs through an
artifact store (:mod:`~repro.orchestration.store`) with pluggable
backends — directory, single-file SQLite, a remote cache server,
optionally tiered (:mod:`~repro.orchestration.backends`,
:mod:`~repro.orchestration.cache_server`) — executes the job DAG
serially or across worker processes with retries and per-attempt
timeouts (:mod:`~repro.orchestration.executor`), writes JSONL results
plus a run manifest (:mod:`~repro.orchestration.sink`), and diffs run
manifests for incremental-sweep workflows
(:mod:`~repro.orchestration.diff`).  :mod:`~repro.orchestration.sweep`
ties it together behind :func:`run_sweep`; the evaluation harness and
the ``repro sweep`` / ``repro tables`` / ``repro diff`` /
``repro cache`` / ``repro serve-cache`` CLI are thin clients.

For cross-machine fault tolerance, a lease-based work-stealing
scheduler (:mod:`~repro.orchestration.coordinator`) rides on the cache
server's ``/v1/fleet`` endpoints, ``repro worker`` processes pull
leased job batches through :mod:`~repro.orchestration.worker`, and
:func:`run_fleet_sweep` plans, enqueues and watches a whole fleet
sweep — with bounded retry/backoff on every remote store call and
graceful degradation of tiered stores underneath.

On top of all of that sits placement-as-a-service: ``repro serve``
(:mod:`~repro.orchestration.service`) is an authenticated multi-tenant
front door that plans submitted sweeps, schedules them fairly over one
shared worker pool (:mod:`~repro.orchestration.scheduler`) and one
shared store, computes overlapping jobs once fleet-wide, and streams
per-run results and diff-compatible manifests back over HTTP.  See
``docs/orchestration.md``, ``docs/storage.md``, ``docs/fleet.md``,
``docs/service.md`` and ``docs/tables.md``.
"""

from repro.orchestration.backends import (
    DEFAULT_RETRY_POLICY,
    ArtifactEntry,
    DirBackend,
    RemoteHTTPBackend,
    RetryPolicy,
    SqliteBackend,
    StoreBackend,
    StoreError,
    StoreUnavailable,
    SyncStats,
    TieredBackend,
    backend_from_url,
    retry_call,
    sync_stores,
)
from repro.orchestration.cache_server import CacheServer, serve_cache
from repro.orchestration.coordinator import (
    FleetClient,
    FleetCoordinator,
    FleetError,
    LocalFleetClient,
    serialize_graph,
)
from repro.orchestration.diff import (
    RunDiff,
    diff_runs,
    format_diff,
    load_run,
)
from repro.orchestration.executor import (
    JobFailure,
    JobTimeout,
    RunStats,
    run_jobs,
)
from repro.orchestration.jobs import Job, JobGraph, job_key
from repro.orchestration.scheduler import FairScheduler
from repro.orchestration.service import (
    JobService,
    ServiceClient,
    ServiceError,
    ServiceToken,
    serve_jobs,
    spec_from_document,
)
from repro.orchestration.sink import RunSink, read_jsonl
from repro.orchestration.stages import (
    config_from_dict,
    config_to_dict,
    execute_job,
    noise_from_dict,
    noise_to_dict,
)
from repro.orchestration.store import (
    ArtifactStore,
    TieredStore,
    resolve_store,
)
from repro.orchestration.sweep import (
    SweepPlan,
    SweepResult,
    SweepSpec,
    plan_sweep,
    run_fleet_sweep,
    run_sweep,
)
from repro.orchestration.worker import (
    DependencyUnavailable,
    WorkerStats,
    run_worker,
)

__all__ = [
    "ArtifactEntry",
    "ArtifactStore",
    "CacheServer",
    "DEFAULT_RETRY_POLICY",
    "DependencyUnavailable",
    "DirBackend",
    "FairScheduler",
    "FleetClient",
    "FleetCoordinator",
    "FleetError",
    "Job",
    "JobFailure",
    "JobGraph",
    "JobService",
    "JobTimeout",
    "LocalFleetClient",
    "RemoteHTTPBackend",
    "RetryPolicy",
    "RunDiff",
    "RunSink",
    "RunStats",
    "ServiceClient",
    "ServiceError",
    "ServiceToken",
    "SqliteBackend",
    "StoreBackend",
    "StoreError",
    "StoreUnavailable",
    "SweepPlan",
    "SweepResult",
    "SweepSpec",
    "SyncStats",
    "TieredBackend",
    "TieredStore",
    "WorkerStats",
    "backend_from_url",
    "config_from_dict",
    "config_to_dict",
    "diff_runs",
    "execute_job",
    "format_diff",
    "job_key",
    "load_run",
    "noise_from_dict",
    "noise_to_dict",
    "plan_sweep",
    "read_jsonl",
    "resolve_store",
    "retry_call",
    "run_fleet_sweep",
    "run_jobs",
    "run_sweep",
    "run_worker",
    "serialize_graph",
    "serve_cache",
    "serve_jobs",
    "spec_from_document",
    "sync_stores",
]
