"""Orchestration: parallel, resumable, disk-cached experiment sweeps.

The subsystem decomposes a sweep into content-addressed stage jobs
(:mod:`~repro.orchestration.jobs`), persists stage outputs through an
artifact store (:mod:`~repro.orchestration.store`) with pluggable
backends — directory, single-file SQLite, a remote cache server,
optionally tiered (:mod:`~repro.orchestration.backends`,
:mod:`~repro.orchestration.cache_server`) — executes the job DAG
serially or across worker processes with retries and per-attempt
timeouts (:mod:`~repro.orchestration.executor`), writes JSONL results
plus a run manifest (:mod:`~repro.orchestration.sink`), and diffs run
manifests for incremental-sweep workflows
(:mod:`~repro.orchestration.diff`).  :mod:`~repro.orchestration.sweep`
ties it together behind :func:`run_sweep`; the evaluation harness and
the ``repro sweep`` / ``repro tables`` / ``repro diff`` /
``repro cache`` / ``repro serve-cache`` CLI are thin clients.  See
``docs/orchestration.md``, ``docs/storage.md`` and ``docs/tables.md``.
"""

from repro.orchestration.backends import (
    ArtifactEntry,
    DirBackend,
    RemoteHTTPBackend,
    SqliteBackend,
    StoreBackend,
    StoreError,
    StoreUnavailable,
    SyncStats,
    TieredBackend,
    backend_from_url,
    sync_stores,
)
from repro.orchestration.cache_server import CacheServer, serve_cache
from repro.orchestration.diff import (
    RunDiff,
    diff_runs,
    format_diff,
    load_run,
)
from repro.orchestration.executor import (
    JobFailure,
    JobTimeout,
    RunStats,
    run_jobs,
)
from repro.orchestration.jobs import Job, JobGraph, job_key
from repro.orchestration.sink import RunSink, read_jsonl
from repro.orchestration.stages import (
    config_from_dict,
    config_to_dict,
    execute_job,
    noise_from_dict,
    noise_to_dict,
)
from repro.orchestration.store import (
    ArtifactStore,
    TieredStore,
    resolve_store,
)
from repro.orchestration.sweep import (
    SweepPlan,
    SweepResult,
    SweepSpec,
    plan_sweep,
    run_sweep,
)

__all__ = [
    "ArtifactEntry",
    "ArtifactStore",
    "CacheServer",
    "DirBackend",
    "Job",
    "JobFailure",
    "JobGraph",
    "JobTimeout",
    "RemoteHTTPBackend",
    "RunDiff",
    "RunSink",
    "RunStats",
    "SqliteBackend",
    "StoreBackend",
    "StoreError",
    "StoreUnavailable",
    "SweepPlan",
    "SweepResult",
    "SweepSpec",
    "SyncStats",
    "TieredBackend",
    "TieredStore",
    "backend_from_url",
    "config_from_dict",
    "config_to_dict",
    "diff_runs",
    "execute_job",
    "format_diff",
    "job_key",
    "load_run",
    "noise_from_dict",
    "noise_to_dict",
    "plan_sweep",
    "read_jsonl",
    "resolve_store",
    "run_jobs",
    "run_sweep",
    "serve_cache",
    "sync_stores",
]
