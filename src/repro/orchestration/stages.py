"""Stage runners: the functions that execute one job of each kind.

Every runner is a pure function of ``(params, dep_payloads)`` returning a
JSON-safe payload, and every runner rebuilds its working state (netlist,
grid, occupancy) from the topology + config in its params plus position
snapshots from upstream payloads.  That makes jobs location-transparent:
the same runner produces bit-identical output whether it executes in the
parent process (serial executor), a worker process (process pool), or is
skipped entirely because the artifact store already holds its payload.

``execute_job`` is the single dispatch point and is importable at module
level so :class:`concurrent.futures.ProcessPoolExecutor` can pickle it.
"""

from __future__ import annotations

import time
from dataclasses import asdict

from repro.circuits.registry import get_benchmark
from repro.compiler.scheduling import Schedule
from repro.compiler.transpiler import TranspiledCircuit, transpile
from repro.core.config import QGDPConfig
from repro.core.result import decode_snapshot, encode_snapshot
from repro.crosstalk.fidelity import program_fidelity
from repro.crosstalk.parameters import NoiseParameters
from repro.detailed.placer import DetailedPlacer
from repro.frequency.hotspots import HotspotPair, hotspot_pairs
from repro.geometry import SiteGrid
from repro.legalization.bins import BinGrid
from repro.legalization.engines import get_engine, run_legalization
from repro.metrics.legality import LegalityViolation, qubit_spacing_violations
from repro.metrics.report import LayoutMetrics, layout_metrics
from repro.netlist.netlist import QuantumNetlist
from repro.placement.builder import build_layout
from repro.placement.global_placer import GlobalPlacer
from repro.routing.crossings import CrossingReport, count_crossings
from repro.topologies.registry import get_topology


# -- config / metrics codecs -------------------------------------------------
def config_to_dict(config: QGDPConfig) -> dict:
    """JSON-safe dict of the code-relevant flow parameters."""
    return asdict(config)


def config_from_dict(data: dict) -> QGDPConfig:
    """Inverse of :func:`config_to_dict` (band lists back to tuples)."""
    data = dict(data)
    data["qubit_bands"] = tuple(data["qubit_bands"])
    data["resonator_bands"] = tuple(data["resonator_bands"])
    return QGDPConfig(**data)


def noise_to_dict(noise: NoiseParameters) -> dict:
    """JSON-safe dict of the Eq. 7 noise constants."""
    return asdict(noise)


def noise_from_dict(data: dict) -> NoiseParameters:
    """Inverse of :func:`noise_to_dict`."""
    return NoiseParameters(**data)


def metrics_from_dict(data: dict) -> LayoutMetrics:
    """Rebuild a :class:`LayoutMetrics` stored in a job payload."""
    return LayoutMetrics(**data)


def rebuild_occupancy(netlist: QuantumNetlist, grid: SiteGrid) -> BinGrid:
    """Reconstruct the occupancy index of a legalized layout.

    A legal layout determines its occupancy completely: qubit macros
    cover the sites under their rectangles and each wire block sits on
    exactly one site.  ``occupy``/``occupy_rect`` raise on conflicts, so
    feeding a non-legal snapshot fails loudly instead of silently
    mis-counting crossings.
    """
    bins = BinGrid(grid)
    for qubit in netlist.qubits:
        bins.occupy_rect(qubit.rect, qubit.node_id)
    for block in netlist.wire_blocks:
        col, row = grid.site_of(block.center)
        bins.occupy(col, row, block.node_id)
    return bins


# -- transpile payload codec -------------------------------------------------
def transpile_stats_to_dict(transpiled: TranspiledCircuit) -> dict:
    """The slice of a transpiled circuit the fidelity model consumes.

    Dict insertion order is preserved through JSON, so the reconstructed
    ``gates_1q`` / ``gates_2q`` dicts build their ``active_qubits`` set in
    the same order as the original — keeping the Eq. 7 product order (and
    hence the float result) bit-identical.
    """
    return {
        "name": transpiled.name,
        "topology_name": transpiled.topology_name,
        "gates_1q": {str(q): n for q, n in transpiled.gates_1q.items()},
        "gates_2q": {str(q): n for q, n in transpiled.gates_2q.items()},
        "active_edges": sorted(list(edge) for edge in transpiled.active_edges),
        "duration_ns": transpiled.timing.duration_ns,
        "busy_ns": {str(q): t for q, t in transpiled.timing.busy_ns.items()},
    }


def transpile_stats_from_dict(data: dict) -> TranspiledCircuit:
    """Rebuild a fidelity-sufficient :class:`TranspiledCircuit` stub."""
    return TranspiledCircuit(
        name=data["name"],
        topology_name=data["topology_name"],
        initial_mapping={},
        final_mapping={},
        physical_gates=[],
        timing=Schedule(
            duration_ns=data["duration_ns"],
            busy_ns={int(q): t for q, t in data["busy_ns"].items()},
        ),
        gates_1q={int(q): n for q, n in data["gates_1q"].items()},
        gates_2q={int(q): n for q, n in data["gates_2q"].items()},
        active_edges={tuple(edge) for edge in data["active_edges"]},
    )


# -- layout analysis codec ---------------------------------------------------
# Component ids appear in three shapes: ("q", index), ("e", (qi, qj)) and
# ("b", (qi, qj), ordinal).  Encoding flattens them to JSON rows; decoding
# restores the exact tuples program_fidelity pattern-matches on.
def _encode_component_id(cid: tuple) -> list:
    tag = cid[0]
    if tag == "q":
        return ["q", cid[1]]
    if tag == "e":
        return ["e", cid[1][0], cid[1][1]]
    if tag == "b":
        return ["b", cid[1][0], cid[1][1], cid[2]]
    raise ValueError(f"unknown component id {cid!r}")


def _decode_component_id(row: list) -> tuple:
    tag = row[0]
    if tag == "q":
        return ("q", row[1])
    if tag == "e":
        return ("e", (row[1], row[2]))
    if tag == "b":
        return ("b", (row[1], row[2]), row[3])
    raise ValueError(f"unknown component id row {row!r}")


def analysis_to_dict(
    violations: dict, hotspots: dict, crossings: dict
) -> dict:
    """Serialize one layout's crosstalk analysis (the Eq. 7 inputs).

    Dict entries are stored as ordered row lists, so decoding rebuilds
    dicts with identical iteration order — the Eq. 7 fidelity factors are
    float products folded in that order.
    """
    return {
        "violations": [
            [v.id_a[1], v.id_b[1], v.amount] for v in violations
        ],
        "hotspots": [
            [
                _encode_component_id(p.id_a),
                _encode_component_id(p.id_b),
                p.adjacency,
                p.gap,
                p.tau_weight,
                p.contribution,
            ]
            for p in hotspots
        ],
        "bridged_blocks": [
            [[qi, qj], [_encode_component_id(owner) for owner in owners]]
            for (qi, qj), owners in crossings.bridged_blocks.items()
        ],
        "pair_crossings": [
            [list(key_a), list(key_b), count]
            for (key_a, key_b), count in crossings.pair_crossings.items()
        ],
        "per_resonator": [
            [list(key), count]
            for key, count in crossings.per_resonator.items()
        ],
    }


def analysis_from_dict(data: dict) -> tuple:
    """Inverse of :func:`analysis_to_dict`: ``(violations, hotspots,
    crossings)`` exactly as the in-process analysis produced them."""
    violations = [
        LegalityViolation("qubit_spacing", ("q", ia), ("q", ib), amount)
        for ia, ib, amount in data["violations"]
    ]
    hotspots = [
        HotspotPair(
            _decode_component_id(id_a),
            _decode_component_id(id_b),
            adjacency,
            gap,
            tau_weight,
            contribution,
        )
        for id_a, id_b, adjacency, gap, tau_weight, contribution in data[
            "hotspots"
        ]
    ]
    crossings = CrossingReport(
        per_resonator={
            tuple(key): count for key, count in data["per_resonator"]
        },
        pair_crossings={
            (tuple(key_a), tuple(key_b)): count
            for key_a, key_b, count in data["pair_crossings"]
        },
        bridged_blocks={
            tuple(key): [_decode_component_id(owner) for owner in owners]
            for key, owners in data["bridged_blocks"]
        },
    )
    return (violations, hotspots, crossings)


# -- runners -----------------------------------------------------------------
def _restored_layout(params: dict, positions_payload: dict) -> tuple:
    """(netlist, grid, config) with positions restored from a payload."""
    config = config_from_dict(params["config"])
    topology = get_topology(params["topology"])
    netlist, grid = build_layout(topology, config)
    netlist.restore(decode_snapshot(positions_payload["positions"]))
    return netlist, grid, config


def run_gp_job(params: dict, deps: list) -> dict:
    """Global placement of one topology."""
    config = config_from_dict(params["config"])
    topology = get_topology(params["topology"])
    t0 = time.perf_counter()
    netlist, grid = build_layout(topology, config)
    summary = GlobalPlacer(config).run(netlist, grid, seed=params["seed"])
    return {
        "positions": encode_snapshot(netlist.snapshot()),
        "hpwl": summary.hpwl,
        "max_bin_overflow": summary.max_bin_overflow,
        "runtime_s": time.perf_counter() - t0,
    }


def run_lg_job(params: dict, deps: list) -> dict:
    """Legalize one topology with one engine, from the GP snapshot."""
    netlist, grid, config = _restored_layout(params, deps[0])
    outcome = run_legalization(
        netlist, grid, get_engine(params["engine"]), config
    )
    return {
        "positions": encode_snapshot(netlist.snapshot()),
        "qubit_time_s": outcome.qubit_time_s,
        "resonator_time_s": outcome.resonator_time_s,
        "qubit_displacement": outcome.qubit_displacement,
        "qubit_spacing_used": outcome.qubit_spacing_used,
        "qubit_attempts": outcome.qubit_attempts,
    }


def run_dp_job(params: dict, deps: list) -> dict:
    """Detailed placement on top of one engine's legalization.

    Replays legalization from the GP snapshot rather than restoring the
    LG snapshot: the detailed placer consumes the legalizer's live
    occupancy index, and re-running the (deterministic) legalizer is the
    bit-exact way to reproduce it.  Because the legalization outcome is
    in hand anyway, the payload carries the LG timing fields alongside
    the DP results.
    """
    netlist, grid, config = _restored_layout(params, deps[0])
    outcome = run_legalization(
        netlist, grid, get_engine(params["engine"]), config
    )
    payload = {
        "qubit_time_s": outcome.qubit_time_s,
        "resonator_time_s": outcome.resonator_time_s,
        "qubit_displacement": outcome.qubit_displacement,
        "qubit_spacing_used": outcome.qubit_spacing_used,
        "qubit_attempts": outcome.qubit_attempts,
    }
    t0 = time.perf_counter()
    summary = DetailedPlacer(config).run(netlist, outcome.bins)
    payload.update(
        {
            "positions": encode_snapshot(netlist.snapshot()),
            "dp_time_s": time.perf_counter() - t0,
            "flagged": summary.flagged,
            "accepted": summary.accepted,
            "reverted": summary.reverted,
        }
    )
    return payload


def run_transpile_job(params: dict, deps: list) -> dict:
    """Map + route + schedule one benchmark onto one topology (one seed)."""
    topology = get_topology(params["topology"])
    circuit = get_benchmark(params["benchmark"])
    transpiled = transpile(circuit, topology, seed=params["seed"])
    return transpile_stats_to_dict(transpiled)


def run_analyze_job(params: dict, deps: list) -> dict:
    """Layout-level crosstalk analysis of one legalized layout.

    ``deps[0]`` is the layout payload (LG or DP snapshot).  The spacing
    violations, hotspot pairs and crossing report depend only on the
    layout — one ``analyze`` job per (topology, engine) is shared by
    every benchmark's fidelity cell, exactly like the historical
    in-process harness shared its per-layout artifacts.
    """
    netlist, grid, config = _restored_layout(params, deps[0])
    bins = rebuild_occupancy(netlist, grid)
    return analysis_to_dict(
        qubit_spacing_violations(netlist, config.min_qubit_spacing),
        hotspot_pairs(netlist, config.reach, config.delta_c),
        count_crossings(netlist, bins),
    )


def run_fidelity_job(params: dict, deps: list) -> dict:
    """Eq. 7 fidelity samples of one (topology, benchmark, engine) cell.

    ``deps[0]`` is the layout payload (LG, or DP when the sweep runs
    detailed placement), ``deps[1]`` the layout's ``analyze`` payload;
    the rest are the per-seed transpile payloads in seed order.
    """
    netlist, grid, config = _restored_layout(params, deps[0])
    noise = noise_from_dict(params["noise"])
    violations, hotspots, crossings = analysis_from_dict(deps[1])
    samples = []
    for stats_payload in deps[2:]:
        transpiled = transpile_stats_from_dict(stats_payload)
        breakdown = program_fidelity(
            netlist,
            transpiled,
            crossings,
            config,
            noise,
            hotspots=hotspots,
            violations=violations,
        )
        samples.append(breakdown.fidelity)
    return {"samples": samples}


def run_metrics_job(params: dict, deps: list) -> dict:
    """Layout-quality report of one (topology, engine): Fig. 9 / Tables II–III.

    ``deps[0]`` is the engine's ``lg`` payload; for engines that also run
    detailed placement (the paper's qGDP-DP), ``deps[1]`` is the ``dp``
    payload.  The :class:`~repro.metrics.report.LayoutMetrics` sets are
    recomputed from the restored snapshots — occupancy rebuilt exactly
    like the ``analyze`` job, so the numbers are bit-identical to an
    in-process :func:`~repro.metrics.report.layout_metrics` call on the
    live layout — while the wall-clock timings (Table II's tq/te) ride
    through from the upstream payloads.  A warm cache therefore replays
    the exact timing values the stage measured when it actually ran,
    which is what makes regenerated tables byte-stable across reruns.
    """
    netlist, grid, config = _restored_layout(params, deps[0])
    payload = {
        "metrics": asdict(
            layout_metrics(netlist, rebuild_occupancy(netlist, grid), config)
        ),
        "qubit_time_s": deps[0]["qubit_time_s"],
        "resonator_time_s": deps[0]["resonator_time_s"],
    }
    if len(deps) > 1:
        netlist, grid, config = _restored_layout(params, deps[1])
        payload["dp_metrics"] = asdict(
            layout_metrics(netlist, rebuild_occupancy(netlist, grid), config)
        )
        payload["dp_time_s"] = deps[1]["dp_time_s"]
    return payload


_RUNNERS = {
    "gp": run_gp_job,
    "lg": run_lg_job,
    "dp": run_dp_job,
    "transpile": run_transpile_job,
    "analyze": run_analyze_job,
    "fidelity": run_fidelity_job,
    "metrics": run_metrics_job,
}


def execute_job(kind: str, params: dict, deps: list) -> dict:
    """Run one job; ``deps`` are the dependency payloads in job order."""
    return _RUNNERS[kind](params, deps)
