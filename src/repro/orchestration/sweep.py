"""Sweep planning and the high-level ``run_sweep`` entry point.

A :class:`SweepSpec` captures the paper's evaluation protocol — topology
× benchmark × engine × mapping-seed — as plain data.  ``plan_sweep``
expands it into a content-addressed job graph:

* one ``gp`` job per topology,
* one ``transpile`` job per (topology, benchmark, seed) that fits,
* one ``lg`` job per (topology, engine) — replaced by a ``dp`` job for
  the qGDP engine when the spec runs detailed placement,
* one ``analyze`` job per (topology, engine) layout — the spacing /
  hotspot / crossing analysis shared by that layout's cells — and
* one ``fidelity`` job per (topology, benchmark, engine) cell, depending
  on its layout job, the layout's analysis, and its seed-ordered
  transpile jobs.

``run_sweep`` executes the graph (serially or across worker processes,
optionally against the disk artifact store) and assembles the cells in
plan order, so results are deterministic regardless of scheduling.
Sharding keeps ``1/n``-th of the cells plus the transitive upstream jobs
they need; shards share the artifact cache, so a topology's GP or a
seed's transpilation computed by one shard is a cache hit for the next.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.circuits.registry import get_benchmark
from repro.orchestration.coordinator import (
    FleetClient,
    FleetError,
    serialize_graph,
)
from repro.orchestration.executor import RunStats, run_jobs
from repro.orchestration.jobs import Job, JobGraph, canonical_json
from repro.orchestration.stages import config_to_dict, noise_to_dict
from repro.orchestration.store import ArtifactStore, resolve_store
from repro.core.config import QGDPConfig
from repro.crosstalk.parameters import DEFAULT_NOISE
from repro.topologies.registry import get_topology


@dataclass
class SweepSpec:
    """The full parameter set of one experiment sweep (JSON-safe).

    A spec is the paper's evaluation protocol as plain data: every
    (topology, benchmark, engine) combination gets one fidelity cell,
    sampled over ``num_seeds`` transpilation seeds derived from
    ``base_seed`` (see :meth:`mapping_seed`).  ``detailed=True`` runs
    qGDP's detailed placement on top of its legalization, matching the
    paper's qGDP-DP rows.  ``config`` and ``noise`` are the JSON-safe
    dict forms of :class:`~repro.core.config.QGDPConfig` and
    :class:`~repro.crosstalk.parameters.NoiseParameters` (see
    ``config_to_dict`` / ``noise_to_dict`` in
    :mod:`repro.orchestration.stages`).

    Only code-relevant parameters live here — worker counts, shard
    indices, cache paths and timeouts deliberately do not, so they can
    never perturb :attr:`spec_hash` or any job key: the same spec always
    addresses the same artifacts, whoever computes them.
    """

    topologies: tuple
    benchmarks: tuple
    engines: tuple
    num_seeds: int = 50
    base_seed: int = 11
    detailed: bool = False
    config: dict = field(default_factory=lambda: config_to_dict(QGDPConfig()))
    noise: dict = field(default_factory=lambda: noise_to_dict(DEFAULT_NOISE))

    def __post_init__(self) -> None:
        self.topologies = tuple(self.topologies)
        self.benchmarks = tuple(self.benchmarks)
        self.engines = tuple(self.engines)

    def to_dict(self) -> dict:
        """JSON-safe representation (stored in the run manifest)."""
        return {
            "topologies": list(self.topologies),
            "benchmarks": list(self.benchmarks),
            "engines": list(self.engines),
            "num_seeds": self.num_seeds,
            "base_seed": self.base_seed,
            "detailed": self.detailed,
            "config": self.config,
            "noise": self.noise,
        }

    @property
    def spec_hash(self) -> str:
        """Stable hash identifying the sweep's parameter set."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()

    def mapping_seed(self, k: int) -> int:
        """The k-th transpilation seed (the paper's 50-seed protocol)."""
        return self.base_seed + 977 * k


@dataclass
class SweepPlan:
    """A planned sweep: the job graph plus cell → fidelity-job wiring."""

    graph: JobGraph
    cells: dict  # (topology, benchmark, engine) -> fidelity job key


@dataclass
class SweepResult:
    """What :func:`run_sweep` produced."""

    cells: dict  # (topology, benchmark, engine) -> samples/mean/min/max
    stats: RunStats
    manifest: dict

    @property
    def rows(self) -> list:
        """JSONL-ready result rows in plan order."""
        rows = []
        for (topo, bench, engine), cell in self.cells.items():
            rows.append(
                {
                    "topology": topo,
                    "benchmark": bench,
                    "engine": engine,
                    "mean": cell["mean"],
                    "minimum": cell["minimum"],
                    "maximum": cell["maximum"],
                    "num_samples": len(cell["samples"]),
                    "samples": cell["samples"],
                }
            )
        return rows


def plan_sweep(spec: SweepSpec) -> SweepPlan:
    """Expand a spec into its content-addressed job graph."""
    graph = JobGraph()
    cells = {}
    for topo_name in spec.topologies:
        topology = get_topology(topo_name)
        gp = graph.add(
            Job.create(
                "gp",
                {
                    "topology": topo_name,
                    "config": spec.config,
                    "seed": spec.config["seed"],
                },
            )
        )

        # Transpilations are engine-independent: one job per (benchmark,
        # seed) that fits the device, shared by every engine's cell.
        transpile_keys = {}
        fitting = []
        for bench_name in spec.benchmarks:
            circuit = get_benchmark(bench_name)
            if circuit.num_qubits > topology.num_qubits:
                continue
            fitting.append(bench_name)
            keys = []
            for k in range(spec.num_seeds):
                job = graph.add(
                    Job.create(
                        "transpile",
                        {
                            "topology": topo_name,
                            "benchmark": bench_name,
                            "seed": spec.mapping_seed(k),
                        },
                    )
                )
                keys.append(job.key)
            transpile_keys[bench_name] = keys

        for engine_name in spec.engines:
            layout_params = {
                "topology": topo_name,
                "engine": engine_name,
                "config": spec.config,
            }
            if spec.detailed and engine_name == "qgdp":
                layout = graph.add(
                    Job.create("dp", layout_params, deps=(gp.key,))
                )
            else:
                layout = graph.add(
                    Job.create("lg", layout_params, deps=(gp.key,))
                )
            analysis = graph.add(
                Job.create("analyze", layout_params, deps=(layout.key,))
            )
            for bench_name in fitting:
                cell_job = graph.add(
                    Job.create(
                        "fidelity",
                        {
                            "topology": topo_name,
                            "benchmark": bench_name,
                            "engine": engine_name,
                            "config": spec.config,
                            "noise": spec.noise,
                        },
                        deps=(
                            layout.key,
                            analysis.key,
                            *transpile_keys[bench_name],
                        ),
                    )
                )
                cells[(topo_name, bench_name, engine_name)] = cell_job.key
    return SweepPlan(graph=graph, cells=cells)


def _parse_shard(shard: Optional[tuple]) -> Optional[tuple]:
    """Normalize a shard selector to ``(index, count)`` (1-based index)."""
    if shard is None:
        return None
    index, count = shard
    if count < 1 or not (1 <= index <= count):
        raise ValueError(f"shard must satisfy 1 <= i <= n, got {index}/{count}")
    return (index, count)


def run_sweep(
    spec: SweepSpec,
    cache_dir: Optional[str] = None,
    workers: int = 0,
    resume: bool = False,
    shard: Optional[tuple] = None,
    progress: Optional[Callable] = None,
    store: Optional[ArtifactStore] = None,
    retries: int = 0,
    timeout_s: Optional[float] = None,
    cache_url: Optional[str] = None,
) -> SweepResult:
    """Plan and execute a sweep; returns cells, stats and the manifest.

    Results are **bit-identical** regardless of ``workers``, caching or
    scheduling — see ``docs/orchestration.md`` — and the returned
    :class:`SweepResult` carries the fidelity cells (plan order), the
    :class:`~repro.orchestration.executor.RunStats` and the run manifest
    (including the per-job ledger ``repro diff`` consumes).

    ``cache_dir`` enables the disk artifact store and ``cache_url``
    selects an alternative backend by URL (``dir:PATH``,
    ``sqlite:PATH``, ``http://host:port`` — an HTTP URL combined with a
    ``cache_dir`` tiers the remote behind a local fast layer; see
    ``docs/storage.md``); both are ignored when an explicit ``store``
    is given.  ``resume=True`` reuses any artifact already present
    instead of recomputing it.  ``workers <= 1`` runs
    serially in-process (the debugging mode); larger values use a
    dependency-aware process pool.  ``shard=(i, n)`` keeps the i-th of n
    deterministic cell slices (1-based).  ``retries`` re-runs flaky jobs
    and ``timeout_s`` bounds each job attempt's wall clock in a
    terminatable child process (see :func:`repro.orchestration.executor
    .run_jobs`); attempts that failed — including timeouts, logged with
    ``error_type: "JobTimeout"`` — but recovered land in the manifest's
    ``jobs.failures`` log, while a job that exhausts its retries aborts
    the sweep with :class:`~repro.orchestration.executor.JobFailure` —
    no manifest is written, and the accumulated failure log rides on the
    exception's ``failures`` attribute instead.
    """
    shard = _parse_shard(shard)
    plan = plan_sweep(spec)
    graph, cell_keys = plan.graph, plan.cells
    if shard is not None:
        index, count = shard
        selected = [
            cell
            for pos, cell in enumerate(cell_keys)
            if pos % count == index - 1
        ]
        cell_keys = {cell: cell_keys[cell] for cell in selected}
        graph = graph.restricted_to(cell_keys.values())

    owns_store = store is None
    if owns_store:
        store = resolve_store(cache_url=cache_url, cache_dir=cache_dir)
    try:
        results, stats = run_jobs(
            graph,
            store,
            workers=workers,
            resume=resume,
            progress=progress,
            retries=retries,
            timeout_s=timeout_s,
        )
    finally:
        # A store we opened is ours to close (sqlite connections, etc.);
        # a caller-supplied store stays open for the caller's next run.
        if owns_store:
            store.close()

    cells = {}
    for cell_id, key in cell_keys.items():
        samples = results[key]["samples"]
        if not samples:
            continue
        cells[cell_id] = {
            "mean": sum(samples) / len(samples),
            "minimum": min(samples),
            "maximum": max(samples),
            "samples": samples,
        }

    run_id = spec.spec_hash[:12]
    if shard is not None:
        run_id += f"-shard{shard[0]}of{shard[1]}"
    manifest = {
        "run_id": run_id,
        "spec": spec.to_dict(),
        "shard": None if shard is None else {"index": shard[0], "count": shard[1]},
        "workers": workers,
        "resume": resume,
        "retries": retries,
        "timeout_s": timeout_s,
        "jobs": stats.to_dict(),
        "num_cells": len(cells),
    }
    return SweepResult(cells=cells, stats=stats, manifest=manifest)


def run_fleet_sweep(
    spec: SweepSpec,
    coordinator: Union[str, FleetClient],
    store: Optional[ArtifactStore] = None,
    cache_dir: Optional[str] = None,
    cache_url: Optional[str] = None,
    poll_s: float = 1.0,
    progress: Optional[Callable] = None,
    sleep=time.sleep,
) -> SweepResult:
    """Run a sweep across a worker fleet; returns the same
    :class:`SweepResult` a local :func:`run_sweep` would.

    Plans the spec, enqueues the serialized DAG on the ``coordinator``
    (a ``repro serve-cache --fleet`` URL or a prepared
    :class:`~repro.orchestration.coordinator.FleetClient` — enqueueing
    is idempotent, so re-submitting a half-finished sweep just resumes
    it), then polls ``/v1/fleet/status`` until no job is outstanding.
    The actual execution happens in ``repro worker`` processes pulling
    from the same coordinator; because runners are pure functions of
    (params, canonical dependency payloads), the assembled cells — and
    therefore ``results.jsonl`` — are bit-identical to a serial
    uncached run, whatever the fleet did in between.

    ``store`` (or ``cache_url``/``cache_dir``, defaulting to the
    coordinator's own artifact endpoints) is where the fidelity
    payloads are read back from.  ``progress`` is called with each
    status document while watching.

    The returned manifest is ``repro diff``-compatible: its
    ``jobs.entries`` ledger is the coordinator's completion ledger
    restricted to this sweep's jobs and normalized to plan order, its
    ``jobs.failures`` carries every failed attempt *and expired lease*,
    and a ``fleet`` block records the coordinator URL and the workers
    that reported in.  If any job exhausted its attempt budget the
    sweep raises :class:`~repro.orchestration.coordinator.FleetError`
    with that failure ledger attached.
    """
    client = (
        FleetClient(coordinator) if isinstance(coordinator, str) else coordinator
    )
    t0 = time.perf_counter()
    plan = plan_sweep(spec)
    plan_keys = {job.key for job in plan.graph.ordered()}
    client.enqueue(serialize_graph(plan.graph))

    while True:
        status = client.status()
        if progress is not None:
            progress(status)
        if status["outstanding"] == 0:
            break
        sleep(poll_s)

    entries = [e for e in status["entries"] if e["key"] in plan_keys]
    failures = [f for f in status["failures"] if f["key"] in plan_keys]
    done_keys = {entry["key"] for entry in entries}
    lost = [job for job in plan.graph.ordered() if job.key not in done_keys]
    if lost:
        raise FleetError(
            f"fleet sweep failed: {len(lost)} of {len(plan_keys)} jobs "
            f"failed permanently (first: {lost[0].kind} "
            f"{lost[0].key[:12]}); see the attached failure ledger",
            failures=failures,
        )

    stats = RunStats(total=len(plan_keys))
    order = {job.key: i for i, job in enumerate(plan.graph.ordered())}
    for entry in sorted(entries, key=lambda e: order[e["key"]]):
        slot = stats.by_kind.setdefault(
            entry["kind"], {"computed": 0, "cached": 0}
        )
        if entry["status"] == "cached":
            stats.cached += 1
            slot["cached"] += 1
        else:
            stats.computed += 1
            slot["computed"] += 1
        stats.entries.append(entry)
    stats.failures = failures

    owns_store = store is None
    if owns_store:
        store = resolve_store(
            cache_url=cache_url or client.base_url, cache_dir=cache_dir
        )
    cells = {}
    try:
        for cell_id, key in plan.cells.items():
            payload = store.get("fidelity", key)
            if payload is None:
                raise FleetError(
                    f"fleet store {store.describe()} is missing the "
                    f"fidelity payload for completed job {key[:12]} — "
                    "did the workers write to a different store?",
                    failures=failures,
                )
            samples = payload["samples"]
            if not samples:
                continue
            cells[cell_id] = {
                "mean": sum(samples) / len(samples),
                "minimum": min(samples),
                "maximum": max(samples),
                "samples": samples,
            }
    finally:
        if owns_store:
            store.close()
    stats.wall_s = time.perf_counter() - t0

    manifest = {
        "run_id": spec.spec_hash[:12] + "-fleet",
        "spec": spec.to_dict(),
        "shard": None,
        "workers": 0,
        "resume": True,
        "retries": None,
        "timeout_s": None,
        "fleet": {
            "coordinator": client.base_url,
            "lease_ttl_s": status["lease_ttl_s"],
            "max_attempts": status["max_attempts"],
            "workers": status["workers"],
        },
        "jobs": stats.to_dict(),
        "num_cells": len(cells),
    }
    return SweepResult(cells=cells, stats=stats, manifest=manifest)
