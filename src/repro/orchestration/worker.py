"""The fleet worker: a pull–execute–heartbeat loop over the job store.

``repro worker --coordinator URL`` runs this loop: lease a batch of
ready jobs from the :class:`~repro.orchestration.coordinator
.FleetCoordinator`, execute each through the exact same
:func:`~repro.orchestration.stages.execute_job` /
:class:`~repro.orchestration.store.ArtifactStore` plumbing a local
sweep uses (so fleet results are byte-identical to serial ones),
report completions, repeat.  A background heartbeat thread keeps the
worker's leases alive while a long job runs; if the process dies —
SIGKILL, OOM, a yanked power cord — the heartbeats stop, the leases
expire, and the coordinator re-queues the jobs for someone else.

Fault tolerance on the worker side:

* every store operation runs under a bounded-backoff retry
  (:func:`~repro.orchestration.backends.retry_call`), so a transient
  cache-server blip costs a sleep, not a failed attempt;
* a job that still fails is reported with its traceback and the
  coordinator decides (re-queue vs. permanent failure) — the worker
  keeps draining the queue;
* SIGTERM requests a graceful drain: the in-flight job finishes and is
  reported, leased-but-unstarted jobs are *released* (their attempt is
  refunded), and the loop exits cleanly.

See ``docs/fleet.md`` for the failure model and a two-machine
walkthrough.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import threading
import time
import traceback
import uuid
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.orchestration.backends import (
    RetryPolicy,
    StoreUnavailable,
    retry_call,
)
from repro.orchestration.coordinator import FleetClient
from repro.orchestration.executor import execute_job_with_timeout
from repro.orchestration.stages import execute_job
from repro.orchestration.store import ArtifactStore


class DependencyUnavailable(RuntimeError):
    """A leased job's dependency payload was missing from the store.

    The coordinator only leases jobs whose dependencies completed, so
    this means the shared store lost (or never received — e.g. a
    degraded tiered write during an outage) the upstream artifact; the
    attempt is reported as failed and the coordinator re-queues it.
    """


def default_worker_id() -> str:
    """A fleet-unique worker name: host, pid and a random suffix."""
    return (
        f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    )


@dataclass
class WorkerStats:
    """What one :func:`run_worker` loop did (JSON-safe via ``to_dict``)."""

    worker: str = ""
    computed: int = 0
    cached: int = 0
    failed: int = 0
    released: int = 0
    leases: int = 0
    store_retries: int = 0
    wall_s: float = 0.0
    drained: bool = False  # exited on SIGTERM/stop rather than idle

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "computed": self.computed,
            "cached": self.cached,
            "failed": self.failed,
            "released": self.released,
            "leases": self.leases,
            "store_retries": self.store_retries,
            "wall_s": self.wall_s,
            "drained": self.drained,
        }


class _Heartbeat:
    """Background lease-keepalive: one thread, stoppable, crash-proof."""

    def __init__(
        self, client: FleetClient, worker: str, interval_s: float
    ) -> None:
        self._client = client
        self._worker = worker
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._client.heartbeat(self._worker)
            except Exception:  # noqa: BLE001 - keepalive must not die
                # Transient coordinator trouble: the next beat retries;
                # if the outage outlives the lease TTL the coordinator
                # re-queues our jobs, which is the correct outcome.
                pass

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


def run_worker(
    coordinator: Union[str, FleetClient],
    store: ArtifactStore,
    worker_id: Optional[str] = None,
    batch_size: int = 1,
    poll_s: float = 1.0,
    heartbeat_s: Optional[float] = None,
    timeout_s: Optional[float] = None,
    store_retry: Optional[RetryPolicy] = None,
    exit_when_idle: bool = True,
    stop: Optional[threading.Event] = None,
    install_signal_handler: bool = False,
    progress: Optional[Callable] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> WorkerStats:
    """Pull, execute and report fleet jobs until done (or told to stop).

    ``coordinator`` is a ``repro serve-cache --fleet`` URL or an
    existing :class:`FleetClient`; ``store`` is the *shared* artifact
    store the fleet reads dependency payloads from and writes results
    to (typically a :class:`~repro.orchestration.store.TieredStore`
    over the same server).  ``batch_size`` jobs are leased per round;
    ``timeout_s`` bounds each job's wall clock exactly like a local
    sweep's ``--timeout-s`` (enforced in a terminatable child process).

    Exits when the coordinator reports no outstanding work (unless
    ``exit_when_idle=False``, the long-lived service mode) or when
    ``stop`` is set — by a caller, or by SIGTERM when
    ``install_signal_handler=True``: the in-flight job finishes, every
    unstarted lease is released back (attempt refunded), and the
    accumulated :class:`WorkerStats` (with ``drained=True``) returns.

    ``progress(event, job)`` is called with events in ``{"lease",
    "computed", "cached", "failed", "released"}`` — the chaos suite's
    SIGKILL choreography hangs off it.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    client = (
        FleetClient(coordinator) if isinstance(coordinator, str) else coordinator
    )
    stats = WorkerStats(worker=worker_id or default_worker_id())
    stop = stop or threading.Event()
    if install_signal_handler:
        signal.signal(signal.SIGTERM, lambda _sig, _frm: stop.set())
    store_retry = store_retry or RetryPolicy()
    # repro: lint-ignore[RPR001] lease-poll jitter must decorrelate
    # across workers; it never reaches a payload or content key
    rng = random.Random()

    def count_retry(_failures: int, _exc: BaseException) -> None:
        stats.store_retries += 1

    def store_op(operation: Callable) -> object:
        """A store call under the worker's transient-fault budget."""
        return retry_call(
            operation,
            store_retry,
            sleep=sleep,
            rng=rng,
            on_retry=count_retry,
        )

    def notify(event: str, job: dict) -> None:
        if progress is not None:
            progress(event, job)

    def run_one(job: dict) -> None:
        kind, key = job["kind"], job["key"]
        try:
            cached = store_op(lambda: store.get(kind, key))
            if cached is not None:
                client.complete(stats.worker, key, "cached")
                stats.cached += 1
                notify("cached", job)
                return
            deps = []
            for dep_kind, dep_key in zip(job["dep_kinds"], job["deps"]):
                payload = store_op(lambda: store.get(dep_kind, dep_key))
                if payload is None:
                    raise DependencyUnavailable(
                        f"{kind} {key[:12]}: dependency {dep_kind} "
                        f"{dep_key[:12]} is not in the store "
                        f"({store.describe()})"
                    )
                deps.append(payload)
            if timeout_s is None:
                payload = execute_job(kind, job["params"], deps)
            else:
                payload = execute_job_with_timeout(
                    kind, job["params"], deps, timeout_s
                )
            store_op(lambda: store.put(kind, key, payload))
            client.complete(stats.worker, key, "computed")
            stats.computed += 1
            notify("computed", job)
        except StoreUnavailable:
            raise  # the coordinator/store is gone: surface, don't loop
        except Exception as exc:  # noqa: BLE001 - reported, not fatal
            client.complete(
                stats.worker,
                key,
                "failed",
                error={
                    "error_type": type(exc).__name__,
                    "error": str(exc),
                    "traceback": getattr(exc, "remote_traceback", None)
                    or "".join(
                        traceback.format_exception(
                            type(exc), exc, exc.__traceback__
                        )
                    ),
                },
            )
            stats.failed += 1
            notify("failed", job)

    t0 = time.perf_counter()
    heartbeat: Optional[_Heartbeat] = None
    try:
        while not stop.is_set():
            reply = client.lease(stats.worker, max_jobs=batch_size)
            jobs = reply["jobs"]
            if heartbeat is None and jobs:
                interval = heartbeat_s or reply["lease_ttl_s"] / 3.0
                heartbeat = _Heartbeat(
                    client, stats.worker, interval
                ).start()
            stats.leases += len(jobs)
            if jobs:
                # One batched store pass covers the whole lease: the
                # cache checks and dependency reads in run_one become
                # memory hits, so a remote store costs ceil(N / batch)
                # round trips per lease instead of one per artifact.
                wanted = []
                for job in jobs:
                    wanted.append((job["kind"], job["key"]))
                    wanted.extend(zip(job["dep_kinds"], job["deps"]))
                store_op(lambda: store.prefetch(wanted))
            for job in jobs:
                notify("lease", job)
            for index, job in enumerate(jobs):
                if stop.is_set():
                    # Graceful drain: hand unstarted leases back.
                    for unstarted in jobs[index:]:
                        client.complete(
                            stats.worker, unstarted["key"], "released"
                        )
                        stats.released += 1
                        notify("released", unstarted)
                    break
                run_one(job)
            if stop.is_set():
                break
            if not jobs:
                if reply["outstanding"] == 0 and exit_when_idle:
                    break
                sleep(poll_s)
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        stats.drained = stop.is_set()
        stats.wall_s = time.perf_counter() - t0
    return stats
