"""Fair multiplexing of many tenant runs over one fleet coordinator.

The job service (:mod:`repro.orchestration.service`) accepts sweeps
from many tenants and executes them on one shared worker pool and one
shared artifact store.  :class:`FairScheduler` is the scheduling policy
that makes this multi-tenant: it subclasses
:class:`~repro.orchestration.coordinator.FleetCoordinator` — keeping
every lease/heartbeat/attempt-budget invariant the fleet tests pin —
and replaces only the *pick order* (the ``_select_ready`` hook) with a
round-robin across registered runs, so one tenant's thousand-job sweep
cannot starve another tenant's ten-job run.

Because jobs are content-addressed, two runs submitting overlapping
DAGs share the overlap automatically (``enqueue`` is idempotent); the
scheduler additionally keeps a *charge* ledger — the run whose
fair-share slot first scheduled a job — so per-run manifests can report
"computed" exactly once fleet-wide: for two overlapping runs A and B,
``computed_A + computed_B == len(keys(A) | keys(B))`` on a cold store,
which is the acceptance suite's zero-duplicate-work proof.

Cancellation (:meth:`FairScheduler.cancel_run`) withdraws only the
jobs no other live run needs: content addressing makes the shared-ness
check a set intersection, and dependents of an exclusive job are
provably exclusive too (any run needing the dependent plans its whole
dependency closure, so it would share the ancestor as well), so the
cascade in :meth:`~repro.orchestration.coordinator.FleetCoordinator
.withdraw` never touches another tenant's work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.orchestration.coordinator import FleetCoordinator, _FleetJob

#: Per-run scheduling states (derived from the run's job states).
RUN_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclass
class _Run:
    """One registered run's bookkeeping inside the scheduler."""

    run_id: str
    tenant: str
    keys: List[str]  # the run's job keys, plan (= topo) order
    key_set: Set[str] = field(default_factory=set)
    created_s: float = 0.0
    cancelled: bool = False

    def __post_init__(self) -> None:
        if not self.key_set:
            self.key_set = set(self.keys)


class FairScheduler(FleetCoordinator):
    """Round-robin fair scheduling across registered runs.

    Every lease grant walks the live runs in rotating order and takes
    at most one ready job per run per round, so concurrent runs make
    proportional progress regardless of submission order or size.  The
    job a slot schedules is *charged* to that run (first charge wins —
    re-leases after an expiry keep the original attribution), which is
    what lets the service report shared jobs as ``computed`` in exactly
    one tenant's manifest and ``cached`` in every other.

    Ready jobs that belong to no registered run (a DAG enqueued through
    the raw fleet protocol next to the service's runs) are granted
    after the fair rounds, in insertion order, so mixing both protocols
    on one coordinator starves neither.
    """

    def __init__(
        self,
        lease_ttl_s: float = 60.0,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(
            lease_ttl_s=lease_ttl_s, max_attempts=max_attempts, clock=clock
        )
        self._runs: Dict[str, _Run] = {}  # guarded-by: _lock
        self._rr_offset = 0  # guarded-by: _lock — round-robin start slot
        self._charged: Dict[str, str] = {}  # guarded-by: _lock — key -> run

    # -- run registry ------------------------------------------------------
    def register_run(
        self, run_id: str, tenant: str, rows: List[dict]
    ) -> dict:
        """Register a run and enqueue its serialized DAG.

        ``rows`` are :func:`~repro.orchestration.coordinator
        .serialize_graph` rows in topological order.  Jobs another run
        already enqueued are shared, not duplicated (the reply's
        ``known`` counter says how many); jobs a cancelled run withdrew
        are resurrected.  Returns the enqueue summary.
        """
        with self._lock:
            if run_id in self._runs:
                raise ValueError(f"run id {run_id!r} already registered")
            self._runs[run_id] = _Run(
                run_id=run_id,
                tenant=tenant,
                keys=[row["key"] for row in rows],
                created_s=self._clock(),
            )
        # enqueue takes the (non-reentrant) coordinator lock itself; in
        # the gap the run's keys are simply not ready yet, which every
        # caller already tolerates (the fleet protocol is pull-based).
        return self.enqueue(rows)

    # -- the scheduling-policy hook ----------------------------------------
    def _select_ready(self, max_jobs: int) -> List[_FleetJob]:  # holds: _lock
        live = [
            run_id
            for run_id, run in self._runs.items()
            if not run.cancelled
        ]
        granted: List[_FleetJob] = []
        taken: Set[str] = set()
        if live:
            # One ready job per run per round, rotating the start slot
            # between calls so no run is permanently "first".
            cursors = {run_id: 0 for run_id in live}
            offset = self._rr_offset % len(live)
            self._rr_offset = (self._rr_offset + 1) % len(live)
            progressed = True
            while progressed and len(granted) < max_jobs:
                progressed = False
                for slot in range(len(live)):
                    if len(granted) >= max_jobs:
                        break
                    run_id = live[(offset + slot) % len(live)]
                    run = self._runs[run_id]
                    cursor = cursors[run_id]
                    while cursor < len(run.keys):
                        key = run.keys[cursor]
                        cursor += 1
                        job = self._jobs[key]
                        if job.state == "ready" and key not in taken:
                            granted.append(job)
                            taken.add(key)
                            self._charged.setdefault(key, run_id)
                            progressed = True
                            break
                    cursors[run_id] = cursor
        if len(granted) < max_jobs:
            # Orphan jobs (raw fleet-protocol DAGs) after the fair pass.
            for job in super()._select_ready(max_jobs):
                if len(granted) >= max_jobs:
                    break
                if job.key not in taken:
                    granted.append(job)
                    taken.add(job.key)
        return granted

    # -- per-run views -----------------------------------------------------
    def run_snapshot(self, run_id: str) -> dict:
        """One consistent view of a run's scheduling state.

        Everything the service layer needs to answer status, results
        and manifest requests: per-key states and completion results,
        the keys charged to this run, the run-filtered completion and
        failure ledgers, and the derived per-run counts / run state.
        """
        with self._lock:
            self._expire(self._clock())
            run = self._runs.get(run_id)
            if run is None:
                raise ValueError(f"unknown run id {run_id!r}")
            states = {key: self._jobs[key].state for key in run.keys}
            results = {key: self._jobs[key].result for key in run.keys}
            charged = [
                key
                for key in run.keys
                if self._charged.get(key) == run_id
            ]
            entries = [
                dict(entry)
                for entry in self.entries
                if entry["key"] in run.key_set
            ]
            failures = [
                dict(row)
                for row in self.failures
                if row["key"] in run.key_set
            ]
            counts = {
                state: sum(1 for s in states.values() if s == state)
                for state in ("pending", "ready", "leased", "done",
                              "failed", "cancelled")
            }
            counts["total"] = len(run.keys)
            counts["outstanding"] = (
                counts["total"]
                - counts["done"]
                - counts["failed"]
                - counts["cancelled"]
            )
            if run.cancelled:
                state = "cancelled"
            elif counts["outstanding"] == 0:
                state = "failed" if counts["failed"] else "done"
            elif counts["leased"] or counts["done"]:
                state = "running"
            else:
                state = "queued"
            return {
                "run_id": run_id,
                "tenant": run.tenant,
                "state": state,
                "cancelled": run.cancelled,
                "counts": counts,
                "states": states,
                "results": results,
                "charged": charged,
                "entries": entries,
                "failures": failures,
                "lease_ttl_s": self.lease_ttl_s,
                "max_attempts": self.max_attempts,
            }

    def cancel_run(self, run_id: str) -> dict:
        """Cancel a run: withdraw every queued job no other run needs.

        Jobs shared with another live run keep running (that tenant
        still wants them); jobs already leased finish (cancellation
        never interrupts a worker — their artifacts land in the shared
        store where they benefit everyone).  Idempotent.
        """
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                raise ValueError(f"unknown run id {run_id!r}")
            if run.cancelled:
                return {"run_id": run_id, "cancelled": 0, "skipped": 0,
                        "already_cancelled": True}
            run.cancelled = True
            shared: Set[str] = set()
            for other in self._runs.values():
                if other.run_id != run_id and not other.cancelled:
                    shared |= other.key_set & run.key_set
            exclusive = [key for key in run.keys if key not in shared]
        # withdraw takes the coordinator lock itself (non-reentrant);
        # a run registering in the gap resurrects any withdrawn
        # overlap via enqueue, so the two-step stays safe.
        reply = self.withdraw(exclusive)
        return {
            "run_id": run_id,
            "cancelled": reply["cancelled"],
            "skipped": reply["skipped"],
            "shared": len(run.keys) - len(exclusive),
            "already_cancelled": False,
        }
