"""``repro serve-cache``: a tiny HTTP artifact-cache server (stdlib only).

One process serves one :class:`~repro.orchestration.backends
.StoreBackend` (directory or SQLite) to any number of sweep machines
speaking the matching :class:`~repro.orchestration.backends
.RemoteHTTPBackend` client — typically tiered over a local layer, so
the fleet shares one warm cache while reads stay local after the first
hit.  The protocol is deliberately minimal JSON-over-HTTP:

====================================  =======================================
``GET  /v1/artifact/<kind>/<key>``    canonical JSON text, or 404
``HEAD /v1/artifact/<kind>/<key>``    existence probe (200 / 404)
``PUT  /v1/artifact/<kind>/<key>``    store the request body (must be JSON)
``DELETE /v1/artifact/<kind>/<key>``  remove one artifact (204 / 404)
``GET  /v1/list``                     ``{"entries": [{kind,key,size,mtime}]}``
``GET  /v1/stats``                    ``{"entries": N, "bytes": M}``
``GET  /v1/ping``                     ``{"ok": true, "store": "<url>", "fleet": bool}``
``POST /v1/artifacts/get``            batched GET: ``{"items": [{kind,key}]}``
``POST /v1/artifacts/head``           batched HEAD (items are booleans)
====================================  =======================================

The two batched routes answer one round trip per
:attr:`~repro.orchestration.backends.RemoteHTTPBackend.batch_size`
chunk of keys (reply ``items`` are positional: text-or-null for
``get``, booleans for ``head``); clients feature-detect them and fall
back to per-key calls against servers predating this protocol
revision.

With a :class:`~repro.orchestration.coordinator.FleetCoordinator`
attached (``repro serve-cache --fleet``) the server additionally speaks
the fleet work-stealing protocol on ``/v1/fleet/...`` (``POST enqueue /
lease / heartbeat / complete``, ``GET status`` — see
:mod:`repro.orchestration.coordinator` and ``docs/fleet.md``), so one
process hands out job leases *and* serves the artifacts those jobs
read and write.

Artifact text passes through the server verbatim — it never re-encodes
payloads — so a cache populated over HTTP is byte-identical to one the
same backend would have written locally.  The server is a
:class:`http.server.ThreadingHTTPServer`; both shipped backends are
thread-safe (atomic renames / a locked WAL connection).  Handler
threads are protected from abusive or broken clients by a configurable
request-body cap (HTTP 413) and a per-connection socket timeout, so a
stalled upload cannot wedge a thread forever.  There is no
authentication: serve on a trusted network (the typical deployment is
one lab/CI subnet), or front it with a reverse proxy.  See
``docs/storage.md`` for the two-machine walkthrough.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional, Tuple
from urllib.parse import unquote

from repro.orchestration.backends import StoreBackend, backend_from_url

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.orchestration.coordinator import FleetCoordinator

#: kind / key path segments must be plain tokens — this is what keeps a
#: DirBackend-backed server inside its root (no separators, no dotfiles).
_SAFE_SEGMENT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: Refuse absurd artifact uploads rather than buffering them (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Default per-connection socket timeout: a client that stops sending
#: mid-request is disconnected instead of pinning a handler thread.
DEFAULT_SOCKET_TIMEOUT_S = 60.0


#: POST routes of the fleet protocol → coordinator verb.
_FLEET_VERBS = {
    "/v1/fleet/enqueue": "enqueue",
    "/v1/fleet/lease": "lease",
    "/v1/fleet/heartbeat": "heartbeat",
    "/v1/fleet/complete": "complete",
    "/v1/fleet/withdraw": "withdraw",
}

_NO_FLEET = (
    "fleet endpoints disabled; restart the server with "
    "`repro serve-cache --fleet`"
)

#: POST routes of the batched artifact protocol → verb.
_BATCH_VERBS = {
    "/v1/artifacts/get": "get",
    "/v1/artifacts/head": "head",
}

#: Refuse batch requests larger than any sane client chunk — the
#: shipped client never sends more than its ``batch_size`` (default
#: 128), so this only trips hand-rolled abuse.
MAX_BATCH_ITEMS = 4096


def _parse_artifact_path(path: str) -> Optional[Tuple[str, str]]:
    """``/v1/artifact/<kind>/<key>`` → ``(kind, key)``, else ``None``."""
    parts = path.split("/")
    if len(parts) != 5 or parts[:3] != ["", "v1", "artifact"]:
        return None
    kind, key = unquote(parts[3]), unquote(parts[4])
    if not (_SAFE_SEGMENT.match(kind) and _SAFE_SEGMENT.match(key)):
        return None
    return kind, key


class _CacheRequestHandler(BaseHTTPRequestHandler):
    """Routes the /v1 protocol onto ``self.server.backend``."""

    server_version = "repro-cache/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------
    @property
    def backend(self) -> StoreBackend:
        return self.server.backend

    def setup(self) -> None:
        # Per-connection socket timeout: handle_one_request treats a
        # timed-out read as "close the connection", so a stalled client
        # releases its handler thread instead of wedging it.
        self.timeout = self.server.socket_timeout_s
        BaseHTTPRequestHandler.setup(self)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.server.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send(self, status: int, body: bytes = b"",
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body and self.command != "HEAD":
            self.wfile.write(body)

    def _send_json(self, status: int, document: dict) -> None:
        # repro: lint-ignore[RPR002] protocol responses are transport;
        # artifact payload bytes pass through _send verbatim, unsorted
        self._send(status, json.dumps(document).encode("utf-8"))

    def _bad_request(self, message: str) -> None:
        self._send_json(400, {"error": message})

    def _read_body(self) -> Optional[bytes]:
        """The request body, bounded; sends the error response on None.

        Enforces the server's configurable ``max_body_bytes`` (HTTP 413)
        alongside the missing/negative Content-Length rejections, so a
        handler thread never buffers an absurd upload or blocks forever
        on a length the client will never send.
        """
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._bad_request("missing Content-Length")
            return None
        if length < 0:
            # read(-1) would block on the socket until the client
            # hangs up — refuse instead of tying up a handler thread.
            self._bad_request("negative Content-Length")
            return None
        if length > self.server.max_body_bytes:
            self._send_json(
                413,
                {
                    "error": f"body of {length} bytes exceeds the "
                    f"server limit of {self.server.max_body_bytes}"
                },
            )
            return None
        return self.rfile.read(length)

    # -- verbs ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if self.path == "/v1/ping":
            self._send_json(
                200,
                {
                    "ok": True,
                    "store": self.backend.describe(),
                    "fleet": self.server.coordinator is not None,
                },
            )
            return
        if self.path == "/v1/fleet/status":
            coordinator = self.server.coordinator
            if coordinator is None:
                self._send_json(404, {"error": _NO_FLEET})
                return
            self._send_json(200, coordinator.status())
            return
        if self.path == "/v1/list":
            entries = [
                {"kind": e.kind, "key": e.key, "size": e.size, "mtime": e.mtime}
                for e in self.backend.entries()
            ]
            self._send_json(200, {"entries": entries})
            return
        if self.path == "/v1/stats":
            entries = self.backend.entries()
            self._send_json(
                200,
                {
                    "entries": len(entries),
                    "bytes": sum(e.size for e in entries),
                },
            )
            return
        located = _parse_artifact_path(self.path)
        if located is None:
            self._bad_request(f"unrecognized path {self.path!r}")
            return
        text = self.backend.get_text(*located)
        if text is None:
            self._send_json(404, {"error": "not found"})
            return
        self._send(200, text.encode("utf-8"))

    def do_HEAD(self) -> None:  # noqa: N802
        located = _parse_artifact_path(self.path)
        if located is None:
            self._bad_request(f"unrecognized path {self.path!r}")
            return
        self._send(200 if self.backend.has(*located) else 404)

    def do_PUT(self) -> None:  # noqa: N802
        located = _parse_artifact_path(self.path)
        if located is None:
            self._bad_request(f"unrecognized path {self.path!r}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            text = body.decode("utf-8")
            json.loads(text)  # validate only; stored verbatim
        except (UnicodeDecodeError, ValueError):
            self._bad_request("body is not valid JSON")
            return
        self.backend.put_text(*located, text)
        self._send(204)

    def _do_batch(self, verb: str) -> None:
        """Batched multi-key artifact reads (``/v1/artifacts/get|head``)."""
        body = self._read_body()
        if body is None:
            return
        try:
            document = json.loads(body.decode("utf-8"))
            items = document["items"]
            if not isinstance(items, list):
                raise ValueError("items must be a list")
        except (UnicodeDecodeError, ValueError, TypeError, KeyError):
            self._bad_request("body is not {\"items\": [...]}")
            return
        if len(items) > MAX_BATCH_ITEMS:
            self._bad_request(
                f"batch of {len(items)} items exceeds the server "
                f"limit of {MAX_BATCH_ITEMS}"
            )
            return
        pairs = []
        for item in items:
            if not isinstance(item, dict):
                self._bad_request("each item must be {\"kind\", \"key\"}")
                return
            kind, key = str(item.get("kind", "")), str(item.get("key", ""))
            if not (_SAFE_SEGMENT.match(kind) and _SAFE_SEGMENT.match(key)):
                self._bad_request(f"invalid kind/key {kind!r}/{key!r}")
                return
            pairs.append((kind, key))
        if verb == "head":
            probed = self.backend.has_many(pairs)
            self._send_json(
                200, {"items": [probed[pair] for pair in pairs]}
            )
            return
        fetched = self.backend.get_many(pairs)
        self._send_json(200, {"items": [fetched[pair] for pair in pairs]})

    def do_POST(self) -> None:  # noqa: N802
        """The fleet and batched-artifact protocols."""
        batch_verb = _BATCH_VERBS.get(self.path)
        if batch_verb is not None and self.server.batch_endpoints:
            self._do_batch(batch_verb)
            return
        verb = _FLEET_VERBS.get(self.path)
        if verb is None:
            self._bad_request(f"unrecognized path {self.path!r}")
            return
        coordinator = self.server.coordinator
        if coordinator is None:
            self._send_json(404, {"error": _NO_FLEET})
            return
        body = self._read_body()
        if body is None:
            return
        try:
            document = json.loads(body.decode("utf-8"))
            if not isinstance(document, dict):
                raise ValueError("expected a JSON object")
        except (UnicodeDecodeError, ValueError):
            self._bad_request("body is not a JSON object")
            return
        try:
            if verb == "enqueue":
                reply = coordinator.enqueue(document["jobs"])
            elif verb == "lease":
                reply = coordinator.lease(
                    document["worker"], int(document.get("max_jobs", 1))
                )
            elif verb == "heartbeat":
                reply = coordinator.heartbeat(document["worker"])
            elif verb == "withdraw":
                reply = coordinator.withdraw(document["keys"])
            else:  # complete
                reply = coordinator.complete(
                    document["worker"],
                    document["key"],
                    document["status"],
                    error=document.get("error"),
                )
        except (KeyError, TypeError, ValueError) as exc:
            self._bad_request(f"invalid fleet request: {exc}")
            return
        self._send_json(200, reply)

    def do_DELETE(self) -> None:  # noqa: N802
        located = _parse_artifact_path(self.path)
        if located is None:
            self._bad_request(f"unrecognized path {self.path!r}")
            return
        if self.backend.delete(*located):
            self._send(204)
        else:
            self._send_json(404, {"error": "not found"})


class CacheServer:
    """A running ``serve-cache`` instance (embeddable; used by the CLI).

    Binds on construction — ``port=0`` picks an ephemeral port, read
    back from :attr:`port` / :attr:`url` — and serves from a background
    thread after :meth:`start`.  Usable as a context manager::

        with CacheServer(backend_from_url("dir:.repro_cache")) as server:
            client = RemoteHTTPBackend(server.url)
            ...

    The CLI instead calls :meth:`serve_forever` on the main thread.
    """

    def __init__(
        self,
        backend: StoreBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        coordinator: Optional["FleetCoordinator"] = None,
        max_body_bytes: int = MAX_BODY_BYTES,
        socket_timeout_s: Optional[float] = DEFAULT_SOCKET_TIMEOUT_S,
        batch_endpoints: bool = True,
        handler_class: type = _CacheRequestHandler,
    ) -> None:
        self.backend = backend
        self.coordinator = coordinator
        # ``batch_endpoints=False`` simulates a server predating the
        # batched-artifact protocol (mixed-version fleet tests);
        # ``handler_class`` lets the job service layer its routes on
        # top of this protocol without a second HTTP server.
        self._httpd = ThreadingHTTPServer((host, port), handler_class)
        self._httpd.daemon_threads = True
        self._httpd.backend = backend
        self._httpd.quiet = quiet
        self._httpd.coordinator = coordinator
        self._httpd.max_body_bytes = max_body_bytes
        self._httpd.socket_timeout_s = socket_timeout_s
        self._httpd.batch_endpoints = batch_endpoints
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """The base URL clients pass to ``--cache-url``."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CacheServer":
        """Serve from a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut the server down and release the socket; idempotent.

        ``shutdown()`` handshakes with a *running* ``serve_forever``
        loop, so it is only issued when the background thread owns one;
        after a foreground ``serve_forever`` returned (CLI Ctrl-C) the
        socket just needs closing.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()


def serve_cache(
    store_url: str,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = False,
    fleet: bool = False,
    lease_ttl_s: float = 60.0,
    max_attempts: int = 3,
    max_body_bytes: int = MAX_BODY_BYTES,
    socket_timeout_s: Optional[float] = DEFAULT_SOCKET_TIMEOUT_S,
) -> CacheServer:
    """Open ``store_url`` and return a bound (not yet serving) server.

    With ``fleet=True`` a fresh
    :class:`~repro.orchestration.coordinator.FleetCoordinator` (lease
    TTL ``lease_ttl_s``, per-job budget ``max_attempts``) is attached,
    enabling the ``/v1/fleet`` work-stealing endpoints.
    """
    coordinator = None
    if fleet:
        from repro.orchestration.coordinator import FleetCoordinator

        coordinator = FleetCoordinator(
            lease_ttl_s=lease_ttl_s, max_attempts=max_attempts
        )
    return CacheServer(
        backend_from_url(store_url),
        host=host,
        port=port,
        quiet=quiet,
        coordinator=coordinator,
        max_body_bytes=max_body_bytes,
        socket_timeout_s=socket_timeout_s,
    )
