"""Lee-style maze router (Dijkstra over the site grid).

The router connects a set of source sites to a set of target sites under a
per-site cost model:

* free sites cost ``step_cost`` (default 1);
* sites reserved by the routing resonator's own blocks cost
  ``own_cost`` (default 0 — moving inside your own reserved area is free);
* sites reserved by *other* resonators cost ``crossing_cost`` — an
  airbridge (default 12, high enough that routes only bridge when there is
  no way around);
* qubit macro sites are impassable (you cannot bridge over a transmon),
  except that target qubits are reached by touching any site 4-adjacent to
  their footprint.

Used both to count crossings on finished layouts and as the optimizer
``M(W)`` inside the detailed placer (Algorithm 2).

The search runs over **flat site indices** (Enola-style array routing):
per-site entry costs are precomputed into one vectorized cost array from
the :class:`~repro.legalization.bins.BinGrid` occupancy arrays, and the
Dijkstra state (``dist`` / ``prev`` / ``visited``) lives in preallocated
ndarrays reused across routes.  The flat index is column-major
(``col * rows + row``), which makes ascending index order coincide with
ascending ``(col, row)`` tuple order — so heap tie-breaking, and therefore
the returned path, is *identical* to the historical tuple-keyed
implementation (the parity tests in ``tests/routing`` hold both to the
same reference).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.legalization.bins import KIND_BLOCK, KIND_QUBIT, BinGrid


@dataclass
class RouteResult:
    """A routed path and its cost breakdown."""

    path: list  # sites from source to target, inclusive
    cost: float
    crossings: list  # foreign block node-ids stepped on, in path order

    @property
    def num_crossings(self) -> int:
        """Number of airbridges the route needs."""
        return len(self.crossings)


class MazeRouter:
    """Dijkstra router over a :class:`~repro.legalization.bins.BinGrid`.

    One instance can be reused across many routes; its Dijkstra scratch
    buffers are allocated once and reset per call.
    """

    def __init__(
        self,
        bins: BinGrid,
        step_cost: float = 1.0,
        own_cost: float = 0.0,
        crossing_cost: float = 12.0,
    ) -> None:
        if crossing_cost <= step_cost:
            raise ValueError("crossing_cost must exceed step_cost")
        self.bins = bins
        self.step_cost = step_cost
        self.own_cost = own_cost
        self.crossing_cost = crossing_cost
        n = bins.grid.num_sites
        self._cost = np.empty(n, dtype=np.float64)
        self._dist = np.empty(n, dtype=np.float64)
        self._prev = np.empty(n, dtype=np.int32)
        self._visited = np.empty(n, dtype=bool)
        self._is_target = np.empty(n, dtype=bool)

    def _site_cost(self, site: tuple, own_key: tuple, extra_cost=None) -> float:
        """Cost of *entering* a site; None when impassable.

        Retained as the scalar reference cost model (property tests diff
        the vectorized cost array against it).
        """
        owner = self.bins.occupant(*site)
        if owner is None:
            base = self.step_cost
        elif owner[0] == "q":
            return None
        elif owner[0] == "b" and owner[1] == own_key:
            base = self.own_cost
        else:
            base = self.crossing_cost
        if extra_cost is not None and not isinstance(extra_cost, np.ndarray):
            base += extra_cost(site)
        return base

    def _build_cost(self, own_key: tuple, extra_cost, window) -> np.ndarray:
        """Vectorized per-site entry cost; +inf marks impassable sites."""
        bins = self.bins
        kind = bins.kind_flat
        cost = self._cost
        cost[:] = self.step_cost
        cost[kind == KIND_QUBIT] = np.inf
        blocks = kind == KIND_BLOCK
        own_idx = bins.res_key_index(own_key)
        own = blocks & (bins.res_idx_flat == own_idx) if own_idx >= 0 else None
        cost[blocks] = self.crossing_cost
        cost[kind > KIND_BLOCK] = self.crossing_cost
        if own is not None:
            cost[own] = self.own_cost
        if extra_cost is not None:
            if isinstance(extra_cost, np.ndarray):
                cost += extra_cost
            else:
                # Legacy callable: evaluate per passable site (window only).
                grid = bins.grid
                if window is not None:
                    lo_col, lo_row, hi_col, hi_row = window
                else:
                    lo_col, lo_row = 0, 0
                    hi_col, hi_row = grid.cols - 1, grid.rows - 1
                rows = grid.rows
                for col in range(lo_col, hi_col + 1):
                    base = col * rows
                    for row in range(lo_row, hi_row + 1):
                        if np.isfinite(cost[base + row]):
                            cost[base + row] += extra_cost((col, row))
        return cost

    def route(
        self,
        sources: set,
        targets: set,
        own_key: tuple,
        window=None,
        extra_cost=None,
    ) -> RouteResult:
        """Cheapest path from any source site to any target site.

        ``own_key`` is the routing resonator's ``(qi, qj)`` key (its own
        blocks are traversed at ``own_cost``).  ``window`` optionally
        restricts the search to a site-rect ``(lo_col, lo_row, hi_col,
        hi_row)`` inclusive.  ``extra_cost`` is an optional per-site entry
        cost added on top: either a callable ``site -> float`` or a
        precomputed flat overlay array indexed by ``col * rows + row``
        (the detailed placer passes the vectorized form).  Returns None
        when no route exists.
        """
        if not sources or not targets:
            return None
        grid = self.bins.grid
        cols, rows = grid.cols, grid.rows
        n = cols * rows

        cost = self._build_cost(own_key, extra_cost, window)
        is_target = self._is_target
        is_target[:] = False
        for col, row in targets:
            if grid.in_grid(col, row):
                is_target[grid.flat_index(col, row)] = True
        # Targets are always enterable at plain step cost (no overlay).
        cost[is_target] = self.step_cost
        if window is not None:
            lo_col, lo_row, hi_col, hi_row = window
            cost2d = cost.reshape(cols, rows)
            cost2d[:lo_col, :] = np.inf
            cost2d[hi_col + 1 :, :] = np.inf
            cost2d[:, :lo_row] = np.inf
            cost2d[:, hi_row + 1 :] = np.inf

        dist = self._dist
        dist[:] = np.inf
        prev = self._prev
        prev[:] = -1
        visited = self._visited
        visited[:] = False

        heap = []
        for site in sources:
            if not grid.in_grid(*site):
                continue
            if window is not None and not _in_window(site, window):
                continue
            flat = site[0] * rows + site[1]
            dist[flat] = 0.0
            heap.append((0.0, flat))
        heapq.heapify(heap)

        found = -1
        last_col = n - rows
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, i = pop(heap)
            if visited[i]:
                continue
            visited[i] = True
            if is_target[i]:
                found = i
                break
            # Neighbors in (col-1, col+1, row-1, row+1) order.
            if i >= rows:
                j = i - rows
                if not visited[j]:
                    nd = d + cost[j]
                    if nd < dist[j]:
                        dist[j] = nd
                        prev[j] = i
                        push(heap, (nd, j))
            if i < last_col:
                j = i + rows
                if not visited[j]:
                    nd = d + cost[j]
                    if nd < dist[j]:
                        dist[j] = nd
                        prev[j] = i
                        push(heap, (nd, j))
            row = i % rows
            if row > 0:
                j = i - 1
                if not visited[j]:
                    nd = d + cost[j]
                    if nd < dist[j]:
                        dist[j] = nd
                        prev[j] = i
                        push(heap, (nd, j))
            if row < rows - 1:
                j = i + 1
                if not visited[j]:
                    nd = d + cost[j]
                    if nd < dist[j]:
                        dist[j] = nd
                        prev[j] = i
                        push(heap, (nd, j))

        if found < 0:
            return None
        flat_path = [found]
        while prev[flat_path[-1]] >= 0:
            flat_path.append(int(prev[flat_path[-1]]))
        flat_path.reverse()
        path = [divmod(i, rows) for i in flat_path]
        crossings = []
        for site in path:
            owner = self.bins.occupant(*site)
            if owner is not None and owner[0] == "b" and owner[1] != own_key:
                crossings.append(owner)
        return RouteResult(path=path, cost=float(dist[found]), crossings=crossings)


def _in_window(site: tuple, window: tuple) -> bool:
    lo_col, lo_row, hi_col, hi_row = window
    return lo_col <= site[0] <= hi_col and lo_row <= site[1] <= hi_row
