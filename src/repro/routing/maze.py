"""Lee-style maze router (Dijkstra over the site grid).

The router connects a set of source sites to a set of target sites under a
per-site cost model:

* free sites cost ``step_cost`` (default 1);
* sites reserved by the routing resonator's own blocks cost
  ``own_cost`` (default 0 — moving inside your own reserved area is free);
* sites reserved by *other* resonators cost ``crossing_cost`` — an
  airbridge (default 12, high enough that routes only bridge when there is
  no way around);
* qubit macro sites are impassable (you cannot bridge over a transmon),
  except that target qubits are reached by touching any site 4-adjacent to
  their footprint.

Used both to count crossings on finished layouts and as the optimizer
``M(W)`` inside the detailed placer (Algorithm 2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.legalization.bins import BinGrid


@dataclass
class RouteResult:
    """A routed path and its cost breakdown."""

    path: list  # sites from source to target, inclusive
    cost: float
    crossings: list  # foreign block node-ids stepped on, in path order

    @property
    def num_crossings(self) -> int:
        """Number of airbridges the route needs."""
        return len(self.crossings)


class MazeRouter:
    """Dijkstra router over a :class:`~repro.legalization.bins.BinGrid`."""

    def __init__(
        self,
        bins: BinGrid,
        step_cost: float = 1.0,
        own_cost: float = 0.0,
        crossing_cost: float = 12.0,
    ) -> None:
        if crossing_cost <= step_cost:
            raise ValueError("crossing_cost must exceed step_cost")
        self.bins = bins
        self.step_cost = step_cost
        self.own_cost = own_cost
        self.crossing_cost = crossing_cost

    def _site_cost(self, site: tuple, own_key: tuple, extra_cost=None) -> float:
        """Cost of *entering* a site; None when impassable."""
        owner = self.bins.occupant(*site)
        if owner is None:
            base = self.step_cost
        elif owner[0] == "q":
            return None
        elif owner[0] == "b" and owner[1] == own_key:
            base = self.own_cost
        else:
            base = self.crossing_cost
        if extra_cost is not None:
            base += extra_cost(site)
        return base

    def route(
        self,
        sources: set,
        targets: set,
        own_key: tuple,
        window=None,
        extra_cost=None,
    ) -> RouteResult:
        """Cheapest path from any source site to any target site.

        ``own_key`` is the routing resonator's ``(qi, qj)`` key (its own
        blocks are traversed at ``own_cost``).  ``window`` optionally
        restricts the search to a site-rect ``(lo_col, lo_row, hi_col,
        hi_row)`` inclusive.  ``extra_cost`` is an optional callable
        ``site -> float`` added on entry (the detailed placer uses it to
        steer away from frequency hotspots).  Returns None when no route
        exists.
        """
        if not sources or not targets:
            return None
        grid = self.bins.grid
        target_set = set(targets)
        dist = {}
        prev = {}
        heap = []
        for site in sources:
            if window is not None and not _in_window(site, window):
                continue
            dist[site] = 0.0
            heapq.heappush(heap, (0.0, site))

        visited = set()
        found = None
        while heap:
            d, site = heapq.heappop(heap)
            if site in visited:
                continue
            visited.add(site)
            if site in target_set:
                found = site
                break
            for neighbor in grid.neighbors4(*site):
                if neighbor in visited:
                    continue
                if window is not None and not _in_window(neighbor, window):
                    continue
                is_target = neighbor in target_set
                if is_target:
                    cost = self.step_cost  # targets are always enterable
                else:
                    cost = self._site_cost(neighbor, own_key, extra_cost)
                    if cost is None:
                        continue
                nd = d + cost
                if neighbor not in dist or nd < dist[neighbor]:
                    dist[neighbor] = nd
                    prev[neighbor] = site
                    heapq.heappush(heap, (nd, neighbor))

        if found is None:
            return None
        path = [found]
        while path[-1] in prev:
            path.append(prev[path[-1]])
        path.reverse()
        crossings = []
        for site in path:
            owner = self.bins.occupant(*site)
            if owner is not None and owner[0] == "b" and owner[1] != own_key:
                crossings.append(owner)
        return RouteResult(path=path, cost=dist[found], crossings=crossings)


def _in_window(site: tuple, window: tuple) -> bool:
    lo_col, lo_row, hi_col, hi_row = window
    return lo_col <= site[0] <= hi_col and lo_row <= site[1] <= hi_row
