"""Maze routing over the site grid and the resonator crossing counter.

Crossings matter because each one needs an airbridge, and airbridges both
add loss and couple insufficiently detuned resonators (paper Section II-B).
The router is a Lee/Dijkstra search whose cost model charges heavily for
stepping onto another resonator's reserved blocks; the crossing counter
routes every resonator's connection (qubit → clusters → qubit) and counts
the foreign blocks the route must bridge.
"""

from repro.routing.maze import MazeRouter, RouteResult
from repro.routing.crossings import count_crossings, resonator_crossings, CrossingReport

__all__ = [
    "MazeRouter",
    "RouteResult",
    "count_crossings",
    "resonator_crossings",
    "CrossingReport",
]
