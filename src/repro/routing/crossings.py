"""Count resonator crossings (the ``X`` metric of Fig. 9 / Table III).

Each resonator must electrically connect qubit_i → its reserved wire
area → qubit_j, with all of its block clusters joined up.  We model the
connection as the minimum spanning tree over {qubit_i centre, qubit_j
centre, cluster centroids} with straight segments — the shortest trace a
router would lay.  A crossing (airbridge) is charged whenever

* a trace segment passes **over another resonator's reserved block**
  (each distinct foreign block bridged counts once per resonator), or
* two different resonators' trace segments **properly intersect** in free
  space (counted once per intersection).

Unified resonators sitting snug between their qubits have short two-hop
traces that rarely bridge anything; layouts that scatter a resonator into
distant clusters must chord across the congested pocket that caused the
split — over exactly the foreign blocks that filled it (paper Section
II-B).  Intersections *at* a shared qubit endpoint are not counted — two
couplers legitimately meet at their common qubit pad.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.segments import segments_intersect
from repro.legalization.bins import BinGrid
from repro.netlist.netlist import QuantumNetlist
from repro.netlist.traces import resonator_trace


@dataclass
class CrossingReport:
    """Crossing analysis of one layout."""

    per_resonator: dict = field(default_factory=dict)
    pair_crossings: dict = field(default_factory=dict)
    bridged_blocks: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Layout-level ``X``: block bridges + trace intersections."""
        return sum(len(v) for v in self.bridged_blocks.values()) + sum(
            self.pair_crossings.values()
        )


def _bridged_blocks(trace: list, own_key: tuple, bins: BinGrid) -> set:
    """Foreign blocks any trace segment passes over (sampled walk).

    Segments are sampled at 0.45 ``lb`` steps, fine enough that no unit
    site the segment traverses is skipped.
    """
    grid = bins.grid
    lb = grid.lb
    bridged = set()
    for (x1, y1), (x2, y2) in trace:
        length = ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        steps = max(1, int(length / (0.45 * lb)))
        for k in range(steps + 1):
            t = k / steps
            x = x1 + (x2 - x1) * t
            y = y1 + (y2 - y1) * t
            col = int(x // lb)
            row = int(y // lb)
            if not grid.in_grid(col, row):
                continue
            owner = bins.occupant(col, row)
            if owner is not None and owner[0] == "b" and owner[1] != own_key:
                bridged.add(owner)
    return bridged


def count_crossings(
    netlist: QuantumNetlist,
    bins: BinGrid,
    lb: float = None,
) -> CrossingReport:
    """Crossing report for the whole layout."""
    lb = bins.grid.lb if lb is None else lb
    report = CrossingReport()
    traces = {
        r.key: resonator_trace(netlist, r, lb) for r in netlist.resonators
    }
    keys = sorted(traces)
    per_res = {key: 0 for key in keys}
    for key in keys:
        bridged = _bridged_blocks(traces[key], key, bins)
        report.bridged_blocks[key] = bridged
        per_res[key] += len(bridged)
    for a_pos, key_a in enumerate(keys):
        for key_b in keys[a_pos + 1 :]:
            count = 0
            for seg_a in traces[key_a]:
                for seg_b in traces[key_b]:
                    if segments_intersect(*seg_a, *seg_b):
                        count += 1
            if count:
                report.pair_crossings[(key_a, key_b)] = count
                per_res[key_a] += count
                per_res[key_b] += count
    report.per_resonator = per_res
    return report


def resonator_crossings(
    netlist: QuantumNetlist,
    resonator,
    bins: BinGrid,
) -> int:
    """Crossings involving one resonator's trace (for DP window checks)."""
    lb = bins.grid.lb
    trace = resonator_trace(netlist, resonator, lb)
    count = len(_bridged_blocks(trace, resonator.key, bins))
    for other in netlist.resonators:
        if other.key == resonator.key:
            continue
        other_trace = resonator_trace(netlist, other, lb)
        for seg_a in trace:
            for seg_b in other_trace:
                if segments_intersect(*seg_a, *seg_b):
                    count += 1
    return count
