"""Count resonator crossings (the ``X`` metric of Fig. 9 / Table III).

Each resonator must electrically connect qubit_i → its reserved wire
area → qubit_j, with all of its block clusters joined up.  We model the
connection as the minimum spanning tree over {qubit_i centre, qubit_j
centre, cluster centroids} with straight segments — the shortest trace a
router would lay.  A crossing (airbridge) is charged whenever

* a trace segment passes **over another resonator's reserved block**
  (each distinct foreign block bridged counts once per resonator), or
* two different resonators' trace segments **properly intersect** in free
  space (counted once per intersection).

Unified resonators sitting snug between their qubits have short two-hop
traces that rarely bridge anything; layouts that scatter a resonator into
distant clusters must chord across the congested pocket that caused the
split — over exactly the foreign blocks that filled it (paper Section
II-B).  Intersections *at* a shared qubit endpoint are not counted — two
couplers legitimately meet at their common qubit pad.

Hot-path notes: the sampled bridged-block walk gathers the BinGrid's flat
occupancy arrays in one vectorized pass, and all entry points accept a
precomputed ``traces`` dict so callers that evaluate the same layout many
times (the detailed placer) never rebuild the MST traces.  Trace-pair
intersection tests are pruned with bounding boxes — disjoint boxes cannot
properly intersect, so pruning is exact — and candidate pairs come from a
sort-by-x sweep over the trace bboxes (:func:`_candidate_pairs`) instead
of the historical all-pairs scan: traces enter the sweep in ascending
``xlo`` order, leave the active set once their ``xhi`` falls behind the
sweep line, and only y-overlapping active pairs survive.  The surviving
pair set is exactly the non-disjoint-bbox set, so crossing counts are
unchanged; the scan does O(R log R) sorting plus work proportional to
the *x-overlapping* pairs (worst case — everything sharing one x-range —
still O(R²), but typical legalized layouts spread traces in x).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.segments import proper_crossings_mask, segments_intersect
from repro.legalization.bins import KIND_BLOCK, BinGrid
from repro.netlist.clusters import block_cluster_map
from repro.netlist.netlist import QuantumNetlist
from repro.netlist.traces import resonator_trace


@dataclass
class CrossingReport:
    """Crossing analysis of one layout.

    ``bridged_blocks`` holds **sorted lists** of bridged foreign block
    ids, so consumers that fold over them (the Eq. 7 fidelity product)
    see the same order in every process — set iteration order would vary
    with per-process string hash randomization, which matters once
    layouts are evaluated in worker pools.
    """

    per_resonator: dict = field(default_factory=dict)
    pair_crossings: dict = field(default_factory=dict)
    bridged_blocks: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Layout-level ``X``: block bridges + trace intersections."""
        return sum(len(v) for v in self.bridged_blocks.values()) + sum(
            self.pair_crossings.values()
        )


def trace_site_indices(trace: list, bins: BinGrid) -> np.ndarray:
    """Flat site indices a trace's sampled walk touches (in walk order).

    Segments are sampled at 0.45 ``lb`` steps, fine enough that no unit
    site the segment traverses is skipped; out-of-grid samples are
    dropped.  The result depends only on the trace geometry, so callers
    may cache it per trace.
    """
    grid = bins.grid
    lb = grid.lb
    chunks = []
    for (x1, y1), (x2, y2) in trace:
        length = ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        steps = max(1, int(length / (0.45 * lb)))
        t = np.arange(steps + 1, dtype=np.float64) / steps
        x = x1 + (x2 - x1) * t
        y = y1 + (y2 - y1) * t
        col = np.floor_divide(x, lb).astype(np.int64)
        row = np.floor_divide(y, lb).astype(np.int64)
        ok = (col >= 0) & (col < grid.cols) & (row >= 0) & (row < grid.rows)
        chunks.append(col[ok] * grid.rows + row[ok])
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def trace_bbox(trace: list) -> tuple:
    """``(xlo, ylo, xhi, yhi)`` bounding box of a trace (None when empty)."""
    if not trace:
        return None
    xs = [p[0] for seg in trace for p in seg]
    ys = [p[1] for seg in trace for p in seg]
    return (min(xs), min(ys), max(xs), max(ys))


def _bboxes_disjoint(a: tuple, b: tuple) -> bool:
    if a is None or b is None:
        return True
    return a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1]


def _candidate_pairs(keys: list, bboxes: dict) -> list:
    """Sorted key pairs whose trace bboxes overlap (sweep over x).

    Exactly the pairs the all-pairs ``_bboxes_disjoint`` filter would
    keep: a later trace (larger ``xlo``) x-overlaps an active one iff the
    active ``xhi`` has not fallen behind the sweep line, and touching
    boxes count as overlapping, matching the strict inequalities of
    ``_bboxes_disjoint``.  Empty (``None``) bboxes never overlap.
    """
    events = sorted(
        ((bboxes[key], key) for key in keys if bboxes[key] is not None),
        key=lambda item: item[0][0],
    )
    active = []
    pairs = []
    for bbox, key in events:
        active = [item for item in active if item[0][2] >= bbox[0]]
        for other_bbox, other_key in active:
            if not (bbox[3] < other_bbox[1] or other_bbox[3] < bbox[1]):
                pairs.append(
                    (key, other_key) if key < other_key else (other_key, key)
                )
        active.append((bbox, key))
    pairs.sort()
    return pairs


def _bridged_blocks(
    trace: list, own_key: tuple, bins: BinGrid, samples: np.ndarray = None
) -> set:
    """Foreign blocks any trace segment passes over (sampled walk)."""
    if samples is None:
        samples = trace_site_indices(trace, bins)
    if samples.size == 0:
        return set()
    foreign = bins.kind_flat[samples] == KIND_BLOCK
    own_idx = bins.res_key_index(own_key)
    if own_idx >= 0:
        foreign &= bins.res_idx_flat[samples] != own_idx
    owners = bins.owners
    return {owners[idx] for idx in np.unique(bins.owner_idx_flat[samples][foreign])}


def _trace_intersections(trace_a: list, trace_b: list) -> int:
    """Proper segment intersections between two traces (scalar kernel).

    Retained for the incremental :func:`resonator_crossings` path (one
    trace against the layout); the whole-layout scan batches every
    surviving candidate pair through :func:`_pair_intersection_counts`
    instead, which is bit-equal per pair.
    """
    count = 0
    for seg_a in trace_a:
        for seg_b in trace_b:
            if segments_intersect(*seg_a, *seg_b):
                count += 1
    return count


def _pair_intersection_counts(traces: dict, pairs: list) -> dict:
    """``{pair: intersections}`` for all candidate pairs in one pass.

    Every trace's segments are stacked once; each pair contributes its
    full segment cross product as flat index arrays (first trace outer,
    second inner — the scalar loop order), and one
    :func:`~repro.geometry.segments.proper_crossings_mask` call tests all
    pairs' segment combinations together.  Per-pair counts come from a
    ``bincount`` over the surviving rows, so each count equals the
    scalar :func:`_trace_intersections` for that pair exactly.
    """
    if not pairs:
        return {}
    keys = sorted({key for pair in pairs for key in pair})
    seg_start = {}
    firsts = []
    seconds = []
    total = 0
    for key in keys:
        trace = traces[key]
        seg_start[key] = total
        for a, b in trace:
            firsts.append(a)
            seconds.append(b)
        total += len(trace)
    e1 = np.asarray(firsts, dtype=np.float64).reshape(total, 2)
    e2 = np.asarray(seconds, dtype=np.float64).reshape(total, 2)

    num_a = np.array([len(traces[a]) for a, _ in pairs], dtype=np.intp)
    num_b = np.array([len(traces[b]) for _, b in pairs], dtype=np.intp)
    start_a = np.array([seg_start[a] for a, _ in pairs], dtype=np.intp)
    start_b = np.array([seg_start[b] for _, b in pairs], dtype=np.intp)
    rows_per_pair = num_a * num_b
    offsets = np.concatenate([[0], np.cumsum(rows_per_pair)])
    rows = int(offsets[-1])
    if rows == 0:
        return {pair: 0 for pair in pairs}
    pair_id = np.repeat(np.arange(len(pairs), dtype=np.intp), rows_per_pair)
    local = np.arange(rows, dtype=np.intp) - offsets[pair_id]
    ai = start_a[pair_id] + local // num_b[pair_id]
    bi = start_b[pair_id] + local % num_b[pair_id]
    mask = proper_crossings_mask(e1[ai], e2[ai], e1[bi], e2[bi])
    counts = np.bincount(pair_id[mask], minlength=len(pairs))
    return {pair: int(count) for pair, count in zip(pairs, counts)}


def build_traces(netlist: QuantumNetlist, lb: float) -> dict:
    """``{resonator key: MST trace}`` for the whole layout.

    Clusters for all resonators come from one batched
    :func:`~repro.netlist.clusters.block_cluster_map` pass (the cluster
    extraction is about half of a cold trace build).
    """
    clusters = block_cluster_map(netlist.resonators, lb)
    return {
        r.key: resonator_trace(netlist, r, lb, clusters=clusters[r.key])
        for r in netlist.resonators
    }


def count_crossings(
    netlist: QuantumNetlist,
    bins: BinGrid,
    lb: float = None,
    traces: dict = None,
    samples: dict = None,
    bboxes: dict = None,
) -> CrossingReport:
    """Crossing report for the whole layout.

    ``traces`` optionally supplies precomputed MST traces (as returned by
    :func:`build_traces`), ``samples`` their sampled site indices (per
    :func:`trace_site_indices`) and ``bboxes`` their bounding boxes (per
    :func:`trace_bbox`); missing keys are computed on demand (and stored
    into a caller-provided ``bboxes`` dict for reuse).  Candidate
    intersection pairs come from the bbox sweep of
    :func:`_candidate_pairs`, evaluated in sorted-pair order so the
    report's dict iteration order matches the historical all-pairs scan.
    """
    lb = bins.grid.lb if lb is None else lb
    report = CrossingReport()
    if traces is None:
        traces = build_traces(netlist, lb)
    else:
        traces = dict(traces)
        for resonator in netlist.resonators:
            if resonator.key not in traces:
                traces[resonator.key] = resonator_trace(netlist, resonator, lb)
    if samples is None:
        samples = {}
    keys = sorted(traces)
    if bboxes is None:
        bboxes = {}
    for key in keys:
        if key not in bboxes:
            bboxes[key] = trace_bbox(traces[key])
    per_res = {key: 0 for key in keys}
    for key in keys:
        bridged = _bridged_blocks(traces[key], key, bins, samples.get(key))
        report.bridged_blocks[key] = sorted(bridged)
        per_res[key] += len(bridged)
    pairs = _candidate_pairs(keys, bboxes)
    pair_intersections = _pair_intersection_counts(traces, pairs)
    for key_a, key_b in pairs:
        count = pair_intersections[(key_a, key_b)]
        if count:
            report.pair_crossings[(key_a, key_b)] = count
            per_res[key_a] += count
            per_res[key_b] += count
    report.per_resonator = per_res
    return report


def resonator_crossings(
    netlist: QuantumNetlist,
    resonator,
    bins: BinGrid,
    traces: dict = None,
    samples: np.ndarray = None,
    pair_counts: dict = None,
    bboxes: dict = None,
) -> int:
    """Crossings involving one resonator's trace (for DP window checks).

    ``traces`` / ``samples`` / ``bboxes`` reuse precomputed geometry;
    ``pair_counts`` is an optional ``{(key_a, key_b): count}`` memo (keys
    ordered) that the caller invalidates whenever either trace changes.
    Bboxes are only cached into a caller-provided ``bboxes`` dict for
    traces that came from the ``traces`` cache — on-demand traces are
    rebuilt per call, so their boxes must be too.
    """
    lb = bins.grid.lb
    key = resonator.key

    def cached_geometry(res) -> tuple:
        """``(trace, bbox)`` via the caches where possible."""
        if traces is not None and res.key in traces:
            res_trace = traces[res.key]
            if bboxes is not None:
                if res.key not in bboxes:
                    bboxes[res.key] = trace_bbox(res_trace)
                return res_trace, bboxes[res.key]
        else:
            res_trace = resonator_trace(netlist, res, lb)
        return res_trace, trace_bbox(res_trace)

    trace, bbox = cached_geometry(resonator)
    count = len(_bridged_blocks(trace, key, bins, samples))
    for other in netlist.resonators:
        if other.key == key:
            continue
        pair = (min(key, other.key), max(key, other.key))
        if pair_counts is not None and pair in pair_counts:
            count += pair_counts[pair]
            continue
        other_trace, other_bbox = cached_geometry(other)
        if _bboxes_disjoint(bbox, other_bbox):
            pair_count = 0
        else:
            pair_count = _trace_intersections(trace, other_trace)
        if pair_counts is not None:
            pair_counts[pair] = pair_count
        count += pair_count
    return count
