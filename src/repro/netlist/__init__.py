"""The quantum netlist: qubits, resonators, and their wire blocks.

A quantum netlist is an undirected graph ``G(Q, E)`` whose vertices are
qubits and whose edges are resonators coupling two qubits (paper,
Section III-B).  Each resonator is partitioned into unit wire blocks
(``Sij``) so the global placer can treat them as movable standard cells;
after placement the blocks group into *clusters* of physically touching
blocks, and a resonator is *unified* when it has exactly one cluster.
"""

from repro.netlist.components import Qubit, WireBlock, Resonator, ComponentKind
from repro.netlist.netlist import QuantumNetlist
from repro.netlist.partition import (
    blocks_for_resonator,
    partition_resonator,
    reshape_to_rectangle,
)
from repro.netlist.pseudo import (
    ConnectionStyle,
    build_block_nets,
    pseudo_connection_nets,
    snake_connection_nets,
)
from repro.netlist.clusters import (
    block_cluster_map,
    block_clusters,
    cluster_count,
    cluster_count_map,
    is_unified,
)
from repro.netlist.traces import resonator_trace, mst_segments

__all__ = [
    "Qubit",
    "WireBlock",
    "Resonator",
    "ComponentKind",
    "QuantumNetlist",
    "blocks_for_resonator",
    "partition_resonator",
    "reshape_to_rectangle",
    "ConnectionStyle",
    "build_block_nets",
    "pseudo_connection_nets",
    "snake_connection_nets",
    "block_cluster_map",
    "block_clusters",
    "cluster_count_map",
    "resonator_trace",
    "mst_segments",
    "cluster_count",
    "is_unified",
]
