"""The quantum netlist graph ``G(Q, E)`` (paper Section III-B)."""

from __future__ import annotations

import networkx as nx

from repro.netlist.components import Qubit, Resonator
from repro.netlist.partition import partition_resonator
from repro.netlist.pseudo import ConnectionStyle, build_block_nets


class QuantumNetlist:
    """Qubits, the resonators coupling them, and their wire blocks.

    The netlist is the single source of truth for component identity and
    position; placement stages mutate positions in place and callers use
    :meth:`snapshot` / :meth:`restore` to checkpoint layouts between stages.
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._qubits = {}
        self._resonators = {}

    # -- construction ----------------------------------------------------
    def add_qubit(self, qubit: Qubit) -> Qubit:
        """Register a qubit; indices must be unique."""
        if qubit.index in self._qubits:
            raise ValueError(f"duplicate qubit index {qubit.index}")
        self._qubits[qubit.index] = qubit
        return qubit

    def add_resonator(self, resonator: Resonator) -> Resonator:
        """Register a resonator; both endpoints must already exist."""
        for endpoint in (resonator.qi, resonator.qj):
            if endpoint not in self._qubits:
                raise ValueError(f"resonator endpoint Q{endpoint} not in netlist")
        if resonator.key in self._resonators:
            raise ValueError(f"duplicate resonator {resonator.key}")
        self._resonators[resonator.key] = resonator
        return resonator

    def partition_all(self, pad: float, lb: float) -> None:
        """Partition every resonator into wire blocks seeded between its qubits."""
        for resonator in self.resonators:
            qa = self._qubits[resonator.qi]
            qb = self._qubits[resonator.qj]
            partition_resonator(resonator, pad, lb, (qa.x, qa.y), (qb.x, qb.y))

    # -- access ------------------------------------------------------------
    @property
    def qubits(self) -> list:
        """All qubits, ordered by index."""
        return [self._qubits[i] for i in sorted(self._qubits)]

    @property
    def resonators(self) -> list:
        """All resonators, ordered by key."""
        return [self._resonators[k] for k in sorted(self._resonators)]

    @property
    def wire_blocks(self) -> list:
        """All wire blocks across all resonators, netlist order."""
        return [b for r in self.resonators for b in r.blocks]

    @property
    def num_qubits(self) -> int:
        """``|Q|``."""
        return len(self._qubits)

    @property
    def num_resonators(self) -> int:
        """``|E|``."""
        return len(self._resonators)

    @property
    def num_cells(self) -> int:
        """Total movable components (qubits + wire blocks)."""
        return self.num_qubits + len(self.wire_blocks)

    def qubit(self, index: int) -> Qubit:
        """Qubit by physical index."""
        return self._qubits[index]

    def resonator(self, qi: int, qj: int) -> Resonator:
        """Resonator by endpoint pair (order-insensitive)."""
        key = (qi, qj) if qi < qj else (qj, qi)
        return self._resonators[key]

    def has_resonator(self, qi: int, qj: int) -> bool:
        """True when the two qubits are directly coupled."""
        key = (qi, qj) if qi < qj else (qj, qi)
        return key in self._resonators

    def coupling_graph(self) -> nx.Graph:
        """The device coupling graph over qubit indices."""
        graph = nx.Graph()
        graph.add_nodes_from(self._qubits)
        graph.add_edges_from(self._resonators)
        return graph

    def nets(self, style: ConnectionStyle = ConnectionStyle.PSEUDO) -> list:
        """Placer nets for all resonators under ``style`` (Fig. 5c/d)."""
        return build_block_nets(self.resonators, style)

    # -- position checkpoints ----------------------------------------------
    def snapshot(self) -> dict:
        """Capture every component position, keyed by node id."""
        positions = {}
        for q in self.qubits:
            positions[("q", q.index)] = (q.x, q.y)
        for b in self.wire_blocks:
            positions[("b", b.resonator_key, b.ordinal)] = (b.x, b.y)
        return positions

    def restore(self, positions: dict) -> None:
        """Restore a snapshot produced by :meth:`snapshot`."""
        for q in self.qubits:
            q.x, q.y = positions[("q", q.index)]
        for b in self.wire_blocks:
            b.x, b.y = positions[("b", b.resonator_key, b.ordinal)]

    def __repr__(self) -> str:
        return (
            f"QuantumNetlist(name={self.name!r}, qubits={self.num_qubits}, "
            f"resonators={self.num_resonators}, cells={self.num_cells})"
        )
