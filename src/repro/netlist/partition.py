"""Resonator reshaping and partitioning (paper Fig. 5a-b, Eq. 6).

A padded resonator with wirelength ``L`` and padding width ``l_pad`` is
reshaped into a compact rectangle of equal area and then cut into ``n``
square wire blocks of side ``l_b``:

    ``l_pad * L = n * l_b**2``            (Eq. 6)

The blocks only *reserve layout area* for the resonator — detailed routing
inside the reserved area is out of scope (paper Section III-D note).
"""

from __future__ import annotations

import math

from repro.netlist.components import Resonator, WireBlock


def num_blocks(wirelength: float, pad: float, lb: float) -> int:
    """Block count ``n`` from Eq. 6, rounded up, at least 1."""
    if wirelength <= 0:
        raise ValueError(f"wirelength must be positive, got {wirelength}")
    if pad <= 0 or lb <= 0:
        raise ValueError(f"pad and lb must be positive, got pad={pad}, lb={lb}")
    return max(1, math.ceil(pad * wirelength / (lb * lb)))


def reshape_to_rectangle(n: int) -> tuple:
    """Reshape ``n`` unit blocks into the most square ``cols x rows`` grid.

    Returns ``(cols, rows)`` with ``cols * rows >= n`` and ``cols >= rows``.
    The near-square target is what the pseudo connections steer the global
    placer toward (Fig. 5b).
    """
    if n <= 0:
        raise ValueError(f"block count must be positive, got {n}")
    rows = max(1, int(math.floor(math.sqrt(n))))
    cols = math.ceil(n / rows)
    return (cols, rows)


def blocks_for_resonator(resonator: Resonator, pad: float, lb: float) -> list:
    """Create the wire blocks ``S_e`` for ``resonator`` (without placing them).

    The blocks are appended to ``resonator.blocks`` and returned.  Each block
    inherits the resonator frequency so hotspot analysis can reason about
    segment-level frequency proximity.
    """
    n = num_blocks(resonator.wirelength, pad, lb)
    resonator.blocks = [
        WireBlock(
            resonator_key=resonator.key,
            ordinal=i,
            size=lb,
            frequency=resonator.frequency,
        )
        for i in range(n)
    ]
    return resonator.blocks


def partition_resonator(
    resonator: Resonator,
    pad: float,
    lb: float,
    anchor_a: tuple,
    anchor_b: tuple,
) -> list:
    """Partition ``resonator`` and seed block positions between its qubits.

    Blocks are laid out along the straight line from ``anchor_a`` to
    ``anchor_b`` (the endpoint qubit centres), evenly spaced — the natural
    pre-global-placement seed.  Returns the created blocks.
    """
    blocks = blocks_for_resonator(resonator, pad, lb)
    ax, ay = anchor_a
    bx, by = anchor_b
    n = len(blocks)
    for i, block in enumerate(blocks):
        t = (i + 1) / (n + 1)
        block.move_to(ax + (bx - ax) * t, ay + (by - ay) * t)
    return blocks
