"""Wire-block net construction: snake vs. pseudo connections (Fig. 5c-d).

The global placer pulls connected cells together.  How wire blocks are
wired into nets therefore shapes the post-GP resonator footprint:

* **snake** — each block connects only to its predecessor/successor, and
  the first/last block to the endpoint qubits (qPlacer's scheme [12]).
  The density force then stretches the chain into a long line, which
  legalizes badly and has a large crosstalk perimeter.
* **pseudo** — in addition to the snake, every block is connected to all
  of its neighbours in the reshaped ``cols x rows`` rectangle (Fig. 5d,
  red arrows), steering GP toward a compact, legalization-friendly blob.

A *net* here is a 2-pin ``(u, v)`` pair over node ids; node ids are either
``("q", index)`` for qubits or ``("b", resonator_key, ordinal)`` for wire
blocks, so the nets can be consumed directly by the placer.
"""

from __future__ import annotations

import enum

from repro.netlist.components import Resonator
from repro.netlist.partition import reshape_to_rectangle


class ConnectionStyle(enum.Enum):
    """Which wire-block net construction to use."""

    SNAKE = "snake"
    PSEUDO = "pseudo"


def qubit_node(index: int) -> tuple:
    """Placer node id for qubit ``index``."""
    return ("q", index)


def block_node(resonator_key: tuple, ordinal: int) -> tuple:
    """Placer node id for a wire block."""
    return ("b", resonator_key, ordinal)


def snake_connection_nets(resonator: Resonator) -> list:
    """Chain nets: qubit_i — b0 — b1 — ... — b(n-1) — qubit_j."""
    key = resonator.key
    n = resonator.num_blocks
    if n == 0:
        return [(qubit_node(resonator.qi), qubit_node(resonator.qj))]
    nets = [(qubit_node(resonator.qi), block_node(key, 0))]
    nets.extend(
        (block_node(key, i), block_node(key, i + 1)) for i in range(n - 1)
    )
    nets.append((block_node(key, n - 1), qubit_node(resonator.qj)))
    return nets


def pseudo_connection_nets(resonator: Resonator) -> list:
    """Snake nets plus all-neighbour links in the reshaped rectangle.

    Blocks are conceptually arranged row-major in the ``cols x rows``
    rectangle from :func:`reshape_to_rectangle`; each block gets a net to
    its right and upper neighbour (covering every adjacent pair once).
    """
    nets = snake_connection_nets(resonator)
    key = resonator.key
    n = resonator.num_blocks
    if n <= 1:
        return nets
    cols, _rows = reshape_to_rectangle(n)
    seen = {frozenset(net) for net in nets}
    for i in range(n):
        col, row = i % cols, i // cols
        for j in (i + 1, i + cols):
            if j >= n:
                continue
            jcol, jrow = j % cols, j // cols
            adjacent = (jrow == row and jcol == col + 1) or (
                jcol == col and jrow == row + 1
            )
            if not adjacent:
                continue
            net = (block_node(key, i), block_node(key, j))
            if frozenset(net) not in seen:
                seen.add(frozenset(net))
                nets.append(net)
    return nets


def build_block_nets(resonators: list, style: ConnectionStyle) -> list:
    """Nets for every resonator under the chosen connection style."""
    builder = (
        pseudo_connection_nets
        if style is ConnectionStyle.PSEUDO
        else snake_connection_nets
    )
    nets = []
    for resonator in resonators:
        nets.extend(builder(resonator))
    return nets
