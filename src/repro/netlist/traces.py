"""Resonator connection traces: the exposed wiring between clusters.

A resonator electrically joins qubit_i → its reserved block clusters →
qubit_j.  The shortest trace a router would lay is the minimum spanning
tree over the terminal *sets* (each cluster's block centres plus each
qubit pad's boundary points), with tree edges connecting the closest
cross pair — so a cluster touching its qubit contributes a near-zero
segment rather than a chord to its centroid.

The Prim build is array-backed: all terminal points are stacked once,
every squared cross distance comes from one broadcast NumPy pass, and
each growth step is a blocked min-reduction over the set-pair distance
matrix.  Tie-breaking is bit-identical to the historical scalar scan
(first minimum in tree-insertion × candidate order, then first minimal
point pair in row-major order), and the returned segment endpoints are
the *original* input tuples, so consumers see exactly the scalar
kernel's output.

Both the crossing counter (:mod:`repro.routing.crossings`) and the
trace-exposure hotspot model (:mod:`repro.frequency.hotspots`) consume
these traces.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.clusters import block_clusters
from repro.netlist.netlist import QuantumNetlist


def _closest_pair(points_a: list, points_b: list) -> tuple:
    """``(d2, pa, pb)`` — the closest cross pair between two point sets.

    Scalar reference kernel; :func:`mst_segments` reproduces its
    first-minimum tie-break with an array argmin.
    """
    best = None
    for pa in points_a:
        for pb in points_b:
            d2 = (pa[0] - pb[0]) ** 2 + (pa[1] - pb[1]) ** 2
            if best is None or d2 < best[0]:
                best = (d2, pa, pb)
    return best


def mst_segments(terminal_sets: list) -> list:
    """Straight-segment MST over point sets (array Prim).

    Equivalent to the historical scalar Prim: grow from set 0, each step
    joining the tree to the out-set whose closest cross pair is nearest,
    scanning tree members in insertion order and out-sets in remaining
    input order with strict-less updates.  ``np.argmin`` returns the
    first flat minimum in row-major order, which is exactly that
    tie-break, so the produced segments are identical.
    """
    num_sets = len(terminal_sets)
    if num_sets < 2:
        return []

    sizes = [len(points) for points in terminal_sets]
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    stacked = np.array(
        [point for points in terminal_sets for point in points],
        dtype=np.float64,
    )
    dx = stacked[:, 0][:, None] - stacked[:, 0][None, :]
    dy = stacked[:, 1][:, None] - stacked[:, 1][None, :]
    d2 = dx * dx + dy * dy

    # Blocked min-reduction: the closest cross distance for every set
    # pair in two reduceat passes (exact — float min is order-free).
    # The terminal sets are tiny, so the Prim scan below runs over the
    # S×S Python list; the argmin *pair* is only resolved for the S-1
    # set pairs that actually join the tree.
    col_min = np.minimum.reduceat(d2, offsets[:-1], axis=1)
    pair_min = np.minimum.reduceat(col_min, offsets[:-1], axis=0).tolist()

    in_tree = [0]
    out = list(range(1, num_sets))
    segments = []
    while out:
        best = None
        for i in in_tree:
            row = pair_min[i]
            for j in out:
                value = row[j]
                if best is None or value < best[0]:
                    best = (value, i, j)
        _, i, j = best
        block = d2[offsets[i] : offsets[i + 1], offsets[j] : offsets[j + 1]]
        ai, bj = divmod(int(np.argmin(block)), block.shape[1])
        segments.append((terminal_sets[i][ai], terminal_sets[j][bj]))
        in_tree.append(j)
        out.remove(j)
    return segments


def qubit_boundary(qubit, samples_per_side: int = 3) -> list:
    """Attachment points along a qubit pad's boundary."""
    rect = qubit.rect
    points = []
    for k in range(samples_per_side):
        t = (k + 0.5) / samples_per_side
        x = rect.xlo + t * rect.w
        y = rect.ylo + t * rect.h
        points.extend(
            [(x, rect.ylo), (x, rect.yhi), (rect.xlo, y), (rect.xhi, y)]
        )
    return points


def resonator_trace(
    netlist: QuantumNetlist, resonator, lb: float = 1.0, clusters: list = None
) -> list:
    """The straight-segment connection tree of one resonator.

    ``clusters`` lets a caller that already ran the batched
    :func:`~repro.netlist.clusters.block_cluster_map` pass this
    resonator's clusters instead of recomputing them (the cluster pass is
    about half of a cold trace build).
    """
    qa = netlist.qubit(resonator.qi)
    qb = netlist.qubit(resonator.qj)
    terminal_sets = [qubit_boundary(qa), qubit_boundary(qb)]
    if clusters is None:
        clusters = block_clusters(resonator, lb)
    for cluster in clusters:
        terminal_sets.append([(b.x, b.y) for b in cluster])
    return mst_segments(terminal_sets)
