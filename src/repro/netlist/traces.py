"""Resonator connection traces: the exposed wiring between clusters.

A resonator electrically joins qubit_i → its reserved block clusters →
qubit_j.  The shortest trace a router would lay is the minimum spanning
tree over the terminal *sets* (each cluster's block centres plus each
qubit pad's boundary points), with tree edges connecting the closest
cross pair — so a cluster touching its qubit contributes a near-zero
segment rather than a chord to its centroid.

Both the crossing counter (:mod:`repro.routing.crossings`) and the
trace-exposure hotspot model (:mod:`repro.frequency.hotspots`) consume
these traces.
"""

from __future__ import annotations

from repro.netlist.clusters import block_clusters
from repro.netlist.netlist import QuantumNetlist


def _closest_pair(points_a: list, points_b: list) -> tuple:
    """``(d2, pa, pb)`` — the closest cross pair between two point sets."""
    best = None
    for pa in points_a:
        for pb in points_b:
            d2 = (pa[0] - pb[0]) ** 2 + (pa[1] - pb[1]) ** 2
            if best is None or d2 < best[0]:
                best = (d2, pa, pb)
    return best


def mst_segments(terminal_sets: list) -> list:
    """Straight-segment MST over point sets (Prim, tiny n)."""
    if len(terminal_sets) < 2:
        return []
    in_tree = [0]
    out = list(range(1, len(terminal_sets)))
    segments = []
    while out:
        best = None
        for i in in_tree:
            for j in out:
                d2, pa, pb = _closest_pair(terminal_sets[i], terminal_sets[j])
                if best is None or d2 < best[0]:
                    best = (d2, pa, pb, j)
        _, pa, pb, j = best
        segments.append((pa, pb))
        in_tree.append(j)
        out.remove(j)
    return segments


def qubit_boundary(qubit, samples_per_side: int = 3) -> list:
    """Attachment points along a qubit pad's boundary."""
    rect = qubit.rect
    points = []
    for k in range(samples_per_side):
        t = (k + 0.5) / samples_per_side
        x = rect.xlo + t * rect.w
        y = rect.ylo + t * rect.h
        points.extend(
            [(x, rect.ylo), (x, rect.yhi), (rect.xlo, y), (rect.xhi, y)]
        )
    return points


def resonator_trace(netlist: QuantumNetlist, resonator, lb: float = 1.0) -> list:
    """The straight-segment connection tree of one resonator."""
    qa = netlist.qubit(resonator.qi)
    qb = netlist.qubit(resonator.qj)
    terminal_sets = [qubit_boundary(qa), qubit_boundary(qb)]
    for cluster in block_clusters(resonator, lb):
        terminal_sets.append([(b.x, b.y) for b in cluster])
    return mst_segments(terminal_sets)
