"""Wire-block cluster extraction (paper Section III-B).

Blocks of one resonator form a *cluster* when they physically touch; a
resonator with a single cluster is *unified*.  Minimizing the total cluster
count (Eq. 3) is the objective of integration-aware legalization because
every extra cluster forces routed hop(s) and potential airbridge crossings.

Touching is evaluated on the site grid: two blocks are in the same cluster
when their sites are 4-adjacent (edge-sharing).  Diagonal contact does not
merge clusters — a diagonal hop still requires a routed jog.
"""

from __future__ import annotations

from repro.netlist.components import Resonator


def _site(block, lb: float) -> tuple:
    """Site coordinates of a block centre (no grid needed, pure arithmetic)."""
    return (int(round(block.x / lb - 0.5)), int(round(block.y / lb - 0.5)))


def block_clusters(resonator: Resonator, lb: float = 1.0) -> list:
    """Partition ``resonator.blocks`` into lists of touching blocks.

    Returns the clusters ``{C^1_e, ..., C^n_e}`` as lists of
    :class:`~repro.netlist.components.WireBlock`, ordered by their smallest
    block ordinal for determinism.
    """
    blocks = resonator.blocks
    if not blocks:
        return []
    site_of = {id(b): _site(b, lb) for b in blocks}
    by_site = {}
    for b in blocks:
        by_site.setdefault(site_of[id(b)], []).append(b)

    unvisited = {id(b): b for b in blocks}
    clusters = []
    while unvisited:
        _, seed = min(
            ((b.ordinal, b) for b in unvisited.values()), key=lambda t: t[0]
        )
        stack = [seed]
        del unvisited[id(seed)]
        cluster = []
        while stack:
            cur = stack.pop()
            cluster.append(cur)
            col, row = site_of[id(cur)]
            for ncol, nrow in (
                (col - 1, row),
                (col + 1, row),
                (col, row - 1),
                (col, row + 1),
                (col, row),
            ):
                for nb in by_site.get((ncol, nrow), ()):
                    if id(nb) in unvisited:
                        del unvisited[id(nb)]
                        stack.append(nb)
        cluster.sort(key=lambda b: b.ordinal)
        clusters.append(cluster)
    clusters.sort(key=lambda c: c[0].ordinal)
    return clusters


def cluster_count(resonator: Resonator, lb: float = 1.0) -> int:
    """``|C_e|`` — the number of clusters of a placed resonator."""
    return len(block_clusters(resonator, lb))


def is_unified(resonator: Resonator, lb: float = 1.0) -> bool:
    """True when the resonator's blocks form a single cluster."""
    return cluster_count(resonator, lb) <= 1
