"""Wire-block cluster extraction (paper Section III-B).

Blocks of one resonator form a *cluster* when they physically touch; a
resonator with a single cluster is *unified*.  Minimizing the total cluster
count (Eq. 3) is the objective of integration-aware legalization because
every extra cluster forces routed hop(s) and potential airbridge crossings.

Touching is evaluated on the site grid: two blocks are in the same cluster
when their sites are 4-adjacent (edge-sharing).  Diagonal contact does not
merge clusters — a diagonal hop still requires a routed jog.

The extraction is an array-backed batch pass: :func:`block_cluster_map`
packs every block of every resonator into one flat site-key array (the key
embeds the resonator index, so clusters can never merge across
resonators), finds the occupied-site adjacencies with two vectorized
``searchsorted`` probes (east and north neighbours), and labels components
with one :func:`scipy.sparse.csgraph.connected_components` call.  The
historical per-resonator DFS is kept verbatim in
``tests/netlist/test_clusters_parity.py`` as the parity oracle; cluster
and block order (smallest ordinal first) are bit-identical.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.netlist.components import Resonator


def _component_labels(
    owner: np.ndarray, cols: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Connected-component label per block under per-owner 4-adjacency.

    Each occupied site is packed into one integer key with a padding row
    and column per owner, so a ``+1`` (north) or ``+row_span`` (east)
    neighbour probe can never wrap into another column or another
    owner's key range.  Blocks sharing a site share a key, hence a label.
    """
    col_off = cols - cols.min()
    row_off = rows - rows.min()
    col_span = int(col_off.max()) + 2
    row_span = int(row_off.max()) + 2
    keys = (owner * col_span + col_off) * row_span + row_off

    sites, site_of = np.unique(keys, return_inverse=True)
    edge_tails = []
    edge_heads = []
    for delta in (1, row_span):  # north, east
        candidates = sites + delta
        pos = np.searchsorted(sites, candidates)
        pos = np.minimum(pos, sites.size - 1)
        hit = sites[pos] == candidates
        edge_tails.append(np.nonzero(hit)[0])
        edge_heads.append(pos[hit])
    tails = np.concatenate(edge_tails)
    heads = np.concatenate(edge_heads)
    graph = coo_matrix(
        (np.ones(tails.size, dtype=np.int8), (tails, heads)),
        shape=(sites.size, sites.size),
    )
    _, site_component = connected_components(graph, directed=False)
    return site_component[site_of]


def block_cluster_map(resonators: list, lb: float = 1.0) -> dict:
    """``resonator.key`` → clusters, for all resonators in one array pass.

    Each value matches :func:`block_clusters` for that resonator exactly:
    lists of touching :class:`~repro.netlist.components.WireBlock`,
    blocks ordinal-sorted, clusters ordered by smallest block ordinal.
    """
    clusters_by_key = {}
    todo = []
    for resonator in resonators:
        if resonator.blocks:
            todo.append(resonator)
        else:
            clusters_by_key[resonator.key] = []
    if not todo:
        return clusters_by_key

    counts = np.array([r.num_blocks for r in todo], dtype=np.intp)
    starts = np.concatenate([[0], np.cumsum(counts)])
    xs = np.array([b.x for r in todo for b in r.blocks], dtype=np.float64)
    ys = np.array([b.y for r in todo for b in r.blocks], dtype=np.float64)
    # Same half-to-even rounding as the scalar ``int(round(...))`` site.
    cols = np.rint(xs / lb - 0.5).astype(np.int64)
    rows = np.rint(ys / lb - 0.5).astype(np.int64)
    owner = np.repeat(np.arange(len(todo), dtype=np.int64), counts)
    labels = _component_labels(owner, cols, rows)

    for t, resonator in enumerate(todo):
        local = labels[starts[t] : starts[t + 1]].tolist()
        blocks = resonator.blocks
        by_ordinal = sorted(range(len(blocks)), key=lambda k: blocks[k].ordinal)
        clusters = []
        bucket_of = {}
        for k in by_ordinal:
            bucket = bucket_of.get(local[k])
            if bucket is None:
                bucket = []
                bucket_of[local[k]] = bucket
                clusters.append(bucket)
            bucket.append(blocks[k])
        clusters_by_key[resonator.key] = clusters
    return clusters_by_key


def block_clusters(resonator: Resonator, lb: float = 1.0) -> list:
    """Partition ``resonator.blocks`` into lists of touching blocks.

    Returns the clusters ``{C^1_e, ..., C^n_e}`` as lists of
    :class:`~repro.netlist.components.WireBlock`, ordered by their smallest
    block ordinal for determinism.  Single-resonator view of
    :func:`block_cluster_map`; batch calls through the map when evaluating
    many resonators at once.
    """
    return block_cluster_map([resonator], lb)[resonator.key]


def cluster_count_map(resonators: list, lb: float = 1.0) -> dict:
    """``resonator.key`` → ``|C_e|`` for all resonators in one array pass."""
    return {
        key: len(clusters)
        for key, clusters in block_cluster_map(resonators, lb).items()
    }


def cluster_count(resonator: Resonator, lb: float = 1.0) -> int:
    """``|C_e|`` — the number of clusters of a placed resonator."""
    return len(block_clusters(resonator, lb))


def is_unified(resonator: Resonator, lb: float = 1.0) -> bool:
    """True when the resonator's blocks form a single cluster."""
    return cluster_count(resonator, lb) <= 1
