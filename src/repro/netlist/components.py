"""Physical components of a superconducting quantum chip layout.

Three component kinds appear in qGDP's layout model:

* :class:`Qubit` — a fixed-frequency transmon; a macro on the site grid
  (its footprint is several sites on a side, ``≫`` a wire block).
* :class:`WireBlock` — one standard-cell-sized segment of a partitioned
  resonator; the movable unit during resonator legalization.
* :class:`Resonator` — the coupler between two qubits; owns an ordered
  list of wire blocks produced by :mod:`repro.netlist.partition`.

Positions are stored on the component (centre coordinates) so a component
carries its own rectangle; the netlist and placers mutate positions in
place and snapshot them per stage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import Point, Rect


class ComponentKind(enum.Enum):
    """Discriminates layout components where a heterogeneous list is used."""

    QUBIT = "qubit"
    WIRE_BLOCK = "wire_block"


@dataclass
class Qubit:
    """A transmon qubit macro.

    Parameters
    ----------
    index:
        Physical qubit index within the device topology.
    w, h:
        Footprint in layout units (multiples of the site pitch).
    x, y:
        Centre position in layout coordinates.
    frequency:
        Qubit 01 transition frequency in GHz (assigned by
        :mod:`repro.frequency.assignment`).
    """

    index: int
    w: float
    h: float
    x: float = 0.0
    y: float = 0.0
    frequency: float = 0.0

    kind: ComponentKind = field(default=ComponentKind.QUBIT, repr=False)

    @property
    def rect(self) -> Rect:
        """Current bounding rectangle."""
        return Rect(self.x, self.y, self.w, self.h)

    @property
    def center(self) -> Point:
        """Current centre point."""
        return Point(self.x, self.y)

    def move_to(self, x: float, y: float) -> None:
        """Set the centre position."""
        self.x = x
        self.y = y

    @property
    def name(self) -> str:
        """Stable display name, e.g. ``Q7``."""
        return f"Q{self.index}"

    @property
    def node_id(self) -> tuple:
        """Structured id ``("q", index)`` used by placers and bin owners."""
        return ("q", self.index)


@dataclass
class WireBlock:
    """One unit segment of a partitioned resonator (a standard cell).

    ``resonator_key`` identifies the owning resonator as the qubit index
    pair ``(qi, qj)`` with ``qi < qj``; ``ordinal`` is the block's index in
    the owner's segment list ``S_e``.
    """

    resonator_key: tuple
    ordinal: int
    size: float = 1.0
    x: float = 0.0
    y: float = 0.0
    frequency: float = 0.0

    kind: ComponentKind = field(default=ComponentKind.WIRE_BLOCK, repr=False)

    @property
    def rect(self) -> Rect:
        """Current bounding rectangle (a ``size`` × ``size`` square)."""
        return Rect(self.x, self.y, self.size, self.size)

    @property
    def center(self) -> Point:
        """Current centre point."""
        return Point(self.x, self.y)

    def move_to(self, x: float, y: float) -> None:
        """Set the centre position."""
        self.x = x
        self.y = y

    @property
    def name(self) -> str:
        """Stable display name, e.g. ``R(2,5)#3``."""
        qi, qj = self.resonator_key
        return f"R({qi},{qj})#{self.ordinal}"

    @property
    def node_id(self) -> tuple:
        """Structured id ``("b", resonator_key, ordinal)``."""
        return ("b", self.resonator_key, self.ordinal)


@dataclass
class Resonator:
    """A coupler between two qubits, carrying its partitioned wire blocks.

    Parameters
    ----------
    qi, qj:
        Endpoint physical qubit indices, ``qi < qj``.
    wirelength:
        Physical wire length ``L`` of the (unpartitioned) resonator in
        layout units; drives the block count via Eq. 6.
    frequency:
        Fundamental resonator frequency in GHz.
    blocks:
        Ordered wire blocks ``S_e`` (filled by partitioning).
    """

    qi: int
    qj: int
    wirelength: float
    frequency: float = 0.0
    blocks: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.qi == self.qj:
            raise ValueError(f"resonator endpoints must differ, got {self.qi}")
        if self.qi > self.qj:
            self.qi, self.qj = self.qj, self.qi
        if self.wirelength <= 0:
            raise ValueError(f"wirelength must be positive, got {self.wirelength}")

    @property
    def key(self) -> tuple:
        """Canonical ``(qi, qj)`` identifier."""
        return (self.qi, self.qj)

    @property
    def num_blocks(self) -> int:
        """Number of wire blocks ``n = |S_e|``."""
        return len(self.blocks)

    @property
    def name(self) -> str:
        """Stable display name, e.g. ``R(2,5)``."""
        return f"R({self.qi},{self.qj})"

    def block_positions(self) -> list:
        """Current centre points of all blocks."""
        return [b.center for b in self.blocks]
