"""Wirelength measures for placement reporting."""

from __future__ import annotations

import numpy as np


def hpwl(points: list) -> float:
    """Half-perimeter wirelength of one net's pin positions."""
    if not points:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_hpwl(nets: list, positions: dict) -> float:
    """Sum of HPWL over 2-pin nets given a node-id → (x, y) map.

    The per-net spans are computed in one vectorized pass; the final
    reduction stays sequential (not ``ndarray.sum``'s pairwise tree) so
    the result is bit-identical to summing the scalar :func:`hpwl`
    helper net by net.
    """
    if not nets:
        return 0.0
    ends = np.array(
        [(positions[u], positions[v]) for u, v in nets], dtype=np.float64
    )
    spans = np.abs(ends[:, 0, :] - ends[:, 1, :])
    return float(sum(spans[:, 0] + spans[:, 1]))
