"""Wirelength measures for placement reporting."""

from __future__ import annotations


def hpwl(points: list) -> float:
    """Half-perimeter wirelength of one net's pin positions."""
    if not points:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_hpwl(nets: list, positions: dict) -> float:
    """Sum of HPWL over 2-pin nets given a node-id → (x, y) map."""
    return sum(hpwl([positions[u], positions[v]]) for u, v in nets)
