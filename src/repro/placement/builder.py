"""Instantiate a quantum netlist on a sized substrate for a topology.

The builder

1. creates qubit macros at scaled ideal positions,
2. creates one resonator per coupling edge, with wirelength scaled by
   frequency (a λ/4 resonator is longer at lower frequency) so Eq. 6
   yields the paper's ≈ 11-12 blocks per resonator,
3. allocates frequencies (graph coloring), and
4. sizes a site grid so total component area hits the configured
   utilization while adjacent qubits can still satisfy the quantum
   minimum spacing.
"""

from __future__ import annotations

import math

from repro.core.config import QGDPConfig
from repro.frequency.assignment import assign_frequencies
from repro.geometry import SiteGrid
from repro.netlist.components import Qubit, Resonator
from repro.netlist.netlist import QuantumNetlist
from repro.topologies.base import Topology

#: Centre frequency the reference resonator length is quoted at (GHz).
_REFERENCE_FREQ = 7.0


def size_grid(topology: Topology, config: QGDPConfig, total_area: float) -> tuple:
    """Choose the substrate grid and the ideal→layout scale.

    Returns ``(grid, scale, offset)`` where layout position =
    ``(ideal - ideal_min + margin) * scale`` and ``grid`` is the
    :class:`~repro.geometry.SiteGrid` covering the die.

    The scale is the larger of (a) the utilization-driven scale and (b)
    the spacing-driven scale that lets the closest ideal qubit pair sit at
    ``qubit_size + min_qubit_spacing`` apart.
    """
    xs = [p[0] for p in topology.ideal_positions.values()]
    ys = [p[1] for p in topology.ideal_positions.values()]
    ex = (max(xs) - min(xs)) + 2.0 * config.margin
    ey = (max(ys) - min(ys)) + 2.0 * config.margin

    scale_util = math.sqrt(total_area / (config.utilization * ex * ey))
    # The binding geometric constraint is the closest *pair* of qubits,
    # coupled or not (radial topologies place siblings closer than edges).
    positions = list(topology.ideal_positions.values())
    min_pair = min(
        math.hypot(xa - xb, ya - yb)
        for i, (xa, ya) in enumerate(positions)
        for (xb, yb) in positions[i + 1 :]
    )
    scale_spacing = (
        config.qubit_size + config.min_qubit_spacing + config.lb
    ) / min_pair
    scale = max(scale_util, scale_spacing)

    cols = max(4, math.ceil(ex * scale / config.lb))
    rows = max(4, math.ceil(ey * scale / config.lb))
    grid = SiteGrid(cols=cols, rows=rows, lb=config.lb)
    offset = (min(xs), min(ys))
    return (grid, scale, offset)


def _resonator_wirelength(freq: float, config: QGDPConfig) -> float:
    """Frequency-dependent wirelength: ``L = L_ref * f_ref / f``."""
    return config.resonator_length * _REFERENCE_FREQ / freq


def build_layout(topology: Topology, config: QGDPConfig = None) -> tuple:
    """Build ``(netlist, grid)`` for a topology, ready for global placement.

    Qubits are placed at their scaled ideal positions (snapped to the site
    grid); resonators are partitioned into wire blocks seeded on the line
    between their endpoint qubits.  Frequencies are already assigned so
    every downstream stage can reason about hotspots.
    """
    config = config or QGDPConfig()
    netlist = QuantumNetlist(name=topology.name)

    # Qubits first so resonators can reference them; positions need the
    # grid, which needs total area, which needs block counts — so assign
    # frequencies on a provisional netlist, then size the grid.
    for index in range(topology.num_qubits):
        netlist.add_qubit(
            Qubit(index=index, w=config.qubit_size, h=config.qubit_size)
        )
    for qi, qj in topology.edges:
        # Wirelength filled after frequency assignment; placeholder 1.0.
        netlist.add_resonator(Resonator(qi=qi, qj=qj, wirelength=1.0))

    plan = assign_frequencies(
        netlist,
        topology,
        config.qubit_bands,
        config.resonator_bands,
        seed=config.seed,
    )
    total_blocks = 0
    for resonator in netlist.resonators:
        resonator.wirelength = _resonator_wirelength(
            plan.resonator_freq[resonator.key], config
        )
        total_blocks += math.ceil(
            config.pad * resonator.wirelength / (config.lb * config.lb)
        )

    qubit_area = topology.num_qubits * config.qubit_size**2
    block_area = total_blocks * config.lb**2
    grid, scale, offset = size_grid(topology, config, qubit_area + block_area)

    for index, (ix, iy) in topology.ideal_positions.items():
        x = (ix - offset[0] + config.margin) * scale
        y = (iy - offset[1] + config.margin) * scale
        qubit = netlist.qubit(index)
        snapped = grid.clamp_rect(qubit.rect.moved_to(x, y))
        qubit.move_to(snapped.cx, snapped.cy)

    netlist.partition_all(config.pad, config.lb)
    return (netlist, grid)
