"""Force-directed global placer with density spreading.

This is the substrate standing in for qPlacer/DREAMPlace GP [12], [13]
(see DESIGN.md).  It minimizes net wirelength (spring attraction) subject
to a spreading force from the bin-density map, with qubits softly anchored
to their topology-derived seeds.  The output is a *rough* placement: blocks
may overlap each other and qubit macros — exactly the input legalization
must clean up.

Pseudo connections (Fig. 5d) enter simply as extra nets, so running the
placer with snake vs. pseudo nets reproduces the paper's motivation
ablation (long stringy resonators vs. compact blobs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import QGDPConfig
from repro.geometry import SiteGrid
from repro.netlist.netlist import QuantumNetlist
from repro.netlist.pseudo import ConnectionStyle
from repro.placement.density import DensityMap
from repro.placement.wirelength import total_hpwl


@dataclass
class GlobalPlaceResult:
    """Summary of a global-placement run."""

    iterations: int
    hpwl: float
    max_bin_overflow: float


class GlobalPlacer:
    """Spring + density-spreading placer over the netlist's components."""

    def __init__(self, config: QGDPConfig = None) -> None:
        self.config = config or QGDPConfig()

    def run(
        self,
        netlist: QuantumNetlist,
        grid: SiteGrid,
        style: ConnectionStyle = ConnectionStyle.PSEUDO,
        seed: int = None,
        move_qubits: bool = True,
    ) -> GlobalPlaceResult:
        """Place all components in-place; returns a run summary.

        ``move_qubits=False`` freezes qubits at their seeds (useful for
        ablations); by default they float on a soft anchor so GP can trade
        a little qubit displacement for wirelength, as qPlacer does.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed if seed is None else seed)

        node_ids = [("q", q.index) for q in netlist.qubits]
        node_ids += [
            ("b", b.resonator_key, b.ordinal) for b in netlist.wire_blocks
        ]
        index_of = {nid: k for k, nid in enumerate(node_ids)}
        num_qubits = netlist.num_qubits
        n = len(node_ids)

        pos = np.zeros((n, 2))
        areas = np.zeros(n)
        for q in netlist.qubits:
            k = index_of[("q", q.index)]
            pos[k] = (q.x, q.y)
            areas[k] = q.rect.area
        for b in netlist.wire_blocks:
            k = index_of[("b", b.resonator_key, b.ordinal)]
            pos[k] = (b.x, b.y)
            areas[k] = b.rect.area
        anchors = pos[:num_qubits].copy()

        # Small symmetric noise so collinear seeds can spread sideways.
        pos[num_qubits:] += rng.normal(0.0, cfg.gp_noise, (n - num_qubits, 2))

        nets = netlist.nets(style)
        src = np.array([index_of[u] for u, _ in nets], dtype=int)
        dst = np.array([index_of[v] for _, v in nets], dtype=int)

        density = DensityMap(grid, bin_size=2.0 * cfg.lb)
        half = np.where(
            np.arange(n) < num_qubits, cfg.qubit_size / 2.0, cfg.lb / 2.0
        )
        movable_lo = 0 if move_qubits else num_qubits

        step = cfg.gp_step
        for _ in range(cfg.gp_iterations):
            force = np.zeros_like(pos)
            # Net attraction (linear springs on 2-pin nets).
            delta = pos[dst] - pos[src]
            np.add.at(force, src, cfg.gp_attraction * delta)
            np.add.at(force, dst, -cfg.gp_attraction * delta)
            # Density spreading.
            density.deposit(pos[:, 0], pos[:, 1], areas)
            gx, gy = density.gradient_at(pos[:, 0], pos[:, 1])
            force[:, 0] -= cfg.gp_density * gx
            force[:, 1] -= cfg.gp_density * gy
            # Qubit anchors.
            force[:num_qubits] += cfg.gp_anchor * (anchors - pos[:num_qubits])
            if not move_qubits:
                force[:num_qubits] = 0.0

            # Capped, decaying step.
            norm = np.linalg.norm(force, axis=1, keepdims=True)
            cap = 1.5 * cfg.lb
            scale = np.minimum(1.0, cap / np.maximum(norm, 1e-12))
            pos[movable_lo:] += step * (force * scale)[movable_lo:]

            # Border clamp (Eq. 2).
            pos[:, 0] = np.clip(pos[:, 0], half, grid.width - half)
            pos[:, 1] = np.clip(pos[:, 1], half, grid.height - half)
            step *= 0.995

        self._write_back(netlist, node_ids, pos)
        density.deposit(pos[:, 0], pos[:, 1], areas)
        bin_cap = density.bin_size**2
        overflow = float(np.max(density.density) / bin_cap)
        positions = {nid: tuple(pos[k]) for nid, k in index_of.items()}
        return GlobalPlaceResult(
            iterations=cfg.gp_iterations,
            hpwl=total_hpwl(nets, positions),
            max_bin_overflow=overflow,
        )

    @staticmethod
    def _write_back(netlist: QuantumNetlist, node_ids: list, pos: np.ndarray) -> None:
        for k, nid in enumerate(node_ids):
            if nid[0] == "q":
                netlist.qubit(nid[1]).move_to(float(pos[k, 0]), float(pos[k, 1]))
            else:
                _, key, ordinal = nid
                block = netlist.resonator(*key).blocks[ordinal]
                block.move_to(float(pos[k, 0]), float(pos[k, 1]))
