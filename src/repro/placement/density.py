"""Bin-density map for the global placer's spreading force."""

from __future__ import annotations

import numpy as np

from repro.geometry import SiteGrid


class DensityMap:
    """Occupancy histogram over coarse bins with a gradient for spreading.

    The global placer deposits each cell's area into the bin containing
    its centre, then pushes cells downhill along the smoothed density
    gradient — the classical diffusion-style spreading force.
    """

    def __init__(self, grid: SiteGrid, bin_size: float = 2.0) -> None:
        if bin_size <= 0:
            raise ValueError(f"bin_size must be positive, got {bin_size}")
        self.grid = grid
        self.bin_size = bin_size
        self.nx = max(2, int(np.ceil(grid.width / bin_size)))
        self.ny = max(2, int(np.ceil(grid.height / bin_size)))
        self._density = np.zeros((self.ny, self.nx))

    @property
    def density(self) -> np.ndarray:
        """Current density array, shape ``(ny, nx)``, units of area/bin."""
        return self._density

    def bin_of(self, xs: np.ndarray, ys: np.ndarray) -> tuple:
        """Vectorized bin indices (clipped to the map)."""
        bx = np.clip((xs / self.bin_size).astype(int), 0, self.nx - 1)
        by = np.clip((ys / self.bin_size).astype(int), 0, self.ny - 1)
        return (bx, by)

    def deposit(self, xs: np.ndarray, ys: np.ndarray, areas: np.ndarray) -> None:
        """Recompute the density from scratch for the given cells."""
        self._density.fill(0.0)
        bx, by = self.bin_of(xs, ys)
        np.add.at(self._density, (by, bx), areas)

    def smoothed(self) -> np.ndarray:
        """Density after one 3x3 box blur (keeps the gradient stable)."""
        d = self._density
        padded = np.pad(d, 1, mode="edge")
        out = np.zeros_like(d)
        for dy in range(3):
            for dx in range(3):
                out += padded[dy : dy + d.shape[0], dx : dx + d.shape[1]]
        return out / 9.0

    def gradient_at(self, xs: np.ndarray, ys: np.ndarray) -> tuple:
        """Smoothed density gradient sampled at cell centres.

        Returns ``(gx, gy)`` arrays; the spreading force is ``-grad``.
        """
        smooth = self.smoothed()
        gy, gx = np.gradient(smooth)
        bx, by = self.bin_of(xs, ys)
        return (gx[by, bx], gy[by, bx])
