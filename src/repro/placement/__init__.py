"""Global placement substrate.

qGDP's contribution begins *after* global placement: the paper evaluates
every legalizer from the same GP solution with pseudo connections.  This
package provides that substrate — a force-directed, density-spreading
global placer in the spirit of qPlacer/DREAMPlace [12], [13] — plus the
layout builder that instantiates a netlist on a sized substrate.
"""

from repro.placement.builder import build_layout, size_grid
from repro.placement.global_placer import GlobalPlacer, GlobalPlaceResult
from repro.placement.density import DensityMap
from repro.placement.wirelength import hpwl, total_hpwl

__all__ = [
    "build_layout",
    "size_grid",
    "GlobalPlacer",
    "GlobalPlaceResult",
    "DensityMap",
    "hpwl",
    "total_hpwl",
]
