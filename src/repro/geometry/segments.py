"""Line-segment intersection, used by the crossing counter.

:func:`segments_intersect` is the scalar kernel; :func:`proper_crossings_mask`
is its vectorized twin over stacked endpoint arrays.  Both run the same
IEEE float64 subtractions, multiplications and strict-``tol`` comparisons,
so the mask is bit-equal to calling the scalar kernel per row.
"""

from __future__ import annotations

import numpy as np


def _orient(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> float:
    """Signed area orientation of triangle (a, b, c)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def _orient_rows(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_orient` over ``(m, 2)`` point arrays."""
    return (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1]) - (
        b[:, 1] - a[:, 1]
    ) * (c[:, 0] - a[:, 0])


def proper_crossings_mask(
    p1: np.ndarray,
    p2: np.ndarray,
    q1: np.ndarray,
    q2: np.ndarray,
    tol: float = 1e-9,
) -> np.ndarray:
    """Row-wise :func:`segments_intersect` over ``(m, 2)`` endpoint arrays.

    Row ``k`` is True iff ``segments_intersect(p1[k], p2[k], q1[k],
    q2[k], tol)`` — same orientation arithmetic, same strict
    double-straddle test, evaluated for all rows in one pass.
    """
    d1 = _orient_rows(q1, q2, p1)
    d2 = _orient_rows(q1, q2, p2)
    d3 = _orient_rows(p1, p2, q1)
    d4 = _orient_rows(p1, p2, q2)
    straddles_q = ((d1 > tol) & (d2 < -tol)) | ((d1 < -tol) & (d2 > tol))
    straddles_p = ((d3 > tol) & (d4 < -tol)) | ((d3 < -tol) & (d4 > tol))
    return straddles_q & straddles_p


def segments_intersect(
    p1: tuple, p2: tuple, q1: tuple, q2: tuple, tol: float = 1e-9
) -> bool:
    """True when segment ``p1p2`` properly crosses segment ``q1q2``.

    *Proper* crossing: the segments intersect at a single interior point.
    Shared endpoints and collinear touching do NOT count — two resonator
    traces meeting at a common qubit are not an airbridge.
    """
    d1 = _orient(*q1, *q2, *p1)
    d2 = _orient(*q1, *q2, *p2)
    d3 = _orient(*p1, *p2, *q1)
    d4 = _orient(*p1, *p2, *q2)
    return (
        ((d1 > tol and d2 < -tol) or (d1 < -tol and d2 > tol))
        and ((d3 > tol and d4 < -tol) or (d3 < -tol and d4 > tol))
    )


def count_pairwise_crossings(segments_a: list, segments_b: list) -> int:
    """Number of proper intersections between two segment sets.

    Each set is a list of ``((x1, y1), (x2, y2))`` tuples.
    """
    count = 0
    for p1, p2 in segments_a:
        for q1, q2 in segments_b:
            if segments_intersect(p1, p2, q1, q2):
                count += 1
    return count
