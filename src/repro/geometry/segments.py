"""Line-segment intersection, used by the crossing counter."""

from __future__ import annotations


def _orient(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> float:
    """Signed area orientation of triangle (a, b, c)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def segments_intersect(
    p1: tuple, p2: tuple, q1: tuple, q2: tuple, tol: float = 1e-9
) -> bool:
    """True when segment ``p1p2`` properly crosses segment ``q1q2``.

    *Proper* crossing: the segments intersect at a single interior point.
    Shared endpoints and collinear touching do NOT count — two resonator
    traces meeting at a common qubit are not an airbridge.
    """
    d1 = _orient(*q1, *q2, *p1)
    d2 = _orient(*q1, *q2, *p2)
    d3 = _orient(*p1, *p2, *q1)
    d4 = _orient(*p1, *p2, *q2)
    return (
        ((d1 > tol and d2 < -tol) or (d1 < -tol and d2 > tol))
        and ((d3 > tol and d4 < -tol) or (d3 < -tol and d4 > tol))
    )


def count_pairwise_crossings(segments_a: list, segments_b: list) -> int:
    """Number of proper intersections between two segment sets.

    Each set is a list of ``((x1, y1), (x2, y2))`` tuples.
    """
    count = 0
    for p1, p2 in segments_a:
        for q1, q2 in segments_b:
            if segments_intersect(p1, p2, q1, q2):
                count += 1
    return count
