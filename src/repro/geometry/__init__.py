"""Planar geometry primitives used throughout the layout engines.

Everything in qGDP lives on a rectilinear substrate: qubits and resonator
wire blocks are axis-aligned rectangles, legalization snaps them to a site
grid, and the crosstalk metrics reason about adjacency lengths and centroid
distances between rectangles.  This package provides those primitives with
no dependency on the rest of the library.
"""

from repro.geometry.point import Point, manhattan, euclidean
from repro.geometry.rect import (
    Rect,
    overlap_area,
    overlap_length_x,
    overlap_length_y,
    adjacency_length,
    gap_between,
)
from repro.geometry.grid import SiteGrid
from repro.geometry.segments import segments_intersect, count_pairwise_crossings

__all__ = [
    "Point",
    "manhattan",
    "euclidean",
    "Rect",
    "overlap_area",
    "overlap_length_x",
    "overlap_length_y",
    "adjacency_length",
    "gap_between",
    "SiteGrid",
    "segments_intersect",
    "count_pairwise_crossings",
]
