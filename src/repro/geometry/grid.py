"""Site grid: the discrete lattice legalization snaps onto.

The paper defines the resonator wire-block size ``lb`` as the standard-cell
pitch; everything is legalized onto a lattice of ``lb`` × ``lb`` sites.  A
site is addressed by integer column/row ``(col, row)``; its *centre* in
layout coordinates is ``((col + 0.5) * lb, (row + 0.5) * lb)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class SiteGrid:
    """A ``cols`` × ``rows`` lattice of square sites with pitch ``lb``."""

    cols: int
    rows: int
    lb: float = 1.0

    def __post_init__(self) -> None:
        if self.cols <= 0 or self.rows <= 0:
            raise ValueError(f"grid must be positive, got {self.cols}x{self.rows}")
        if self.lb <= 0:
            raise ValueError(f"site pitch must be positive, got {self.lb}")

    # -- extents ---------------------------------------------------------
    @property
    def width(self) -> float:
        """Substrate width W in layout units."""
        return self.cols * self.lb

    @property
    def height(self) -> float:
        """Substrate height H in layout units."""
        return self.rows * self.lb

    @property
    def border(self) -> Rect:
        """The substrate border rectangle (Eq. 2's (W, H))."""
        return Rect.from_bounds(0.0, 0.0, self.width, self.height)

    @property
    def num_sites(self) -> int:
        """Total number of sites."""
        return self.cols * self.rows

    # -- flat indexing -----------------------------------------------------
    # Sites flatten **column-major** (``flat = col * rows + row``) so that
    # ascending flat index coincides with ascending ``(col, row)`` tuple
    # order; the array-backed occupancy index and the maze router rely on
    # this to keep flat-keyed orderings identical to tuple-keyed ones.
    def flat_index(self, col: int, row: int) -> int:
        """Column-major flat index of a site (no bounds check)."""
        return col * self.rows + row

    def site_of_flat(self, index: int) -> tuple:
        """Inverse of :meth:`flat_index`."""
        col, row = divmod(index, self.rows)
        return (col, row)

    # -- coordinate mapping ----------------------------------------------
    def site_center(self, col: int, row: int) -> Point:
        """Centre of site ``(col, row)`` in layout coordinates."""
        self._check(col, row)
        return Point((col + 0.5) * self.lb, (row + 0.5) * self.lb)

    def site_of(self, p: Point) -> tuple:
        """The ``(col, row)`` of the site containing ``p`` (clamped to grid)."""
        col = int(p.x // self.lb)
        row = int(p.y // self.lb)
        return (min(max(col, 0), self.cols - 1), min(max(row, 0), self.rows - 1))

    def snap(self, p: Point) -> Point:
        """Snap a point to the centre of its containing site."""
        col, row = self.site_of(p)
        return self.site_center(col, row)

    def in_grid(self, col: int, row: int) -> bool:
        """True when ``(col, row)`` addresses a real site."""
        return 0 <= col < self.cols and 0 <= row < self.rows

    def clamp_rect(self, rect: Rect) -> Rect:
        """Recentre ``rect`` so it lies fully inside the border (Eq. 2)."""
        half_w, half_h = rect.w / 2.0, rect.h / 2.0
        cx = min(max(rect.cx, half_w), self.width - half_w)
        cy = min(max(rect.cy, half_h), self.height - half_h)
        return rect.moved_to(cx, cy)

    def sites_covered(self, rect: Rect) -> list:
        """All ``(col, row)`` sites whose area intersects ``rect``.

        Sites that merely touch the rect boundary are excluded, so a macro
        occupying an integer number of sites reports exactly those sites.
        """
        eps = 1e-9
        lo_col = max(0, int((rect.xlo + eps) // self.lb))
        hi_col = min(self.cols - 1, int((rect.xhi - eps) // self.lb))
        lo_row = max(0, int((rect.ylo + eps) // self.lb))
        hi_row = min(self.rows - 1, int((rect.yhi - eps) // self.lb))
        return [
            (c, r)
            for r in range(lo_row, hi_row + 1)
            for c in range(lo_col, hi_col + 1)
        ]

    def neighbors4(self, col: int, row: int) -> list:
        """The in-grid 4-neighbourhood of a site."""
        candidates = ((col - 1, row), (col + 1, row), (col, row - 1), (col, row + 1))
        return [(c, r) for c, r in candidates if self.in_grid(c, r)]

    def _check(self, col: int, row: int) -> None:
        if not self.in_grid(col, row):
            raise IndexError(
                f"site ({col}, {row}) outside grid {self.cols}x{self.rows}"
            )
