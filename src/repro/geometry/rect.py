"""Axis-aligned rectangles and the pairwise measures the metrics need.

Rectangles are stored centre + size, matching the paper's formulation: the
non-overlap constraint (Eq. 1) and border constraint (Eq. 2) are both written
in terms of centre coordinates and half-dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass
class Rect:
    """A mutable axis-aligned rectangle, centre ``(cx, cy)``, size ``(w, h)``."""

    cx: float
    cy: float
    w: float
    h: float

    # -- bounds ----------------------------------------------------------
    @property
    def xlo(self) -> float:
        """Left edge."""
        return self.cx - self.w / 2.0

    @property
    def xhi(self) -> float:
        """Right edge."""
        return self.cx + self.w / 2.0

    @property
    def ylo(self) -> float:
        """Bottom edge."""
        return self.cy - self.h / 2.0

    @property
    def yhi(self) -> float:
        """Top edge."""
        return self.cy + self.h / 2.0

    @property
    def area(self) -> float:
        """Rectangle area."""
        return self.w * self.h

    @property
    def center(self) -> Point:
        """Centre point."""
        return Point(self.cx, self.cy)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_bounds(cls, xlo: float, ylo: float, xhi: float, yhi: float) -> "Rect":
        """Build a rect from corner bounds (``xhi >= xlo``, ``yhi >= ylo``)."""
        if xhi < xlo or yhi < ylo:
            raise ValueError(f"degenerate bounds ({xlo}, {ylo}, {xhi}, {yhi})")
        return cls((xlo + xhi) / 2.0, (ylo + yhi) / 2.0, xhi - xlo, yhi - ylo)

    def moved_to(self, cx: float, cy: float) -> "Rect":
        """Return a copy recentred at ``(cx, cy)``."""
        return Rect(cx, cy, self.w, self.h)

    def inflated(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side."""
        return Rect(self.cx, self.cy, self.w + 2.0 * margin, self.h + 2.0 * margin)

    # -- predicates --------------------------------------------------------
    def overlaps(self, other: "Rect", tol: float = 1e-9) -> bool:
        """True when the interiors intersect (touching edges do not count)."""
        return (
            overlap_length_x(self, other) > tol and overlap_length_y(self, other) > tol
        )

    def contains_point(self, p: Point, tol: float = 1e-9) -> bool:
        """True when ``p`` lies inside or on the boundary."""
        return (
            self.xlo - tol <= p.x <= self.xhi + tol
            and self.ylo - tol <= p.y <= self.yhi + tol
        )

    def inside(self, border: "Rect", tol: float = 1e-9) -> bool:
        """True when this rect is fully contained in ``border`` (Eq. 2)."""
        return (
            self.xlo >= border.xlo - tol
            and self.xhi <= border.xhi + tol
            and self.ylo >= border.ylo - tol
            and self.yhi <= border.yhi + tol
        )


def overlap_length_x(a: Rect, b: Rect) -> float:
    """Length of the x-axis projection overlap (0 when disjoint)."""
    return max(0.0, min(a.xhi, b.xhi) - max(a.xlo, b.xlo))


def overlap_length_y(a: Rect, b: Rect) -> float:
    """Length of the y-axis projection overlap (0 when disjoint)."""
    return max(0.0, min(a.yhi, b.yhi) - max(a.ylo, b.ylo))


def overlap_area(a: Rect, b: Rect) -> float:
    """Intersection area of two rectangles."""
    return overlap_length_x(a, b) * overlap_length_y(a, b)


def gap_between(a: Rect, b: Rect) -> float:
    """Smallest edge-to-edge separation between two rectangles.

    Zero when the rectangles touch or overlap.  For diagonal separation the
    Euclidean corner gap is returned.
    """
    dx = max(0.0, max(a.xlo, b.xlo) - min(a.xhi, b.xhi))
    dy = max(0.0, max(a.ylo, b.ylo) - min(a.yhi, b.yhi))
    if dx > 0.0 and dy > 0.0:
        return (dx * dx + dy * dy) ** 0.5
    return max(dx, dy)


def adjacency_length(a: Rect, b: Rect, reach: float) -> float:
    """Facing-edge length between two rectangles within ``reach``.

    This is the ``p_i ∩ p_j`` term of Eq. 4: the length along which the two
    component polygons face each other once each is inflated by half the
    interaction ``reach``.  Components farther apart than ``reach`` in both
    axes contribute zero.
    """
    gap = gap_between(a, b)
    if gap > reach:
        return 0.0
    shared_x = overlap_length_x(a, b)
    shared_y = overlap_length_y(a, b)
    # The facing span is whichever projection overlap is positive; for
    # diagonal neighbours within reach, fall back to the smaller footprint
    # edge so a nonzero (but small) adjacency is reported.
    if shared_x > 0.0 or shared_y > 0.0:
        return max(shared_x, shared_y)
    return min(min(a.w, a.h), min(b.w, b.h)) * 0.25
