"""2-D points and distance helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point in layout coordinates.

    Layout coordinates are continuous; the site grid (see
    :class:`repro.geometry.grid.SiteGrid`) is responsible for snapping.
    """

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_to(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple:
        """Return ``(x, y)``."""
        return (self.x, self.y)


def manhattan(a: Point, b: Point) -> float:
    """Manhattan distance between two points."""
    return a.manhattan_to(b)


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.euclidean_to(b)
