"""Legalization engines: qGDP's quantum legalizer and the classical baselines.

Legalization turns the rough global placement into a legal layout
(non-overlap, Eq. 1; in-border, Eq. 2) while moving components as little
as possible.  qGDP splits the job (paper Section III):

* **qubit legalization** — constraint-graph + LP macro legalization with a
  quantum minimum-spacing constraint and a greedy relaxation schedule
  (:mod:`repro.legalization.qubit_legalizer`); the classical variant with
  zero spacing is the macro legalizer of [26]
  (:mod:`repro.legalization.macro_lp`);
* **resonator legalization** — the integration-aware Tetris-like scan of
  Algorithm 1 (:mod:`repro.legalization.integration_aware`), against the
  classical Tetris [27] and Abacus [29] cell legalizers.

:mod:`repro.legalization.engines` wires these into the five named
strategies the paper compares: qGDP-LG, Q-Abacus, Q-Tetris, Abacus, Tetris.
"""

from repro.legalization.bins import BinGrid
from repro.legalization.constraint_graph import (
    Arc,
    AxisArcs,
    build_constraint_arrays,
    build_constraint_graphs,
    transitive_reduction,
)
from repro.legalization.macro_lp import legalize_macros, MacroLegalizationResult
from repro.legalization.qubit_legalizer import legalize_qubits, QubitLegalizationResult
from repro.legalization.tetris import tetris_legalize
from repro.legalization.abacus import abacus_legalize
from repro.legalization.integration_aware import integration_aware_legalize
from repro.legalization.engines import (
    LegalizationEngine,
    ENGINES,
    PAPER_ENGINE_ORDER,
    get_engine,
    run_legalization,
    LegalizationOutcome,
)

__all__ = [
    "BinGrid",
    "build_constraint_graphs",
    "build_constraint_arrays",
    "transitive_reduction",
    "Arc",
    "AxisArcs",
    "legalize_macros",
    "MacroLegalizationResult",
    "legalize_qubits",
    "QubitLegalizationResult",
    "tetris_legalize",
    "abacus_legalize",
    "integration_aware_legalize",
    "LegalizationEngine",
    "ENGINES",
    "PAPER_ENGINE_ORDER",
    "get_engine",
    "run_legalization",
    "LegalizationOutcome",
]
