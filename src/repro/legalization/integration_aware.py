"""Integration-aware resonator legalization (paper Algorithm 1, Fig. 6).

The quantum twist on Tetris: blocks are legalized resonator by resonator,
and after the first block of a resonator lands, subsequent blocks may only
go to *adjacent available* bins (``Baa``) — free sites 4-adjacent to the
blocks already placed for this resonator.  The grown region therefore
stays connected, keeping the resonator unified (|Ce| = 1) whenever space
permits, which is exactly the cluster-count objective (Eq. 3).

When ``Baa`` runs dry (a congested pocket), the block falls back to the
globally nearest free bin, starting a new cluster — the residual
non-unified resonators the detailed placer later repairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.legalization.bins import BinGrid


@dataclass
class IntegrationLegalizationResult:
    """Outcome of Algorithm 1 over all resonators."""

    placed: dict
    fallback_blocks: int
    total_displacement: float


def _site_distance2(site: tuple, target: tuple) -> float:
    dc = site[0] - target[0]
    dr = site[1] - target[1]
    return float(dc * dc + dr * dr)


def _attachment_sites(bins: BinGrid, rect) -> list:
    """Free sites 4-adjacent to a qubit footprint (attachment candidates)."""
    grid = bins.grid
    covered = set(grid.sites_covered(rect))
    candidates = set()
    for col, row in covered:
        for site in grid.neighbors4(col, row):
            if site not in covered and bins.is_free(*site):
                candidates.add(site)
    return sorted(candidates)


def integration_aware_legalize(
    resonators: list,
    bins: BinGrid,
    netlist=None,
) -> IntegrationLegalizationResult:
    """Legalize every resonator's blocks contiguously (Algorithm 1).

    ``resonators`` are processed in the given order; ``bins`` must already
    have the legalized qubits blocked out (line 2 of Algorithm 1).  When
    ``netlist`` is given, the first block of each resonator seeds at a
    free site *adjacent to its endpoint qubit* (as in the paper's Fig. 6c)
    so the grown region attaches to the qubit pad and the exposed
    connection trace stays short; without it, the first block simply takes
    the globally nearest free bin.

    Block positions are written back; the result records the placement
    map, how many blocks needed the global fallback (new cluster seeds),
    and the total Manhattan displacement in layout units.
    """
    grid = bins.grid
    placed = {}
    fallbacks = 0
    displacement = 0.0

    for resonator in resonators:
        adjacent_available = set()  # Baa
        attach = None
        if netlist is not None:
            qubit = netlist.qubit(resonator.qi)
            attach = _attachment_sites(bins, qubit.rect)
        for block in resonator.blocks:
            target = grid.site_of(block.center)
            if adjacent_available:
                site = min(
                    adjacent_available,
                    key=lambda s: (_site_distance2(s, target), s[1], s[0]),
                )
            elif block.ordinal == 0 and attach:
                site = min(
                    attach,
                    key=lambda s: (_site_distance2(s, target), s[1], s[0]),
                )
            else:
                site = bins.nearest_free(*target)
                if site is None:
                    raise RuntimeError(
                        "integration-aware legalization ran out of free sites"
                    )
                if block.ordinal > 0:
                    fallbacks += 1
            bins.occupy(site[0], site[1], block.node_id)
            adjacent_available.discard(site)
            center = grid.site_center(*site)
            displacement += abs(center.x - block.x) + abs(center.y - block.y)
            block.move_to(center.x, center.y)
            placed[block.name] = site
            # Baa update f(Baa, Ba, p(s)): add the new block's free
            # neighbours, drop anything no longer free.
            for neighbor in bins.free_neighbors(*site):
                adjacent_available.add(neighbor)
            adjacent_available = {
                s for s in adjacent_available if bins.is_free(*s)
            }

    return IntegrationLegalizationResult(
        placed=placed,
        fallback_blocks=fallbacks,
        total_displacement=displacement,
    )
