"""The five legalization engines the paper compares (Section IV).

============ ===================== ==========================
engine       qubit stage           resonator stage
============ ===================== ==========================
qgdp         quantum LP (III-C)    integration-aware (Alg. 1)
q-abacus     quantum LP (III-C)    Abacus [29]
q-tetris     quantum LP (III-C)    Tetris [27]
abacus       classical LP [26]     Abacus [29]
tetris       classical LP [26]     Tetris [27]
============ ===================== ==========================

Every engine consumes the same global placement (the paper fixes GP with
pseudo connections across all comparisons) and produces a legal layout
plus per-stage wall-clock times (tq, te of Table II).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import QGDPConfig
from repro.geometry import SiteGrid
from repro.legalization.abacus import abacus_legalize
from repro.legalization.bins import BinGrid
from repro.legalization.integration_aware import integration_aware_legalize
from repro.legalization.qubit_legalizer import legalize_qubits
from repro.legalization.tetris import tetris_legalize
from repro.netlist.netlist import QuantumNetlist


@dataclass(frozen=True)
class LegalizationEngine:
    """A named (qubit stage, resonator stage) combination."""

    name: str
    display_name: str
    quantum_qubits: bool
    resonator_method: str  # "integration" | "abacus" | "tetris"


ENGINES = {
    "qgdp": LegalizationEngine("qgdp", "qGDP-LG", True, "integration"),
    "q-abacus": LegalizationEngine("q-abacus", "Q-Abacus", True, "abacus"),
    "q-tetris": LegalizationEngine("q-tetris", "Q-Tetris", True, "tetris"),
    "abacus": LegalizationEngine("abacus", "Abacus", False, "abacus"),
    "tetris": LegalizationEngine("tetris", "Tetris", False, "tetris"),
}

#: Engine order used by the paper's figures (Fig. 8, Fig. 9).
PAPER_ENGINE_ORDER = ["qgdp", "q-abacus", "q-tetris", "abacus", "tetris"]


def get_engine(name: str) -> LegalizationEngine:
    """Engine by name (case-insensitive); raises KeyError with options."""
    key = name.strip().lower()
    if key not in ENGINES:
        raise KeyError(
            f"unknown engine {name!r}; available: {', '.join(sorted(ENGINES))}"
        )
    return ENGINES[key]


@dataclass
class LegalizationOutcome:
    """What one engine produced on one layout."""

    engine: str
    qubit_time_s: float
    resonator_time_s: float
    qubit_displacement: float
    qubit_spacing_used: float
    qubit_attempts: int
    bins: BinGrid


def run_legalization(
    netlist: QuantumNetlist,
    grid: SiteGrid,
    engine: LegalizationEngine,
    config: QGDPConfig = None,
) -> LegalizationOutcome:
    """Run one engine's qubit + resonator legalization in place."""
    config = config or QGDPConfig()

    t0 = time.perf_counter()
    qubit_result = legalize_qubits(
        netlist, grid, config, quantum=engine.quantum_qubits
    )
    tq = time.perf_counter() - t0

    bins = BinGrid(grid)
    for qubit in netlist.qubits:
        bins.occupy_rect(qubit.rect, qubit.node_id)

    t0 = time.perf_counter()
    if engine.resonator_method == "integration":
        integration_aware_legalize(netlist.resonators, bins, netlist)
    elif engine.resonator_method == "abacus":
        abacus_legalize(netlist.wire_blocks, bins)
    elif engine.resonator_method == "tetris":
        tetris_legalize(netlist.wire_blocks, bins)
    else:
        raise ValueError(f"unknown resonator method {engine.resonator_method!r}")
    te = time.perf_counter() - t0

    return LegalizationOutcome(
        engine=engine.name,
        qubit_time_s=tq,
        resonator_time_s=te,
        qubit_displacement=qubit_result.total_displacement,
        qubit_spacing_used=qubit_result.spacing_used,
        qubit_attempts=qubit_result.attempts,
        bins=bins,
    )
