"""Abacus standard-cell legalization [29] (classical baseline).

Abacus processes cells in increasing x and inserts each into the row
minimizing quadratic displacement; within a row, cells are organized into
*clusters* whose optimal position is the mean of member targets, merged
whenever neighbouring clusters would overlap (the classic PlaceRow
recurrence).  Obstacles (qubit macros) split each row into independent
segments.

Like Tetris, Abacus is integration-blind: it optimizes displacement per
cell and happily splits a resonator's blocks across rows and segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.legalization.bins import BinGrid


@dataclass
class _Cluster:
    """A maximal run of touching unit cells within one segment.

    ``cells`` holds ``(block, raw_target)`` in left-to-right order; the
    cell at list index ``k`` sits at ``start + k``.  ``adj_sum`` maintains
    ``Σ (raw_target_k - k)`` so the mean-optimal start is ``adj_sum / n``.
    """

    cells: list = field(default_factory=list)
    adj_sum: float = 0.0

    @property
    def n(self) -> int:
        return len(self.cells)

    def optimal_start(self, seg_lo: float, seg_hi_excl: float) -> float:
        """Mean-optimal start clamped so the cluster fits the segment."""
        raw = self.adj_sum / self.n
        return min(max(raw, seg_lo), seg_hi_excl - self.n)


@dataclass
class _Segment:
    """A maximal free interval of one row: columns ``lo .. hi`` inclusive."""

    lo: int
    hi: int
    clusters: list = field(default_factory=list)

    @property
    def capacity(self) -> int:
        return self.hi - self.lo + 1

    @property
    def used(self) -> int:
        return sum(c.n for c in self.clusters)

    def total_cost(self) -> float:
        """Quadratic x-displacement of every cell currently in the segment."""
        cost = 0.0
        for cluster in self.clusters:
            start = cluster.optimal_start(float(self.lo), float(self.hi + 1))
            for k, (_block, raw_target) in enumerate(cluster.cells):
                cost += (start + k - raw_target) ** 2
        return cost

    def insert(self, block, raw_target: float) -> None:
        """PlaceRow append: new singleton cluster, merge leftward while overlapping."""
        self.clusters.append(_Cluster(cells=[(block, raw_target)], adj_sum=raw_target))
        seg_lo, seg_hi = float(self.lo), float(self.hi + 1)
        while len(self.clusters) >= 2:
            cur = self.clusters[-1]
            prev = self.clusters[-2]
            if prev.optimal_start(seg_lo, seg_hi) + prev.n <= cur.optimal_start(
                seg_lo, seg_hi
            ) + 1e-9:
                break
            merged = _Cluster(
                cells=prev.cells + cur.cells,
                adj_sum=prev.adj_sum + cur.adj_sum - cur.n * prev.n,
            )
            self.clusters[-2:] = [merged]

    def clone(self) -> "_Segment":
        """Deep-enough copy for trial insertions."""
        return _Segment(
            self.lo,
            self.hi,
            [_Cluster(list(c.cells), c.adj_sum) for c in self.clusters],
        )


def _segments_of_row(bins: BinGrid, row: int) -> list:
    """Maximal runs of free columns in a row."""
    free = bins.free_cols_in_row(row)
    segments = []
    run_start = None
    prev = None
    for col in map(int, free):
        if run_start is None:
            run_start = col
        elif col != prev + 1:
            segments.append(_Segment(run_start, prev))
            run_start = col
        prev = col
    if run_start is not None:
        segments.append(_Segment(run_start, prev))
    return segments


def abacus_legalize(blocks: list, bins: BinGrid) -> dict:
    """Legalize wire blocks with row-cluster Abacus.

    ``bins`` must already have fixed macros blocked out.  Final positions
    are written back to the blocks **and** committed to ``bins``; returns
    block name → (col, row).  Raises ``RuntimeError`` when no segment can
    host a cell.
    """
    grid = bins.grid
    row_segments = [_segments_of_row(bins, r) for r in range(grid.rows)]
    order = sorted(blocks, key=lambda b: (b.x, b.y, b.resonator_key, b.ordinal))

    for block in order:
        # A unit cell at column c has centre (c + 0.5) * lb.
        raw_target = block.x / grid.lb - 0.5
        target_row = grid.site_of(block.center)[1]
        best = None  # (delta_cost, row, segment)
        for dist in range(grid.rows):
            if best is not None and float(dist * dist) > best[0]:
                break
            for row in sorted({target_row - dist, target_row + dist}):
                if not (0 <= row < grid.rows):
                    continue
                y_cost = float((row - target_row) ** 2)
                for segment in row_segments[row]:
                    if segment.used >= segment.capacity:
                        continue
                    trial = segment.clone()
                    before = trial.total_cost()
                    trial.insert(block, raw_target)
                    delta = y_cost + trial.total_cost() - before
                    if best is None or delta < best[0]:
                        best = (delta, row, segment)
        if best is None:
            raise RuntimeError("abacus legalization found no feasible row")
        _, _row, segment = best
        segment.insert(block, raw_target)

    # Commit cluster positions to sites and write back block coordinates.
    placed = {}
    for row_idx, segments in enumerate(row_segments):
        for segment in segments:
            for cluster in segment.clusters:
                start = cluster.optimal_start(
                    float(segment.lo), float(segment.hi + 1)
                )
                start_col = int(round(start))
                start_col = max(
                    segment.lo, min(start_col, segment.hi + 1 - cluster.n)
                )
                for offset, (block, _t) in enumerate(cluster.cells):
                    col = start_col + offset
                    bins.occupy(col, row_idx, block.node_id)
                    center = grid.site_center(col, row_idx)
                    block.move_to(center.x, center.y)
                    placed[block.name] = (col, row_idx)
    return placed
