"""LP-based macro legalization with minimal displacement [26].

Given the H/V constraint graphs, each axis is solved independently as a
linear program: minimize total displacement from the global-placement
positions subject to the arc separations and the border bounds.  This is
the dual-of-min-cost-flow formulation the paper adopts from Tang et
al. [26]; with ≤ 127 qubits scipy's HiGHS solves it in milliseconds.

The constraint matrix is assembled from vectorized index/data arrays
(one ``coo_matrix`` build, no per-row Python loop) over the axis arc
arrays of :func:`~repro.legalization.constraint_graph
.build_constraint_arrays`; variable and row order match the historical
scalar assembly exactly, so HiGHS sees the same problem and returns the
same vertex.

Two on-by-default levers shrink or skip the HiGHS work (scipy's HiGHS
wrapper exposes no basis API, so the warm start is solution-level and
exact rather than simplex-basis reuse): the constraint graphs are
transitively reduced before assembly (same feasible region, near-linear
rows instead of O(n²)), and :func:`_warm_presolve` derives longest-path
implied bounds per axis — certifying infeasibility without a solve
(which fast-fails every relaxation-retry attempt in the spacing
schedule), returning a provably optimal clamp of the targets when it
satisfies all arcs, and otherwise tightening the variable box for the
solve that does run.  Positional parity with the historical cold
full-graph solve is deliberately re-baselined through the committed
golden-fingerprint suite (``tests/golden/``, ``tools/write_baselines
.py``) whenever these levers shift a degenerate optimum.

After the continuous solve, positions are snapped to the site grid and a
single bound-respecting forward sweep restores any arc separation the
rounding broke: upper limits are first propagated backwards from the
border through the arc DAG, then each node (in topological order) is
pushed up to its predecessors' separations and clamped to its limit —
sound because all separations and borders are integral in site units, so
a feasible continuous solution implies a feasible integral one.  (The
historical forward/backward pair could pull a node below a bound the
forward pass had just restored and report spurious infeasibility on
tight-border instances; the combined clamp cannot.)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.geometry import SiteGrid
from repro.legalization.constraint_graph import (
    AxisArcs,
    build_constraint_arrays,
    transitive_reduction,
)


@dataclass
class MacroLegalizationResult:
    """Outcome of one macro legalization attempt.

    On failure (``feasible`` is False) ``positions`` is the *input*
    placement, unchanged — callers keep a usable layout either way and
    escalate (e.g. relax spacing) off the ``feasible`` flag alone.
    """

    feasible: bool
    positions: dict
    total_displacement: float
    max_displacement: float
    spacing: float


def _implied_bounds(
    ids: list,
    targets: np.ndarray,
    half_sizes: np.ndarray,
    arcs: AxisArcs,
    extent: float,
) -> tuple:
    """Longest-path implied interval ``[lo_k, hi_k]`` for every node.

    ``lo`` pushes the border/half-size lower bounds forward through the
    arc DAG (every feasible ``x_k`` satisfies ``x_k >= lo_k``); ``hi``
    propagates the upper border backwards.  Exact — each node reduces its
    grouped arc slice in one vectorized max/min, no fixed-point loop.
    Returns ``None`` when no topological order exists (cyclic arcs).
    """
    n = targets.size
    order = _topological_order(n, arcs, targets, ids)
    if order.size != n:
        return None
    rank = np.empty(n, dtype=np.intp)
    rank[order] = np.arange(n)

    in_starts, in_lo, in_sep = _grouped_arcs(
        rank[arcs.hi], n, arcs.lo, arcs.sep
    )
    out_starts, out_hi, out_sep = _grouped_arcs(
        rank[arcs.lo], n, arcs.hi, arcs.sep
    )

    lo = half_sizes.copy()
    for r in range(n):
        lo_arc, hi_arc = in_starts[r], in_starts[r + 1]
        if lo_arc == hi_arc:
            continue
        node = order[r]
        pred = (lo[in_lo[lo_arc:hi_arc]] + in_sep[lo_arc:hi_arc]).max()
        lo[node] = max(lo[node], pred)

    hi = extent - half_sizes
    for r in range(n - 1, -1, -1):
        lo_arc, hi_arc = out_starts[r], out_starts[r + 1]
        if lo_arc == hi_arc:
            continue
        node = order[r]
        succ = (hi[out_hi[lo_arc:hi_arc]] - out_sep[lo_arc:hi_arc]).min()
        hi[node] = min(hi[node], succ)
    return (lo, hi)


#: Sentinel distinguishing "certified infeasible, skip the solve" from
#: "no presolve conclusion" in :func:`_warm_presolve`.
_INFEASIBLE = "infeasible"


def _warm_presolve(
    ids: list,
    targets: np.ndarray,
    half_sizes: np.ndarray,
    arcs: AxisArcs,
    extent: float,
) -> tuple:
    """Solution-level warm start for one axis solve.

    Returns one of ``(_INFEASIBLE, None)`` — the implied bounds cross by
    more than float noise, so the LP cannot be feasible and the HiGHS
    call (including every relaxation-retry resolve) is skipped;
    ``("optimal", x)`` — clamping the targets into the implied bounds
    already satisfies every arc, and since any feasible solution obeys
    those bounds pointwise, the clamp attains the objective's pointwise
    lower bound and is returned without invoking HiGHS; or
    ``("bounds", (lo, hi))`` — no shortcut fired, but the tightened
    bounds (same feasible region) warm-start the HiGHS solve.  ``None``
    when the presolve cannot run (cyclic arc input).
    """
    bounds = _implied_bounds(ids, targets, half_sizes, arcs, extent)
    if bounds is None:
        return None
    lo, hi = bounds
    gap = lo - hi
    if np.any(gap > 1e-6):
        return (_INFEASIBLE, None)
    if np.all(gap <= 0.0):
        warm = np.minimum(np.maximum(targets, lo), hi)
        if np.all(warm[arcs.hi] - warm[arcs.lo] >= arcs.sep):
            return ("optimal", warm)
        return ("bounds", (lo, hi))
    # Marginally crossed bounds: leave the verdict to HiGHS untightened.
    return None


def _solve_axis(
    arcs: AxisArcs,
    targets: np.ndarray,
    half_sizes: np.ndarray,
    extent: float,
    ids: list = None,
    warm_start: bool = False,
) -> np.ndarray:
    """Min-displacement 1-D LP; returns coordinates or None if infeasible.

    Variables are ``[x_0..x_{n-1}, d_0..d_{n-1}]`` with ``arcs`` indexing
    into the same node order as ``targets``.  Rows: one per arc
    (``x_lo - x_hi <= -sep``), then two per node (``±(x_k - t_k) <=
    d_k``), assembled as flat index/data arrays.

    With ``warm_start`` (requires ``ids`` for topological tie-breaks),
    the :func:`_warm_presolve` certificate runs first: certified
    infeasibility and certified-optimal clamps skip HiGHS entirely, and
    otherwise the implied bounds tighten the variable box (same feasible
    region; the returned vertex may differ from the cold solve's on
    degenerate optima — pinned by the golden-fingerprint suite).
    """
    n = targets.size
    m = len(arcs)
    num_vars = 2 * n
    ks = np.arange(n)

    x_bounds = np.stack([half_sizes, extent - half_sizes], axis=1)
    if warm_start and ids is not None:
        presolved = _warm_presolve(ids, targets, half_sizes, arcs, extent)
        if presolved is not None:
            verdict, payload = presolved
            if verdict == _INFEASIBLE:
                return None
            if verdict == "optimal":
                return payload
            lo, hi = payload
            x_bounds = np.stack([lo, hi], axis=1)

    rows = np.concatenate(
        [np.repeat(np.arange(m), 2), m + np.repeat(np.arange(2 * n), 2)]
    )
    cols = np.concatenate(
        [
            np.stack([arcs.lo, arcs.hi], axis=1).ravel(),
            (np.repeat(ks, 4) + np.tile([0, n, 0, n], n)),
        ]
    )
    data = np.concatenate(
        [np.tile([1.0, -1.0], m), np.tile([1.0, -1.0, -1.0, -1.0], n)]
    )
    rhs = np.concatenate(
        [-arcs.sep, np.stack([targets, -targets], axis=1).ravel()]
    )

    a_ub = sparse.coo_matrix(
        (data, (rows, cols)), shape=(rhs.size, num_vars)
    ).tocsr()
    c = np.concatenate([np.zeros(n), np.ones(n)])
    bounds = np.concatenate(
        [x_bounds, np.tile([0.0, np.inf], (n, 1))]
    )

    result = linprog(c, A_ub=a_ub, b_ub=rhs, bounds=bounds, method="highs")
    if not result.success:
        return None
    return result.x[:n]


def _topological_order(
    n: int, arcs: AxisArcs, snapped: np.ndarray, ids: list
) -> np.ndarray:
    """Arc-respecting node order, by ``(snapped, id)`` among ready nodes.

    The ``(snapped, id)`` sort is already topological whenever the
    snapped coordinates respect every arc — the normal case, since
    rounding moves each centre by less than half a site — and is then
    returned directly from one ``lexsort``.  Only when rounding produced
    a coordinate tie against an arc direction does the Kahn fallback run;
    either way the arc still comes out forward instead of being silently
    flipped.
    """
    order = np.lexsort((ids, snapped))
    rank = np.empty(n, dtype=np.intp)
    rank[order] = np.arange(n)
    if np.all(rank[arcs.lo] < rank[arcs.hi]):
        return order

    indegree = np.zeros(n, dtype=np.int64)
    np.add.at(indegree, arcs.hi, 1)
    out_edges = [[] for _ in range(n)]
    for lo, hi in zip(arcs.lo.tolist(), arcs.hi.tolist()):
        out_edges[lo].append(hi)

    heap = [
        (snapped[k], ids[k], k) for k in range(n) if indegree[k] == 0
    ]
    heapq.heapify(heap)
    kahn = []
    while heap:
        _, _, k = heapq.heappop(heap)
        kahn.append(k)
        for succ in out_edges[k]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (snapped[succ], ids[succ], succ))
    return np.array(kahn, dtype=np.intp)


def _grouped_arcs(rank_key: np.ndarray, n: int, *columns) -> tuple:
    """Sort arc columns by a node-rank key and return per-rank boundaries.

    ``starts[r]:starts[r + 1]`` then slices every sorted column to the
    arcs whose key node has rank ``r`` — the grouping both repair sweeps
    use to reduce a node's arcs in one vectorized min/max.
    """
    by_rank = np.argsort(rank_key, kind="stable")
    key_sorted = rank_key[by_rank]
    starts = np.searchsorted(key_sorted, np.arange(n + 1))
    return (starts, *(column[by_rank] for column in columns))


def _snap_and_repair(
    ids: list,
    solution: np.ndarray,
    half_sizes: np.ndarray,
    arcs: AxisArcs,
    extent: float,
    lb: float,
) -> np.ndarray:
    """Snap to the site grid, then restore arc separations.

    A macro of width ``w`` sites is aligned when ``centre - w/2`` is a
    multiple of ``lb``.  Upper limits are propagated backwards through
    the arc DAG from the border, then one forward sweep pushes each node
    up to its predecessors' separations and clamps it to its limit — so a
    node is never moved below a bound that was already restored.  Both
    steps preserve grid alignment because separations and borders are
    integral in ``lb``.  Each node's arc reduction is one vectorized
    min/max over its grouped arc slice (exact — no accumulation order).
    """
    n = solution.size
    snapped = np.rint((solution - half_sizes) / lb) * lb + half_sizes

    order = _topological_order(n, arcs, snapped, ids)
    rank = np.empty(n, dtype=np.intp)
    rank[order] = np.arange(n)

    out_starts, out_hi, out_sep = _grouped_arcs(
        rank[arcs.lo], n, arcs.hi, arcs.sep
    )
    in_starts, in_lo, in_sep = _grouped_arcs(
        rank[arcs.hi], n, arcs.lo, arcs.sep
    )

    hi_limit = extent - half_sizes
    for r in range(n - 1, -1, -1):
        lo_arc, hi_arc = out_starts[r], out_starts[r + 1]
        if lo_arc == hi_arc:
            continue
        node = order[r]
        head_limit = (
            hi_limit[out_hi[lo_arc:hi_arc]] - out_sep[lo_arc:hi_arc]
        ).min()
        hi_limit[node] = min(hi_limit[node], head_limit)

    for r in range(n):
        node = order[r]
        lo_arc, hi_arc = in_starts[r], in_starts[r + 1]
        lo_bound = half_sizes[node]
        if lo_arc != hi_arc:
            pred_bound = (
                snapped[in_lo[lo_arc:hi_arc]] + in_sep[lo_arc:hi_arc]
            ).max()
            lo_bound = max(lo_bound, pred_bound)
        snapped[node] = min(max(snapped[node], lo_bound), hi_limit[node])
    return snapped


def _arcs_satisfied(
    solution: np.ndarray, arcs: AxisArcs, tol: float = 1e-6
) -> bool:
    return bool(
        np.all(solution[arcs.hi] - solution[arcs.lo] >= arcs.sep - tol)
    )


def legalize_macros(
    indices: list,
    positions: dict,
    sizes: dict,
    grid: SiteGrid,
    spacing: float = 0.0,
    reduce_arcs: bool = True,
    warm_start: bool = True,
) -> MacroLegalizationResult:
    """Legalize macros with the given extra spacing; positions unchanged on failure.

    This is the classical macro legalizer when ``spacing == 0`` and the
    building block of the quantum qubit legalizer otherwise.
    ``reduce_arcs`` (default on) runs the transitive-reduction pass over
    both constraint graphs before the solve — the same feasible region
    from (typically far) fewer LP rows.  ``warm_start`` (default on)
    runs the :func:`_warm_presolve` certificate per axis: certified
    infeasibility fast-fails a relaxation-retry attempt without touching
    HiGHS, a certified-optimal clamp of the targets skips the solve, and
    otherwise the implied bounds tighten the variable box.  Both knobs
    preserve the feasible region exactly; the particular optimum HiGHS
    reports may shift on degenerate optima, which the committed
    golden-fingerprint suite (``tests/golden/``) pins deliberately.
    Pass ``reduce_arcs=False, warm_start=False`` for the historical
    cold full-graph solve (the parity-suite oracle).
    """
    if not indices:
        return MacroLegalizationResult(True, {}, 0.0, 0.0, spacing)
    ordered, h_arcs, v_arcs = build_constraint_arrays(
        indices, positions, sizes, spacing
    )
    n = len(indices)
    half_sorted = np.array(
        [sizes[i] for i in ordered], dtype=np.float64
    ) / 2.0
    if reduce_arcs:
        h_arcs = transitive_reduction(
            h_arcs, n, half_sorted[:, 0], spacing
        )
        v_arcs = transitive_reduction(
            v_arcs, n, half_sorted[:, 1], spacing
        )
    # LP variables keep the caller's id order (the historical column
    # order); remap the sorted-order arc endpoints onto it.
    pos_in_input = {node: k for k, node in enumerate(indices)}
    to_input = np.array(
        [pos_in_input[node] for node in ordered], dtype=np.intp
    )
    h_arcs = AxisArcs(to_input[h_arcs.lo], to_input[h_arcs.hi], h_arcs.sep)
    v_arcs = AxisArcs(to_input[v_arcs.lo], to_input[v_arcs.hi], v_arcs.sep)

    targets = np.array([positions[i] for i in indices], dtype=np.float64)
    half = np.array([sizes[i] for i in indices], dtype=np.float64) / 2.0

    def failure() -> MacroLegalizationResult:
        return MacroLegalizationResult(
            False, dict(positions), 0.0, 0.0, spacing
        )

    sol_x = _solve_axis(
        h_arcs, targets[:, 0], half[:, 0], grid.width,
        ids=indices, warm_start=warm_start,
    )
    if sol_x is None:
        return failure()
    sol_y = _solve_axis(
        v_arcs, targets[:, 1], half[:, 1], grid.height,
        ids=indices, warm_start=warm_start,
    )
    if sol_y is None:
        return failure()

    sol_x = _snap_and_repair(
        indices, sol_x, half[:, 0], h_arcs, grid.width, grid.lb
    )
    sol_y = _snap_and_repair(
        indices, sol_y, half[:, 1], v_arcs, grid.height, grid.lb
    )
    if not (_arcs_satisfied(sol_x, h_arcs) and _arcs_satisfied(sol_y, v_arcs)):
        return failure()
    if not (
        np.all(half[:, 0] - 1e-6 <= sol_x)
        and np.all(sol_x <= grid.width - half[:, 0] + 1e-6)
        and np.all(half[:, 1] - 1e-6 <= sol_y)
        and np.all(sol_y <= grid.height - half[:, 1] + 1e-6)
    ):
        return failure()

    # Left-to-right Python summation keeps the reported displacement
    # bit-identical to the historical per-node accumulation.
    moves = (
        np.abs(sol_x - targets[:, 0]) + np.abs(sol_y - targets[:, 1])
    ).tolist()
    return MacroLegalizationResult(
        feasible=True,
        positions={
            i: (float(sol_x[k]), float(sol_y[k]))
            for k, i in enumerate(indices)
        },
        total_displacement=float(sum(moves)),
        max_displacement=float(max(moves)),
        spacing=spacing,
    )
