"""LP-based macro legalization with minimal displacement [26].

Given the H/V constraint graphs, each axis is solved independently as a
linear program: minimize total displacement from the global-placement
positions subject to the arc separations and the border bounds.  This is
the dual-of-min-cost-flow formulation the paper adopts from Tang et
al. [26]; with ≤ 127 qubits scipy's HiGHS solves it in milliseconds.

After the continuous solve, positions are snapped to the site grid and a
forward/backward repair pass restores any arc separation the rounding
broke — sound because all separations and borders are integral in site
units, so a feasible continuous solution implies a feasible integral one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.geometry import SiteGrid
from repro.legalization.constraint_graph import Arc, build_constraint_graphs


@dataclass
class MacroLegalizationResult:
    """Outcome of one macro legalization attempt."""

    feasible: bool
    positions: dict
    total_displacement: float
    max_displacement: float
    spacing: float


def _solve_axis(
    ids: list,
    targets: dict,
    half_sizes: dict,
    arcs: list,
    extent: float,
) -> dict:
    """Min-displacement 1-D LP; returns id → coordinate or None if infeasible."""
    n = len(ids)
    pos_of = {node: k for k, node in enumerate(ids)}
    num_vars = 2 * n  # [x_0..x_{n-1}, d_0..d_{n-1}]

    rows, cols, data, rhs = [], [], [], []

    def add_row(entries: list, bound: float) -> None:
        row = len(rhs)
        for col, coeff in entries:
            rows.append(row)
            cols.append(col)
            data.append(coeff)
        rhs.append(bound)

    for arc in arcs:
        lo, hi = pos_of[arc.lo], pos_of[arc.hi]
        add_row([(lo, 1.0), (hi, -1.0)], -arc.separation)
    for node in ids:
        k = pos_of[node]
        add_row([(k, 1.0), (n + k, -1.0)], targets[node])
        add_row([(k, -1.0), (n + k, -1.0)], -targets[node])

    a_ub = sparse.coo_matrix(
        (data, (rows, cols)), shape=(len(rhs), num_vars)
    ).tocsr()
    c = np.concatenate([np.zeros(n), np.ones(n)])
    bounds = [
        (half_sizes[node], extent - half_sizes[node]) for node in ids
    ] + [(0.0, None)] * n

    result = linprog(
        c, A_ub=a_ub, b_ub=np.array(rhs), bounds=bounds, method="highs"
    )
    if not result.success:
        return None
    return {node: float(result.x[pos_of[node]]) for node in ids}


def _snap_and_repair(
    ids: list,
    solution: dict,
    half_sizes: dict,
    arcs: list,
    extent: float,
    lb: float,
) -> dict:
    """Snap to the site grid, then restore arc separations.

    A macro of width ``w`` sites is aligned when ``centre - w/2`` is a
    multiple of ``lb``.  The forward pass (in coordinate order) pushes
    violators up; the backward pass pulls anything past the border back
    down.  Both passes preserve grid alignment because separations and
    borders are integral in ``lb``.
    """
    snapped = {}
    for node in ids:
        half = half_sizes[node]
        snapped[node] = round((solution[node] - half) / lb) * lb + half

    order = sorted(ids, key=lambda node: (snapped[node], node))
    rank = {node: k for k, node in enumerate(order)}
    incoming = {node: [] for node in ids}
    outgoing = {node: [] for node in ids}
    for arc in arcs:
        # Orient along the snapped order so both passes are single sweeps.
        lo, hi = arc.lo, arc.hi
        if rank[lo] > rank[hi]:
            lo, hi = hi, lo
        incoming[hi].append(Arc(lo, hi, arc.separation))
        outgoing[lo].append(Arc(lo, hi, arc.separation))

    for node in order:
        lo_bound = half_sizes[node]
        for arc in incoming[node]:
            lo_bound = max(lo_bound, snapped[arc.lo] + arc.separation)
        snapped[node] = max(snapped[node], lo_bound)
    for node in reversed(order):
        hi_bound = extent - half_sizes[node]
        for arc in outgoing[node]:
            hi_bound = min(hi_bound, snapped[arc.hi] - arc.separation)
        snapped[node] = min(snapped[node], hi_bound)
    return snapped


def _arcs_satisfied(solution: dict, arcs: list, tol: float = 1e-6) -> bool:
    return all(
        solution[a.hi] - solution[a.lo] >= a.separation - tol for a in arcs
    )


def legalize_macros(
    indices: list,
    positions: dict,
    sizes: dict,
    grid: SiteGrid,
    spacing: float = 0.0,
) -> MacroLegalizationResult:
    """Legalize macros with the given extra spacing; positions unchanged on failure.

    This is the classical macro legalizer when ``spacing == 0`` and the
    building block of the quantum qubit legalizer otherwise.
    """
    if not indices:
        return MacroLegalizationResult(True, {}, 0.0, 0.0, spacing)
    h_arcs, v_arcs = build_constraint_graphs(indices, positions, sizes, spacing)
    half_w = {i: sizes[i][0] / 2.0 for i in indices}
    half_h = {i: sizes[i][1] / 2.0 for i in indices}
    targets_x = {i: positions[i][0] for i in indices}
    targets_y = {i: positions[i][1] for i in indices}

    sol_x = _solve_axis(indices, targets_x, half_w, h_arcs, grid.width)
    sol_y = _solve_axis(indices, targets_y, half_h, v_arcs, grid.height)
    if sol_x is None or sol_y is None:
        return MacroLegalizationResult(False, {}, 0.0, 0.0, spacing)

    sol_x = _snap_and_repair(indices, sol_x, half_w, h_arcs, grid.width, grid.lb)
    sol_y = _snap_and_repair(indices, sol_y, half_h, v_arcs, grid.height, grid.lb)
    if not (_arcs_satisfied(sol_x, h_arcs) and _arcs_satisfied(sol_y, v_arcs)):
        return MacroLegalizationResult(False, {}, 0.0, 0.0, spacing)
    for i in indices:
        if not (half_w[i] - 1e-6 <= sol_x[i] <= grid.width - half_w[i] + 1e-6):
            return MacroLegalizationResult(False, {}, 0.0, 0.0, spacing)
        if not (half_h[i] - 1e-6 <= sol_y[i] <= grid.height - half_h[i] + 1e-6):
            return MacroLegalizationResult(False, {}, 0.0, 0.0, spacing)

    legal = {i: (sol_x[i], sol_y[i]) for i in indices}
    moves = [
        abs(legal[i][0] - positions[i][0]) + abs(legal[i][1] - positions[i][1])
        for i in indices
    ]
    return MacroLegalizationResult(
        feasible=True,
        positions=legal,
        total_displacement=float(sum(moves)),
        max_displacement=float(max(moves)),
        spacing=spacing,
    )
