"""Horizontal/vertical constraint graphs for macro legalization [26].

Every macro pair must be separated in at least one axis (Eq. 1).  The
classical construction assigns each pair an arc in exactly one graph — the
axis in which the global placement already separates them best — with the
arc oriented from the lower-coordinate macro to the higher one.  Solving
each axis then becomes a 1-D problem over its graph.

The construction is array-backed: :func:`build_constraint_arrays` builds
both axes from broadcast separation-ratio comparisons over the sorted
coordinate arrays (one O(n²) NumPy pass instead of a Python double loop)
and :func:`build_constraint_graphs` is a thin :class:`Arc`-list view of
it.  An optional transitive-reduction pass (:func:`transitive_reduction`)
drops arcs already implied by chains of tighter arcs, keeping the LP row
count near-linear on well-spread placements without changing the feasible
region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Arc:
    """``hi`` must sit at least ``separation`` after ``lo`` on this axis."""

    lo: int
    hi: int
    separation: float


@dataclass(frozen=True)
class AxisArcs:
    """One axis' constraint graph as parallel arrays.

    ``lo`` / ``hi`` index into the sorted id list the graph was built
    over (not raw macro ids); ``sep`` is the required centre separation.
    Arc order matches the classical pair enumeration (outer index
    ascending, inner ascending) so LP rows assemble identically.
    """

    lo: np.ndarray
    hi: np.ndarray
    sep: np.ndarray

    def __len__(self) -> int:
        return int(self.sep.size)


def build_constraint_arrays(
    indices: list,
    positions: dict,
    sizes: dict,
    spacing: float,
) -> tuple:
    """Array form of :func:`build_constraint_graphs`.

    Returns ``(ordered, h_axis, v_axis)`` where ``ordered`` is the sorted
    id list and each axis is an :class:`AxisArcs` whose ``lo``/``hi``
    index into ``ordered``.  Elementwise arithmetic and comparisons are
    the same IEEE operations as the scalar pair loop, so the arc sets,
    orientations and separations are bit-identical.
    """
    ordered = sorted(indices)
    n = len(ordered)
    empty = AxisArcs(
        np.empty(0, dtype=np.intp),
        np.empty(0, dtype=np.intp),
        np.empty(0, dtype=np.float64),
    )
    if n < 2:
        return (ordered, empty, empty)

    x = np.array([positions[i][0] for i in ordered], dtype=np.float64)
    y = np.array([positions[i][1] for i in ordered], dtype=np.float64)
    w = np.array([sizes[i][0] for i in ordered], dtype=np.float64)
    h = np.array([sizes[i][1] for i in ordered], dtype=np.float64)

    # Row-major upper-triangle pairs reproduce the scalar loop order.
    iu, ju = np.triu_indices(n, k=1)
    sep_x = (w[iu] + w[ju]) / 2.0 + spacing
    sep_y = (h[iu] + h[ju]) / 2.0 + spacing
    ratio_x = np.abs(x[iu] - x[ju]) / sep_x
    ratio_y = np.abs(y[iu] - y[ju]) / sep_y
    horizontal = ratio_x >= ratio_y

    def axis(mask: np.ndarray, coord: np.ndarray, sep: np.ndarray) -> AxisArcs:
        a, b = iu[mask], ju[mask]
        forward = coord[a] <= coord[b]
        return AxisArcs(
            lo=np.where(forward, a, b),
            hi=np.where(forward, b, a),
            sep=sep[mask],
        )

    return (
        ordered,
        axis(horizontal, x, sep_x),
        axis(~horizontal, y, sep_y),
    )


def build_constraint_graphs(
    indices: list,
    positions: dict,
    sizes: dict,
    spacing: float,
) -> tuple:
    """Build the H and V constraint graphs for the given macros.

    Parameters
    ----------
    indices:
        Macro ids (qubit indices).
    positions:
        id → (x, y) global-placement centres.
    sizes:
        id → (w, h).
    spacing:
        Extra edge-to-edge spacing added to every separation (the quantum
        minimum spacing; 0 for the classical legalizer).

    Returns ``(h_arcs, v_arcs)``; every unordered pair appears in exactly
    one list.  The axis is chosen by the *separation ratio*: the pair goes
    horizontal when the GP x-gap covers more of its required x-separation
    than the y-gap does of its y-separation.
    """
    ordered, h_axis, v_axis = build_constraint_arrays(
        indices, positions, sizes, spacing
    )

    def arcs(axis: AxisArcs) -> list:
        return [
            Arc(ordered[lo], ordered[hi], float(sep))
            for lo, hi, sep in zip(
                axis.lo.tolist(), axis.hi.tolist(), axis.sep.tolist()
            )
        ]

    return (arcs(h_axis), arcs(v_axis))


#: Elements per row-chunk of the max-plus closure products; bounds the
#: peak temporary to ~128 MB of float64 regardless of node count.
_CLOSURE_CHUNK_ELEMENTS = 16_000_000


def _maxplus_product(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``P[i, j] = max_k left[i, k] + right[k, j]``, chunked over rows.

    Identical values to the one-shot broadcast (same additions, and max
    is order-free); chunking only bounds the temporary's memory.
    """
    n = left.shape[0]
    chunk = max(1, _CLOSURE_CHUNK_ELEMENTS // (n * n))
    out = np.empty_like(left)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        out[start:stop] = (
            left[start:stop, :, None] + right[None, :, :]
        ).max(axis=1)
    return out


def _reduction_by_reachability(axis: AxisArcs, num_nodes: int) -> AxisArcs:
    """Drop every arc that a ≥2-edge path re-derives (reachability only).

    Valid whenever any such path forces at least the direct separation —
    the additive-separation certificate checked by
    :func:`transitive_reduction`.  Reachability comes from repeated
    float32 matmul squaring (BLAS), ~ms even at 576 nodes.
    """
    adjacency = np.zeros((num_nodes, num_nodes), dtype=np.float32)
    adjacency[axis.lo, axis.hi] = 1.0
    reach = adjacency.copy()
    covered = int(np.count_nonzero(reach))
    while True:
        reach = np.minimum(reach + reach @ reach, 1.0)
        now = int(np.count_nonzero(reach))
        if now == covered:
            break
        covered = now
    # ≥2 edges: closure hop(s) into some w, then the direct arc w → v.
    via = reach @ adjacency
    keep = via[axis.lo, axis.hi] == 0.0
    return AxisArcs(axis.lo[keep], axis.hi[keep], axis.sep[keep])


def transitive_reduction(
    axis: AxisArcs,
    num_nodes: int,
    half_sizes: np.ndarray = None,
    spacing: float = None,
) -> AxisArcs:
    """Drop arcs implied by chains of other arcs (same feasible region).

    An arc ``u → v`` with separation ``s`` is redundant when some path
    ``u → … → v`` through other arcs already forces ``x_v - x_u`` to at
    least ``s``; the 1-D LP and the snap repair see the same solution set
    without it.

    When the caller passes ``half_sizes`` (per-node half extents indexed
    like the arcs) and ``spacing``, and every arc separation decomposes
    additively as ``half[lo] + half[hi] + spacing``, any 2-path
    ``u → w → v`` forces ``sep(u,v) + 2·half[w] + spacing ≥ sep(u,v)``
    — so redundancy degenerates to pure reachability and is computed with
    float32 boolean matmuls (milliseconds at 576 nodes).  The margin
    ``2·min(half) + spacing`` must clear float noise for the certificate
    to hold; otherwise — and whenever the decomposition is absent or
    inexact — the general max-plus closure runs instead, chunked so the
    peak temporary stays bounded at any node count.
    """
    m = len(axis)
    if m == 0 or num_nodes < 3:
        return axis

    if half_sizes is not None and spacing is not None and spacing >= 0.0:
        decomposed = half_sizes[axis.lo] + half_sizes[axis.hi] + spacing
        margin = 2.0 * float(half_sizes.min(initial=np.inf)) + spacing
        if (
            margin > 1e-6
            and np.all(np.abs(axis.sep - decomposed) <= 1e-9)
            and np.all(half_sizes >= 0.0)
        ):
            return _reduction_by_reachability(axis, num_nodes)

    neg = -np.inf
    sep_matrix = np.full((num_nodes, num_nodes), neg)
    sep_matrix[axis.lo, axis.hi] = axis.sep

    # Max-plus closure: longest total separation forced along any path.
    closure = sep_matrix.copy()
    hops = 1
    while hops < num_nodes:
        step = _maxplus_product(closure, closure)
        new = np.maximum(closure, step)
        if np.array_equal(new, closure):
            break
        closure = new
        hops *= 2
    # Longest path with >= 2 edges: one closure hop then one more edge.
    via = _maxplus_product(closure, sep_matrix)
    keep = via[axis.lo, axis.hi] < axis.sep
    return AxisArcs(axis.lo[keep], axis.hi[keep], axis.sep[keep])
