"""Horizontal/vertical constraint graphs for macro legalization [26].

Every macro pair must be separated in at least one axis (Eq. 1).  The
classical construction assigns each pair an arc in exactly one graph — the
axis in which the global placement already separates them best — with the
arc oriented from the lower-coordinate macro to the higher one.  Solving
each axis then becomes a 1-D problem over its graph.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Arc:
    """``hi`` must sit at least ``separation`` after ``lo`` on this axis."""

    lo: int
    hi: int
    separation: float


def build_constraint_graphs(
    indices: list,
    positions: dict,
    sizes: dict,
    spacing: float,
) -> tuple:
    """Build the H and V constraint graphs for the given macros.

    Parameters
    ----------
    indices:
        Macro ids (qubit indices).
    positions:
        id → (x, y) global-placement centres.
    sizes:
        id → (w, h).
    spacing:
        Extra edge-to-edge spacing added to every separation (the quantum
        minimum spacing; 0 for the classical legalizer).

    Returns ``(h_arcs, v_arcs)``; every unordered pair appears in exactly
    one list.  The axis is chosen by the *separation ratio*: the pair goes
    horizontal when the GP x-gap covers more of its required x-separation
    than the y-gap does of its y-separation.
    """
    h_arcs = []
    v_arcs = []
    ordered = sorted(indices)
    for a_pos, i in enumerate(ordered):
        xi, yi = positions[i]
        wi, hi = sizes[i]
        for j in ordered[a_pos + 1 :]:
            xj, yj = positions[j]
            wj, hj = sizes[j]
            sep_x = (wi + wj) / 2.0 + spacing
            sep_y = (hi + hj) / 2.0 + spacing
            ratio_x = abs(xi - xj) / sep_x
            ratio_y = abs(yi - yj) / sep_y
            if ratio_x >= ratio_y:
                lo, hi_ = (i, j) if xi <= xj else (j, i)
                h_arcs.append(Arc(lo, hi_, sep_x))
            else:
                lo, hi_ = (i, j) if yi <= yj else (j, i)
                v_arcs.append(Arc(lo, hi_, sep_y))
    return (h_arcs, v_arcs)
