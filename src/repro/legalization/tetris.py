"""Tetris-style standard-cell legalization [27] (classical baseline).

The classic Tetris legalizer scans cells in increasing x and packs each
into a row left-to-right: within a row, a cell may never sit left of the
row's *frontier* (the site after the rightmost cell already packed
there), so congested regions cascade cells rightward — the GP-destroying
behaviour the paper's Fig. 1 red line illustrates.  It is fast but
*integration-blind*: blocks of one resonator are placed independently and
scatter into many clusters wherever rows are contested.
"""

from __future__ import annotations

from repro.legalization.bins import BinGrid


def _frontier_position(bins: BinGrid, row: int, frontier: int, target: int):
    """First free column in ``row`` at or after ``max(frontier, target)``."""
    return bins.first_free_col_at_or_after(row, max(frontier, target))


def tetris_legalize(blocks: list, bins: BinGrid) -> dict:
    """Legalize wire blocks with the frontier-packing Tetris scan.

    ``blocks`` are :class:`~repro.netlist.components.WireBlock` with GP
    positions; ``bins`` already has qubit macros (and anything else fixed)
    blocked out.  Each cell tries rows outward from its target row, takes
    the ``(row, col)`` minimizing Manhattan displacement subject to the
    frontier rule, and advances that row's frontier.  Positions are
    written back to the blocks; returns block name → (col, row).

    Raises ``RuntimeError`` when no row can host a cell.
    """
    grid = bins.grid
    order = sorted(blocks, key=lambda b: (b.x, b.y, b.resonator_key, b.ordinal))
    frontier = [0] * grid.rows
    placed = {}
    for block in order:
        target_col, target_row = grid.site_of(block.center)
        best = None  # (cost, col, row)
        for dist in range(grid.rows):
            if best is not None and dist > best[0]:
                break
            for row in sorted({target_row - dist, target_row + dist}):
                if not (0 <= row < grid.rows):
                    continue
                col = _frontier_position(bins, row, frontier[row], target_col)
                if col is None:
                    # Frontier exhausted: allow restarting from the left
                    # edge (the classic wrap when a row's tail is full).
                    col = _frontier_position(bins, row, 0, 0)
                    if col is None:
                        continue
                cost = abs(col - target_col) + abs(row - target_row)
                if best is None or cost < best[0]:
                    best = (cost, col, row)
        if best is None:
            raise RuntimeError("tetris legalization ran out of free sites")
        _, col, row = best
        bins.occupy(col, row, block.node_id)
        frontier[row] = col + 1
        center = grid.site_center(col, row)
        block.move_to(center.x, center.y)
        placed[block.name] = (col, row)
    return placed
