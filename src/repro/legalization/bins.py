"""Bin-aided free-space index (paper Section III-D, after [28]).

Resonator legalization repeatedly asks "which free site is nearest to this
point?"  A flat scan is O(sites) per query; following the mixed-cell-height
legalization of Yang et al. [28], sites are organized into per-row sorted
structures so a query bisects within a row (O(log n)) and rows are visited
outward from the target with a best-distance prune.

The index also serves the *adjacent available* set ``Baa`` of Algorithm 1
cheaply: free 4-neighbours of a site are O(log n) membership probes.

Occupancy itself is held in flat NumPy arrays (DREAMPlace-style) so the
maze router and the crossing counter can probe/classify sites with O(1)
array reads and build whole-grid cost overlays with vectorized gathers:

* ``kind_flat``      — int8 per site: 0 free, 1 qubit macro, 2 wire block,
  3 other owner;
* ``owner_idx_flat`` — int32 per site: index into the owner interning
  table (``-1`` when free);
* ``res_idx_flat``   — int32 per site: interned resonator key for wire
  blocks (``-1`` otherwise).

Sites are flattened **column-major** (``flat = col * rows + row``) so that
ascending flat index matches ascending ``(col, row)`` tuple order — the
router relies on this to reproduce the exact tie-breaking of a tuple-keyed
Dijkstra.  The legacy dict / per-row bisect structures are kept in sync
(they still serve ``nearest_free`` and iteration) and
:meth:`check_consistency` asserts the two representations never diverge.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.geometry import Rect, SiteGrid

#: ``kind`` codes stored per site.
KIND_FREE = 0
KIND_QUBIT = 1
KIND_BLOCK = 2
KIND_OTHER = 3


def _classify(owner):
    """``(kind, resonator_key)`` for an owner, mirroring the router's
    ``owner[0] == "q"`` / ``owner[0] == "b"`` discrimination."""
    try:
        tag = owner[0]
    except (TypeError, IndexError, KeyError):
        return KIND_OTHER, None
    if tag == "q":
        return KIND_QUBIT, None
    if tag == "b":
        try:
            return KIND_BLOCK, owner[1]
        except (TypeError, IndexError, KeyError):
            return KIND_OTHER, None
    return KIND_OTHER, None


class BinGrid:
    """Occupancy tracking + nearest-free-site queries over a site grid."""

    def __init__(self, grid: SiteGrid) -> None:
        self.grid = grid
        # Per-row sorted list of free columns; site membership mirrors it.
        self._free_rows = [list(range(grid.cols)) for _ in range(grid.rows)]
        self._occupant = {}
        n = grid.num_sites
        self._kind = np.zeros(n, dtype=np.int8)
        self._owner_idx = np.full(n, -1, dtype=np.int32)
        self._res_idx = np.full(n, -1, dtype=np.int32)
        self._owners = []  # owner_idx -> owner object
        self._owner_ids = {}  # owner -> owner_idx (hashable owners only)
        self._res_keys = []  # res_idx -> resonator key
        self._res_ids = {}  # resonator key -> res_idx

    # -- flat-array views --------------------------------------------------
    @property
    def kind_flat(self) -> np.ndarray:
        """Per-site kind codes (treat as read-only)."""
        return self._kind

    @property
    def owner_idx_flat(self) -> np.ndarray:
        """Per-site interned owner indices, -1 when free (read-only)."""
        return self._owner_idx

    @property
    def res_idx_flat(self) -> np.ndarray:
        """Per-site interned resonator-key indices (read-only)."""
        return self._res_idx

    @property
    def owners(self) -> list:
        """Owner interning table: ``owners[owner_idx_flat[i]]`` is the owner."""
        return self._owners

    def res_key_index(self, key) -> int:
        """Interned index of a resonator key, or -1 if never seen."""
        try:
            return self._res_ids.get(key, -1)
        except TypeError:
            return -1

    def _intern_owner(self, owner) -> int:
        try:
            idx = self._owner_ids.get(owner)
        except TypeError:  # unhashable owner: store without dedup
            idx = None
            self._owners.append(owner)
            return len(self._owners) - 1
        if idx is None:
            idx = len(self._owners)
            self._owners.append(owner)
            self._owner_ids[owner] = idx
        return idx

    def _intern_res_key(self, key) -> int:
        try:
            idx = self._res_ids.get(key)
        except TypeError:
            return -1
        if idx is None:
            idx = len(self._res_keys)
            self._res_keys.append(key)
            self._res_ids[key] = idx
        return idx

    # -- occupancy ---------------------------------------------------------
    def is_free(self, col: int, row: int) -> bool:
        """True when the site exists and is unoccupied."""
        if not self.grid.in_grid(col, row):
            return False
        return self._kind[col * self.grid.rows + row] == KIND_FREE

    def occupant(self, col: int, row: int):
        """Whatever was stored by :meth:`occupy`, or None."""
        if not self.grid.in_grid(col, row):
            return None
        idx = self._owner_idx[col * self.grid.rows + row]
        return None if idx < 0 else self._owners[idx]

    def occupy(self, col: int, row: int, owner) -> None:
        """Mark a free site as occupied by ``owner``."""
        if not self.grid.in_grid(col, row):
            raise IndexError(f"site ({col}, {row}) outside grid")
        flat = self.grid.flat_index(col, row)
        if self._kind[flat] != KIND_FREE:
            raise ValueError(f"site ({col}, {row}) already occupied")
        kind, res_key = _classify(owner)
        self._kind[flat] = kind
        self._owner_idx[flat] = self._intern_owner(owner)
        if kind == KIND_BLOCK:
            self._res_idx[flat] = self._intern_res_key(res_key)
        self._occupant[(col, row)] = owner
        free = self._free_rows[row]
        idx = bisect.bisect_left(free, col)
        if idx >= len(free) or free[idx] != col:
            raise AssertionError(f"free-row index out of sync at ({col}, {row})")
        free.pop(idx)

    def release(self, col: int, row: int) -> None:
        """Return an occupied site to the free pool."""
        if (col, row) not in self._occupant:
            raise ValueError(f"site ({col}, {row}) is not occupied")
        flat = self.grid.flat_index(col, row)
        self._kind[flat] = KIND_FREE
        self._owner_idx[flat] = -1
        self._res_idx[flat] = -1
        del self._occupant[(col, row)]
        bisect.insort(self._free_rows[row], col)

    def occupy_rect(self, rect: Rect, owner) -> list:
        """Occupy every site covered by ``rect`` (used for qubit macros).

        The site block is validated and written as 2-D array slices; the
        whole rect is occupied atomically (nothing is written when any
        covered site is already taken).
        """
        sites = self.grid.sites_covered(rect)
        if not sites:
            return sites
        rows = self.grid.rows
        lo_col, lo_row = sites[0]
        hi_col, hi_row = sites[-1]
        kind2d = self._kind.reshape(self.grid.cols, rows)
        view = kind2d[lo_col : hi_col + 1, lo_row : hi_row + 1]
        if view.any():
            for col, row in sites:
                if self._kind[col * rows + row] != KIND_FREE:
                    raise ValueError(f"site ({col}, {row}) already occupied")
        kind, res_key = _classify(owner)
        owner_idx = self._intern_owner(owner)
        res_idx = self._intern_res_key(res_key) if kind == KIND_BLOCK else -1
        view[:, :] = kind
        owner2d = self._owner_idx.reshape(self.grid.cols, rows)
        owner2d[lo_col : hi_col + 1, lo_row : hi_row + 1] = owner_idx
        res2d = self._res_idx.reshape(self.grid.cols, rows)
        res2d[lo_col : hi_col + 1, lo_row : hi_row + 1] = res_idx
        for site in sites:
            self._occupant[site] = owner
        for row in range(lo_row, hi_row + 1):
            free = self._free_rows[row]
            i_lo = bisect.bisect_left(free, lo_col)
            i_hi = bisect.bisect_left(free, hi_col + 1)
            del free[i_lo:i_hi]
        return sites

    @property
    def num_free(self) -> int:
        """Number of free sites remaining."""
        return self.grid.num_sites - len(self._occupant)

    def free_sites(self) -> list:
        """All free sites (row-major); O(sites), for tests and small grids."""
        return [
            (col, row)
            for row in range(self.grid.rows)
            for col in self._free_rows[row]
        ]

    # -- queries -----------------------------------------------------------
    def free_cols_in_row(self, row: int) -> np.ndarray:
        """Ascending free columns of ``row``, read from the flat arrays.

        One vectorized scan of the column-major ``kind_flat`` stride for
        the row — the probe legalizers should use instead of reaching
        into the legacy per-row free lists.
        """
        return np.flatnonzero(self._kind[row :: self.grid.rows] == KIND_FREE)

    def first_free_col_at_or_after(self, row: int, col: int):
        """Smallest free column ``>= col`` in ``row``, or None.

        Equivalent to ``bisect_left`` on the sorted per-row free list,
        but answered from ``kind_flat`` directly.
        """
        row_kinds = self._kind[row :: self.grid.rows]
        start = max(col, 0)
        offsets = np.flatnonzero(row_kinds[start:] == KIND_FREE)
        if offsets.size == 0:
            return None
        return start + int(offsets[0])

    def nearest_free(self, col: int, row: int) -> tuple:
        """Free site minimizing Euclidean site distance to ``(col, row)``.

        Ties break toward smaller row, then smaller column, making the
        scan deterministic.  Returns None when the grid is full.
        """
        best = None
        best_d2 = None
        max_offset = max(row, self.grid.rows - 1 - row)
        for offset in range(max_offset + 1):
            if best_d2 is not None and offset * offset > best_d2:
                break
            rows = (row - offset, row + offset) if offset else (row,)
            for r in rows:
                if not (0 <= r < self.grid.rows):
                    continue
                candidate = self._nearest_in_row(r, col)
                if candidate is None:
                    continue
                dc = candidate - col
                d2 = dc * dc + offset * offset
                if best_d2 is None or d2 < best_d2 or (
                    d2 == best_d2 and (r, candidate) < (best[1], best[0])
                ):
                    best = (candidate, r)
                    best_d2 = d2
        return best

    def _nearest_in_row(self, row: int, col: int):
        """Free column in ``row`` closest to ``col`` (bisect; None if empty)."""
        free = self._free_rows[row]
        if not free:
            return None
        idx = bisect.bisect_left(free, col)
        candidates = []
        if idx < len(free):
            candidates.append(free[idx])
        if idx > 0:
            candidates.append(free[idx - 1])
        return min(candidates, key=lambda c: (abs(c - col), c))

    def free_neighbors(self, col: int, row: int) -> list:
        """Free 4-neighbours of a site — the ``f(·)`` update of Algorithm 1."""
        return [
            (c, r) for c, r in self.grid.neighbors4(col, row) if self.is_free(c, r)
        ]

    # -- invariants --------------------------------------------------------
    def check_consistency(self) -> None:
        """Assert the array state matches the dict/bisect state exactly.

        Test hook: raises AssertionError on the first divergence between
        the flat arrays, the occupant dict and the per-row free lists.
        """
        rows = self.grid.rows
        occupied_flat = np.flatnonzero(self._kind != KIND_FREE)
        assert len(occupied_flat) == len(self._occupant), (
            f"array says {len(occupied_flat)} occupied, "
            f"dict says {len(self._occupant)}"
        )
        for flat in occupied_flat:
            col, row = self.grid.site_of_flat(int(flat))
            owner = self._occupant.get((col, row))
            assert owner is not None, f"array-occupied ({col}, {row}) not in dict"
            interned = self._owners[self._owner_idx[flat]]
            assert interned == owner or interned is owner, (
                f"owner mismatch at ({col}, {row}): {interned!r} != {owner!r}"
            )
            kind, res_key = _classify(owner)
            assert self._kind[flat] == kind, f"kind mismatch at ({col}, {row})"
            if kind == KIND_BLOCK:
                assert self._res_keys[self._res_idx[flat]] == res_key, (
                    f"resonator key mismatch at ({col}, {row})"
                )
            else:
                assert self._res_idx[flat] == -1, (
                    f"stale res_idx at ({col}, {row})"
                )
        for row, free in enumerate(self._free_rows):
            assert free == sorted(free), f"free row {row} unsorted"
            for col in free:
                assert self._kind[col * rows + row] == KIND_FREE, (
                    f"free-list site ({col}, {row}) marked occupied in array"
                )
        total_free = sum(len(free) for free in self._free_rows)
        assert total_free == self.grid.num_sites - len(self._occupant), (
            "free-list count disagrees with occupant dict"
        )
