"""Bin-aided free-space index (paper Section III-D, after [28]).

Resonator legalization repeatedly asks "which free site is nearest to this
point?"  A flat scan is O(sites) per query; following the mixed-cell-height
legalization of Yang et al. [28], sites are organized into per-row sorted
structures so a query bisects within a row (O(log n)) and rows are visited
outward from the target with a best-distance prune.

The index also serves the *adjacent available* set ``Baa`` of Algorithm 1
cheaply: free 4-neighbours of a site are O(log n) membership probes.
"""

from __future__ import annotations

import bisect

from repro.geometry import Rect, SiteGrid


class BinGrid:
    """Occupancy tracking + nearest-free-site queries over a site grid."""

    def __init__(self, grid: SiteGrid) -> None:
        self.grid = grid
        # Per-row sorted list of free columns; site membership mirrors it.
        self._free_rows = [list(range(grid.cols)) for _ in range(grid.rows)]
        self._occupant = {}

    # -- occupancy ---------------------------------------------------------
    def is_free(self, col: int, row: int) -> bool:
        """True when the site exists and is unoccupied."""
        if not self.grid.in_grid(col, row):
            return False
        return (col, row) not in self._occupant

    def occupant(self, col: int, row: int):
        """Whatever was stored by :meth:`occupy`, or None."""
        return self._occupant.get((col, row))

    def occupy(self, col: int, row: int, owner) -> None:
        """Mark a free site as occupied by ``owner``."""
        if not self.grid.in_grid(col, row):
            raise IndexError(f"site ({col}, {row}) outside grid")
        if (col, row) in self._occupant:
            raise ValueError(f"site ({col}, {row}) already occupied")
        self._occupant[(col, row)] = owner
        free = self._free_rows[row]
        idx = bisect.bisect_left(free, col)
        if idx >= len(free) or free[idx] != col:
            raise AssertionError(f"free-row index out of sync at ({col}, {row})")
        free.pop(idx)

    def release(self, col: int, row: int) -> None:
        """Return an occupied site to the free pool."""
        if (col, row) not in self._occupant:
            raise ValueError(f"site ({col}, {row}) is not occupied")
        del self._occupant[(col, row)]
        bisect.insort(self._free_rows[row], col)

    def occupy_rect(self, rect: Rect, owner) -> list:
        """Occupy every site covered by ``rect`` (used for qubit macros)."""
        sites = self.grid.sites_covered(rect)
        for col, row in sites:
            self.occupy(col, row, owner)
        return sites

    @property
    def num_free(self) -> int:
        """Number of free sites remaining."""
        return self.grid.num_sites - len(self._occupant)

    def free_sites(self) -> list:
        """All free sites (row-major); O(sites), for tests and small grids."""
        return [
            (col, row)
            for row in range(self.grid.rows)
            for col in self._free_rows[row]
        ]

    # -- queries -----------------------------------------------------------
    def nearest_free(self, col: int, row: int) -> tuple:
        """Free site minimizing Euclidean site distance to ``(col, row)``.

        Ties break toward smaller row, then smaller column, making the
        scan deterministic.  Returns None when the grid is full.
        """
        best = None
        best_d2 = None
        max_offset = max(row, self.grid.rows - 1 - row)
        for offset in range(max_offset + 1):
            if best_d2 is not None and offset * offset > best_d2:
                break
            rows = (row - offset, row + offset) if offset else (row,)
            for r in rows:
                if not (0 <= r < self.grid.rows):
                    continue
                candidate = self._nearest_in_row(r, col)
                if candidate is None:
                    continue
                dc = candidate - col
                d2 = dc * dc + offset * offset
                if best_d2 is None or d2 < best_d2 or (
                    d2 == best_d2 and (r, candidate) < (best[1], best[0])
                ):
                    best = (candidate, r)
                    best_d2 = d2
        return best

    def _nearest_in_row(self, row: int, col: int):
        """Free column in ``row`` closest to ``col`` (bisect; None if empty)."""
        free = self._free_rows[row]
        if not free:
            return None
        idx = bisect.bisect_left(free, col)
        candidates = []
        if idx < len(free):
            candidates.append(free[idx])
        if idx > 0:
            candidates.append(free[idx - 1])
        return min(candidates, key=lambda c: (abs(c - col), c))

    def free_neighbors(self, col: int, row: int) -> list:
        """Free 4-neighbours of a site — the ``f(·)`` update of Algorithm 1."""
        return [
            (c, r) for c, r in self.grid.neighbors4(col, row) if self.is_free(c, r)
        ]
