"""Quantum qubit legalization (paper Section III-C).

Qubits are macros; their legalization is the LP macro legalizer of [26]
*plus* the quantum minimum-spacing constraint: resonators run well above
qubit frequencies and isolate inter-qubit crosstalk, so at least one
standard-cell of clearance must separate adjacent qubits — enough room for
a resonator wire block to pass between them.

The solver starts from a stringent spacing (``initial_qubit_spacing``) and
greedily relaxes one site at a time toward ``min_qubit_spacing`` whenever
the LP is infeasible — the paper's iterative adjustment for densely packed
arrays.  The classical path (``quantum=False``) runs a single zero-spacing
solve, reproducing baseline macro legalization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import QGDPConfig
from repro.geometry import SiteGrid
from repro.legalization.macro_lp import MacroLegalizationResult, legalize_macros
from repro.netlist.netlist import QuantumNetlist


@dataclass
class QubitLegalizationResult:
    """Outcome of qubit legalization."""

    spacing_used: float
    attempts: int
    total_displacement: float
    max_displacement: float
    feasible: bool


def _spacing_schedule(config: QGDPConfig, quantum: bool) -> list:
    """Spacings to try, most stringent first."""
    if not quantum:
        return [0.0]
    schedule = []
    spacing = config.initial_qubit_spacing
    while spacing > config.min_qubit_spacing:
        schedule.append(spacing)
        spacing -= config.lb
    schedule.append(config.min_qubit_spacing)
    return schedule


def legalize_qubits(
    netlist: QuantumNetlist,
    grid: SiteGrid,
    config: QGDPConfig = None,
    quantum: bool = True,
) -> QubitLegalizationResult:
    """Legalize all qubit macros in place.

    ``quantum=True`` runs the paper's Section III-C legalizer (minimum
    spacing, greedy relaxation); ``quantum=False`` runs the classical
    macro legalizer [26] used by the Tetris/Abacus baselines.

    Raises ``RuntimeError`` when even the most relaxed schedule entry is
    infeasible — the die is undersized, which the layout builder prevents.
    """
    config = config or QGDPConfig()
    qubits = netlist.qubits
    indices = [q.index for q in qubits]
    positions = {q.index: (q.x, q.y) for q in qubits}
    sizes = {q.index: (q.w, q.h) for q in qubits}

    attempts = 0
    last: MacroLegalizationResult = None
    for spacing in _spacing_schedule(config, quantum):
        attempts += 1
        last = legalize_macros(indices, positions, sizes, grid, spacing)
        if last.feasible:
            break
    if last is None or not last.feasible:
        raise RuntimeError(
            f"qubit legalization infeasible on {netlist.name} even at spacing "
            f"{config.min_qubit_spacing if quantum else 0.0}"
        )

    for q in qubits:
        x, y = last.positions[q.index]
        q.move_to(x, y)
    return QubitLegalizationResult(
        spacing_used=last.spacing,
        attempts=attempts,
        total_displacement=last.total_displacement,
        max_displacement=last.max_displacement,
        feasible=True,
    )
