"""RPR003 — lock discipline: guarded attributes stay under their lock.

A lightweight static race detector for the classes the threading cache
server drives concurrently (the fleet coordinator, the store backends).
It is convention-seeded rather than type-inferred:

* an attribute assignment whose source line carries a
  ``# guarded-by: <lock>`` comment declares that ``self.<attr>`` may
  only be read or written while ``self.<lock>`` is held::

      self._jobs = {}  # guarded-by: _lock

* every other ``self.<attr>`` access to a declared attribute, in any
  method of the same class, must then sit lexically inside a
  ``with self.<lock>`` (or ``with self.<lock> as ...``) block;
* ``__init__`` is exempt — construction happens-before publication;
* a private helper that is only ever called with the lock held opts
  out by marking its ``def`` line ``# holds: <lock>``::

      def _expire(self, now):  # holds: _lock

The check is lexical, not interprocedural: it cannot see a lock held by
a caller (that is what ``# holds`` is for) and it does not track
aliases of ``self``.  Those limits are the price of a zero-dependency
AST pass — the same trade a ``GUARDED_BY`` annotation makes in a C++
thread-safety analysis.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List

from repro.lint.core import FileContext, Finding, Rule, register

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(\w+)")
_HOLDS = re.compile(r"#\s*holds:\s*(\w+)")


def _is_self_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr == attr
    )


@register
class LockDisciplineRule(Rule):
    """Accesses to ``# guarded-by`` attributes outside ``with self.<lock>``."""

    id = "RPR003"
    name = "lock-discipline"
    scope = ()  # runs everywhere; only fires where guards are declared

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node))
        return findings

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> List[Finding]:
        guarded = self._declared_guards(ctx, cls)
        if not guarded:
            return []
        findings: List[Finding] = []
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if method.name == "__init__":
                continue
            holds = set(_HOLDS.findall(ctx.line_text(method.lineno)))
            for node in ast.walk(method):
                if not isinstance(node, ast.Attribute):
                    continue
                if not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    continue
                lock = guarded.get(node.attr)
                if lock is None or lock in holds:
                    continue
                if self._under_lock(ctx, node, lock):
                    continue
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.id,
                        message=(
                            f"self.{node.attr} is declared guarded-by "
                            f"{lock} but is accessed outside `with "
                            f"self.{lock}` in {cls.name}.{method.name} — "
                            f"take the lock, or mark the method "
                            f"`# holds: {lock}` if every caller already "
                            "does"
                        ),
                    )
                )
        return findings

    def _declared_guards(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Dict[str, str]:
        """attr name -> lock name, from ``# guarded-by`` assignment lines."""
        guarded: Dict[str, str] = {}
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            match = _GUARDED_BY.search(ctx.line_text(node.lineno))
            if match is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guarded[target.attr] = match.group(1)
        return guarded

    def _under_lock(
        self, ctx: FileContext, node: ast.AST, lock: str
    ) -> bool:
        """Whether ``node`` sits lexically inside ``with self.<lock>``."""
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if _is_self_attr(item.context_expr, lock):
                        return True
        return False
