"""RPR004 — process-boundary safety: only picklable callables cross.

Sweep jobs cross a ``ProcessPoolExecutor`` boundary, timeout-bounded
attempts cross a forked-``Process`` boundary, and fleet job payloads
cross machines as JSON.  Lambdas, closures (functions defined inside
functions) and bound methods either do not pickle at all or drag a
whole object graph across the fork — the classic "works in the serial
debugging mode, dies in the pool" failure.  This rule flags, at every
submission site:

* ``<executor>.submit(<callable>, ...)`` where the callable is a
  lambda, a locally-defined (nested) function, or a ``self.<method>``
  bound method;
* ``Process(target=<callable>)`` / ``ctx.Process(target=...)`` with the
  same unpicklable shapes;
* ``functools.partial`` wrapping one of those shapes in either
  position.

Module-level functions (the way ``execute_job`` is submitted) are the
only shape all start methods and the fleet wire format support.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.core import FileContext, Finding, Rule, register


def _local_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined *inside* another function (closures)."""
    names: Set[str] = set()
    functions = (ast.FunctionDef, ast.AsyncFunctionDef)
    for node in ast.walk(tree):
        if isinstance(node, functions):
            for inner in ast.walk(node):
                if inner is not node and isinstance(inner, functions):
                    names.add(inner.name)
    return names


@register
class ProcessBoundaryRule(Rule):
    """Unpicklable callables handed to executors / process targets."""

    id = "RPR004"
    name = "process-boundary"
    scope = ()  # everywhere: benchmarks and examples fork pools too

    def check(self, ctx: FileContext) -> List[Finding]:
        local_defs = _local_function_names(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._submitted_callable(node)
            if target is None:
                continue
            problem = self._describe_problem(target, local_defs)
            if problem is not None:
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=target.lineno,
                        col=target.col_offset,
                        rule=self.id,
                        message=(
                            f"{problem} crosses the process boundary — "
                            "it won't pickle (or drags its closure/self "
                            "along); submit a module-level function and "
                            "pass state through arguments"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _submitted_callable(node: ast.Call) -> Optional[ast.expr]:
        """The callable argument of a submission call, if this is one."""
        func = node.func
        # <pool>.submit(callable, ...)
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            if node.args:
                return node.args[0]
            return None
        # Process(target=...) / ctx.Process(target=...) / mp.Process(...)
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    return keyword.value
        return None

    @staticmethod
    def _describe_problem(
        target: ast.expr, local_defs: Set[str]
    ) -> Optional[str]:
        # functools.partial(f, ...): judge the wrapped callable.
        if isinstance(target, ast.Call):
            func = target.func
            partial = (
                isinstance(func, ast.Name) and func.id == "partial"
            ) or (
                isinstance(func, ast.Attribute) and func.attr == "partial"
            )
            if partial and target.args:
                return ProcessBoundaryRule._describe_problem(
                    target.args[0], local_defs
                )
            return None
        if isinstance(target, ast.Lambda):
            return "a lambda"
        if isinstance(target, ast.Name) and target.id in local_defs:
            return f"locally-defined function {target.id!r}"
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"bound method self.{target.attr}"
        return None
