"""RPR001 — nondeterminism on the content-key / canonical-JSON path.

Every artifact this reproduction caches is addressed by a content key,
and every parity suite asserts bit-identical payloads between serial,
pooled and fleet execution.  That guarantee dies the moment a stage
consults process-local entropy, so this rule flags, in the modules whose
output feeds content-addressed payloads:

* **unseeded RNG** — module-level ``random.random()`` / ``random
  .randint`` / ... calls, ``random.Random()`` with no seed,
  ``np.random.<legacy>`` global-state calls, and
  ``np.random.default_rng()`` with no seed.  Randomness must flow from
  a seeded generator threaded through params (the way
  ``GlobalPlacer`` / ``transpile`` already do it);
* **wall-clock reads** — ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()`` and friends.  A float from the clock in a payload
  or key makes every rerun a cache miss.  (``time.perf_counter`` is
  allowed: it only ever feeds the wall-clock fields ``repro diff``
  ignores.)
* **set-ordered iteration** — a ``for`` loop or comprehension iterating
  a set display, ``set(...)`` call or set union/intersection.  Set
  order is hash-table order; feeding it into results makes output
  depend on insertion history (and on ``PYTHONHASHSEED`` for strings).
  Wrapping the set in ``sorted(...)`` — or an order-insensitive
  reduction such as ``min`` / ``max`` / ``sum`` / ``any`` / ``all`` —
  satisfies the rule.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.core import FileContext, Finding, Rule, register

#: random-module functions whose global-state calls are flagged.
_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "betavariate", "expovariate",
        "gammavariate", "gauss", "lognormvariate", "normalvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "randbytes",
    }
)

#: numpy.random attributes that are *not* the legacy global-state API.
_NP_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
     "Philox", "SFC64", "MT19937", "RandomState"}
)

#: Fully dotted wall-clock reads (resolved via the attribute chain).
_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today", "datetime.date.today",
    }
)

#: Ancestor calls that make set iteration order-insensitive.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_expr(node: ast.AST) -> bool:
    """Whether an expression is statically a set (display, call, algebra)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class NondeterminismRule(Rule):
    """Unseeded RNG, wall-clock reads, and set-ordered iteration."""

    id = "RPR001"
    name = "nondeterminism"
    # The modules whose output lands in content-addressed payloads (or
    # in the layouts / analyses those payloads serialize).  The CLI and
    # visualization never feed keys; the lint package never runs inside
    # a job.
    scope = ("src/repro/",)
    exempt = (
        "src/repro/cli.py",
        "src/repro/visualization/",
        "src/repro/lint/",
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(ctx, node))
            elif isinstance(node, (ast.For, ast.comprehension)):
                findings.extend(self._check_iteration(ctx, node))
        return findings

    # -- unseeded RNG / wall clock ---------------------------------------
    def _check_call(self, ctx: FileContext, node: ast.Call) -> List[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return []
        if dotted in _WALL_CLOCK:
            return [
                self._finding(
                    ctx,
                    node,
                    f"wall-clock read {dotted}() on the content-key path — "
                    "a clock value in a payload or key breaks rerun "
                    "bit-identity (time.perf_counter is fine for the "
                    "wall_s fields repro diff ignores)",
                )
            ]
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _RANDOM_FUNCS:
                return [
                    self._finding(
                        ctx,
                        node,
                        f"unseeded global RNG call {dotted}() — thread a "
                        "seeded random.Random(seed) / np generator through "
                        "params instead",
                    )
                ]
            if parts[1] == "Random" and not node.args and not node.keywords:
                return [
                    self._finding(
                        ctx,
                        node,
                        "random.Random() without a seed draws from OS "
                        "entropy — pass an explicit seed derived from "
                        "job params",
                    )
                ]
        if parts[0] in ("np", "numpy") and len(parts) >= 2 \
                and parts[1] == "random":
            tail = parts[2] if len(parts) > 2 else ""
            if tail == "default_rng" and not node.args and not node.keywords:
                return [
                    self._finding(
                        ctx,
                        node,
                        "np.random.default_rng() without a seed — pass the "
                        "job's seed so reruns are bit-identical",
                    )
                ]
            if tail and tail not in _NP_RANDOM_OK:
                return [
                    self._finding(
                        ctx,
                        node,
                        f"legacy numpy global-state RNG call {dotted}() — "
                        "use np.random.default_rng(seed) and pass the "
                        "generator explicitly",
                    )
                ]
        return []

    # -- set iteration ----------------------------------------------------
    def _check_iteration(self, ctx: FileContext, node: ast.AST) -> List[Finding]:
        iterable = node.iter  # type: ignore[attr-defined]
        if not _is_set_expr(iterable):
            return []
        # A comprehension whose *result* feeds an order-insensitive
        # reduction (sorted(... for x in {a, b})) is safe; a bare For
        # statement never is.
        if isinstance(node, ast.comprehension):
            comp = next(
                (
                    ancestor
                    for ancestor in ctx.ancestors(iterable)
                    if isinstance(
                        ancestor,
                        (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                         ast.DictComp),
                    )
                ),
                None,
            )
            if isinstance(comp, (ast.SetComp, ast.DictComp)):
                return []  # building another unordered container: fine
            if comp is not None:
                for ancestor in ctx.ancestors(comp):
                    if (
                        isinstance(ancestor, ast.Call)
                        and isinstance(ancestor.func, ast.Name)
                        and ancestor.func.id in _ORDER_INSENSITIVE
                    ):
                        return []
        anchor = iterable
        return [
            self._finding(
                ctx,
                anchor,
                "iteration over a set has hash-table order, not a "
                "deterministic one — wrap the set in sorted(...) before "
                "iterating (or reduce with min/max/sum/any/all)",
            )
        ]

    def _finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )
