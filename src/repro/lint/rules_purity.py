"""RPR002 — content-key purity in the orchestration package.

Job content keys are SHA-256 over canonical JSON (sorted keys, exact
float round-trips); artifacts are that canonical text verbatim.  The
whole caching/fleet edifice — dedup across tenants, zero-recompute
resumes, byte-identical push/pull chains — rests on nothing
non-canonical leaking into params, keys or payload text.  Inside
``src/repro/orchestration/`` this rule flags:

* ``json.dumps(...)`` **without** ``sort_keys=True`` — non-canonical
  text near the canonicalizer is a byte-identity bug waiting for a
  refactor.  ``jobs.py`` (home of ``canonical_json``) and ``store.py``
  (whose round-trip ``put`` deliberately preserves payload insertion
  order) are exempt; protocol/IO sites that must not re-order bytes
  carry an explicit ``lint-ignore`` with their justification;
* builtin ``id(...)`` — object identity is process-specific; an id in
  a param dict keys a different artifact every run;
* builtin ``hash(...)`` — salted per process for strings
  (``PYTHONHASHSEED``); stable keys come from ``hashlib`` over
  canonical JSON, nothing else;
* wall-clock calls (``time.time`` / ``datetime.now``) in the argument
  tree of ``Job.create`` / ``job_key`` — a float from the clock in
  params defeats content addressing even when RPR001's broader scope
  is suppressed.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.core import FileContext, Finding, Rule, register

#: Calls that build content keys; their args must be clock-free.
_KEY_BUILDERS = frozenset({"job_key", "create"})

_CLOCKS = frozenset(
    {"time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
     "datetime.datetime.now", "datetime.datetime.utcnow"}
)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register
class ContentKeyPurityRule(Rule):
    """json.dumps canonicality, id()/hash() bans, clock-free key params."""

    id = "RPR002"
    name = "content-key-purity"
    scope = ("src/repro/orchestration/",)

    #: Files allowed to call json.dumps without sort_keys: the
    #: canonicalizer itself, and the store whose put() round-trip must
    #: preserve payload insertion order (its output *is* canonical form).
    _DUMPS_EXEMPT = (
        "src/repro/orchestration/jobs.py",
        "src/repro/orchestration/store.py",
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        dumps_exempt = any(
            ctx.path.startswith(prefix) for prefix in self._DUMPS_EXEMPT
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted == "json.dumps" and not dumps_exempt:
                if not any(
                    kw.arg == "sort_keys" for kw in node.keywords
                ):
                    findings.append(
                        self._finding(
                            ctx,
                            node,
                            "json.dumps without sort_keys=True in the "
                            "orchestration package — non-canonical text "
                            "near the content-key path; use canonical_json "
                            "(jobs.py), or lint-ignore with a reason if "
                            "these bytes must keep payload order",
                        )
                    )
            elif isinstance(node.func, ast.Name) and node.func.id == "id" \
                    and len(node.args) == 1:
                findings.append(
                    self._finding(
                        ctx,
                        node,
                        "builtin id() is process-specific — an object "
                        "identity can never appear in job params, keys or "
                        "payloads",
                    )
                )
            elif isinstance(node.func, ast.Name) and node.func.id == "hash" \
                    and len(node.args) == 1:
                findings.append(
                    self._finding(
                        ctx,
                        node,
                        "builtin hash() is salted per process "
                        "(PYTHONHASHSEED) — derive stable keys with "
                        "hashlib over canonical JSON instead",
                    )
                )
            elif self._is_key_builder(dotted):
                for inner in ast.walk(node):
                    if inner is node or not isinstance(inner, ast.Call):
                        continue
                    inner_dotted = _dotted(inner.func)
                    if inner_dotted in _CLOCKS:
                        findings.append(
                            self._finding(
                                ctx,
                                inner,
                                f"{inner_dotted}() inside {dotted}(...) "
                                "arguments — a clock float in job params "
                                "makes every rerun a cache miss",
                            )
                        )
        return findings

    @staticmethod
    def _is_key_builder(dotted: Optional[str]) -> bool:
        if dotted is None:
            return False
        tail = dotted.rsplit(".", 1)[-1]
        if tail == "job_key":
            return True
        # Job.create(...) — match the two-part attribute form only, so
        # unrelated .create() factories elsewhere don't trip the rule.
        return dotted.endswith("Job.create")

    def _finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )
