"""RPR005 — flat-array probes in the site/cluster hot-path modules.

PR 1 rebuilt the qGDP hot path on flat NumPy site arrays
(``kind_flat`` / ``owner_idx_flat`` / ``res_idx_flat``, column-major so
ascending flat index equals ascending ``(col, row)``); the legacy
dict / per-row-bisect structures are kept in lockstep only as the
mutation bookkeeping inside :class:`~repro.legalization.bins.BinGrid`.
The ROADMAP maintenance rule — "keep new site probes on the flat
arrays rather than the dict state" — was enforced by nothing until
this rule.  In ``src/repro/detailed/``, ``src/repro/legalization/``
and the cluster/trace modules of ``src/repro/netlist/`` (``bins.py``
itself excepted, it owns both representations) it flags:

* attribute access to the legacy internals ``._occupant`` /
  ``._free_rows`` — reach for ``kind_flat`` /
  ``free_cols_in_row`` / ``first_free_col_at_or_after`` instead;
* ``import bisect`` / ``from bisect import ...`` and ``bisect.*``
  calls — bisecting a per-row free list is the legacy probe pattern;
  the flat arrays answer the same queries with one vectorized scan;
* ``id(...)`` calls and ``.setdefault(...)`` — identity-keyed visited
  maps and per-site dict buckets were the legacy cluster-DFS probes;
  the batched :func:`~repro.netlist.clusters.block_cluster_map` packs
  sites into integer keys and labels components in one array pass.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.core import FileContext, Finding, Rule, register

#: BinGrid's legacy dict/bisect internals (bins.py's private state).
_LEGACY_ATTRS = frozenset({"_occupant", "_free_rows"})


@register
class FlatArrayProbeRule(Rule):
    """Legacy dict/bisect/identity occupancy probes outside ``bins.py``."""

    id = "RPR005"
    name = "flat-array-probes"
    scope = (
        "src/repro/detailed/",
        "src/repro/legalization/",
        "src/repro/netlist/clusters.py",
        "src/repro/netlist/traces.py",
    )
    exempt = ("src/repro/legalization/bins.py",)

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in _LEGACY_ATTRS:
                findings.append(
                    self._finding(
                        ctx,
                        node,
                        f".{node.attr} is BinGrid's legacy dict/bisect "
                        "state — probe the flat site arrays instead "
                        "(kind_flat, free_cols_in_row, "
                        "first_free_col_at_or_after)",
                    )
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "bisect":
                        findings.append(
                            self._finding(
                                ctx,
                                node,
                                "import bisect in a site-probe module — "
                                "the flat NumPy arrays answer free-site "
                                "queries without per-row free lists",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "bisect":
                    findings.append(
                        self._finding(
                            ctx,
                            node,
                            "from bisect import ... in a site-probe "
                            "module — use the flat NumPy site arrays",
                        )
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "id":
                    findings.append(
                        self._finding(
                            ctx,
                            node,
                            "id()-keyed bookkeeping is the legacy "
                            "cluster-DFS probe — index blocks by list "
                            "position/ordinal and label components with "
                            "the batched array pass (block_cluster_map)",
                        )
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "setdefault"
                ):
                    findings.append(
                        self._finding(
                            ctx,
                            node,
                            ".setdefault() site buckets are the legacy "
                            "dict-path probe — pack sites into integer "
                            "keys and group with one vectorized pass",
                        )
                    )
        return findings

    def _finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )
