"""The ``repro lint`` driver: files -> AST -> rules -> findings.

This module owns everything rule-independent:

* :class:`Finding` — one diagnostic, stable and JSON-safe;
* :class:`Rule` and :data:`REGISTRY` — the rule contract and the
  ``@register`` decorator rule modules use to plug in;
* :class:`FileContext` — a parsed file handed to every rule (source
  text, lines, AST and a parent map so rules can walk *up* the tree);
* suppression handling — ``# repro: lint-ignore[RPR001]`` on a flagged
  line (or alone on the line above) silences matching findings, and a
  suppression that silences nothing is itself reported as
  :data:`UNUSED_SUPPRESSION_ID` so dead ignores cannot accumulate;
* :func:`lint_source` / :func:`lint_paths` — the entry points the CLI,
  ``tools/lint.py`` and the test suite share.

Rules see files through *display paths*: forward-slash, relative to the
lint root, e.g. ``src/repro/orchestration/store.py``.  A rule's
``scope`` / ``exempt`` tuples are substring prefixes matched against
that form, which is what lets RPR001 apply only to content-key-path
modules while RPR005 exempts ``bins.py`` (the owner of the legacy
occupancy state).  See ``docs/lint.md`` for the rule catalog.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Pseudo rule id for a suppression comment that silenced nothing.
UNUSED_SUPPRESSION_ID = "RPR000"

#: Pseudo rule id for a file the parser rejected (lint cannot vouch for it).
PARSE_ERROR_ID = "E001"

#: The suppression comment form — must open the comment, trailing
#: rationale text is encouraged: ``# repro: lint-ignore[RPR001] why``.
_SUPPRESS = re.compile(r"^#\s*repro:\s*lint-ignore\[([A-Za-z0-9_,\s]+)\]")

#: Directory names never descended into when walking lint paths.
SKIPPED_DIRS = frozenset(
    {".git", "__pycache__", ".repro_cache", ".pytest_cache", ".mypy_cache"}
)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and what to do about it."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the ``--format=json`` row schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class FileContext:
    """One parsed file, shared by every rule that inspects it.

    ``path`` is the display path (posix separators, relative to the lint
    root).  ``lines`` are raw source lines so comment-based conventions
    (``# guarded-by``, ``# holds``) survive — the AST drops comments.
    ``parent_of`` maps each AST node to its parent, letting rules ask
    "is this set iteration wrapped in ``sorted()``?" without threading
    state through a visitor.
    """

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.parent_of: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parent_of[child] = node

    def line_text(self, lineno: int) -> str:
        """The 1-based source line, or '' past EOF (defensive)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """The node's parents, innermost first."""
        current: Optional[ast.AST] = self.parent_of.get(node)
        while current is not None:
            yield current
            current = self.parent_of.get(current)


class Rule(ABC):
    """One lint rule.  Subclasses are registered via :func:`register`.

    Class attributes:

    * ``id`` — the stable rule id (``RPR001`` ...), used in output, in
      ``--rule`` filters, in suppression comments and in the docs
      catalog sync check;
    * ``name`` — a short kebab-case label;
    * ``scope`` — display-path prefixes the rule applies to (empty
      means every file);
    * ``exempt`` — display-path prefixes excluded *within* the scope.
    """

    id: str = ""
    name: str = ""
    scope: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the file at ``path`` (display form)."""
        if any(path.startswith(prefix) for prefix in self.exempt):
            return False
        if not self.scope:
            return True
        return any(path.startswith(prefix) for prefix in self.scope)

    @abstractmethod
    def check(self, ctx: FileContext) -> List[Finding]:
        """Findings for one file (unsuppressed; the driver filters)."""


#: Rule id -> rule instance.  Populated by the rule modules at import.
REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if instance.id in REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id}")
    REGISTRY[instance.id] = instance
    return cls


def rule_ids() -> List[str]:
    """Registered rule ids, sorted."""
    return sorted(REGISTRY)


def select_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rules to run: all registered, or the ``--rule`` subset."""
    if only is None:
        return [REGISTRY[rule_id] for rule_id in rule_ids()]
    chosen = []
    for rule_id in only:
        if rule_id not in REGISTRY:
            raise ValueError(
                f"unknown rule {rule_id!r}; available: {', '.join(rule_ids())}"
            )
        chosen.append(REGISTRY[rule_id])
    return chosen


# -- suppressions -------------------------------------------------------------
@dataclass
class _Suppression:
    """One ``lint-ignore`` comment: the lines and rule ids it covers."""

    line: int  # the line the comment sits on
    target: int  # the code line it silences (== line for inline form)
    rules: Tuple[str, ...]
    used: bool = False

    def covers(self, finding_line: int, rule: str) -> bool:
        if rule not in self.rules:
            return False
        return finding_line in (self.line, self.target)


def _suppression_target(lines: Sequence[str], comment_line: int) -> int:
    """The code line a standalone suppression covers.

    The first following line that is not blank and not itself a comment
    — so a multi-line rationale comment under the ``lint-ignore`` still
    points at the statement below it.
    """
    for number in range(comment_line, len(lines)):
        stripped = lines[number].strip()  # lines[n] is line n+1
        if stripped and not stripped.startswith("#"):
            return number + 1
    return comment_line


def _collect_suppressions(text: str, lines: Sequence[str]) -> List[_Suppression]:
    # Tokenize rather than regex-scan raw lines: the suppression syntax
    # is quoted in docstrings (this file's included) and those must not
    # count as live — only real COMMENT tokens do.
    found = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS.match(token.string)
            if match is None:
                continue
            rules = tuple(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
            number = token.start[0]
            standalone = token.line.lstrip().startswith("#")
            target = (
                _suppression_target(lines, number) if standalone else number
            )
            found.append(_Suppression(number, target, rules))
    except tokenize.TokenizeError:  # pragma: no cover - ast parsed already
        pass
    return found


def _apply_suppressions(
    findings: List[Finding], suppressions: List[_Suppression], path: str
) -> List[Finding]:
    """Drop suppressed findings; report suppressions that did nothing."""
    kept = []
    for finding in findings:
        covering = next(
            (
                s
                for s in suppressions
                if s.covers(finding.line, finding.rule)
            ),
            None,
        )
        if covering is None:
            kept.append(finding)
        else:
            covering.used = True
    for suppression in suppressions:
        if not suppression.used:
            kept.append(
                Finding(
                    path=path,
                    line=suppression.line,
                    col=0,
                    rule=UNUSED_SUPPRESSION_ID,
                    message=(
                        "unused suppression: lint-ignore"
                        f"[{','.join(suppression.rules)}] matched no finding "
                        "— remove it (or fix the rule id)"
                    ),
                )
            )
    return kept


# -- entry points -------------------------------------------------------------
def lint_source(
    text: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string as if it lived at display path ``path``."""
    active = list(rules) if rules is not None else select_rules()
    display = path.replace(os.sep, "/")
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR_ID,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(display, text, tree)
    findings: List[Finding] = []
    applicable = [rule for rule in active if rule.applies_to(display)]
    for rule in applicable:
        findings.extend(rule.check(ctx))
    active_ids = {rule.id for rule in active}
    suppressions = [
        s
        for s in _collect_suppressions(ctx.text, ctx.lines)
        # Only judge suppressions for rules this run actually executed:
        # a --rule RPR005 pass must not report RPR001 ignores as unused.
        if any(rule_id in active_ids for rule_id in s.rules)
    ]
    findings = _apply_suppressions(findings, suppressions, display)
    return sorted(findings)


def _python_files(paths: Sequence[str], root: str) -> List[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    files = []
    for path in paths:
        resolved = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(resolved):
            files.append(resolved)
            continue
        for dirpath, dirnames, filenames in os.walk(resolved):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIPPED_DIRS
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    return sorted(set(files))


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[str] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``; returns sorted findings.

    ``root`` anchors display paths (default: the current directory), so
    running from the repo root and running ``tools/lint.py`` from
    anywhere report identical paths — and rule scopes match either way.
    """
    base = os.path.abspath(root or os.getcwd())
    findings: List[Finding] = []
    for file_path in _python_files(paths, base):
        display = os.path.relpath(file_path, base).replace(os.sep, "/")
        with open(file_path, "r", encoding="utf-8") as fh:
            text = fh.read()
        findings.extend(lint_source(text, display, rules))
    return sorted(findings)
