"""``repro lint`` — AST-based invariant checking for this reproduction.

The dynamic suites (hypothesis parity, the chaos harness) prove the
determinism / purity / lock / process-boundary invariants hold on the
paths they exercise; this package checks them *statically*, on every
path, at review time.  Five rules are wired to the repo's real
invariants — see ``docs/lint.md`` for the catalog and rationale:

=========  ==================================================
RPR001     nondeterminism on the content-key path
RPR002     content-key purity in ``orchestration/``
RPR003     lock discipline (``# guarded-by`` / ``# holds``)
RPR004     process-boundary safety (picklable submissions)
RPR005     flat-array probes in ``detailed/``/``legalization/``
=========  ==================================================

Plus two driver-level diagnostics: ``RPR000`` (a ``# repro:
lint-ignore[...]`` comment that suppressed nothing) and ``E001`` (a
file the parser rejected).

Run it as ``repro lint [paths] [--rule ID] [--format text|json|github]``
or ``python tools/lint.py``; the repository is kept lint-clean (a
tier-1 meta-test and the CI lint job both enforce it).
"""

from repro.lint.core import (
    PARSE_ERROR_ID,
    REGISTRY,
    UNUSED_SUPPRESSION_ID,
    FileContext,
    Finding,
    Rule,
    lint_paths,
    lint_source,
    register,
    rule_ids,
    select_rules,
)

# Importing the rule modules populates REGISTRY.
from repro.lint import (  # noqa: F401  (imported for registration)
    rules_determinism,
    rules_locks,
    rules_probes,
    rules_process,
    rules_purity,
)
from repro.lint.output import FORMATS, render

#: The paths ``repro lint`` checks when none are given: all shipped
#: code.  ``tests/`` is deliberately absent — tests/lint/fixtures holds
#: intentionally-bad snippets every rule must fire on.
DEFAULT_PATHS = ("src", "tools", "examples", "benchmarks")

__all__ = [
    "DEFAULT_PATHS",
    "FORMATS",
    "FileContext",
    "Finding",
    "PARSE_ERROR_ID",
    "REGISTRY",
    "Rule",
    "UNUSED_SUPPRESSION_ID",
    "lint_paths",
    "lint_source",
    "register",
    "render",
    "rule_ids",
    "select_rules",
]
