"""Finding formatters: text, JSON, and GitHub workflow annotations.

Three renderings of the same sorted finding list:

* ``text`` — ``path:line:col: RULE message`` plus a summary line, the
  local-development default;
* ``json`` — ``{"findings": [...], "count": N, "rules": [...]}``; the
  row schema is :meth:`repro.lint.core.Finding.to_dict`, pinned by
  ``tests/lint``;
* ``github`` — ``::error file=...,line=...,col=...,title=RULE::msg``
  workflow commands, so CI findings surface as inline PR annotations.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Sequence

from repro.lint.core import Finding

FORMATS = ("text", "json", "github")


def format_text(findings: Sequence[Finding]) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in findings
    ]
    count = len(findings)
    lines.append(
        "repro lint: clean"
        if count == 0
        else f"repro lint: {count} finding{'s' if count != 1 else ''}"
    )
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    rules = sorted({f.rule for f in findings})
    document = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
        "rules": rules,
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _escape_annotation(text: str) -> str:
    """GitHub workflow-command escaping for the message payload."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_github(findings: Sequence[Finding]) -> str:
    lines = [
        f"::error file={f.path},line={f.line},col={f.col},"
        f"title={f.rule}::{_escape_annotation(f.message)}"
        for f in findings
    ]
    lines.append(
        f"repro lint: {len(findings)} finding(s)"
        if findings
        else "repro lint: clean"
    )
    return "\n".join(lines)


FORMATTERS: Dict[str, Callable[[Sequence[Finding]], str]] = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
}


def render(findings: List[Finding], fmt: str = "text") -> str:
    """Render findings in ``fmt`` (one of :data:`FORMATS`)."""
    try:
        formatter = FORMATTERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; expected one of {', '.join(FORMATS)}"
        ) from None
    return formatter(findings)
