"""Command-line interface: run flows and regenerate the paper's tables.

Examples::

    python -m repro topologies
    python -m repro flow falcon --engine qgdp --render
    python -m repro flow all --no-dp
    python -m repro fidelity aspen11 --benchmarks bv-4 qaoa-4 --seeds 10
    python -m repro tables --which fig9
    python -m repro tables --topologies grid aspen11 --workers 4
    python -m repro sweep --topologies grid falcon --seeds 10 --workers 4
    python -m repro sweep --topologies grid falcon --seeds 10 --resume
    python -m repro diff .repro_cache/runs/<run_a> .repro_cache/runs/<run_b>

``tables`` assembles Fig. 9 / Tables II–III from the same content-addressed
artifact cache sweeps use (see ``docs/tables.md``): the table text goes to
stdout, job-counter diagnostics to stderr, and — when the cache is enabled
— a diffable run manifest to ``<cache>/runs/<run_id>-tables/``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.circuits import PAPER_BENCHMARKS
from repro.core.config import QGDPConfig
from repro.core.pipeline import run_flow
from repro.evaluation import (
    EvaluationConfig,
    cells_from_sweep,
    evaluate_fidelity,
    format_fig8,
    format_fig9,
    format_table2,
    format_table3,
    run_engine_evaluations,
    sweep_spec,
)
from repro.legalization import PAPER_ENGINE_ORDER
from repro.orchestration import (
    RunSink,
    diff_runs,
    format_diff,
    load_run,
    run_sweep,
)
from repro.topologies import PAPER_TOPOLOGIES, available_topologies, get_topology
from repro.visualization import render_layout, save_layout_json


def _cmd_topologies(_args) -> int:
    for name in available_topologies():
        topo = get_topology(name)
        print(
            f"{name:10s} {topo.num_qubits:4d} qubits  {topo.num_edges:4d} "
            f"resonators  - {topo.description}"
        )
    return 0


def _cmd_benchmarks(_args) -> int:
    for name in PAPER_BENCHMARKS:
        print(name)
    return 0


def _run_one_flow(topology_name: str, args) -> int:
    config = QGDPConfig(seed=args.seed)
    flow, result = run_flow(
        topology_name,
        engine=args.engine,
        detailed=not args.no_dp,
        config=config,
    )
    for stage in result.stages:
        summary = ", ".join(
            f"{key}={stage.metrics[key]}"
            for key in ("iedge", "crossings", "ph_percent", "hq")
            if key in stage.metrics
        )
        print(f"[{stage.stage}] {stage.runtime_s:.2f}s  {summary}")
    if args.render:
        print(render_layout(flow.netlist, flow.grid))
    if args.json:
        save_layout_json(flow.netlist, args.json)
        print(f"layout written to {args.json}")
    violations = result.final.metrics.get("legality_violations", 0)
    return 0 if violations == 0 else 1


def _cmd_flow(args) -> int:
    if args.topology != "all":
        return _run_one_flow(args.topology, args)
    if args.json:
        print("--json is only supported for a single topology")
        return 2
    # Run every paper topology; the exit code aggregates the worst result.
    worst = 0
    for name in PAPER_TOPOLOGIES:
        print(f"=== {name} ===")
        worst = max(worst, _run_one_flow(name, args))
    return worst


def _cmd_fidelity(args) -> int:
    eval_config = EvaluationConfig(
        num_seeds=args.seeds, config=QGDPConfig(seed=args.seed)
    )
    results = evaluate_fidelity(
        [args.topology], args.benchmarks, args.engines, eval_config
    )
    print(
        format_fig8(results, [args.topology], args.benchmarks, args.engines)
    )
    return 0


def _cmd_tables(args) -> int:
    eval_config = EvaluationConfig(config=QGDPConfig(seed=args.seed))
    cache_dir = None if args.no_cache else args.cache_dir
    result = run_engine_evaluations(
        args.topologies,
        PAPER_ENGINE_ORDER,
        eval_config,
        with_dp_for=("qgdp",),
        cache_dir=cache_dir,
        workers=args.workers,
        resume=args.resume and cache_dir is not None,
        retries=args.retries,
        timeout_s=args.timeout_s,
    )
    evaluations = result.evaluations
    # The deliverable (the tables) goes to stdout; run diagnostics go to
    # stderr so regenerated output is byte-comparable across cache states.
    if args.which in ("fig9", "all"):
        print(format_fig9(evaluations, args.topologies, PAPER_ENGINE_ORDER))
    if args.which in ("table2", "all"):
        print(format_table2(evaluations, args.topologies, PAPER_ENGINE_ORDER))
    if args.which in ("table3", "all"):
        print(format_table3(evaluations, args.topologies))

    stats = result.stats
    out_dir = args.out
    if out_dir is None and cache_dir is not None:
        out_dir = os.path.join(cache_dir, "runs", result.manifest["run_id"])
    if out_dir is not None:
        sink = RunSink(out_dir)
        sink.write_results(result.rows)
        sink.write_manifest(result.manifest)
        print(f"manifest: {sink.manifest_path}", file=sys.stderr)
    print(
        f"tables {result.manifest['run_id']}: {stats.computed} jobs "
        f"computed, {stats.cached} cached, {stats.wall_s:.1f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_diff(args) -> int:
    try:
        run_a = load_run(args.run_a)
        run_b = load_run(args.run_b)
    except ValueError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    diff = diff_runs(run_a, run_b)
    print(format_diff(diff))
    # diff(1) semantics: 0 = identical, 1 = differences found.
    return 0 if diff.is_empty else 1


def _parse_shard(text: str) -> tuple:
    try:
        index, count = (int(part) for part in text.split("/"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like 'i/n' (e.g. 2/4), got {text!r}"
        )
    if count < 1 or not (1 <= index <= count):
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 1 <= i <= n, got {text!r}"
        )
    return (index, count)


def _cmd_sweep(args) -> int:
    eval_config = EvaluationConfig(
        num_seeds=args.seeds,
        base_seed=args.base_seed,
        detailed=args.detailed,
        config=QGDPConfig(seed=args.seed),
    )
    spec = sweep_spec(args.topologies, args.benchmarks, args.engines, eval_config)
    cache_dir = None if args.no_cache else args.cache_dir

    state = {"done": 0}

    def progress(job, status):
        if status == "start":
            return
        state["done"] += 1
        if args.quiet:
            return
        what = job.params.get("benchmark") or job.params.get("engine") or ""
        print(
            f"[{state['done']}] {status:6s} {job.kind:9s} "
            f"{job.params.get('topology', '')} {what}",
            flush=True,
        )

    result = run_sweep(
        spec,
        cache_dir=cache_dir,
        workers=args.workers,
        resume=args.resume,
        shard=args.shard,
        progress=progress,
        retries=args.retries,
        timeout_s=args.timeout_s,
    )

    if args.out:
        out_dir = args.out
    elif cache_dir is not None:
        out_dir = os.path.join(cache_dir, "runs", result.manifest["run_id"])
    else:
        # --no-cache must not touch the cache directory at all.
        out_dir = f"repro-sweep-{result.manifest['run_id']}"
    sink = RunSink(out_dir)
    sink.write_results(result.rows)
    sink.write_manifest(result.manifest)

    if args.table:
        cells = cells_from_sweep(result.cells)
        print(
            format_fig8(
                cells, list(args.topologies), list(args.benchmarks), list(args.engines)
            )
        )
    stats = result.stats
    print(
        f"sweep {result.manifest['run_id']}: {len(result.cells)} cells, "
        f"{stats.computed} jobs computed, {stats.cached} cached, "
        f"{stats.wall_s:.1f}s"
    )
    print(f"results: {sink.results_path}")
    print(f"manifest: {sink.manifest_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The qGDP CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="qGDP quantum legalization & detailed placement",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies", help="list available device topologies")
    sub.add_parser("benchmarks", help="list NISQ benchmark circuits")

    flow = sub.add_parser("flow", help="run the GP -> LG -> DP flow")
    flow.add_argument("topology", choices=available_topologies() + ["all"])
    flow.add_argument("--engine", default="qgdp", choices=PAPER_ENGINE_ORDER)
    flow.add_argument("--no-dp", action="store_true", help="stop after LG")
    flow.add_argument("--render", action="store_true", help="print ASCII layout")
    flow.add_argument("--json", metavar="PATH", help="export layout JSON")
    flow.add_argument("--seed", type=int, default=QGDPConfig().seed)

    fid = sub.add_parser("fidelity", help="fidelity sweep on one topology")
    fid.add_argument("topology", choices=available_topologies())
    fid.add_argument("--benchmarks", nargs="+", default=["bv-4", "qaoa-4"])
    fid.add_argument("--engines", nargs="+", default=list(PAPER_ENGINE_ORDER))
    fid.add_argument("--seeds", type=int, default=10)
    fid.add_argument("--seed", type=int, default=QGDPConfig().seed)

    tables = sub.add_parser(
        "tables",
        help="regenerate Fig. 9 / Tables II-III from the artifact cache",
    )
    tables.add_argument(
        "--which", default="all", choices=["fig9", "table2", "table3", "all"]
    )
    tables.add_argument(
        "--topologies", nargs="+", default=list(PAPER_TOPOLOGIES)
    )
    tables.add_argument("--seed", type=int, default=QGDPConfig().seed)
    tables.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; tables graphs are small)",
    )
    tables.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached stage artifacts (--no-resume recomputes all)",
    )
    tables.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per flaky job before aborting",
    )
    tables.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="wall-clock budget per job attempt (default: unbounded)",
    )
    tables.add_argument("--cache-dir", default=".repro_cache")
    tables.add_argument(
        "--no-cache", action="store_true", help="keep artifacts in memory only"
    )
    tables.add_argument(
        "--out",
        default=None,
        help="run output directory (default: <cache>/runs/<run_id>-tables; "
        "set to keep multiple same-spec runs for repro diff)",
    )

    diff = sub.add_parser(
        "diff",
        help="compare two run manifests: jobs added/removed/recomputed, "
        "changed cells",
    )
    diff.add_argument(
        "run_a", help="baseline run directory or manifest.json path"
    )
    diff.add_argument("run_b", help="comparison run directory or manifest.json")

    sweep = sub.add_parser(
        "sweep",
        help="parallel, resumable, disk-cached fidelity sweep (Fig. 8 protocol)",
    )
    sweep.add_argument(
        "--topologies", nargs="+", default=list(PAPER_TOPOLOGIES)
    )
    sweep.add_argument(
        "--benchmarks", nargs="+", default=list(PAPER_BENCHMARKS)
    )
    sweep.add_argument(
        "--engines", nargs="+", default=list(PAPER_ENGINE_ORDER)
    )
    sweep.add_argument("--seeds", type=int, default=50, help="mapping seeds per cell")
    sweep.add_argument("--base-seed", type=int, default=11)
    sweep.add_argument("--seed", type=int, default=QGDPConfig().seed)
    sweep.add_argument(
        "--detailed", action="store_true", help="run qGDP-DP on top of qGDP-LG"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=os.cpu_count() or 1,
        help="worker processes (1 = serial, the debugging mode)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="reuse cached stage artifacts instead of recomputing",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per flaky job before the sweep aborts",
    )
    sweep.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="wall-clock budget per job attempt (default: unbounded)",
    )
    sweep.add_argument(
        "--shard",
        type=_parse_shard,
        default=None,
        metavar="i/n",
        help="run the i-th of n deterministic cell slices (1-based)",
    )
    sweep.add_argument("--cache-dir", default=".repro_cache")
    sweep.add_argument(
        "--no-cache", action="store_true", help="keep artifacts in memory only"
    )
    sweep.add_argument("--out", default=None, help="run output directory")
    sweep.add_argument(
        "--table", action="store_true", help="print the Fig. 8 table"
    )
    sweep.add_argument("--quiet", action="store_true", help="suppress per-job progress")
    return parser


_HANDLERS = {
    "topologies": _cmd_topologies,
    "benchmarks": _cmd_benchmarks,
    "flow": _cmd_flow,
    "fidelity": _cmd_fidelity,
    "tables": _cmd_tables,
    "sweep": _cmd_sweep,
    "diff": _cmd_diff,
}


def main(argv: list = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)
