"""Command-line interface: run flows and regenerate the paper's tables.

Examples::

    python -m repro topologies
    python -m repro flow falcon --engine qgdp --render
    python -m repro fidelity aspen11 --benchmarks bv-4 qaoa-4 --seeds 10
    python -m repro tables --which fig9
"""

from __future__ import annotations

import argparse

from repro.circuits import PAPER_BENCHMARKS
from repro.core.config import QGDPConfig
from repro.core.pipeline import run_flow
from repro.evaluation import (
    EvaluationConfig,
    evaluate_engines,
    evaluate_fidelity,
    format_fig8,
    format_fig9,
    format_table2,
    format_table3,
)
from repro.legalization import PAPER_ENGINE_ORDER
from repro.topologies import PAPER_TOPOLOGIES, available_topologies, get_topology
from repro.visualization import render_layout, save_layout_json


def _cmd_topologies(_args) -> int:
    for name in available_topologies():
        topo = get_topology(name)
        print(
            f"{name:10s} {topo.num_qubits:4d} qubits  {topo.num_edges:4d} "
            f"resonators  - {topo.description}"
        )
    return 0


def _cmd_benchmarks(_args) -> int:
    for name in PAPER_BENCHMARKS:
        print(name)
    return 0


def _cmd_flow(args) -> int:
    config = QGDPConfig(seed=args.seed)
    flow, result = run_flow(
        args.topology,
        engine=args.engine,
        detailed=not args.no_dp,
        config=config,
    )
    for stage in result.stages:
        summary = ", ".join(
            f"{key}={stage.metrics[key]}"
            for key in ("iedge", "crossings", "ph_percent", "hq")
            if key in stage.metrics
        )
        print(f"[{stage.stage}] {stage.runtime_s:.2f}s  {summary}")
    if args.render:
        print(render_layout(flow.netlist, flow.grid))
    if args.json:
        save_layout_json(flow.netlist, args.json)
        print(f"layout written to {args.json}")
    violations = result.final.metrics.get("legality_violations", 0)
    return 0 if violations == 0 else 1


def _cmd_fidelity(args) -> int:
    eval_config = EvaluationConfig(
        num_seeds=args.seeds, config=QGDPConfig(seed=args.seed)
    )
    results = evaluate_fidelity(
        [args.topology], args.benchmarks, args.engines, eval_config
    )
    print(
        format_fig8(results, [args.topology], args.benchmarks, args.engines)
    )
    return 0


def _cmd_tables(args) -> int:
    eval_config = EvaluationConfig(config=QGDPConfig(seed=args.seed))
    evaluations = {
        name: evaluate_engines(
            name, PAPER_ENGINE_ORDER, eval_config, with_dp_for=("qgdp",)
        )
        for name in args.topologies
    }
    if args.which in ("fig9", "all"):
        print(format_fig9(evaluations, args.topologies, PAPER_ENGINE_ORDER))
    if args.which in ("table2", "all"):
        print(format_table2(evaluations, args.topologies, PAPER_ENGINE_ORDER))
    if args.which in ("table3", "all"):
        print(format_table3(evaluations, args.topologies))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The qGDP CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="qGDP quantum legalization & detailed placement",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies", help="list available device topologies")
    sub.add_parser("benchmarks", help="list NISQ benchmark circuits")

    flow = sub.add_parser("flow", help="run the GP -> LG -> DP flow")
    flow.add_argument("topology", choices=available_topologies() + ["all"])
    flow.add_argument("--engine", default="qgdp", choices=PAPER_ENGINE_ORDER)
    flow.add_argument("--no-dp", action="store_true", help="stop after LG")
    flow.add_argument("--render", action="store_true", help="print ASCII layout")
    flow.add_argument("--json", metavar="PATH", help="export layout JSON")
    flow.add_argument("--seed", type=int, default=QGDPConfig().seed)

    fid = sub.add_parser("fidelity", help="fidelity sweep on one topology")
    fid.add_argument("topology", choices=available_topologies())
    fid.add_argument("--benchmarks", nargs="+", default=["bv-4", "qaoa-4"])
    fid.add_argument("--engines", nargs="+", default=list(PAPER_ENGINE_ORDER))
    fid.add_argument("--seeds", type=int, default=10)
    fid.add_argument("--seed", type=int, default=QGDPConfig().seed)

    tables = sub.add_parser("tables", help="regenerate Fig. 9 / Tables II-III")
    tables.add_argument(
        "--which", default="all", choices=["fig9", "table2", "table3", "all"]
    )
    tables.add_argument(
        "--topologies", nargs="+", default=list(PAPER_TOPOLOGIES)
    )
    tables.add_argument("--seed", type=int, default=QGDPConfig().seed)
    return parser


_HANDLERS = {
    "topologies": _cmd_topologies,
    "benchmarks": _cmd_benchmarks,
    "flow": _cmd_flow,
    "fidelity": _cmd_fidelity,
    "tables": _cmd_tables,
}


def main(argv: list = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)
