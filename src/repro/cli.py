"""Command-line interface: run flows and regenerate the paper's tables.

Examples::

    python -m repro topologies
    python -m repro flow falcon --engine qgdp --render
    python -m repro flow all --no-dp
    python -m repro fidelity aspen11 --benchmarks bv-4 qaoa-4 --seeds 10
    python -m repro tables --which fig9
    python -m repro tables --topologies grid aspen11 --workers 4
    python -m repro sweep --topologies grid falcon --seeds 10 --workers 4
    python -m repro sweep --topologies grid falcon --seeds 10 --resume
    python -m repro diff .repro_cache/runs/<run_a> .repro_cache/runs/<run_b>
    python -m repro serve-cache --store sqlite:shared.db --port 8765
    python -m repro sweep --cache-url http://cache-host:8765 --resume
    python -m repro cache stats sqlite:shared.db
    python -m repro cache push dir:.repro_cache sqlite:shared.db
    python -m repro serve-cache --store sqlite:shared.db --fleet
    python -m repro worker --coordinator http://cache-host:8765
    python -m repro sweep --fleet http://cache-host:8765 --seeds 10
    python -m repro fleet status --coordinator http://cache-host:8765
    python -m repro serve --store sqlite:shared.db --token s3cret --workers 4
    python -m repro submit --service http://job-host:8766 --spec spec.json --wait
    python -m repro status --service http://job-host:8766 run0001-abcd1234
    python -m repro results --service http://job-host:8766 run0001-abcd1234
    python -m repro cancel --service http://job-host:8766 run0001-abcd1234

``tables`` assembles Fig. 9 / Tables II–III from the same content-addressed
artifact cache sweeps use (see ``docs/tables.md``): the table text goes to
stdout, job-counter diagnostics to stderr, and — when the cache is enabled
— a diffable run manifest to ``<cache>/runs/<run_id>-tables/``.

Artifact caches live behind pluggable storage backends addressed by URL
(``dir:PATH``, ``sqlite:PATH``, ``http://host:port`` — see
``docs/storage.md``): ``--cache-url`` points ``sweep`` / ``tables`` at
any backend, ``serve-cache`` exposes a local store to a fleet over
HTTP, and ``cache`` inspects (``stats``), expires (``gc``) and syncs
(``push`` / ``pull``) stores by content key.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.circuits import PAPER_BENCHMARKS
from repro.core.config import QGDPConfig
from repro.core.pipeline import run_flow
from repro.evaluation import (
    EvaluationConfig,
    cells_from_sweep,
    evaluate_fidelity,
    format_fig8,
    format_fig9,
    format_table2,
    format_table3,
    run_engine_evaluations,
    sweep_spec,
)
from repro.legalization import PAPER_ENGINE_ORDER
from repro.lint import (
    DEFAULT_PATHS as LINT_DEFAULT_PATHS,
    FORMATS as LINT_FORMATS,
    lint_paths,
    render as render_findings,
    select_rules,
)
from repro.orchestration import (
    FleetClient,
    FleetError,
    RemoteHTTPBackend,
    RunSink,
    StoreError,
    backend_from_url,
    diff_runs,
    format_diff,
    load_run,
    resolve_store,
    run_fleet_sweep,
    run_sweep,
    run_worker,
    serve_cache,
    serve_jobs,
    sync_stores,
)
from repro.orchestration.service import ServiceClient, ServiceError
from repro.topologies import PAPER_TOPOLOGIES, available_topologies, get_topology
from repro.visualization import render_layout, save_layout_json


def _cmd_topologies(_args) -> int:
    for name in available_topologies():
        topo = get_topology(name)
        print(
            f"{name:10s} {topo.num_qubits:4d} qubits  {topo.num_edges:4d} "
            f"resonators  - {topo.description}"
        )
    return 0


def _cmd_benchmarks(_args) -> int:
    for name in PAPER_BENCHMARKS:
        print(name)
    return 0


def _run_one_flow(topology_name: str, args) -> int:
    config = QGDPConfig(seed=args.seed)
    flow, result = run_flow(
        topology_name,
        engine=args.engine,
        detailed=not args.no_dp,
        config=config,
    )
    for stage in result.stages:
        summary = ", ".join(
            f"{key}={stage.metrics[key]}"
            for key in ("iedge", "crossings", "ph_percent", "hq")
            if key in stage.metrics
        )
        print(f"[{stage.stage}] {stage.runtime_s:.2f}s  {summary}")
    if args.render:
        print(render_layout(flow.netlist, flow.grid))
    if args.json:
        save_layout_json(flow.netlist, args.json)
        print(f"layout written to {args.json}")
    violations = result.final.metrics.get("legality_violations", 0)
    return 0 if violations == 0 else 1


def _cmd_flow(args) -> int:
    if args.topology != "all":
        return _run_one_flow(args.topology, args)
    if args.json:
        print("--json is only supported for a single topology")
        return 2
    # Run every paper topology; the exit code aggregates the worst result.
    worst = 0
    for name in PAPER_TOPOLOGIES:
        print(f"=== {name} ===")
        worst = max(worst, _run_one_flow(name, args))
    return worst


def _cmd_fidelity(args) -> int:
    eval_config = EvaluationConfig(
        num_seeds=args.seeds, config=QGDPConfig(seed=args.seed)
    )
    results = evaluate_fidelity(
        [args.topology], args.benchmarks, args.engines, eval_config
    )
    print(
        format_fig8(results, [args.topology], args.benchmarks, args.engines)
    )
    return 0


def _cmd_tables(args) -> int:
    eval_config = EvaluationConfig(config=QGDPConfig(seed=args.seed))
    cache_dir = None if args.no_cache else args.cache_dir
    cache_url = None if args.no_cache else args.cache_url
    try:
        store = _open_cli_store(cache_url, cache_dir)
    except (StoreError, ValueError) as exc:
        print(f"cache: {exc}", file=sys.stderr)
        return 1
    try:
        result = run_engine_evaluations(
            args.topologies,
            PAPER_ENGINE_ORDER,
            eval_config,
            with_dp_for=("qgdp",),
            store=store,
            workers=args.workers,
            resume=args.resume and (cache_dir or cache_url) is not None,
            retries=args.retries,
            timeout_s=args.timeout_s,
        )
    except StoreError as exc:  # server died mid-run: fail cleanly
        print(f"cache: {exc}", file=sys.stderr)
        return 1
    finally:
        store.close()
    evaluations = result.evaluations
    # The deliverable (the tables) goes to stdout; run diagnostics go to
    # stderr so regenerated output is byte-comparable across cache states.
    if args.which in ("fig9", "all"):
        print(format_fig9(evaluations, args.topologies, PAPER_ENGINE_ORDER))
    if args.which in ("table2", "all"):
        print(format_table2(evaluations, args.topologies, PAPER_ENGINE_ORDER))
    if args.which in ("table3", "all"):
        print(format_table3(evaluations, args.topologies))

    stats = result.stats
    out_dir = args.out
    if out_dir is None and cache_dir is not None:
        out_dir = os.path.join(cache_dir, "runs", result.manifest["run_id"])
    if out_dir is not None:
        sink = RunSink(out_dir)
        sink.write_results(result.rows)
        sink.write_manifest(result.manifest)
        print(f"manifest: {sink.manifest_path}", file=sys.stderr)
    print(
        f"tables {result.manifest['run_id']}: {stats.computed} jobs "
        f"computed, {stats.cached} cached, {stats.wall_s:.1f}s",
        file=sys.stderr,
    )
    return 0


def _cmd_diff(args) -> int:
    try:
        run_a = load_run(args.run_a)
        run_b = load_run(args.run_b)
    except ValueError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    diff = diff_runs(run_a, run_b)
    print(format_diff(diff))
    # diff(1) semantics: 0 = identical, 1 = differences found.
    return 0 if diff.is_empty else 1


def _open_cli_store(cache_url, cache_dir):
    """Resolve the cache flags to a store, failing fast on a dead server.

    A mistyped ``--cache-url`` host must error out *before* the sweep
    computes anything (the first ``put`` otherwise happens only after
    the first — possibly expensive — job finishes), so a remote backend
    is pinged up front.  Raises ``StoreError`` / ``ValueError``; the
    command handlers translate those into clean stderr messages.
    """
    store = resolve_store(cache_url=cache_url, cache_dir=cache_dir)
    backend = store.backend
    remote = getattr(backend, "remote", backend)  # unwrap a tiered stack
    if isinstance(remote, RemoteHTTPBackend):
        remote.ping()
    return store


def _format_bytes(count: int) -> str:
    """Human-readable byte count (stable, short: '12.3 KiB')."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{int(count)} B"  # unreachable; keeps the typechecker honest


def _open_backend(url: str):
    """Resolve a store URL or exit with diff-style code 2 on a bad one."""
    try:
        return backend_from_url(url)
    except ValueError as exc:
        print(f"cache: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_cache_stats(args) -> int:
    backend = _open_backend(args.store)
    try:
        entries = backend.entries()
        by_kind = {}
        for entry in entries:
            slot = by_kind.setdefault(entry.kind, [0, 0])
            slot[0] += 1
            slot[1] += entry.size
        total = sum(entry.size for entry in entries)
        print(
            f"{backend.describe()}: {len(entries)} artifacts, "
            f"{_format_bytes(total)}"
        )
        for kind in sorted(by_kind):
            count, size = by_kind[kind]
            print(f"  {kind:10s} {count:6d} artifacts  {_format_bytes(size)}")
    finally:
        backend.close()
    return 0


def _cmd_cache_gc(args) -> int:
    backend = _open_backend(args.store)
    try:
        cutoff = time.time() - args.keep_days * 86400.0
        removed = removed_bytes = kept = 0
        for entry in backend.entries():
            if entry.mtime < cutoff:
                if not args.dry_run:
                    backend.delete(entry.kind, entry.key)
                removed += 1
                removed_bytes += entry.size
            else:
                kept += 1
        verb = "would remove" if args.dry_run else "removed"
        print(
            f"{backend.describe()}: {verb} {removed} artifacts "
            f"({_format_bytes(removed_bytes)}) older than "
            f"{args.keep_days:g} days, kept {kept}"
        )
    finally:
        backend.close()
    return 0


def _cmd_cache_sync(args) -> int:
    # push copies local -> remote, pull copies remote -> local; both are
    # idempotent (content keys: an artifact the destination already has
    # is identical bytes and is skipped).
    if args.cache_command == "push":
        source_url, dest_url = args.local, args.remote
    else:
        source_url, dest_url = args.remote, args.local
    source = _open_backend(source_url)
    dest = _open_backend(dest_url)
    try:
        stats = sync_stores(source, dest)
        print(
            f"{source.describe()} -> {dest.describe()}: copied "
            f"{stats.copied} artifacts ({_format_bytes(stats.bytes_copied)}), "
            f"skipped {stats.skipped} already present"
        )
    finally:
        source.close()
        dest.close()
    return 0


_CACHE_HANDLERS = {
    "stats": _cmd_cache_stats,
    "gc": _cmd_cache_gc,
    "push": _cmd_cache_sync,
    "pull": _cmd_cache_sync,
}


def _cmd_cache(args) -> int:
    try:
        return _CACHE_HANDLERS[args.cache_command](args)
    except StoreError as exc:
        print(f"cache: {exc}", file=sys.stderr)
        return 1


def _cmd_serve_cache(args) -> int:
    try:
        server = serve_cache(
            args.store,
            host=args.host,
            port=args.port,
            quiet=args.quiet,
            fleet=args.fleet,
            lease_ttl_s=args.lease_ttl_s,
            max_attempts=args.max_attempts,
            max_body_bytes=args.max_body_mb * 1024 * 1024,
            socket_timeout_s=args.socket_timeout_s,
        )
    except ValueError as exc:
        print(f"serve-cache: {exc}", file=sys.stderr)
        return 2
    fleet_note = " with fleet coordination" if args.fleet else ""
    print(
        f"serving {args.store} at {server.url}{fleet_note} (Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_worker(args) -> int:
    try:
        store = _open_cli_store(
            args.cache_url or args.coordinator, args.cache_dir
        )
    except (StoreError, ValueError) as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 1

    def progress(event, job):
        if args.quiet:
            return
        what = job["params"].get("benchmark") or job["params"].get("engine") or ""
        print(
            f"{event:8s} {job['kind']:9s} "
            f"{job['params'].get('topology', '')} {what} "
            f"({job['key'][:12]})",
            flush=True,
        )

    try:
        stats = run_worker(
            args.coordinator,
            store,
            worker_id=args.worker_id,
            batch_size=args.batch_size,
            poll_s=args.poll_s,
            timeout_s=args.timeout_s,
            exit_when_idle=args.exit_when_idle,
            install_signal_handler=True,
            progress=None if args.quiet else progress,
        )
    except (StoreError, FleetError) as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 1
    finally:
        store.close()
    how = "drained (SIGTERM)" if stats.drained else "fleet finished"
    print(
        f"worker {stats.worker}: {how}; {stats.computed} jobs computed, "
        f"{stats.cached} cached, {stats.failed} failed, "
        f"{stats.released} released, {stats.wall_s:.1f}s",
        flush=True,
    )
    return 0 if stats.failed == 0 else 1


def _cmd_serve(args) -> int:
    tokens = list(args.token or [])
    env_token = os.environ.get("REPRO_SERVICE_TOKEN")
    if env_token:
        tokens.append(env_token)
    if not tokens:
        print(
            "serve: at least one --token (or REPRO_SERVICE_TOKEN) is "
            "required — the job service never runs unauthenticated",
            file=sys.stderr,
        )
        return 2
    try:
        service = serve_jobs(
            args.store,
            tokens,
            host=args.host,
            port=args.port,
            workers=args.workers,
            runs_root=args.runs_root,
            lease_ttl_s=args.lease_ttl_s,
            max_attempts=args.max_attempts,
            quiet=args.quiet,
        )
    except (StoreError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    service.start()
    print(
        f"serving jobs at {service.url} ({args.workers} workers, "
        f"{len(tokens)} tokens; Ctrl-C to stop)",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def _service_client(args) -> ServiceClient:
    token = args.token or os.environ.get("REPRO_SERVICE_TOKEN")
    if not token:
        raise ServiceError(
            "no bearer token: pass --token or set REPRO_SERVICE_TOKEN"
        )
    return ServiceClient(args.service, token)


def _cmd_submit(args) -> int:
    try:
        client = _service_client(args)
        if args.spec == "-":
            document = json.load(sys.stdin)
        else:
            with open(args.spec, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        receipt = client.submit(document)
    except (OSError, ValueError, ServiceError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    print(
        f"run {receipt['run_id']}: {receipt['num_jobs']} jobs, "
        f"{receipt['num_cells']} cells, {receipt['shared_jobs']} shared "
        "with runs already in flight",
        flush=True,
    )
    if not args.wait:
        return 0
    try:
        status = client.wait(receipt["run_id"], poll_s=args.poll_s)
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    print(
        f"run {status['run_id']}: {status['state']} — "
        f"{status['computed']} computed, {status['cached']} cached, "
        f"{len(status['failures'])} failed attempts",
        flush=True,
    )
    return 0 if status["state"] == "done" else 1


def _cmd_status(args) -> int:
    try:
        status = _service_client(args).status(args.run_id)
    except ServiceError as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0 if status["state"] != "failed" else 1


def _cmd_results(args) -> int:
    try:
        reply = _service_client(args).results(args.run_id, after=args.after)
    except ServiceError as exc:
        print(f"results: {exc}", file=sys.stderr)
        return 1
    for row in reply["rows"]:
        # Rows are echoed verbatim in stream order — sorting keys here
        # would diverge from results.jsonl.
        print(json.dumps(row))
    print(
        f"results: state={reply['state']} next={reply['next']} "
        f"complete={reply['complete']}",
        file=sys.stderr,
    )
    return 0 if reply["state"] in ("done", "running", "queued") else 1


def _cmd_cancel(args) -> int:
    try:
        reply = _service_client(args).cancel(args.run_id)
    except ServiceError as exc:
        print(f"cancel: {exc}", file=sys.stderr)
        return 1
    if reply.get("already_cancelled"):
        print(f"run {args.run_id}: already cancelled")
    else:
        print(
            f"run {args.run_id}: cancelled {reply['cancelled']} queued "
            f"jobs ({reply['skipped']} already running or finished, "
            f"{reply.get('shared', 0)} shared with other runs kept)"
        )
    return 0


def _cmd_lint(args) -> int:
    try:
        rules = select_rules(args.rule)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    root = os.path.abspath(args.root)
    if args.paths:
        paths = args.paths
    else:
        paths = [
            path
            for path in LINT_DEFAULT_PATHS
            if os.path.exists(os.path.join(root, path))
        ]
    findings = lint_paths(paths, rules=rules, root=root)
    print(render_findings(findings, args.format))
    # diff(1)-style: 0 = clean, 1 = findings (2 = usage error above).
    return 1 if findings else 0


def _cmd_fleet(args) -> int:
    client = FleetClient(args.coordinator)
    try:
        status = client.status()
    except (StoreError, FleetError) as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 1
    counts = status["counts"]
    print(
        f"fleet at {args.coordinator}: {counts['total']} jobs "
        f"({counts['done']} done, {counts['leased']} leased, "
        f"{counts['ready']} ready, {counts['pending']} pending, "
        f"{counts['failed']} failed); lease TTL "
        f"{status['lease_ttl_s']:g}s, {status['max_attempts']} attempts/job"
    )
    for worker, seen_s in status["workers"].items():
        print(f"  worker {worker}: last seen {seen_s:.1f}s ago")
    if status["failures"]:
        print(f"  {len(status['failures'])} failure-ledger entries:")
        for entry in status["failures"][-args.failures :]:
            print(
                f"    {entry['error_type']}: {entry['kind']} "
                f"{entry['key'][:12]} attempt {entry['attempt']} "
                f"({entry['error']})"
            )
    return 0 if counts["failed"] == 0 else 1


def _parse_shard(text: str) -> tuple:
    try:
        index, count = (int(part) for part in text.split("/"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like 'i/n' (e.g. 2/4), got {text!r}"
        )
    if count < 1 or not (1 <= index <= count):
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 1 <= i <= n, got {text!r}"
        )
    return (index, count)


def _cmd_sweep(args) -> int:
    eval_config = EvaluationConfig(
        num_seeds=args.seeds,
        base_seed=args.base_seed,
        detailed=args.detailed,
        config=QGDPConfig(seed=args.seed),
    )
    spec = sweep_spec(args.topologies, args.benchmarks, args.engines, eval_config)
    cache_dir = None if args.no_cache else args.cache_dir
    cache_url = None if args.no_cache else args.cache_url

    if args.fleet:
        return _run_fleet_sweep_cmd(args, spec, cache_dir, cache_url)

    state = {"done": 0}

    def progress(job, status):
        if status == "start":
            return
        state["done"] += 1
        if args.quiet:
            return
        what = job.params.get("benchmark") or job.params.get("engine") or ""
        print(
            f"[{state['done']}] {status:6s} {job.kind:9s} "
            f"{job.params.get('topology', '')} {what}",
            flush=True,
        )

    try:
        store = _open_cli_store(cache_url, cache_dir)
    except (StoreError, ValueError) as exc:
        print(f"cache: {exc}", file=sys.stderr)
        return 1
    try:
        result = run_sweep(
            spec,
            store=store,
            workers=args.workers,
            resume=args.resume,
            shard=args.shard,
            progress=progress,
            retries=args.retries,
            timeout_s=args.timeout_s,
        )
    except StoreError as exc:  # server died mid-run: fail cleanly
        print(f"cache: {exc}", file=sys.stderr)
        return 1
    finally:
        store.close()

    if args.out:
        out_dir = args.out
    elif cache_dir is not None:
        out_dir = os.path.join(cache_dir, "runs", result.manifest["run_id"])
    else:
        # --no-cache must not touch the cache directory at all.
        out_dir = f"repro-sweep-{result.manifest['run_id']}"
    sink = RunSink(out_dir)
    sink.write_results(result.rows)
    sink.write_manifest(result.manifest)

    if args.table:
        cells = cells_from_sweep(result.cells)
        print(
            format_fig8(
                cells, list(args.topologies), list(args.benchmarks), list(args.engines)
            )
        )
    stats = result.stats
    print(
        f"sweep {result.manifest['run_id']}: {len(result.cells)} cells, "
        f"{stats.computed} jobs computed, {stats.cached} cached, "
        f"{stats.wall_s:.1f}s"
    )
    print(f"results: {sink.results_path}")
    print(f"manifest: {sink.manifest_path}")
    return 0


def _run_fleet_sweep_cmd(args, spec, cache_dir, cache_url) -> int:
    """``repro sweep --fleet URL``: enqueue, watch and merge a fleet run."""
    if args.shard is not None:
        print(
            "sweep: --shard and --fleet are mutually exclusive (the "
            "coordinator schedules dynamically)",
            file=sys.stderr,
        )
        return 2

    last = {"line": None}

    def progress(status):
        if args.quiet:
            return
        counts = status["counts"]
        line = (
            f"fleet: {counts['done']}/{counts['total']} done, "
            f"{counts['leased']} leased, {counts['ready']} ready, "
            f"{counts['failed']} failed, "
            f"{len(status['workers'])} workers"
        )
        if line != last["line"]:
            last["line"] = line
            print(line, flush=True)

    try:
        result = run_fleet_sweep(
            spec,
            args.fleet,
            cache_dir=cache_dir,
            cache_url=cache_url or args.fleet,
            poll_s=args.poll_s,
            progress=progress,
        )
    except FleetError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        for entry in exc.failures[-5:]:
            print(
                f"  {entry['error_type']}: {entry['kind']} "
                f"{entry['key'][:12]} ({entry['error']})",
                file=sys.stderr,
            )
        return 1
    except StoreError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 1

    if args.out:
        out_dir = args.out
    elif cache_dir is not None:
        out_dir = os.path.join(cache_dir, "runs", result.manifest["run_id"])
    else:
        out_dir = f"repro-sweep-{result.manifest['run_id']}"
    sink = RunSink(out_dir)
    sink.write_results(result.rows)
    sink.write_manifest(result.manifest)

    if args.table:
        cells = cells_from_sweep(result.cells)
        print(
            format_fig8(
                cells, list(args.topologies), list(args.benchmarks), list(args.engines)
            )
        )
    stats = result.stats
    workers = result.manifest["fleet"]["workers"]
    print(
        f"fleet sweep {result.manifest['run_id']}: {len(result.cells)} "
        f"cells, {stats.computed} jobs computed, {stats.cached} cached "
        f"by {len(workers)} workers, {stats.wall_s:.1f}s"
    )
    print(f"results: {sink.results_path}")
    print(f"manifest: {sink.manifest_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The qGDP CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="qGDP quantum legalization & detailed placement",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topologies", help="list available device topologies")
    sub.add_parser("benchmarks", help="list NISQ benchmark circuits")

    flow = sub.add_parser("flow", help="run the GP -> LG -> DP flow")
    flow.add_argument("topology", choices=available_topologies() + ["all"])
    flow.add_argument("--engine", default="qgdp", choices=PAPER_ENGINE_ORDER)
    flow.add_argument("--no-dp", action="store_true", help="stop after LG")
    flow.add_argument("--render", action="store_true", help="print ASCII layout")
    flow.add_argument("--json", metavar="PATH", help="export layout JSON")
    flow.add_argument("--seed", type=int, default=QGDPConfig().seed)

    fid = sub.add_parser("fidelity", help="fidelity sweep on one topology")
    fid.add_argument("topology", choices=available_topologies())
    fid.add_argument("--benchmarks", nargs="+", default=["bv-4", "qaoa-4"])
    fid.add_argument("--engines", nargs="+", default=list(PAPER_ENGINE_ORDER))
    fid.add_argument("--seeds", type=int, default=10)
    fid.add_argument("--seed", type=int, default=QGDPConfig().seed)

    tables = sub.add_parser(
        "tables",
        help="regenerate Fig. 9 / Tables II-III from the artifact cache",
    )
    tables.add_argument(
        "--which", default="all", choices=["fig9", "table2", "table3", "all"]
    )
    tables.add_argument(
        "--topologies", nargs="+", default=list(PAPER_TOPOLOGIES)
    )
    tables.add_argument("--seed", type=int, default=QGDPConfig().seed)
    tables.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; tables graphs are small)",
    )
    tables.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached stage artifacts (--no-resume recomputes all)",
    )
    tables.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per flaky job before aborting",
    )
    tables.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="wall-clock budget per job attempt (default: unbounded)",
    )
    tables.add_argument("--cache-dir", default=".repro_cache")
    tables.add_argument(
        "--cache-url",
        default=None,
        metavar="URL",
        help="artifact store backend: dir:PATH, sqlite:PATH, or "
        "http://host:port (a repro serve-cache; combined with "
        "--cache-dir it is tiered behind the local directory)",
    )
    tables.add_argument(
        "--no-cache", action="store_true", help="keep artifacts in memory only"
    )
    tables.add_argument(
        "--out",
        default=None,
        help="run output directory (default: <cache>/runs/<run_id>-tables; "
        "set to keep multiple same-spec runs for repro diff)",
    )

    diff = sub.add_parser(
        "diff",
        help="compare two run manifests: jobs added/removed/recomputed, "
        "changed cells",
    )
    diff.add_argument(
        "run_a", help="baseline run directory or manifest.json path"
    )
    diff.add_argument("run_b", help="comparison run directory or manifest.json")

    sweep = sub.add_parser(
        "sweep",
        help="parallel, resumable, disk-cached fidelity sweep (Fig. 8 protocol)",
    )
    sweep.add_argument(
        "--topologies", nargs="+", default=list(PAPER_TOPOLOGIES)
    )
    sweep.add_argument(
        "--benchmarks", nargs="+", default=list(PAPER_BENCHMARKS)
    )
    sweep.add_argument(
        "--engines", nargs="+", default=list(PAPER_ENGINE_ORDER)
    )
    sweep.add_argument("--seeds", type=int, default=50, help="mapping seeds per cell")
    sweep.add_argument("--base-seed", type=int, default=11)
    sweep.add_argument("--seed", type=int, default=QGDPConfig().seed)
    sweep.add_argument(
        "--detailed", action="store_true", help="run qGDP-DP on top of qGDP-LG"
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=os.cpu_count() or 1,
        help="worker processes (1 = serial, the debugging mode)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="reuse cached stage artifacts instead of recomputing",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per flaky job before the sweep aborts",
    )
    sweep.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="wall-clock budget per job attempt (default: unbounded)",
    )
    sweep.add_argument(
        "--shard",
        type=_parse_shard,
        default=None,
        metavar="i/n",
        help="run the i-th of n deterministic cell slices (1-based)",
    )
    sweep.add_argument("--cache-dir", default=".repro_cache")
    sweep.add_argument(
        "--cache-url",
        default=None,
        metavar="URL",
        help="artifact store backend: dir:PATH, sqlite:PATH, or "
        "http://host:port (a repro serve-cache; combined with "
        "--cache-dir it is tiered behind the local directory)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="keep artifacts in memory only"
    )
    sweep.add_argument("--out", default=None, help="run output directory")
    sweep.add_argument(
        "--table", action="store_true", help="print the Fig. 8 table"
    )
    sweep.add_argument("--quiet", action="store_true", help="suppress per-job progress")
    sweep.add_argument(
        "--fleet",
        default=None,
        metavar="URL",
        help="run the sweep on a worker fleet: enqueue the job DAG on "
        "this repro serve-cache --fleet coordinator, watch until the "
        "workers finish, and merge their completions into one "
        "diff-compatible manifest (see docs/fleet.md)",
    )
    sweep.add_argument(
        "--poll-s",
        type=float,
        default=1.0,
        help="fleet status poll interval (only with --fleet)",
    )

    store_help = (
        "store URL: dir:PATH (one JSON file per artifact, the "
        ".repro_cache layout), sqlite:PATH (one WAL-mode database "
        "file), http://host:port (a running repro serve-cache), or a "
        "bare directory path"
    )

    cache = sub.add_parser(
        "cache",
        help="inspect, expire and sync artifact stores",
        description="Operate on artifact stores by URL.  Stores are "
        "content-addressed: the same job key always names the same "
        "bytes, so push/pull only ever copy artifacts the destination "
        "is missing and a re-sync is a no-op.  See docs/storage.md.",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_sub.add_parser(
        "stats",
        help="artifact count and size, total and per job kind",
        description="Print the store's artifact count and byte size, "
        "total and per job kind (gp, lg, transpile, ...).",
    )
    cache_stats.add_argument("store", help=store_help)

    cache_gc = cache_sub.add_parser(
        "gc",
        help="expire artifacts older than --keep-days",
        description="Delete artifacts whose age exceeds --keep-days.  "
        "Age is the backend's write time (file mtime for dir stores, "
        "the insert timestamp for sqlite stores); artifacts a later "
        "run rewrote count as fresh.  Safe at any time: an expired "
        "artifact is simply recomputed by the next sweep that needs it.",
    )
    cache_gc.add_argument("store", help=store_help)
    cache_gc.add_argument(
        "--keep-days",
        type=float,
        required=True,
        metavar="DAYS",
        help="keep artifacts newer than this many days (fractions ok)",
    )
    cache_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )

    cache_push = cache_sub.add_parser(
        "push",
        help="copy LOCAL's artifacts into REMOTE (by content key)",
        description="Copy every artifact LOCAL has and REMOTE lacks "
        "into REMOTE.  Idempotent: artifacts REMOTE already holds are "
        "skipped, never rewritten (same key = same bytes).  Typical "
        "use: seed a shared cache server or a sqlite snapshot from a "
        "machine's warm .repro_cache.",
    )
    cache_pull = cache_sub.add_parser(
        "pull",
        help="copy REMOTE's artifacts into LOCAL (by content key)",
        description="Copy every artifact REMOTE has and LOCAL lacks "
        "into LOCAL — the mirror of push.  Typical use: pre-warm a "
        "fresh machine from the fleet cache before an offline run.",
    )
    for sync_parser in (cache_push, cache_pull):
        sync_parser.add_argument("local", metavar="LOCAL", help=store_help)
        sync_parser.add_argument("remote", metavar="REMOTE", help=store_help)

    serve = sub.add_parser(
        "serve-cache",
        help="serve an artifact store to other machines over HTTP",
        description="Serve a local artifact store (dir: or sqlite:) "
        "over the tiny JSON protocol RemoteHTTPBackend speaks, so "
        "sweep machines pointed at it with --cache-url http://HOST:PORT "
        "share one warm cache.  The server is stdlib-only and "
        "unauthenticated: bind it to a trusted network.  See "
        "docs/storage.md for the two-machine walkthrough.",
    )
    serve.add_argument(
        "--store",
        default="dir:.repro_cache",
        help=f"{store_help} (default: dir:.repro_cache)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; 0.0.0.0 exposes to the "
        "network — do that only on a trusted one)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (default 8765; 0 picks an ephemeral port, "
        "printed on startup)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )
    serve.add_argument(
        "--fleet",
        action="store_true",
        help="attach a fleet coordinator: enables the /v1/fleet "
        "work-stealing endpoints repro worker and repro sweep --fleet "
        "speak (see docs/fleet.md)",
    )
    serve.add_argument(
        "--lease-ttl-s",
        type=float,
        default=60.0,
        help="seconds a worker may go without a heartbeat before its "
        "leased jobs are re-queued (default 60)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="lease grants per job before it is failed permanently "
        "(default 3)",
    )
    serve.add_argument(
        "--max-body-mb",
        type=int,
        default=64,
        help="largest accepted request body in MiB; bigger uploads get "
        "HTTP 413 (default 64)",
    )
    serve.add_argument(
        "--socket-timeout-s",
        type=float,
        default=60.0,
        help="per-connection socket timeout; a stalled client is "
        "disconnected instead of pinning a handler thread (default 60)",
    )

    worker = sub.add_parser(
        "worker",
        help="pull and execute leased fleet jobs from a coordinator",
        description="Run the pull-execute-heartbeat loop against a "
        "repro serve-cache --fleet coordinator: lease ready jobs, "
        "execute them through the standard stage runners, write "
        "artifacts to the shared store, report completions.  SIGTERM "
        "drains gracefully (the in-flight job finishes, unstarted "
        "leases are handed back); SIGKILL just costs one lease TTL — "
        "the coordinator re-queues the worker's jobs.  See "
        "docs/fleet.md.",
    )
    worker.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="the repro serve-cache --fleet URL to pull work from",
    )
    worker.add_argument(
        "--cache-url",
        default=None,
        metavar="URL",
        help="artifact store to read deps from / write results to "
        "(default: the coordinator's own artifact endpoints)",
    )
    worker.add_argument(
        "--cache-dir",
        default=None,
        help="tier the store behind this local directory (faster "
        "re-reads; degraded writes land here during outages)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker name (default: host-pid-random)",
    )
    worker.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="jobs leased per round (default 1)",
    )
    worker.add_argument(
        "--poll-s",
        type=float,
        default=1.0,
        help="idle poll interval when no job is ready (default 1s)",
    )
    worker.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="wall-clock budget per job attempt (default: unbounded)",
    )
    worker.add_argument(
        "--exit-when-idle",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="exit once the coordinator reports no outstanding work "
        "(--no-exit-when-idle keeps serving until SIGTERM)",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress"
    )

    serve_jobs_parser = sub.add_parser(
        "serve",
        help="multi-tenant job service: accept, schedule and run sweeps",
        description="Serve placement-as-a-service: authenticated tenants "
        "submit sweep specs over HTTP (POST /v1/run), a fair scheduler "
        "multiplexes their runs over one shared worker pool and artifact "
        "store (overlapping jobs compute once fleet-wide), and results "
        "stream back incrementally.  Every endpoint requires a bearer "
        "token.  See docs/service.md.",
    )
    serve_jobs_parser.add_argument(
        "--store",
        default="dir:.repro_cache",
        help=f"{store_help} (default: dir:.repro_cache)",
    )
    serve_jobs_parser.add_argument(
        "--token",
        action="append",
        default=None,
        metavar="SECRET",
        help="accepted bearer token (repeatable: one per tenant; "
        "REPRO_SERVICE_TOKEN adds one more)",
    )
    serve_jobs_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_jobs_parser.add_argument(
        "--port",
        type=int,
        default=8766,
        help="bind port (default 8766; 0 picks an ephemeral port, "
        "printed on startup)",
    )
    serve_jobs_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="executor threads shared by all tenants (default 2)",
    )
    serve_jobs_parser.add_argument(
        "--runs-root",
        default=None,
        metavar="DIR",
        help="persist each completed run's results.jsonl + manifest.json "
        "under DIR/<run_id>/ (default: not persisted)",
    )
    serve_jobs_parser.add_argument(
        "--lease-ttl-s",
        type=float,
        default=60.0,
        help="internal lease TTL for the worker pool (default 60)",
    )
    serve_jobs_parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per job before it fails permanently (default 3)",
    )
    serve_jobs_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )

    service_url_help = "the repro serve URL (e.g. http://job-host:8766)"
    token_help = (
        "bearer token (default: the REPRO_SERVICE_TOKEN environment "
        "variable)"
    )

    submit = sub.add_parser(
        "submit",
        help="submit a sweep spec to a repro serve instance",
        description="POST a SweepSpec JSON document (or the single-flow "
        "shorthand {\"topology\", \"benchmark\", \"engine\"}) to a job "
        "service and print the run receipt.  With --wait, poll until "
        "the run reaches a terminal state.",
    )
    submit.add_argument("--service", required=True, help=service_url_help)
    submit.add_argument("--token", default=None, help=token_help)
    submit.add_argument(
        "--spec",
        required=True,
        metavar="PATH",
        help="path of the spec JSON document ('-' reads stdin)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the run finishes; exit 0 only on state=done",
    )
    submit.add_argument(
        "--poll-s",
        type=float,
        default=2.0,
        help="status poll interval with --wait (default 2s)",
    )

    status = sub.add_parser(
        "status",
        help="print one service run's progress document",
    )
    status.add_argument("run_id", help="the run id from repro submit")
    status.add_argument("--service", required=True, help=service_url_help)
    status.add_argument("--token", default=None, help=token_help)

    results = sub.add_parser(
        "results",
        help="print a service run's result rows as JSONL",
        description="Print result rows (stdout, one JSON object per "
        "line, plan order — the same stream results.jsonl holds) and a "
        "state/cursor footer on stderr.  --after resumes an "
        "incremental read from a previous cursor.",
    )
    results.add_argument("run_id", help="the run id from repro submit")
    results.add_argument("--service", required=True, help=service_url_help)
    results.add_argument("--token", default=None, help=token_help)
    results.add_argument(
        "--after",
        type=int,
        default=0,
        help="skip rows before this cursor (default 0; the previous "
        "call's 'next' value resumes the stream)",
    )

    cancel = sub.add_parser(
        "cancel",
        help="cancel a service run's queued jobs",
        description="Withdraw the run's queued jobs.  Jobs shared with "
        "another tenant's live run keep running; jobs already leased "
        "finish and land in the shared cache.",
    )
    cancel.add_argument("run_id", help="the run id from repro submit")
    cancel.add_argument("--service", required=True, help=service_url_help)
    cancel.add_argument("--token", default=None, help=token_help)

    lint = sub.add_parser(
        "lint",
        help="static invariant checks: determinism, key purity, locks",
        description="Run the AST-based invariant checker over the "
        "repository (see docs/lint.md): RPR001 nondeterminism on the "
        "content-key path, RPR002 content-key purity, RPR003 lock "
        "discipline, RPR004 process-boundary safety, RPR005 flat-array "
        "probes.  Suppress a finding in place with "
        "`# repro: lint-ignore[RPR001]`; unused suppressions are "
        "reported as RPR000.  Exit code 0 = clean, 1 = findings, "
        "2 = usage error.",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: "
        f"{' '.join(LINT_DEFAULT_PATHS)} under --root; tests/ is "
        "excluded because tests/lint/fixtures is intentionally bad)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable; default: all rules)",
    )
    lint.add_argument(
        "--format",
        default="text",
        choices=LINT_FORMATS,
        help="output format: text (default), json, or github "
        "(workflow annotations for CI)",
    )
    lint.add_argument(
        "--root",
        default=".",
        help="repository root for default paths and display paths "
        "(default: current directory)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="inspect a fleet coordinator's progress and workers",
        description="Query a repro serve-cache --fleet coordinator's "
        "/v1/fleet/status: per-state job counts, the workers that "
        "reported in, and the tail of the failure ledger (failed "
        "attempts and expired leases).",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status", help="print job counts, workers and recent failures"
    )
    fleet_status.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="the repro serve-cache --fleet URL to query",
    )
    fleet_status.add_argument(
        "--failures",
        type=int,
        default=5,
        help="how many trailing failure-ledger entries to print",
    )
    return parser


_HANDLERS = {
    "topologies": _cmd_topologies,
    "benchmarks": _cmd_benchmarks,
    "flow": _cmd_flow,
    "fidelity": _cmd_fidelity,
    "tables": _cmd_tables,
    "sweep": _cmd_sweep,
    "diff": _cmd_diff,
    "cache": _cmd_cache,
    "serve-cache": _cmd_serve_cache,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "results": _cmd_results,
    "cancel": _cmd_cancel,
    "worker": _cmd_worker,
    "fleet": _cmd_fleet,
    "lint": _cmd_lint,
}


def main(argv: list = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)
