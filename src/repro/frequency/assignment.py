"""Frequency allocation for fixed-frequency transmons and their resonators.

IBM-style fixed-frequency devices use a small set of qubit frequency groups
laid out so that coupled qubits never share a group (a graph-coloring
problem on the coupling graph).  Readout/coupler resonators sit several GHz
above the qubits and are likewise detuned from one another locally — we
color the *line graph* of the coupling graph so resonators sharing a qubit
get different bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.netlist.netlist import QuantumNetlist
from repro.topologies.base import Topology

#: Default 5-group qubit frequency plan, GHz (IBM-like 5.0-5.3 GHz window).
DEFAULT_QUBIT_BANDS = (5.00, 5.07, 5.14, 5.21, 5.28)

#: Default resonator bands, GHz (coupler bus band ~7 GHz).  Resonators are
#: detuned against their *distance-2* line-graph neighbourhood (see
#: :func:`assign_frequencies`); five bands cannot cover that neighbourhood
#: on dense devices, so some planned collisions remain — as on real chips.
DEFAULT_RESONATOR_BANDS = (6.80, 6.90, 7.00, 7.10, 7.20)

#: Fabrication frequency scatter (1σ, GHz).  Fixed-frequency transmons
#: cannot be retuned post-fab; Josephson-junction spread moves qubit
#: frequencies by tens of MHz and resonator geometry tolerances by ~10 MHz
#: (the frequency-collision problem, Brink et al.).
DEFAULT_QUBIT_SCATTER = 0.015
DEFAULT_RESONATOR_SCATTER = 0.010


@dataclass
class FrequencyPlan:
    """The outcome of frequency allocation.

    ``qubit_freq`` maps qubit index → GHz; ``resonator_freq`` maps the
    canonical resonator key → GHz.
    """

    qubit_freq: dict = field(default_factory=dict)
    resonator_freq: dict = field(default_factory=dict)

    def collisions(self, topology: Topology) -> list:
        """Coupled qubit pairs that ended up in the same frequency group.

        A correct plan returns an empty list whenever the coupling graph is
        colorable with the available bands.
        """
        return [
            (qi, qj)
            for qi, qj in topology.edges
            if self.qubit_freq[qi] == self.qubit_freq[qj]
        ]


def _greedy_coloring(graph: nx.Graph, num_colors: int) -> dict:
    """Greedy largest-degree-first coloring, wrapping when colors run out.

    Wrapping keeps the allocation total even on graphs whose chromatic
    number exceeds the band count; the wrapped vertices are exactly the
    frequency collisions a real device would have to detune around.
    """
    coloring = nx.greedy_color(graph, strategy="largest_first")
    return {node: color % num_colors for node, color in coloring.items()}


def _two_tier_coloring(
    hard: nx.Graph, soft: nx.Graph, num_colors: int
) -> dict:
    """Conflict-minimizing coloring with hard and soft constraint graphs.

    ``hard`` edges (resonators sharing a qubit) must be detuned at all
    cost; ``soft`` edges (distance-2 neighbourhood) should be when bands
    suffice.  Each node greedily takes the band minimizing
    ``1000 * hard_conflicts + soft_conflicts`` — a real frequency planner
    never sacrifices a direct-neighbour detuning to fix a far one.
    """
    degree = {
        node: hard.degree[node] + soft.degree[node] for node in hard.nodes
    }
    order = sorted(hard.nodes, key=lambda node: (-degree[node], node))
    colors = {}
    for node in order:
        cost = [0] * num_colors
        for nbr in hard.neighbors(node):
            if nbr in colors:
                cost[colors[nbr]] += 1000
        for nbr in soft.neighbors(node):
            if nbr in colors:
                cost[colors[nbr]] += 1
        best = min(range(num_colors), key=lambda c: (cost[c], c))
        colors[node] = best
    return colors


def assign_frequencies(
    netlist: QuantumNetlist,
    topology: Topology,
    qubit_bands: tuple = DEFAULT_QUBIT_BANDS,
    resonator_bands: tuple = DEFAULT_RESONATOR_BANDS,
    qubit_scatter: float = DEFAULT_QUBIT_SCATTER,
    resonator_scatter: float = DEFAULT_RESONATOR_SCATTER,
    seed: int = 0,
) -> FrequencyPlan:
    """Allocate frequencies and write them onto the netlist components.

    Qubits are colored on the coupling graph; resonators on the *square*
    of its line graph — frequency planners detune a resonator against
    everything within two coupler hops, because that is the neighbourhood
    a well-placed (unified, in-channel) resonator can physically touch.
    The assigned frequencies are stored on
    :class:`~repro.netlist.components.Qubit`,
    :class:`~repro.netlist.components.Resonator` and every wire block, and
    returned as a :class:`FrequencyPlan`.
    """
    if not qubit_bands or not resonator_bands:
        raise ValueError("frequency band lists must be non-empty")
    if qubit_scatter < 0 or resonator_scatter < 0:
        raise ValueError("frequency scatter must be non-negative")
    plan = FrequencyPlan()
    rng = np.random.default_rng(seed)

    qubit_colors = _greedy_coloring(topology.graph, len(qubit_bands))
    for qubit in netlist.qubits:
        freq = qubit_bands[qubit_colors[qubit.index]]
        freq += float(rng.normal(0.0, qubit_scatter)) if qubit_scatter else 0.0
        qubit.frequency = freq
        plan.qubit_freq[qubit.index] = freq

    line_graph = nx.line_graph(topology.graph)
    # line_graph nodes are edge tuples in arbitrary orientation; canonicalize.
    canon = nx.Graph()
    canon.add_nodes_from((min(u), max(u)) if isinstance(u, tuple) else u
                         for u in line_graph.nodes)
    for u, v in line_graph.edges:
        cu = (min(u), max(u))
        cv = (min(v), max(v))
        canon.add_edge(cu, cv)
    if canon.number_of_nodes() > 0 and canon.number_of_edges() > 0:
        squared = nx.power(canon, 2)
        soft = nx.Graph()
        soft.add_nodes_from(canon.nodes)
        soft.add_edges_from(
            (u, v) for u, v in squared.edges if not canon.has_edge(u, v)
        )
    else:
        soft = nx.Graph()
        soft.add_nodes_from(canon.nodes)
    res_colors = _two_tier_coloring(canon, soft, len(resonator_bands))
    for resonator in netlist.resonators:
        freq = resonator_bands[res_colors[resonator.key]]
        freq += (
            float(rng.normal(0.0, resonator_scatter)) if resonator_scatter else 0.0
        )
        resonator.frequency = freq
        plan.resonator_freq[resonator.key] = freq
        for block in resonator.blocks:
            block.frequency = freq
    return plan
