"""The frequency-proximity weight τ(ωi, ωj, Δc) of Eq. 4.

Two components crosstalk strongly only when their frequencies are nearly
resonant.  τ maps the detuning |ωi − ωj| to a weight in [0, 1]: 1 at zero
detuning, falling linearly to 0 at the threshold Δc.  The linear ramp is
the simplest shape consistent with the paper's description ("a function
assessing frequency proximity according to ... predefined threshold Δc");
the metrics only require monotonicity in the detuning.
"""

from __future__ import annotations

#: Default resonance threshold Δc in GHz: components detuned by more than
#: this are considered safely off-resonant.
DEFAULT_DELTA_C = 0.04


def tau(freq_i: float, freq_j: float, delta_c: float = DEFAULT_DELTA_C) -> float:
    """Frequency-proximity weight in [0, 1].

    ``tau == 1`` at exact resonance, 0 once the detuning reaches
    ``delta_c``.  ``delta_c`` must be positive.
    """
    if delta_c <= 0:
        raise ValueError(f"delta_c must be positive, got {delta_c}")
    detuning = abs(freq_i - freq_j)
    if detuning >= delta_c:
        return 0.0
    return 1.0 - detuning / delta_c
