"""Frequency-hotspot metrics: Ph (Eq. 4), per-resonator He, and HQ.

A *hotspot* is spatial proximity between exposed, nearly-resonant
components.  Two component classes are exposed:

* **qubit pads** — qubit pairs closer than the interaction reach
  contribute ``adjacency(p_i, p_j) * decay(gap) * τ`` (the Eq. 4 terms);
* **resonator connection traces** — a resonator's wire blocks reserve
  *padded* area (Eq. 6 folds the padding into the block count), so block
  regions sitting side by side are already isolated; what is exposed is
  the connection trace joining qubit_i → clusters → qubit_j.  A unified,
  in-channel resonator has a near-zero-length exposed trace; a scattered
  one chords across foreign reservations.  Trace points within reach of a
  nearly-resonant *foreign* block contribute
  ``sample_length * decay(distance) * τ``.

``Ph`` is the contribution sum normalized by total component area, as a
percentage (Fig. 9 / Table III).  ``He`` is a resonator's share; ``HQ``
counts qubits in any qubit-qubit hotspot plus endpoints of resonators
with ``He > 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.frequency.proximity import DEFAULT_DELTA_C, tau
from repro.geometry import adjacency_length, gap_between
from repro.netlist.netlist import QuantumNetlist
from repro.netlist.traces import resonator_trace

#: Default interaction reach in layout units (site pitches).
DEFAULT_REACH = 2.0

#: Sampling step along trace segments, in units of lb.
_TRACE_STEP = 0.5


@dataclass(frozen=True)
class HotspotPair:
    """One interacting pair and its hotspot contribution.

    ``id_a`` / ``id_b`` are ``("q", index)`` for qubits or ``("e", key)``
    for resonators (trace-level aggregation).
    """

    id_a: tuple
    id_b: tuple
    adjacency: float
    gap: float
    tau_weight: float
    contribution: float


@dataclass
class HotspotReport:
    """Aggregate hotspot metrics for one layout."""

    pairs: list = field(default_factory=list)
    ph_percent: float = 0.0
    hq: int = 0
    per_resonator: dict = field(default_factory=dict)

    @property
    def num_pairs(self) -> int:
        """Number of interacting (nonzero-contribution) pairs."""
        return len(self.pairs)


def qubit_hotspot_pairs(
    netlist: QuantumNetlist, reach: float, delta_c: float
) -> list:
    """Qubit-qubit hotspot pairs (rect adjacency within reach).

    Depends only on qubit rectangles and frequencies, so callers whose
    qubits are frozen (the detailed placer) may compute this once and
    pass it back through ``hotspot_pairs(..., qubit_pairs=...)``.
    """
    pairs = []
    qubits = netlist.qubits
    for a_pos, qa in enumerate(qubits):
        for qb in qubits[a_pos + 1 :]:
            gap = gap_between(qa.rect, qb.rect)
            if gap > reach:
                continue
            t = tau(qa.frequency, qb.frequency, delta_c)
            if t <= 0.0:
                continue
            adjacency = adjacency_length(qa.rect, qb.rect, reach)
            if adjacency <= 0.0:
                continue
            decay = max(0.0, 1.0 - gap / reach)
            contribution = adjacency * decay * t
            if contribution > 0.0:
                pairs.append(
                    HotspotPair(
                        ("q", qa.index),
                        ("q", qb.index),
                        adjacency,
                        gap,
                        t,
                        contribution,
                    )
                )
    return pairs


def _block_index(netlist: QuantumNetlist, lb: float) -> dict:
    """site -> (resonator_key, block) for every wire block."""
    index = {}
    for resonator in netlist.resonators:
        for block in resonator.blocks:
            col = int(block.x // lb)
            row = int(block.y // lb)
            index[(col, row)] = (resonator.key, block)
    return index


def _trace_pairs(
    netlist: QuantumNetlist,
    reach: float,
    delta_c: float,
    lb: float,
    traces: dict = None,
) -> list:
    """Trace-exposure hotspot pairs, aggregated per resonator pair.

    ``traces`` optionally maps resonator keys to precomputed MST traces,
    sparing the per-call trace rebuild on repeated evaluations.
    """
    block_at = _block_index(netlist, lb)
    radius = int(math.ceil(reach / lb))
    contributions = {}
    min_gap = {}

    for resonator in netlist.resonators:
        if traces is not None and resonator.key in traces:
            trace = traces[resonator.key]
        else:
            trace = resonator_trace(netlist, resonator, lb)
        for (x1, y1), (x2, y2) in trace:
            length = math.hypot(x2 - x1, y2 - y1)
            steps = max(1, int(length / (_TRACE_STEP * lb)))
            sample_len = length / steps
            for k in range(steps + 1):
                t_frac = k / steps
                x = x1 + (x2 - x1) * t_frac
                y = y1 + (y2 - y1) * t_frac
                col = int(x // lb)
                row = int(y // lb)
                seen_here = set()
                for dc in range(-radius, radius + 1):
                    for dr in range(-radius, radius + 1):
                        entry = block_at.get((col + dc, row + dr))
                        if entry is None:
                            continue
                        other_key, block = entry
                        if other_key == resonator.key:
                            continue
                        if other_key in seen_here:
                            continue
                        dist = math.hypot(block.x - x, block.y - y)
                        if dist > reach:
                            continue
                        t = tau(
                            resonator.frequency, block.frequency, delta_c
                        )
                        if t <= 0.0:
                            continue
                        seen_here.add(other_key)
                        decay = max(0.0, 1.0 - dist / reach)
                        pair = (
                            min(resonator.key, other_key),
                            max(resonator.key, other_key),
                        )
                        contributions[pair] = (
                            contributions.get(pair, 0.0)
                            + sample_len * decay * t
                        )
                        min_gap[pair] = min(min_gap.get(pair, dist), dist)

    pairs = []
    for (key_a, key_b), contribution in sorted(contributions.items()):
        if contribution <= 0.0:
            continue
        fa = netlist.resonator(*key_a).frequency
        fb = netlist.resonator(*key_b).frequency
        pairs.append(
            HotspotPair(
                ("e", key_a),
                ("e", key_b),
                contribution,
                min_gap[(key_a, key_b)],
                tau(fa, fb, delta_c),
                contribution,
            )
        )
    return pairs


def hotspot_pairs(
    netlist: QuantumNetlist,
    reach: float = DEFAULT_REACH,
    delta_c: float = DEFAULT_DELTA_C,
    lb: float = 1.0,
    traces: dict = None,
    qubit_pairs: list = None,
) -> list:
    """All hotspot pairs: qubit-qubit plus trace-exposure resonator pairs."""
    if qubit_pairs is None:
        qubit_pairs = qubit_hotspot_pairs(netlist, reach, delta_c)
    pairs = list(qubit_pairs)
    pairs.extend(_trace_pairs(netlist, reach, delta_c, lb, traces))
    return pairs


def hotspot_proportion(
    netlist: QuantumNetlist,
    reach: float = DEFAULT_REACH,
    delta_c: float = DEFAULT_DELTA_C,
    pairs: list = None,
    lb: float = 1.0,
) -> float:
    """``Ph`` as a percentage of total component area (Eq. 4)."""
    if pairs is None:
        pairs = hotspot_pairs(netlist, reach, delta_c, lb)
    total_area = sum(q.rect.area for q in netlist.qubits) + sum(
        b.rect.area for b in netlist.wire_blocks
    )
    if total_area <= 0:
        return 0.0
    return 100.0 * sum(p.contribution for p in pairs) / total_area


def resonator_hotspots(
    netlist: QuantumNetlist,
    reach: float = DEFAULT_REACH,
    delta_c: float = DEFAULT_DELTA_C,
    pairs: list = None,
    lb: float = 1.0,
    traces: dict = None,
    qubit_pairs: list = None,
) -> dict:
    """Per-resonator hotspot score ``He``."""
    if pairs is None:
        pairs = hotspot_pairs(netlist, reach, delta_c, lb, traces, qubit_pairs)
    scores = {r.key: 0.0 for r in netlist.resonators}
    for pair in pairs:
        for cid in (pair.id_a, pair.id_b):
            if cid[0] == "e":
                scores[cid[1]] += pair.contribution
    return scores


def hotspot_report(
    netlist: QuantumNetlist,
    reach: float = DEFAULT_REACH,
    delta_c: float = DEFAULT_DELTA_C,
    lb: float = 1.0,
) -> HotspotReport:
    """Full hotspot analysis: pairs, Ph, HQ and per-resonator He."""
    pairs = hotspot_pairs(netlist, reach, delta_c, lb)
    per_res = resonator_hotspots(netlist, reach, delta_c, pairs, lb)
    affected = set()
    for pair in pairs:
        for cid in (pair.id_a, pair.id_b):
            if cid[0] == "q":
                affected.add(cid[1])
    for key, score in per_res.items():
        if score > 0.0:
            affected.update(key)
    return HotspotReport(
        pairs=pairs,
        ph_percent=hotspot_proportion(netlist, reach, delta_c, pairs, lb),
        hq=len(affected),
        per_resonator=per_res,
    )
