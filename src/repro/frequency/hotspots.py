"""Frequency-hotspot metrics: Ph (Eq. 4), per-resonator He, and HQ.

A *hotspot* is spatial proximity between exposed, nearly-resonant
components.  Two component classes are exposed:

* **qubit pads** — qubit pairs closer than the interaction reach
  contribute ``adjacency(p_i, p_j) * decay(gap) * τ`` (the Eq. 4 terms);
* **resonator connection traces** — a resonator's wire blocks reserve
  *padded* area (Eq. 6 folds the padding into the block count), so block
  regions sitting side by side are already isolated; what is exposed is
  the connection trace joining qubit_i → clusters → qubit_j.  A unified,
  in-channel resonator has a near-zero-length exposed trace; a scattered
  one chords across foreign reservations.  Trace points within reach of a
  nearly-resonant *foreign* block contribute
  ``sample_length * decay(distance) * τ``.

``Ph`` is the contribution sum normalized by total component area, as a
percentage (Fig. 9 / Table III).  ``He`` is a resonator's share; ``HQ``
counts qubits in any qubit-qubit hotspot plus endpoints of resonators
with ``He > 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.frequency.proximity import DEFAULT_DELTA_C, tau
from repro.geometry import adjacency_length, gap_between
from repro.netlist.clusters import block_cluster_map
from repro.netlist.netlist import QuantumNetlist
from repro.netlist.traces import resonator_trace

#: Default interaction reach in layout units (site pitches).
DEFAULT_REACH = 2.0

#: Sampling step along trace segments, in units of lb.
_TRACE_STEP = 0.5


@dataclass(frozen=True)
class HotspotPair:
    """One interacting pair and its hotspot contribution.

    ``id_a`` / ``id_b`` are ``("q", index)`` for qubits or ``("e", key)``
    for resonators (trace-level aggregation).
    """

    id_a: tuple
    id_b: tuple
    adjacency: float
    gap: float
    tau_weight: float
    contribution: float


@dataclass
class HotspotReport:
    """Aggregate hotspot metrics for one layout."""

    pairs: list = field(default_factory=list)
    ph_percent: float = 0.0
    hq: int = 0
    per_resonator: dict = field(default_factory=dict)

    @property
    def num_pairs(self) -> int:
        """Number of interacting (nonzero-contribution) pairs."""
        return len(self.pairs)


def qubit_hotspot_pairs(
    netlist: QuantumNetlist, reach: float, delta_c: float
) -> list:
    """Qubit-qubit hotspot pairs (rect adjacency within reach).

    Depends only on qubit rectangles and frequencies, so callers whose
    qubits are frozen (the detailed placer) may compute this once and
    pass it back through ``hotspot_pairs(..., qubit_pairs=...)``.
    """
    pairs = []
    qubits = netlist.qubits
    for a_pos, qa in enumerate(qubits):
        for qb in qubits[a_pos + 1 :]:
            gap = gap_between(qa.rect, qb.rect)
            if gap > reach:
                continue
            t = tau(qa.frequency, qb.frequency, delta_c)
            if t <= 0.0:
                continue
            adjacency = adjacency_length(qa.rect, qb.rect, reach)
            if adjacency <= 0.0:
                continue
            decay = max(0.0, 1.0 - gap / reach)
            contribution = adjacency * decay * t
            if contribution > 0.0:
                pairs.append(
                    HotspotPair(
                        ("q", qa.index),
                        ("q", qb.index),
                        adjacency,
                        gap,
                        t,
                        contribution,
                    )
                )
    return pairs


class _BlockRaster:
    """Dense per-site arrays of wire-block data for the Eq. 4 walk.

    Mirrors the historical ``{site: (resonator_key, block)}`` dict —
    including its last-write-wins overwrite semantics when two blocks
    share a site (possible on unlegalized layouts) — but as flat NumPy
    arrays over the blocks' bounding box so a whole trace's neighborhood
    scan becomes one vectorized gather instead of ``samples × (2r+1)²``
    dict probes.
    """

    def __init__(self, netlist: QuantumNetlist, lb: float) -> None:
        self.keys = [r.key for r in netlist.resonators]
        self.key_index = {key: i for i, key in enumerate(self.keys)}
        sites = []  # (col, row, key_idx, x, y, freq) in dict-write order
        for resonator in netlist.resonators:
            idx = self.key_index[resonator.key]
            for block in resonator.blocks:
                col = int(block.x // lb)
                row = int(block.y // lb)
                sites.append((col, row, idx, block.x, block.y, block.frequency))
        self.empty = not sites
        if self.empty:
            return
        self.col_lo = min(s[0] for s in sites)
        self.row_lo = min(s[1] for s in sites)
        self.cols = max(s[0] for s in sites) - self.col_lo + 1
        self.rows = max(s[1] for s in sites) - self.row_lo + 1
        n = self.cols * self.rows
        self.bkey = np.full(n, -1, dtype=np.int64)
        self.bx = np.zeros(n, dtype=np.float64)
        self.by = np.zeros(n, dtype=np.float64)
        self.bfreq = np.zeros(n, dtype=np.float64)
        for col, row, idx, x, y, freq in sites:
            flat = (col - self.col_lo) * self.rows + (row - self.row_lo)
            self.bkey[flat] = idx
            self.bx[flat] = x
            self.by[flat] = y
            self.bfreq[flat] = freq


def _expand_samples(segments: list) -> tuple:
    """``(x, y, sample_len, res_idx)`` sample arrays over all segments.

    ``segments`` rows are ``(x1, y1, x2, y2, length, steps, res_idx)`` in
    walk order; each expands to ``steps + 1`` samples.  Sample coordinates
    use exactly the historical per-point arithmetic
    (``x1 + (x2 - x1) * (k / steps)``), elementwise, so they are
    bit-identical to the scalar walk.
    """
    seg = np.array([row[:6] for row in segments], dtype=np.float64)
    res = np.array([row[6] for row in segments], dtype=np.int64)
    steps = seg[:, 5].astype(np.int64)
    counts = steps + 1
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    seg_id = np.repeat(np.arange(len(counts)), counts)
    k = np.arange(int(counts.sum()), dtype=np.int64) - starts[seg_id]
    t_frac = k / steps[seg_id]
    x = seg[seg_id, 0] + (seg[seg_id, 2] - seg[seg_id, 0]) * t_frac
    y = seg[seg_id, 1] + (seg[seg_id, 3] - seg[seg_id, 1]) * t_frac
    sample_len = (seg[:, 4] / steps)[seg_id]
    return (x, y, sample_len, res[seg_id])


def _trace_pairs(
    netlist: QuantumNetlist,
    reach: float,
    delta_c: float,
    lb: float,
    traces: dict = None,
) -> list:
    """Trace-exposure hotspot pairs, aggregated per resonator pair.

    ``traces`` optionally maps resonator keys to precomputed MST traces,
    sparing the per-call trace rebuild on repeated evaluations.

    The candidate scan (every sample point × its ``(2r+1)²`` neighbor
    sites) is vectorized over the block raster; the few candidates that
    survive the conservative vector filters (block present, foreign,
    nearly resonant, within ~reach) flow through a scalar tail that
    replays the historical per-sample logic — same scan order, same
    ``math.hypot`` distances, same accumulation order — so the result is
    bit-identical to the pre-vectorization walk (pinned by
    ``tests/frequency/test_hotspots_parity.py``).
    """
    raster = _BlockRaster(netlist, lb)
    contributions = {}
    min_gap = {}
    if raster.empty:
        return []
    radius = int(math.ceil(reach / lb))

    # Batch every resonator's trace samples into one array pass (walk
    # order: resonator, then segment, then sample).
    untraced = [
        r
        for r in netlist.resonators
        if traces is None or r.key not in traces
    ]
    clusters = block_cluster_map(untraced, lb) if untraced else {}
    segments = []
    for resonator in netlist.resonators:
        if traces is not None and resonator.key in traces:
            trace = traces[resonator.key]
        else:
            trace = resonator_trace(
                netlist, resonator, lb, clusters=clusters[resonator.key]
            )
        idx = raster.key_index[resonator.key]
        for (x1, y1), (x2, y2) in trace:
            length = math.hypot(x2 - x1, y2 - y1)
            steps = max(1, int(length / (_TRACE_STEP * lb)))
            segments.append((x1, y1, x2, y2, length, steps, idx))
    if not segments:
        return []
    x, y, sample_len, res_idx = _expand_samples(segments)
    res_freq = np.array(
        [r.frequency for r in netlist.resonators], dtype=np.float64
    )

    # Neighborhood offsets in the historical scan order (dc outer, dr inner).
    span = np.arange(-radius, radius + 1)
    off_c = np.repeat(span, len(span))
    off_r = np.tile(span, len(span))
    col = np.floor_divide(x, lb).astype(np.int64) - raster.col_lo
    row = np.floor_divide(y, lb).astype(np.int64) - raster.row_lo

    cand_col = col[:, None] + off_c[None, :]
    cand_row = row[:, None] + off_r[None, :]
    inside = (
        (cand_col >= 0)
        & (cand_col < raster.cols)
        & (cand_row >= 0)
        & (cand_row < raster.rows)
    )
    flat = np.where(inside, cand_col * raster.rows + cand_row, 0)
    bkey = np.where(inside, raster.bkey[flat], -1)
    valid = (bkey >= 0) & (bkey != res_idx[:, None])
    if delta_c > 0:
        detuning = np.abs(res_freq[res_idx][:, None] - raster.bfreq[flat])
        valid &= detuning < delta_c
    # Distances are re-checked with math.hypot in the scalar tail; the
    # vectorized cut only has to be conservative (never drop a true hit).
    if valid.any():
        dist_sq = (raster.bx[flat] - x[:, None]) ** 2 + (
            raster.by[flat] - y[:, None]
        ) ** 2
        valid &= dist_sq <= (reach * (1.0 + 1e-9) + 1e-9) ** 2

    # Scalar tail over survivors, in (sample, scan-offset) order —
    # np.argwhere yields row-major indices, matching the historical
    # nested loops exactly.
    last_sample = -1
    seen_here = set()
    for s, w in np.argwhere(valid):
        if s != last_sample:
            last_sample = s
            seen_here = set()
        other_key = raster.keys[bkey[s, w]]
        if other_key in seen_here:
            continue
        f = flat[s, w]
        own_key = raster.keys[res_idx[s]]
        own_freq = float(res_freq[res_idx[s]])
        d = math.hypot(
            float(raster.bx[f]) - float(x[s]), float(raster.by[f]) - float(y[s])
        )
        if d > reach:
            continue
        t = tau(own_freq, float(raster.bfreq[f]), delta_c)
        if t <= 0.0:
            continue
        seen_here.add(other_key)
        decay = max(0.0, 1.0 - d / reach)
        pair = (min(own_key, other_key), max(own_key, other_key))
        contributions[pair] = (
            contributions.get(pair, 0.0) + float(sample_len[s]) * decay * t
        )
        min_gap[pair] = min(min_gap.get(pair, d), d)

    pairs = []
    for (key_a, key_b), contribution in sorted(contributions.items()):
        if contribution <= 0.0:
            continue
        fa = netlist.resonator(*key_a).frequency
        fb = netlist.resonator(*key_b).frequency
        pairs.append(
            HotspotPair(
                ("e", key_a),
                ("e", key_b),
                contribution,
                min_gap[(key_a, key_b)],
                tau(fa, fb, delta_c),
                contribution,
            )
        )
    return pairs


def hotspot_pairs(
    netlist: QuantumNetlist,
    reach: float = DEFAULT_REACH,
    delta_c: float = DEFAULT_DELTA_C,
    lb: float = 1.0,
    traces: dict = None,
    qubit_pairs: list = None,
) -> list:
    """All hotspot pairs: qubit-qubit plus trace-exposure resonator pairs."""
    if qubit_pairs is None:
        qubit_pairs = qubit_hotspot_pairs(netlist, reach, delta_c)
    pairs = list(qubit_pairs)
    pairs.extend(_trace_pairs(netlist, reach, delta_c, lb, traces))
    return pairs


def hotspot_proportion(
    netlist: QuantumNetlist,
    reach: float = DEFAULT_REACH,
    delta_c: float = DEFAULT_DELTA_C,
    pairs: list = None,
    lb: float = 1.0,
) -> float:
    """``Ph`` as a percentage of total component area (Eq. 4)."""
    if pairs is None:
        pairs = hotspot_pairs(netlist, reach, delta_c, lb)
    total_area = sum(q.rect.area for q in netlist.qubits) + sum(
        b.rect.area for b in netlist.wire_blocks
    )
    if total_area <= 0:
        return 0.0
    return 100.0 * sum(p.contribution for p in pairs) / total_area


def resonator_hotspots(
    netlist: QuantumNetlist,
    reach: float = DEFAULT_REACH,
    delta_c: float = DEFAULT_DELTA_C,
    pairs: list = None,
    lb: float = 1.0,
    traces: dict = None,
    qubit_pairs: list = None,
) -> dict:
    """Per-resonator hotspot score ``He``."""
    if pairs is None:
        pairs = hotspot_pairs(netlist, reach, delta_c, lb, traces, qubit_pairs)
    scores = {r.key: 0.0 for r in netlist.resonators}
    for pair in pairs:
        for cid in (pair.id_a, pair.id_b):
            if cid[0] == "e":
                scores[cid[1]] += pair.contribution
    return scores


def hotspot_report(
    netlist: QuantumNetlist,
    reach: float = DEFAULT_REACH,
    delta_c: float = DEFAULT_DELTA_C,
    lb: float = 1.0,
) -> HotspotReport:
    """Full hotspot analysis: pairs, Ph, HQ and per-resonator He."""
    pairs = hotspot_pairs(netlist, reach, delta_c, lb)
    per_res = resonator_hotspots(netlist, reach, delta_c, pairs, lb)
    affected = set()
    for pair in pairs:
        for cid in (pair.id_a, pair.id_b):
            if cid[0] == "q":
                affected.add(cid[1])
    for key, score in per_res.items():
        if score > 0.0:
            affected.update(key)
    return HotspotReport(
        pairs=pairs,
        ph_percent=hotspot_proportion(netlist, reach, delta_c, pairs, lb),
        hq=len(affected),
        per_resonator=per_res,
    )
