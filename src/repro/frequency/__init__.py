"""Frequency planning and hotspot analysis.

Fixed-frequency transmons cannot be retuned after fabrication, so crosstalk
mitigation relies on *frequency allocation* (spread neighbouring components
across detuned groups) and *spatial isolation* (the placement problem qGDP
solves).  This package provides:

* :mod:`repro.frequency.assignment` — graph-coloring frequency allocation
  for qubits and resonators;
* :mod:`repro.frequency.proximity` — the τ(ωi, ωj, Δc) proximity weight of
  Eq. 4;
* :mod:`repro.frequency.hotspots` — the frequency-hotspot proportion Ph,
  the per-resonator hotspot score He, and the affected-qubit count HQ.
"""

from repro.frequency.assignment import (
    FrequencyPlan,
    assign_frequencies,
    DEFAULT_QUBIT_BANDS,
    DEFAULT_RESONATOR_BANDS,
)
from repro.frequency.proximity import tau
from repro.frequency.hotspots import (
    HotspotReport,
    hotspot_pairs,
    hotspot_proportion,
    hotspot_report,
    resonator_hotspots,
)

__all__ = [
    "FrequencyPlan",
    "assign_frequencies",
    "DEFAULT_QUBIT_BANDS",
    "DEFAULT_RESONATOR_BANDS",
    "tau",
    "HotspotReport",
    "hotspot_pairs",
    "hotspot_proportion",
    "hotspot_report",
    "resonator_hotspots",
]
