"""ASAP scheduling of routed circuits."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Schedule:
    """Timing information for a routed (physical) gate list.

    ``busy_ns`` maps physical qubit → time spent executing gates;
    ``duration_ns`` is the makespan; idle time per qubit is
    ``duration_ns - busy_ns[q]`` for active qubits.
    """

    duration_ns: float
    busy_ns: dict = field(default_factory=dict)
    gate_start_ns: list = field(default_factory=list)

    def idle_ns(self, qubit: int) -> float:
        """Idle time of an active qubit within the makespan."""
        return self.duration_ns - self.busy_ns.get(qubit, 0.0)


def schedule(physical_gates: list) -> Schedule:
    """ASAP schedule: each gate starts when all of its qubits are free."""
    ready = {}
    busy = {}
    starts = []
    makespan = 0.0
    for gate in physical_gates:
        start = max((ready.get(q, 0.0) for q in gate.qubits), default=0.0)
        end = start + gate.duration_ns
        starts.append(start)
        for q in gate.qubits:
            ready[q] = end
            busy[q] = busy.get(q, 0.0) + gate.duration_ns
        makespan = max(makespan, end)
    return Schedule(duration_ns=makespan, busy_ns=busy, gate_start_ns=starts)
