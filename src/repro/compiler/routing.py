"""SWAP-insertion routing onto a device coupling graph.

Gates are processed in order; when a two-qubit gate's operands are not
adjacent on the device, SWAPs walk one operand along the shortest path
toward the other (each SWAP decomposing to 3 CX).  Simple, deterministic,
and adequate for the fidelity study — the paper's protocol averages over
random initial mappings rather than optimizing any single route.
"""

from __future__ import annotations

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.topologies.base import Topology


def route_circuit(
    circuit: QuantumCircuit,
    topology: Topology,
    initial_mapping: dict,
) -> tuple:
    """Route ``circuit`` under ``initial_mapping`` (logical → physical).

    Returns ``(physical_gates, final_mapping)`` where ``physical_gates``
    is a list of :class:`~repro.circuits.gates.Gate` over physical qubit
    indices with SWAPs already decomposed into 3 CX each.
    """
    graph = topology.graph
    mapping = dict(initial_mapping)  # logical -> physical
    inverse = {phys: logical for logical, phys in mapping.items()}
    physical_gates = []

    def emit_cx(a: int, b: int) -> None:
        physical_gates.append(Gate("cx", (a, b)))

    def do_swap(a: int, b: int) -> None:
        emit_cx(a, b)
        emit_cx(b, a)
        emit_cx(a, b)
        la, lb = inverse.get(a), inverse.get(b)
        if la is not None:
            mapping[la] = b
        if lb is not None:
            mapping[lb] = a
        inverse[a], inverse[b] = lb, la

    for gate in circuit.gates:
        if gate.num_qubits == 1:
            physical_gates.append(
                Gate(gate.name, (mapping[gate.qubits[0]],), gate.params)
            )
            continue
        la, lb = gate.qubits
        pa, pb = mapping[la], mapping[lb]
        if not graph.has_edge(pa, pb):
            path = nx.shortest_path(graph, pa, pb)
            # Walk qubit ``la`` along the path until adjacent to ``pb``.
            for hop in path[1:-1]:
                do_swap(mapping[la], hop)
            pa, pb = mapping[la], mapping[lb]
            if not graph.has_edge(pa, pb):
                raise AssertionError(
                    f"routing failed to make ({la},{lb}) adjacent"
                )
        physical_gates.append(Gate(gate.name, (pa, pb), gate.params))
    return (physical_gates, mapping)
