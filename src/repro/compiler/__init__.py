"""Transpilation onto device topologies.

The fidelity evaluation (Fig. 8) maps each benchmark onto each device 50
times with random initial placements, routes two-qubit gates with SWAP
insertion, schedules the result, and feeds the per-qubit statistics into
the noise model.  This package provides that compiler substrate.
"""

from repro.compiler.mapping import random_mapping, greedy_mapping
from repro.compiler.routing import route_circuit
from repro.compiler.scheduling import schedule, Schedule
from repro.compiler.transpiler import transpile, TranspiledCircuit

__all__ = [
    "random_mapping",
    "greedy_mapping",
    "route_circuit",
    "schedule",
    "Schedule",
    "transpile",
    "TranspiledCircuit",
]
