"""Initial logical → physical qubit mapping."""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.topologies.base import Topology


def random_mapping(
    circuit: QuantumCircuit, topology: Topology, seed: int
) -> dict:
    """Random *connected-region* mapping (the paper's 50-mapping protocol).

    A uniformly random injective map would scatter logical qubits across
    the die and drown every layout in SWAP noise; real compilers place
    programs on connected subregions.  We grow a random connected region
    (randomized BFS from a random start) and assign logical qubits to it
    so that heavily interacting logical pairs land on adjacent physical
    qubits where possible.
    """
    if circuit.num_qubits > topology.num_qubits:
        raise ValueError(
            f"{circuit.name} needs {circuit.num_qubits} qubits, "
            f"{topology.name} has {topology.num_qubits}"
        )
    rng = np.random.default_rng(seed)
    graph = topology.graph
    n = circuit.num_qubits

    start = int(rng.integers(topology.num_qubits))
    region = [start]
    frontier = set(graph.neighbors(start))
    while len(region) < n:
        if not frontier:  # disconnected leftovers: jump to a random free qubit
            free = [q for q in range(topology.num_qubits) if q not in region]
            frontier = {free[int(rng.integers(len(free)))]}
        pick = sorted(frontier)[int(rng.integers(len(frontier)))]
        region.append(pick)
        frontier |= set(graph.neighbors(pick))
        frontier -= set(region)

    # Assign interacting logical qubits to adjacent region slots greedily.
    interactions = {}
    for a, b in circuit.two_qubit_pairs():
        key = (min(a, b), max(a, b))
        interactions[key] = interactions.get(key, 0) + 1
    weight = [0] * n
    for (a, b), count in interactions.items():
        weight[a] += count
        weight[b] += count
    order = sorted(range(n), key=lambda q: (-weight[q], q))

    mapping = {}
    free_slots = set(region)
    for logical in order:
        partners = [
            mapping[other]
            for (a, b) in interactions
            for other in ((b,) if a == logical else (a,) if b == logical else ())
            if other in mapping
        ]
        if partners:
            slot = min(
                free_slots,
                key=lambda p: (
                    sum(_distance(graph, p, q) for q in partners),
                    p,
                ),
            )
        else:
            slot = sorted(free_slots)[int(rng.integers(len(free_slots)))]
        mapping[logical] = slot
        free_slots.discard(slot)
    return mapping


def _distance(graph, a: int, b: int) -> int:
    """Memoized hop distance on the coupling graph."""
    return len(_shortest_path_cache(graph, a, b)) - 1


def greedy_mapping(circuit: QuantumCircuit, topology: Topology) -> dict:
    """Interaction-aware greedy mapping (used by examples and ablations).

    Places the most-interacting logical qubit on the highest-degree
    physical qubit, then repeatedly maps the logical qubit with the most
    already-mapped partners onto the free physical qubit adjacent to them.
    """
    if circuit.num_qubits > topology.num_qubits:
        raise ValueError(
            f"{circuit.name} needs {circuit.num_qubits} qubits, "
            f"{topology.name} has {topology.num_qubits}"
        )
    interactions = {}
    for a, b in circuit.two_qubit_pairs():
        interactions[(min(a, b), max(a, b))] = (
            interactions.get((min(a, b), max(a, b)), 0) + 1
        )
    weight = [0] * circuit.num_qubits
    for (a, b), count in interactions.items():
        weight[a] += count
        weight[b] += count

    graph = topology.graph
    order = sorted(range(circuit.num_qubits), key=lambda q: -weight[q])
    mapping = {}
    used = set()
    for logical in order:
        partners = [
            mapping[other]
            for (a, b) in interactions
            for other in ((b,) if a == logical else (a,) if b == logical else ())
            if other in mapping
        ]
        candidates = set(range(topology.num_qubits)) - used
        if partners:
            best = min(
                candidates,
                key=lambda p: (
                    sum(
                        len(_shortest_path_cache(graph, p, q)) for q in partners
                    ),
                    -graph.degree[p],
                    p,
                ),
            )
        else:
            best = max(candidates, key=lambda p: (graph.degree[p], -p))
        mapping[logical] = best
        used.add(best)
    return mapping


_PATH_CACHE = {}


def _shortest_path_cache(graph, a: int, b: int) -> list:
    """Memoized shortest path; topology graphs are static per run."""
    key = (id(graph), a, b)
    if key not in _PATH_CACHE:
        import networkx as nx

        _PATH_CACHE[key] = nx.shortest_path(graph, a, b)
    return _PATH_CACHE[key]
