"""Transpiler facade: map → route → schedule → statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.mapping import greedy_mapping, random_mapping
from repro.compiler.routing import route_circuit
from repro.compiler.scheduling import Schedule, schedule
from repro.topologies.base import Topology


@dataclass
class TranspiledCircuit:
    """A routed, scheduled circuit plus the statistics the noise model needs."""

    name: str
    topology_name: str
    initial_mapping: dict
    final_mapping: dict
    physical_gates: list
    timing: Schedule
    gates_1q: dict = field(default_factory=dict)  # physical qubit -> count
    gates_2q: dict = field(default_factory=dict)
    active_edges: set = field(default_factory=set)  # resonators used by 2q gates

    @property
    def active_qubits(self) -> set:
        """Physical qubits the program actually touches."""
        return set(self.gates_1q) | set(self.gates_2q)

    @property
    def num_swaps_cx(self) -> int:
        """Total CX count (including SWAP decompositions)."""
        return sum(self.gates_2q.values()) // 2

    @property
    def duration_ns(self) -> float:
        """Schedule makespan."""
        return self.timing.duration_ns


def transpile(
    circuit: QuantumCircuit,
    topology: Topology,
    seed: int = None,
    initial_mapping: dict = None,
) -> TranspiledCircuit:
    """Compile a logical circuit onto a device.

    ``initial_mapping`` wins when given; otherwise a seeded random mapping
    (the paper's protocol) when ``seed`` is set, else the greedy mapping.
    """
    if initial_mapping is None:
        if seed is not None:
            initial_mapping = random_mapping(circuit, topology, seed)
        else:
            initial_mapping = greedy_mapping(circuit, topology)

    physical_gates, final_mapping = route_circuit(
        circuit, topology, initial_mapping
    )
    timing = schedule(physical_gates)

    gates_1q = {}
    gates_2q = {}
    active_edges = set()
    for gate in physical_gates:
        if gate.num_qubits == 1:
            q = gate.qubits[0]
            gates_1q[q] = gates_1q.get(q, 0) + 1
        else:
            a, b = gate.qubits
            for q in (a, b):
                gates_2q[q] = gates_2q.get(q, 0) + 1
            active_edges.add((min(a, b), max(a, b)))

    return TranspiledCircuit(
        name=circuit.name,
        topology_name=topology.name,
        initial_mapping=dict(initial_mapping),
        final_mapping=final_mapping,
        physical_gates=physical_gates,
        timing=timing,
        gates_1q=gates_1q,
        gates_2q=gates_2q,
        active_edges=active_edges,
    )
