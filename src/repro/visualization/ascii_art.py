"""ASCII rendering of layouts — good enough to eyeball a legalization.

Qubit sites render as ``Q``, wire blocks as a per-resonator letter cycling
a-z/A-Z, free sites as ``.``.  The origin is bottom-left, so rows print
top-down.
"""

from __future__ import annotations

import string

from repro.geometry import SiteGrid
from repro.netlist.netlist import QuantumNetlist

_LETTERS = string.ascii_lowercase + string.ascii_uppercase


def render_layout(netlist: QuantumNetlist, grid: SiteGrid) -> str:
    """Render component positions onto the site grid."""
    canvas = [["." for _ in range(grid.cols)] for _ in range(grid.rows)]
    for qubit in netlist.qubits:
        for col, row in grid.sites_covered(qubit.rect):
            canvas[row][col] = "Q"
    for index, resonator in enumerate(netlist.resonators):
        letter = _LETTERS[index % len(_LETTERS)]
        for block in resonator.blocks:
            col, row = grid.site_of(block.center)
            if canvas[row][col] == ".":
                canvas[row][col] = letter
            elif canvas[row][col] != "Q":
                canvas[row][col] = "#"  # block collision marker
    return "\n".join("".join(row) for row in reversed(canvas))


def render_occupancy(bins) -> str:
    """Render a :class:`~repro.legalization.bins.BinGrid`'s occupancy."""
    grid = bins.grid
    rows = []
    for row in range(grid.rows - 1, -1, -1):
        line = []
        for col in range(grid.cols):
            owner = bins.occupant(col, row)
            if owner is None:
                line.append(".")
            elif owner[0] == "q":
                line.append("Q")
            else:
                line.append("o")
        rows.append("".join(line))
    return "\n".join(rows)
