"""Export layouts and metric tables to JSON / CSV."""

from __future__ import annotations

import csv
import json


def layout_to_dict(netlist) -> dict:
    """JSON-serializable snapshot of a layout."""
    return {
        "name": netlist.name,
        "qubits": [
            {
                "index": q.index,
                "x": q.x,
                "y": q.y,
                "w": q.w,
                "h": q.h,
                "frequency": q.frequency,
            }
            for q in netlist.qubits
        ],
        "resonators": [
            {
                "qi": r.qi,
                "qj": r.qj,
                "frequency": r.frequency,
                "wirelength": r.wirelength,
                "blocks": [
                    {"ordinal": b.ordinal, "x": b.x, "y": b.y}
                    for b in r.blocks
                ],
            }
            for r in netlist.resonators
        ],
    }


def save_layout_json(netlist, path: str) -> None:
    """Write :func:`layout_to_dict` to ``path``."""
    with open(path, "w") as handle:
        json.dump(layout_to_dict(netlist), handle, indent=2)


def save_metrics_csv(rows: list, path: str) -> None:
    """Write a list of flat dicts as CSV (union of keys as header)."""
    if not rows:
        raise ValueError("no rows to write")
    fields = []
    for row in rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)
