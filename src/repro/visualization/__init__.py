"""Layout rendering (ASCII) and data export (CSV/JSON) helpers."""

from repro.visualization.ascii_art import render_layout, render_occupancy
from repro.visualization.export import layout_to_dict, save_layout_json, save_metrics_csv

__all__ = [
    "render_layout",
    "render_occupancy",
    "layout_to_dict",
    "save_layout_json",
    "save_metrics_csv",
]
