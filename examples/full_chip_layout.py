"""Lay out a full 127-qubit IBM Eagle chip and export the result.

Runs the complete qGDP flow on the largest topology the paper evaluates,
prints per-stage metrics, and writes the final layout to
``eagle_layout.json`` plus a CSV of stage metrics — the artifacts a
downstream packaging/routing tool would consume.

Run:  python examples/full_chip_layout.py
"""

from repro import QGDPConfig, run_flow
from repro.metrics import displacement_stats
from repro.visualization import save_layout_json, save_metrics_csv


def main() -> None:
    config = QGDPConfig()
    flow, result = run_flow("eagle", engine="qgdp", detailed=True, config=config)

    print(f"substrate: {flow.grid.cols} x {flow.grid.rows} sites")
    print(f"cells    : {flow.netlist.num_cells} "
          f"({flow.netlist.num_qubits} qubits, "
          f"{len(flow.netlist.wire_blocks)} wire blocks)")

    rows = []
    for stage in result.stages:
        print(f"\n== stage {stage.stage} ({stage.runtime_s:.2f}s) ==")
        row = {"stage": stage.stage, "runtime_s": round(stage.runtime_s, 3)}
        for key in ("iedge", "clusters", "crossings", "ph_percent", "hq"):
            if key in stage.metrics:
                print(f"  {key:12s} {stage.metrics[key]}")
                row[key] = stage.metrics[key]
        rows.append(row)

    gp = result.stage("gp").positions
    lg = result.stage("lg").positions
    moves = displacement_stats(gp, lg)
    print(
        f"\nlegalization displacement: total {moves.total:.1f}, "
        f"mean {moves.mean:.2f}, max {moves.maximum:.2f} (layout units)"
    )

    save_layout_json(flow.netlist, "eagle_layout.json")
    save_metrics_csv(rows, "eagle_stages.csv")
    print("\nwrote eagle_layout.json and eagle_stages.csv")


if __name__ == "__main__":
    main()
