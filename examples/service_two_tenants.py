"""Placement-as-a-service: two tenants, one shared worker pool.

Demonstrates the multi-tenant job service from docs/service.md inside
a single script: an authenticated ``repro serve``-equivalent service
is started in-process, two tenants submit *overlapping* sweeps
concurrently, and the per-run manifests prove the overlap was computed
exactly once fleet-wide — each shared job is ``computed`` in one
tenant's manifest and ``cached`` in the other's, so the counters sum
to the size of the job-key union.

Run from the repo root::

    PYTHONPATH=src python examples/service_two_tenants.py

Equivalent CLI session (with a real host, point --service at it)::

    repro serve --store sqlite:service.db --token alice-secret \\
        --token bob-secret --runs-root runs/service --port 8766 &
    repro submit --service http://localhost:8766 --token alice-secret \\
        --spec spec.json --wait
    repro results run0001-... --service http://localhost:8766 \\
        --token alice-secret
"""

from __future__ import annotations

import tempfile
import threading

from repro.core.config import QGDPConfig
from repro.orchestration import config_to_dict
from repro.orchestration.service import (
    JobService,
    ServiceClient,
    ServiceToken,
)

CONFIG = config_to_dict(QGDPConfig(gp_iterations=60))


def _spec(engines: tuple) -> dict:
    return {
        "topologies": ["grid"],
        "benchmarks": ["bv-4"],
        "engines": list(engines),
        "num_seeds": 2,
        "config": CONFIG,
    }


def _tenant_session(name: str, client: ServiceClient, document: dict,
                    out: dict) -> None:
    receipt = client.submit(document)
    print(
        f"[{name}] submitted {receipt['run_id']}: "
        f"{receipt['num_jobs']} jobs, {receipt['shared_jobs']} already "
        "shared with runs in flight"
    )
    status = client.wait(receipt["run_id"], poll_s=0.1)
    rows = client.results(receipt["run_id"])["rows"]
    manifest = client.manifest(receipt["run_id"])
    print(
        f"[{name}] {status['state']}: computed {manifest['jobs']['computed']}, "
        f"cached {manifest['jobs']['cached']}, {len(rows)} result rows"
    )
    out[name] = manifest


def main() -> None:
    tokens = [
        ServiceToken("alice-secret", tenant="alice"),
        ServiceToken("bob-secret", tenant="bob"),
    ]
    with tempfile.TemporaryDirectory() as tmp:
        with JobService(
            f"sqlite:{tmp}/service.db",
            tokens,
            workers=2,
            runs_root=f"{tmp}/runs",
            poll_s=0.05,
        ) as service:
            print(f"service listening at {service.url}")
            alice = ServiceClient(service.url, "alice-secret")
            bob = ServiceClient(service.url, "bob-secret")

            manifests: dict = {}
            threads = [
                threading.Thread(
                    target=_tenant_session,
                    args=("alice", alice, _spec(("qgdp", "tetris")),
                          manifests),
                ),
                threading.Thread(
                    target=_tenant_session,
                    args=("bob", bob, _spec(("qgdp", "abacus")),
                          manifests),
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            computed = sum(
                manifests[name]["jobs"]["computed"] for name in manifests
            )
            totals = {
                name: manifests[name]["jobs"]["total"] for name in manifests
            }
            print(
                f"\nfleet-wide: {computed} jobs computed for run totals "
                f"{totals} — the overlap was computed once, never twice"
            )


if __name__ == "__main__":
    main()
