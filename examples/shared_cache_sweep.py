"""Two "machines", one warm artifact cache: the storage backends demo.

Simulates the docs/storage.md two-machine walkthrough inside a single
process: a cache server fronts a SQLite store, a first sweeper runs
shard 1/2 against it, a second sweeper runs shard 2/2 — reusing every
cross-shard artifact (the topology GP, the shared transpilations) the
first one computed — and a final resume over the full sweep recomputes
nothing.  Finishes by syncing the server's store into a plain
directory cache with ``sync_stores`` (what ``repro cache pull`` runs).

Run from the repo root::

    PYTHONPATH=src python examples/shared_cache_sweep.py

Equivalent CLI session (with real machines, point --cache-url at the
cache host instead of localhost)::

    repro serve-cache --store sqlite:shared.db --port 8765 &
    repro sweep --shard 1/2 --cache-url http://localhost:8765 ...
    repro sweep --shard 2/2 --cache-url http://localhost:8765 ...
    repro cache pull dir:.repro_cache http://localhost:8765
"""

from __future__ import annotations

import tempfile

from repro.core.config import QGDPConfig
from repro.orchestration import (
    CacheServer,
    SqliteBackend,
    SweepSpec,
    TieredStore,
    config_to_dict,
    run_sweep,
    sync_stores,
)


def main() -> None:
    spec = SweepSpec(
        topologies=("grid",),
        benchmarks=("bv-4", "qaoa-4"),
        engines=("qgdp",),
        num_seeds=3,
        config=config_to_dict(QGDPConfig(gp_iterations=60)),
    )

    with tempfile.TemporaryDirectory() as scratch:
        backend = SqliteBackend(f"{scratch}/shared.db")
        with CacheServer(backend) as server:
            print(f"cache server: {server.url} serving {backend.describe()}")

            # "Machine A": shard 1/2, local fast layer over the server.
            store_a = TieredStore(f"dir:{scratch}/machine_a", server.url)
            a = run_sweep(spec, store=store_a, shard=(1, 2), resume=True)
            print(
                f"A (shard 1/2): {a.stats.computed} computed, "
                f"{a.stats.cached} cached"
            )

            # "Machine B": shard 2/2.  Cross-shard artifacts (the grid
            # GP, shared transpilations) come back from the server.
            store_b = TieredStore(f"dir:{scratch}/machine_b", server.url)
            b = run_sweep(spec, store=store_b, shard=(2, 2), resume=True)
            print(
                f"B (shard 2/2): {b.stats.computed} computed, "
                f"{b.stats.cached} cached (cross-shard reuse)"
            )

            # Any machine resumes the *full* sweep for free afterwards.
            store_c = TieredStore(f"dir:{scratch}/machine_c", server.url)
            full = run_sweep(spec, store=store_c, resume=True)
            print(
                f"full resume: {full.stats.computed} computed, "
                f"{full.stats.cached} cached -> {len(full.cells)} cells"
            )
            assert full.stats.computed == 0, "warm cache must serve everything"

            # `repro cache pull dir:... http://...` in library form.
            pulled = sync_stores(server.url, f"dir:{scratch}/offline_cache")
            print(
                f"pulled {pulled.copied} artifacts "
                f"({pulled.bytes_copied} bytes) into a directory cache"
            )
        backend.close()


if __name__ == "__main__":
    main()
