"""Where should a QAOA workload run?  Fidelity across device topologies.

Builds a qGDP-legalized layout for every topology in the paper, compiles
QAOA-4 onto each with several random connected mappings, and breaks the
Eq. 7 fidelity into its factors — showing how device choice and layout
quality interact for one workload.

Run:  python examples/qaoa_fidelity_study.py
"""

from repro import PAPER_TOPOLOGIES, QGDPConfig, get_benchmark, run_flow, transpile
from repro.crosstalk import program_fidelity
from repro.routing import count_crossings
from repro.topologies import get_topology

NUM_MAPPINGS = 10


def main() -> None:
    config = QGDPConfig()
    circuit = get_benchmark("qaoa-4")
    print(f"workload: {circuit.name} ({circuit.num_gates} gates, depth {circuit.depth()})\n")
    header = (
        f"{'topology':<10}{'fidelity':>10}{'qubit':>8}{'xtalk':>8}"
        f"{'resonator':>11}{'cx':>5}{'dur(ns)':>9}"
    )
    print(header)

    for name in PAPER_TOPOLOGIES:
        flow, _result = run_flow(name, engine="qgdp", detailed=True, config=config)
        topology = get_topology(name)
        crossings = count_crossings(flow.netlist, flow.bins)

        fidelities, factors = [], [0.0, 0.0, 0.0]
        cx_counts, durations = [], []
        for k in range(NUM_MAPPINGS):
            transpiled = transpile(circuit, topology, seed=17 + 977 * k)
            breakdown = program_fidelity(
                flow.netlist, transpiled, crossings, config
            )
            fidelities.append(breakdown.fidelity)
            factors[0] += breakdown.qubit_factor
            factors[1] += breakdown.qubit_crosstalk_factor
            factors[2] += breakdown.resonator_factor
            cx_counts.append(sum(transpiled.gates_2q.values()) // 2)
            durations.append(transpiled.duration_ns)

        n = len(fidelities)
        print(
            f"{name:<10}{sum(fidelities) / n:>10.4f}{factors[0] / n:>8.4f}"
            f"{factors[1] / n:>8.4f}{factors[2] / n:>11.4f}"
            f"{sum(cx_counts) / n:>5.0f}{sum(durations) / n:>9.0f}"
        )

    print(
        "\nReading: 'qubit' is gate+decoherence loss, 'xtalk' the Rabi "
        "crosstalk of spacing violations (1.0 = clean layout), 'resonator' "
        "the crossing/adjacency loss on the resonators the program uses."
    )


if __name__ == "__main__":
    main()
