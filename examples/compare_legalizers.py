"""Compare the five legalization engines on one device (mini Fig. 8 / 9).

Legalizes the same global placement with qGDP-LG, Q-Abacus, Q-Tetris,
Abacus and Tetris, then reports layout metrics and the mean program
fidelity over a few NISQ benchmarks — the paper's core comparison at
example scale.

Run:  python examples/compare_legalizers.py [topology]
"""

import sys

from repro import (
    EvaluationConfig,
    PAPER_ENGINE_ORDER,
    QGDPConfig,
    evaluate_engines,
    evaluate_fidelity,
)
from repro.legalization import ENGINES

BENCHMARKS = ["bv-4", "bv-9", "qaoa-4", "qgan-4"]


def main(topology: str = "aspen11") -> None:
    eval_config = EvaluationConfig(num_seeds=10, config=QGDPConfig())

    print(f"== layout metrics on {topology} ==")
    evaluations = evaluate_engines(
        topology, PAPER_ENGINE_ORDER, eval_config, with_dp_for=("qgdp",)
    )
    header = f"{'engine':<10}{'Iedge':>9}{'X':>5}{'Ph(%)':>8}{'HQ':>5}{'qviol':>7}{'tq(ms)':>9}{'te(ms)':>9}"
    print(header)
    for engine in PAPER_ENGINE_ORDER:
        ev = evaluations[engine]
        m = ev.metrics
        print(
            f"{ENGINES[engine].display_name:<10}{m.iedge:>9}{m.crossings:>5}"
            f"{m.ph_percent:>8.2f}{m.hq:>5}{m.spacing_violations:>7}"
            f"{ev.qubit_time_s * 1e3:>9.1f}{ev.resonator_time_s * 1e3:>9.1f}"
        )

    print(f"\n== mean fidelity over {BENCHMARKS} ({eval_config.num_seeds} mappings) ==")
    cells = evaluate_fidelity([topology], BENCHMARKS, PAPER_ENGINE_ORDER, eval_config)
    for engine in PAPER_ENGINE_ORDER:
        means = [cells[(topology, b, engine)].mean for b in BENCHMARKS]
        per_bench = "  ".join(
            f"{b}:{cells[(topology, b, engine)].mean:.4f}" for b in BENCHMARKS
        )
        print(
            f"{ENGINES[engine].display_name:<10} mean {sum(means) / len(means):.4f}   {per_bench}"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "aspen11")
