"""Fault-tolerant fleet sweep: two workers, one killed mid-run.

Demonstrates the lease-based work-stealing layer from docs/fleet.md
inside a single script: a coordinator-enabled cache server holds the
sweep's job DAG, two real ``repro worker`` child processes pull leased
job batches over HTTP, and one of them is SIGKILLed mid-sweep — no
drain, no goodbye.  Its leases expire, the surviving worker steals the
orphaned jobs, and the merged manifest still accounts for every job
(the revoked leases show up in the failure ledger, not as lost work).

Run from the repo root::

    PYTHONPATH=src python examples/fleet_sweep.py

Equivalent CLI session (with real machines, point --coordinator at the
coordinator host instead of localhost)::

    repro serve-cache --store sqlite:fleet.db --fleet --port 8765 &
    repro worker --coordinator http://localhost:8765 &   # per machine
    repro sweep --fleet http://localhost:8765 --out runs/fleet
    repro fleet status --coordinator http://localhost:8765
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.core.config import QGDPConfig
from repro.orchestration import (
    CacheServer,
    FleetClient,
    FleetCoordinator,
    SqliteBackend,
    SweepSpec,
    config_to_dict,
    plan_sweep,
    run_fleet_sweep,
    serialize_graph,
)


def _spawn_worker(url: str, name: str) -> subprocess.Popen:
    """A real ``repro worker`` child process pulling from ``url``."""
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--coordinator", url,
            "--worker-id", name,
            "--batch-size", "2",
            "--poll-s", "0.1",
            "--quiet",
        ],
        env={**os.environ, "PYTHONPATH": "src"},
    )


def main() -> None:
    spec = SweepSpec(
        topologies=("grid",),
        benchmarks=("bv-4", "qaoa-4"),
        engines=("qgdp", "tetris"),
        num_seeds=2,
        config=config_to_dict(QGDPConfig(gp_iterations=60)),
    )
    plan = plan_sweep(spec)
    print(f"sweep plan: {len(plan.graph)} jobs")

    with tempfile.TemporaryDirectory() as scratch:
        backend = SqliteBackend(f"{scratch}/fleet.db")
        coordinator = FleetCoordinator(lease_ttl_s=3.0, max_attempts=3)
        with CacheServer(backend, coordinator=coordinator) as server:
            print(f"coordinator: {server.url} (lease TTL 3 s)")
            client = FleetClient(server.url)
            client.enqueue(serialize_graph(plan.graph))

            doomed = _spawn_worker(server.url, "doomed")
            survivor = _spawn_worker(server.url, "survivor")
            try:
                # Let the doomed worker get a few completions in, then
                # SIGKILL it while it still holds leases: no drain, no
                # release — the coordinator only learns from the silence.
                while client.status()["counts"]["done"] < 2:
                    time.sleep(0.1)
                doomed.send_signal(signal.SIGKILL)
                doomed.wait()
                print("killed worker 'doomed' mid-sweep (leases orphaned)")

                result = run_fleet_sweep(spec, server.url, poll_s=0.2)
            finally:
                for proc in (doomed, survivor):
                    if proc.poll() is None:
                        proc.kill()
            survivor.wait()

            stats = result.stats
            print(
                f"fleet finished: {stats.computed} computed, "
                f"{stats.cached} cached -> {len(result.cells)} cells"
            )
            expired = [
                f for f in result.manifest["jobs"]["failures"]
                if f["error_type"] == "LeaseExpired"
            ]
            print(
                f"failure ledger: {len(expired)} expired lease(s) from "
                f"{sorted({f['worker'] for f in expired})}"
            )
            print(f"workers on record: {result.manifest['fleet']['workers']}")
            assert len(stats.entries) == len(plan.graph), "no job may be lost"

        backend.close()


if __name__ == "__main__":
    main()
