"""Quickstart: legalize a 27-qubit IBM Falcon layout with qGDP.

Runs the full flow (global placement → qubit + resonator legalization →
detailed placement) on the Falcon topology, prints the layout-quality
metrics the paper reports, and renders the legalized chip as ASCII.

Run:  python examples/quickstart.py
"""

from repro import QGDPConfig, run_flow
from repro.visualization import render_layout


def main() -> None:
    flow, result = run_flow("falcon", engine="qgdp", detailed=True)

    print(f"topology : {result.topology_name}")
    print(f"engine   : {result.engine}")
    for stage in result.stages:
        print(f"\n== stage {stage.stage} ({stage.runtime_s:.2f}s) ==")
        for key in ("iedge", "crossings", "ph_percent", "hq", "legality_violations"):
            if key in stage.metrics:
                print(f"  {key:20s} {stage.metrics[key]}")

    print("\nlegalized layout (Q = qubit macro, letters = resonator blocks):")
    print(render_layout(flow.netlist, flow.grid))


if __name__ == "__main__":
    main()
