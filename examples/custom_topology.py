"""Bring your own device: lay out a custom 16-qubit ring-of-rings chip.

Shows the extension path a device architect would use: define a
:class:`repro.Topology` (coupling graph + ideal coordinates), then run the
standard qGDP flow and inspect the result — no registry changes needed.

Run:  python examples/custom_topology.py
"""

import math

from repro import QGDPConfig, Topology, run_flow
from repro.visualization import render_layout


def ring_of_rings() -> Topology:
    """Four 4-qubit rings on a ring: 16 qubits, 20 couplers."""
    edges = []
    positions = {}
    for ring in range(4):
        theta0 = math.pi / 2 * ring
        cx, cy = 3.0 * math.cos(theta0), 3.0 * math.sin(theta0)
        base = 4 * ring
        for k in range(4):
            phi = theta0 + math.pi / 2 * k
            positions[base + k] = (
                cx + 1.0 * math.cos(phi),
                cy + 1.0 * math.sin(phi),
            )
            edges.append((base + k, base + (k + 1) % 4))
        # Couple to the next ring (one bridge per neighbour pair).
        nxt = 4 * ((ring + 1) % 4)
        edges.append((base + 1, nxt + 3))
    edges = sorted((min(a, b), max(a, b)) for a, b in edges)
    return Topology(
        name="ring-of-rings",
        display_name="RingOfRings",
        num_qubits=16,
        edges=edges,
        ideal_positions=positions,
        description="Example custom device: four coupled 4-rings",
    )


def main() -> None:
    topology = ring_of_rings()
    print(f"custom device: {topology.num_qubits} qubits, {topology.num_edges} couplers")

    flow, result = run_flow(topology, engine="qgdp", detailed=True, config=QGDPConfig())
    final = result.final.metrics
    print(f"Iedge {final['iedge']}, crossings {final['crossings']}, "
          f"Ph {final['ph_percent']:.2f}%, violations {final['legality_violations']}")

    print("\nlegalized layout:")
    print(render_layout(flow.netlist, flow.grid))


if __name__ == "__main__":
    main()
