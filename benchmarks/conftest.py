"""Shared benchmark infrastructure.

Every bench regenerates one of the paper's tables or figures and prints it
next to the paper's reference numbers (see EXPERIMENTS.md).  Heavy
artifacts (GP solutions, legalized layouts, engine evaluations) are
computed once per session and shared.

``QGDP_BENCH_SEEDS`` controls the number of random mappings per fidelity
cell (default 10; the paper uses 50 — set it for a full run).
``QGDP_BENCH_WORKERS`` fans the fidelity sweep out over that many worker
processes, and ``QGDP_BENCH_CACHE`` points at a disk artifact cache so
repeated bench sessions resume from finished stages — results are
bit-identical either way (see docs/orchestration.md).
"""

from __future__ import annotations

import os

import pytest

from repro.circuits import PAPER_BENCHMARKS
from repro.core.config import QGDPConfig
from repro.evaluation import (
    EvaluationConfig,
    cells_from_sweep,
    evaluate_engines,
    sweep_spec,
)
from repro.legalization import PAPER_ENGINE_ORDER
from repro.orchestration import run_sweep
from repro.topologies import PAPER_TOPOLOGIES

BENCH_SEEDS = int(os.environ.get("QGDP_BENCH_SEEDS", "10"))
BENCH_WORKERS = int(os.environ.get("QGDP_BENCH_WORKERS", "1"))
BENCH_CACHE = os.environ.get("QGDP_BENCH_CACHE", "")


@pytest.fixture(scope="session")
def eval_config():
    """The sweep configuration every bench shares."""
    return EvaluationConfig(
        num_seeds=BENCH_SEEDS, detailed=True, config=QGDPConfig()
    )


@pytest.fixture(scope="session")
def fidelity_results(eval_config):
    """Fig. 8 cells for all paper topologies, via the orchestrator."""
    spec = sweep_spec(
        PAPER_TOPOLOGIES, PAPER_BENCHMARKS, PAPER_ENGINE_ORDER, eval_config
    )
    outcome = run_sweep(
        spec,
        cache_dir=BENCH_CACHE or None,
        workers=BENCH_WORKERS,
        resume=bool(BENCH_CACHE),
    )
    return cells_from_sweep(outcome.cells)


@pytest.fixture(scope="session")
def engine_evaluations(eval_config):
    """{topology: {engine: EngineEvaluation}} for all paper topologies.

    Feeds Fig. 9, Table II and Table III; computed once.
    """
    return {
        name: evaluate_engines(
            name, PAPER_ENGINE_ORDER, eval_config, with_dp_for=("qgdp",)
        )
        for name in PAPER_TOPOLOGIES
    }
