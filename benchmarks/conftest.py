"""Shared benchmark infrastructure.

Every bench regenerates one of the paper's tables or figures and prints it
next to the paper's reference numbers (see EXPERIMENTS.md).  Heavy
artifacts (GP solutions, legalized layouts, engine evaluations) are
computed once per session and shared.

``QGDP_BENCH_SEEDS`` controls the number of random mappings per fidelity
cell (default 10; the paper uses 50 — set it for a full run).
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import QGDPConfig
from repro.evaluation import EvaluationConfig, evaluate_engines
from repro.legalization import PAPER_ENGINE_ORDER
from repro.topologies import PAPER_TOPOLOGIES

BENCH_SEEDS = int(os.environ.get("QGDP_BENCH_SEEDS", "10"))


@pytest.fixture(scope="session")
def eval_config():
    """The sweep configuration every bench shares."""
    return EvaluationConfig(
        num_seeds=BENCH_SEEDS, detailed=True, config=QGDPConfig()
    )


@pytest.fixture(scope="session")
def engine_evaluations(eval_config):
    """{topology: {engine: EngineEvaluation}} for all paper topologies.

    Feeds Fig. 9, Table II and Table III; computed once.
    """
    return {
        name: evaluate_engines(
            name, PAPER_ENGINE_ORDER, eval_config, with_dp_for=("qgdp",)
        )
        for name in PAPER_TOPOLOGIES
    }
