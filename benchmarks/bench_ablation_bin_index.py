"""Ablation — bin-aided free-space index vs flat scan (Section III-D, [28]).

The integration-aware legalizer's inner loop is the nearest-free-site
query.  The bin-aided index answers it via per-row bisects with an
outward row sweep (O(log n) per probed row); the naive alternative scans
every free site.  This bench times both on an Eagle-sized occupancy.
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry import SiteGrid
from repro.legalization import BinGrid


def _populated_bins(cols=80, rows=70, fill=0.55, seed=9):
    bins = BinGrid(SiteGrid(cols, rows))
    rng = np.random.default_rng(seed)
    sites = [(c, r) for c in range(cols) for r in range(rows)]
    rng.shuffle(sites)
    for col, row in sites[: int(fill * len(sites))]:
        bins.occupy(col, row, ("b", (0, 1), 0))
    return bins


def _naive_nearest(bins, col, row):
    best, best_d2 = None, None
    for c, r in bins.free_sites():
        d2 = (c - col) ** 2 + (r - row) ** 2
        if best_d2 is None or d2 < best_d2 or (d2 == best_d2 and (r, c) < (best[1], best[0])):
            best, best_d2 = (c, r), d2
    return best


def test_bin_index_matches_naive_and_is_faster(benchmark):
    bins = _populated_bins()
    rng = np.random.default_rng(4)
    queries = [
        (int(rng.integers(80)), int(rng.integers(70))) for _ in range(200)
    ]

    # Correctness: identical answers on every query.
    for col, row in queries[:40]:
        assert bins.nearest_free(col, row) == _naive_nearest(bins, col, row)

    def indexed_pass():
        return [bins.nearest_free(c, r) for c, r in queries]

    t0 = time.perf_counter()
    for col, row in queries:
        _naive_nearest(bins, col, row)
    naive_s = time.perf_counter() - t0

    benchmark(indexed_pass)
    t0 = time.perf_counter()
    indexed_pass()
    indexed_s = time.perf_counter() - t0

    print()
    print("== bin-aided index ablation (200 queries, 80x70 grid, 55% full) ==")
    print(f"  naive scan : {naive_s * 1e3:8.1f} ms")
    print(f"  bin index  : {indexed_s * 1e3:8.1f} ms")
    assert indexed_s < naive_s
