"""Fig. 8 — program fidelity per topology × benchmark × legalization engine.

Paper protocol: every engine legalizes the same pseudo-connection GP
solution; each benchmark is mapped ``QGDP_BENCH_SEEDS`` times (paper: 50)
with random connected placements and the mean Eq. 7 fidelity is reported.

Expected shape (paper Fig. 8): qGDP highest on every topology; Q-Abacus ≈
Q-Tetris next; classical Abacus/Tetris collapse wherever their zero-spacing
macro legalization leaves qubit pairs inside the quantum minimum spacing
(xtree, aspen-11, aspen-M, falcon), and heavier benchmarks (bv-16, qgan-9)
sit orders of magnitude below bv-4.
"""

from __future__ import annotations

from repro.circuits import PAPER_BENCHMARKS
from repro.evaluation import format_fig8
from repro.legalization import PAPER_ENGINE_ORDER
from repro.topologies import PAPER_TOPOLOGIES

#: Paper Fig. 8 per-topology mean fidelities (engine → mean across the
#: seven benchmarks), for side-by-side comparison in the bench output.
PAPER_MEANS = {
    "grid": {"qgdp": 0.3746, "q-abacus": 0.3717, "q-tetris": 0.3717, "abacus": 0.0276, "tetris": 0.0276},
    "xtree": {"qgdp": 0.3118, "q-abacus": 0.2006, "q-tetris": 0.2006, "abacus": 0.0029, "tetris": 0.0029},
    "falcon": {"qgdp": 0.1995, "q-abacus": 0.0176, "q-tetris": 0.0174, "abacus": 0.0, "tetris": 0.0},
    "eagle": {"qgdp": 0.0535, "q-abacus": 0.0318, "q-tetris": 0.0319, "abacus": 0.0, "tetris": 0.0},
    "aspen11": {"qgdp": 0.1128, "q-abacus": 0.0705, "q-tetris": 0.0913, "abacus": 0.0, "tetris": 0.0},
    "aspenm": {"qgdp": 0.1034, "q-abacus": 0.0783, "q-tetris": 0.0753, "abacus": 0.0027, "tetris": 0.0027},
}


def test_fig8_fidelity_table(benchmark, fidelity_results, eval_config):
    """Regenerate and print the Fig. 8 table; check the headline shapes."""

    def summarize():
        means = {}
        for topo in PAPER_TOPOLOGIES:
            means[topo] = {}
            for engine in PAPER_ENGINE_ORDER:
                cells = [
                    fidelity_results[(topo, bench, engine)].mean
                    for bench in PAPER_BENCHMARKS
                    if (topo, bench, engine) in fidelity_results
                ]
                means[topo][engine] = sum(cells) / len(cells)
        return means

    means = benchmark.pedantic(summarize, rounds=1, iterations=1)

    print()
    print(format_fig8(fidelity_results, PAPER_TOPOLOGIES, PAPER_BENCHMARKS, PAPER_ENGINE_ORDER))
    print("paper vs measured per-topology means (engine: paper / measured):")
    for topo in PAPER_TOPOLOGIES:
        row = "  ".join(
            f"{e}: {PAPER_MEANS[topo][e]:.4f}/{means[topo][e]:.4f}"
            for e in PAPER_ENGINE_ORDER
        )
        print(f"  {topo:8s} {row}")

    # Shape assertions (who wins), not absolute values.  On the grid the
    # classical engines leave no qubit-spacing violations under our GP
    # substrate, so qGDP and Abacus are a statistical tie there (within
    # 5%); everywhere else qGDP strictly wins.  See EXPERIMENTS.md.
    for topo in PAPER_TOPOLOGIES:
        assert means[topo]["qgdp"] >= means[topo]["tetris"] * 0.95, topo
        slack = 0.95 if topo == "grid" else 0.999
        assert means[topo]["qgdp"] >= means[topo]["abacus"] * slack, topo
    # Classical engines collapse on the octagon and tree devices.
    for topo in ("xtree", "aspen11", "aspenm"):
        assert means[topo]["tetris"] < 0.7 * means[topo]["qgdp"], topo
    # Heavier benchmarks are strictly harder.
    for topo in PAPER_TOPOLOGIES:
        bv4 = fidelity_results[(topo, "bv-4", "qgdp")].mean
        bv16 = fidelity_results[(topo, "bv-16", "qgdp")].mean
        assert bv16 < bv4, topo
