"""Fig. 9 — frequency-hotspot proportion Ph and coupler crossings X.

Expected shape (paper Fig. 9): qGDP has the lowest mean Ph and by far the
fewest crossings; the quantum hybrids sit between qGDP and the classical
engines on Ph; crossings do not correlate tightly with Ph (the paper's
observation about the non-local nature of resonator crosstalk).
"""

from __future__ import annotations

from repro.evaluation import format_fig9
from repro.legalization import PAPER_ENGINE_ORDER
from repro.topologies import PAPER_TOPOLOGIES

#: Paper Fig. 9 means across topologies.
PAPER_MEAN_PH = {"qgdp": 0.55, "q-abacus": 3.74, "q-tetris": 3.80, "abacus": 6.00, "tetris": 6.01}
PAPER_MEAN_X = {"qgdp": 1.2, "q-abacus": 32.8, "q-tetris": 33.5, "abacus": 19.8, "tetris": 20.8}


def test_fig9_hotspots_and_crossings(benchmark, engine_evaluations):
    def summarize():
        means = {}
        for engine in PAPER_ENGINE_ORDER:
            ph = [
                engine_evaluations[t][engine].metrics.ph_percent
                for t in PAPER_TOPOLOGIES
            ]
            crosses = [
                engine_evaluations[t][engine].metrics.crossings
                for t in PAPER_TOPOLOGIES
            ]
            means[engine] = (
                sum(ph) / len(ph),
                sum(crosses) / len(crosses),
            )
        return means

    means = benchmark.pedantic(summarize, rounds=1, iterations=1)

    print()
    print(format_fig9(engine_evaluations, PAPER_TOPOLOGIES, PAPER_ENGINE_ORDER))
    print("paper vs measured means (engine: Ph paper/measured, X paper/measured):")
    for engine in PAPER_ENGINE_ORDER:
        ph, crosses = means[engine]
        print(
            f"  {engine:9s} Ph {PAPER_MEAN_PH[engine]:5.2f}/{ph:5.2f}  "
            f"X {PAPER_MEAN_X[engine]:5.1f}/{crosses:5.1f}"
        )

    # Shape: qGDP minimizes both means.
    qgdp_ph, qgdp_x = means["qgdp"]
    for engine in ("abacus", "tetris"):
        assert qgdp_ph <= means[engine][0] + 1e-9
    assert qgdp_x <= min(means[e][1] for e in PAPER_ENGINE_ORDER) + 1e-9
    # Classical engines leave higher hotspot pressure than qGDP on the
    # spacing-constrained topologies.
    for topo in ("xtree", "aspen11", "aspenm", "falcon"):
        q = engine_evaluations[topo]["qgdp"].metrics
        t = engine_evaluations[topo]["tetris"].metrics
        assert q.spacing_violations == 0
        assert t.spacing_violations >= q.spacing_violations
