"""Table III — detailed placement evaluation: qGDP-LG vs qGDP-DP.

Expected shape (paper Table III): DP matches or improves Iedge on every
topology, never increases crossings or Ph, and cuts the hotspot-qubit
count HQ substantially; #Cells per topology matches the paper within a
few percent (same Eq. 6 partitioning).
"""

from __future__ import annotations

from repro.evaluation import format_table3
from repro.topologies import PAPER_TOPOLOGIES

#: Paper Table III rows: topology -> (#Cells, LG (Iedge, X, Ph, HQ), DP (...)).
PAPER_TABLE3 = {
    "grid": (490, ("37/40", 3, 1.38, 11), ("37/40", 3, 0.81, 5)),
    "xtree": (660, ("47/52", 5, 1.37, 20), ("52/52", 0, 0.34, 10)),
    "falcon": (354, ("28/28", 0, 0.92, 8), ("28/28", 0, 0.0, 0)),
    "eagle": (1801, ("142/144", 2, 1.27, 68), ("143/144", 1, 0.32, 15)),
    "aspen11": (598, ("46/48", 2, 0.91, 20), ("48/48", 0, 0.66, 9)),
    "aspenm": (1310, ("98/106", 8, 2.71, 50), ("103/106", 3, 0.76, 14)),
}


def test_table3_detailed_placement(benchmark, engine_evaluations):
    def collect():
        rows = {}
        for topo in PAPER_TOPOLOGIES:
            ev = engine_evaluations[topo]["qgdp"]
            rows[topo] = (ev.metrics, ev.dp_metrics)
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    print()
    print(format_table3(engine_evaluations, PAPER_TOPOLOGIES))
    print("paper reference rows:")
    for topo, (cells, lg, dp) in PAPER_TABLE3.items():
        print(f"  {topo:8s} #Cells={cells} LG={lg} DP={dp}")

    for topo in PAPER_TOPOLOGIES:
        lg, dp = rows[topo]
        assert dp is not None, topo
        # #Cells within 6% of the paper (Eq. 6 partitioning).
        paper_cells = PAPER_TABLE3[topo][0]
        assert abs(lg.num_cells - paper_cells) / paper_cells < 0.06, topo
        # DP never regresses LG.
        assert dp.unified >= lg.unified, topo
        assert dp.crossings <= lg.crossings, topo
        assert dp.ph_percent <= lg.ph_percent + 1e-9, topo
        assert dp.hq <= lg.hq, topo
        # Both stages stay legal.
        assert lg.legality_violations == 0 and dp.legality_violations == 0
