"""Ablation — attachment-seeded vs GP-nearest first-block placement.

Paper Fig. 6c shows the first wire block legalized adjacent to its qubit
pad; without that seed the grown region can start mid-channel, leaving a
longer exposed connection trace (more bridges).  This bench runs
integration-aware legalization both ways and compares crossings and
trace-exposure hotspots.
"""

from __future__ import annotations

import pytest

from repro.core.config import QGDPConfig
from repro.frequency.hotspots import hotspot_proportion
from repro.legalization import BinGrid, integration_aware_legalize, legalize_qubits
from repro.metrics import total_clusters
from repro.placement import GlobalPlacer, build_layout
from repro.routing import count_crossings
from repro.topologies import get_topology


@pytest.mark.parametrize("topology_name", ["falcon", "aspenm"])
def test_attachment_seeding_ablation(benchmark, topology_name):
    cfg = QGDPConfig()
    topology = get_topology(topology_name)

    def run_variant(attach: bool):
        netlist, grid = build_layout(topology, cfg)
        GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)
        legalize_qubits(netlist, grid, cfg, quantum=True)
        bins = BinGrid(grid)
        for qubit in netlist.qubits:
            bins.occupy_rect(qubit.rect, qubit.node_id)
        integration_aware_legalize(
            netlist.resonators, bins, netlist if attach else None
        )
        return {
            "crossings": count_crossings(netlist, bins).total,
            "clusters": total_clusters(netlist),
            "ph": hotspot_proportion(netlist, cfg.reach, cfg.delta_c),
        }

    def run_both():
        return {
            "attached": run_variant(True),
            "gp-nearest": run_variant(False),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print(f"== attachment-seeding ablation on {topology_name} ==")
    for variant, row in results.items():
        print(
            f"  {variant:10s} X={row['crossings']:3d}  "
            f"clusters={row['clusters']:4d}  Ph={row['ph']:.2f}%"
        )

    # Attachment seeding never bridges more and never fragments more.
    assert (
        results["attached"]["crossings"]
        <= results["gp-nearest"]["crossings"] + 1
    )
    assert (
        results["attached"]["clusters"]
        <= results["gp-nearest"]["clusters"] + 1
    )
