"""Ablation — minimum-spacing schedule (Section III-C trade-off).

Larger initial spacing buys crosstalk isolation but costs displacement and
solver retries; the paper's greedy relaxation starts stringent and backs
off only when infeasible.  This bench sweeps the schedule's starting point
and reports attempts, displacement and hotspot pressure.
"""

from __future__ import annotations

from repro.core.config import QGDPConfig
from repro.frequency.hotspots import hotspot_proportion
from repro.legalization import legalize_qubits
from repro.legalization.engines import get_engine, run_legalization
from repro.metrics import qubit_spacing_violations
from repro.placement import GlobalPlacer, build_layout
from repro.topologies import get_topology


def test_spacing_schedule_ablation(benchmark):
    topology = get_topology("aspen11")

    def sweep():
        rows = {}
        for initial in (1.0, 2.0, 3.0):
            cfg = QGDPConfig(initial_qubit_spacing=initial)
            netlist, grid = build_layout(topology, cfg)
            GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)
            gp = netlist.snapshot()
            result = legalize_qubits(netlist, grid, cfg, quantum=True)
            netlist.restore(gp)
            run_legalization(netlist, grid, get_engine("qgdp"), cfg)
            rows[initial] = {
                "attempts": result.attempts,
                "spacing_used": result.spacing_used,
                "displacement": result.total_displacement,
                "violations": len(
                    qubit_spacing_violations(netlist, cfg.min_qubit_spacing)
                ),
                "ph": hotspot_proportion(netlist, cfg.reach, cfg.delta_c),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("== spacing-schedule ablation on aspen11 ==")
    for initial, row in rows.items():
        print(
            f"  start={initial:.0f}lb attempts={row['attempts']} "
            f"used={row['spacing_used']:.0f}lb "
            f"displacement={row['displacement']:7.1f} "
            f"violations={row['violations']} Ph={row['ph']:.2f}%"
        )

    # The quantum minimum is always met, whatever the starting point.
    assert all(row["violations"] == 0 for row in rows.values())
    # Stricter starting points can only increase qubit displacement.
    assert rows[1.0]["displacement"] <= rows[3.0]["displacement"] + 1e-6
    # Relaxation only ever settles at >= the configured minimum.
    assert all(row["spacing_used"] >= 1.0 for row in rows.values())
