"""Fig. 1 — layout quality across placement stages (GP → LG → DP).

The paper's opening figure is conceptual: legalization is brief but
decides layout quality; a quantum-aware LG preserves the GP solution while
a classical LG damages it irreparably (DP cannot recover it).  This bench
measures that story: the same GP solution is pushed through the qGDP flow
and through a classical (Tetris) flow, each followed by a DP pass, and
layout quality (a mean-fidelity proxy over benchmarks) is traced per
stage alongside stage runtimes.
"""

from __future__ import annotations

import pytest

from repro.circuits import get_benchmark
from repro.compiler import transpile
from repro.core.config import QGDPConfig
from repro.core.pipeline import QGDPFlow
from repro.crosstalk import program_fidelity
from repro.routing import count_crossings
from repro.topologies import get_topology

BENCHES = ("bv-4", "qaoa-4", "ising-4")


def _mean_fidelity(flow, topology, cfg, seeds=6):
    crossings = count_crossings(flow.netlist, flow.bins)
    values = []
    for name in BENCHES:
        for k in range(seeds):
            transpiled = transpile(
                get_benchmark(name), topology, seed=31 + 977 * k
            )
            values.append(
                program_fidelity(
                    flow.netlist, transpiled, crossings, cfg
                ).fidelity
            )
    return sum(values) / len(values)


@pytest.mark.parametrize("topology_name", ["falcon", "aspen11"])
def test_fig1_stage_quality(benchmark, topology_name):
    cfg = QGDPConfig()
    topology = get_topology(topology_name)

    def run_both():
        results = {}
        for engine in ("qgdp", "tetris"):
            flow = QGDPFlow(topology, cfg)
            report = flow.run(engine=engine, detailed=True, seed=cfg.seed)
            lg_fid = None  # fidelity needs bins; evaluate after LG and DP
            # Re-run without DP for the LG-stage quality point.
            flow_lg = QGDPFlow(topology, cfg)
            flow_lg.run(engine=engine, detailed=False, seed=cfg.seed)
            lg_fid = _mean_fidelity(flow_lg, topology, cfg)
            dp_fid = _mean_fidelity(flow, topology, cfg)
            results[engine] = {
                "lg_fidelity": lg_fid,
                "dp_fidelity": dp_fid,
                "lg_runtime_s": report.stage("lg").runtime_s,
                "dp_runtime_s": report.stage("dp").runtime_s,
                "gp_runtime_s": report.stage("gp").runtime_s,
            }
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print(f"== Fig. 1 stage-quality story on {topology_name} ==")
    for engine, row in results.items():
        print(
            f"  {engine:7s} LG fidelity {row['lg_fidelity']:.4f} -> "
            f"DP fidelity {row['dp_fidelity']:.4f}   "
            f"(gp {row['gp_runtime_s']:.2f}s, lg {row['lg_runtime_s']:.2f}s, "
            f"dp {row['dp_runtime_s']:.2f}s)"
        )

    quantum = results["qgdp"]
    classic = results["tetris"]
    # Quantum-aware LG preserves quality...
    assert quantum["lg_fidelity"] >= classic["lg_fidelity"]
    # ...and the classical damage is not repaired by DP (the Fig. 1 gap).
    assert quantum["dp_fidelity"] >= classic["dp_fidelity"]
    # LG is brief relative to GP, as the paper stresses.
    assert quantum["lg_runtime_s"] < quantum["gp_runtime_s"] * 2
