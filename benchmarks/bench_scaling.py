"""Scalability — qGDP-LG runtime and quality vs. device size.

The paper motivates qGDP by the scaling of NISQ devices (25 → 127 qubits
in Table I).  This bench sweeps square grids from 16 to 64 qubits and
records legalization runtime and integration quality; runtime should grow
polynomially (the LP is the dominant term, O(n²) constraints) while
integration stays near-perfect.
"""

from __future__ import annotations

from repro.core.config import QGDPConfig
from repro.legalization import get_engine, run_legalization
from repro.metrics import check_legality, integration_ratio
from repro.placement import GlobalPlacer, build_layout
from repro.topologies import grid_topology


def test_qgdp_scaling_on_grids(benchmark):
    cfg = QGDPConfig()

    def sweep():
        rows = {}
        for side in (4, 5, 6, 8):
            topology = grid_topology(side)
            netlist, grid = build_layout(topology, cfg)
            GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)
            outcome = run_legalization(netlist, grid, get_engine("qgdp"), cfg)
            unified, total = integration_ratio(netlist)
            rows[side * side] = {
                "tq_ms": outcome.qubit_time_s * 1e3,
                "te_ms": outcome.resonator_time_s * 1e3,
                "unified": unified,
                "total": total,
                "legal": not check_legality(netlist, grid),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("== qGDP-LG scaling on square grids ==")
    for qubits, row in rows.items():
        print(
            f"  {qubits:3d} qubits  tq {row['tq_ms']:7.1f} ms  "
            f"te {row['te_ms']:6.1f} ms  Iedge {row['unified']}/{row['total']}"
        )

    for qubits, row in rows.items():
        assert row["legal"], f"{qubits}-qubit layout illegal"
        assert row["unified"] >= 0.9 * row["total"], qubits
    # Polynomial, not explosive: 4x the qubits costs < 60x the time.
    assert rows[64]["tq_ms"] < 60 * max(rows[16]["tq_ms"], 1.0)
