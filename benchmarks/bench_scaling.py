"""Scalability — qGDP-LG runtime and quality vs. device size.

The paper motivates qGDP by the scaling of NISQ devices (25 → 127 qubits
in Table I).  This bench sweeps square grids from 16 to 576 qubits
(sides 4–24, well past the paper's largest device) and records
legalization *and* detailed-placement runtime alongside
integration quality; runtime should grow polynomially (the LP is the
dominant term, O(n²) constraints) while integration stays near-perfect.

Each run also dumps the wall-clock numbers to ``BENCH_scaling.json`` at
the repo root so successive PRs leave a perf trajectory (compare against
the committed baseline; see PERFORMANCE.md for the recorded history).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.config import QGDPConfig
from repro.detailed import DetailedPlacer
from repro.legalization import get_engine, run_legalization
from repro.metrics import check_legality, integration_ratio
from repro.placement import GlobalPlacer, build_layout
from repro.topologies import grid_topology

SIDES = (4, 5, 6, 8, 10, 12, 16, 20, 24)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"


def run_sweep(sides=SIDES):
    """place → legalize → detailed-place one square grid per side."""
    rows = {}
    for side in sides:
        cfg = QGDPConfig()
        topology = grid_topology(side)
        netlist, grid = build_layout(topology, cfg)
        GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)
        outcome = run_legalization(netlist, grid, get_engine("qgdp"), cfg)
        t0 = time.perf_counter()
        dp = DetailedPlacer(cfg).run(netlist, outcome.bins)
        td = time.perf_counter() - t0
        unified, total = integration_ratio(netlist)
        rows[side * side] = {
            "tq_ms": outcome.qubit_time_s * 1e3,
            "te_ms": outcome.resonator_time_s * 1e3,
            "td_ms": td * 1e3,
            "dp_flagged": dp.flagged,
            "dp_accepted": dp.accepted,
            "unified": unified,
            "total": total,
            "legal": not check_legality(netlist, grid),
        }
    return rows


def test_qgdp_scaling_on_grids(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print("== qGDP-LG scaling on square grids ==")
    for qubits, row in rows.items():
        print(
            f"  {qubits:3d} qubits  tq {row['tq_ms']:7.1f} ms  "
            f"te {row['te_ms']:6.1f} ms  td {row['td_ms']:7.1f} ms  "
            f"Iedge {row['unified']}/{row['total']}"
        )

    RESULT_PATH.write_text(json.dumps(rows, indent=2) + "\n")
    print(f"  wall-clock trajectory written to {RESULT_PATH.name}")

    for qubits, row in rows.items():
        assert row["legal"], f"{qubits}-qubit layout illegal"
        assert row["unified"] >= 0.9 * row["total"], qubits
    # Polynomial, not explosive: 4x the qubits costs < 60x the time.
    assert rows[64]["tq_ms"] < 60 * max(rows[16]["tq_ms"], 1.0)
    assert rows[144]["tq_ms"] < 60 * max(rows[36]["tq_ms"], 1.0)
    # The legalize→detailed hot path must scale polynomially too (the
    # pre-array seed blew this guard up by ~20x at 64 qubits).
    small = max(rows[16]["te_ms"] + rows[16]["td_ms"], 1.0)
    assert rows[64]["te_ms"] + rows[64]["td_ms"] < 60 * small
    assert rows[144]["te_ms"] + rows[144]["td_ms"] < 200 * small
    # The 256–576-qubit tail (sides 16–24, past the paper's largest
    # device) must stay polynomial as well: 4x the qubits from 144,
    # and 2.25x from 256, each within the same generous envelope.
    assert rows[576]["tq_ms"] < 60 * max(rows[144]["tq_ms"], 1.0)
    mid = max(rows[256]["te_ms"] + rows[256]["td_ms"], 1.0)
    assert rows[576]["te_ms"] + rows[576]["td_ms"] < 60 * mid
