"""Analysis-kernel timings: qubit LP, MST trace build, crossing count.

These are the three kernels PERFORMANCE.md tracks individually — the LP
macro legalization (dominant ``tq`` term at ≥100 qubits), the MST trace
build (dominant cold-evaluation cost) and the sweep-line crossing count
(every Fig. 9 / Table III ``X`` entry).  The LP is timed both with its
default levers (transitive arc reduction + solution-level warm start)
and in the historical cold full-graph mode, and the trace-pair
intersection scan both batched (one vectorized orientation pass over
all candidate pairs) and with the scalar per-pair kernel, so the perf
trajectory records what each lever buys.  Each run dumps best-of-N
wall-clock numbers to ``BENCH_kernels.json`` at the repo root so
successive PRs extend the per-kernel perf trajectory alongside
``BENCH_scaling.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.config import QGDPConfig
from repro.legalization import get_engine, run_legalization
from repro.legalization.macro_lp import legalize_macros
from repro.legalization.qubit_legalizer import legalize_qubits
from repro.placement import GlobalPlacer, build_layout
from repro.routing.crossings import (
    _candidate_pairs,
    _pair_intersection_counts,
    _trace_intersections,
    build_traces,
    count_crossings,
    trace_bbox,
)
from repro.topologies import grid_topology

SIDES = (8, 12)
REPEATS = 5

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _best_ms(fn, repeats=REPEATS) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times) * 1e3


def run_kernels(sides=SIDES) -> dict:
    """Best-of-N per-kernel wall times on square grids."""
    rows = {}
    for side in sides:
        cfg = QGDPConfig()
        netlist, grid = build_layout(grid_topology(side), cfg)
        GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)
        snapshot = netlist.snapshot()

        def lp():
            netlist.restore(snapshot)
            legalize_qubits(netlist, grid, cfg)

        lp_ms = _best_ms(lp)

        # Warm vs cold on the same macro LP instance: default levers
        # (arc reduction + warm presolve) against the historical cold
        # full-graph solve.
        indices = [q.index for q in netlist.qubits]
        q_positions = {q.index: (q.x, q.y) for q in netlist.qubits}
        q_sizes = {q.index: (q.w, q.h) for q in netlist.qubits}
        spacing = cfg.min_qubit_spacing
        lp_warm_ms = _best_ms(
            lambda: legalize_macros(
                indices, q_positions, q_sizes, grid, spacing
            )
        )
        lp_cold_ms = _best_ms(
            lambda: legalize_macros(
                indices, q_positions, q_sizes, grid, spacing,
                reduce_arcs=False, warm_start=False,
            )
        )

        netlist.restore(snapshot)
        outcome = run_legalization(netlist, grid, get_engine("qgdp"), cfg)
        traces_ms = _best_ms(lambda: build_traces(netlist, cfg.lb))
        traces = build_traces(netlist, cfg.lb)
        crossings_cached_ms = _best_ms(
            lambda: count_crossings(netlist, outcome.bins, traces=traces)
        )
        crossings_cold_ms = _best_ms(
            lambda: count_crossings(netlist, outcome.bins)
        )

        # Batched vs scalar orientation tests over the layout's actual
        # surviving candidate pairs.
        bboxes = {key: trace_bbox(trace) for key, trace in traces.items()}
        pairs = _candidate_pairs(sorted(traces), bboxes)
        orient_batched_ms = _best_ms(
            lambda: _pair_intersection_counts(traces, pairs)
        )
        orient_scalar_ms = _best_ms(
            lambda: {
                pair: _trace_intersections(traces[pair[0]], traces[pair[1]])
                for pair in pairs
            }
        )
        rows[side * side] = {
            "lp_ms": lp_ms,
            "lp_warm_ms": lp_warm_ms,
            "lp_cold_ms": lp_cold_ms,
            "traces_ms": traces_ms,
            "crossings_cached_ms": crossings_cached_ms,
            "crossings_cold_ms": crossings_cold_ms,
            "orient_batched_ms": orient_batched_ms,
            "orient_scalar_ms": orient_scalar_ms,
        }
    return rows


def test_kernel_timings(benchmark):
    rows = benchmark.pedantic(run_kernels, rounds=1, iterations=1)

    print()
    print("== analysis kernels on square grids (best of "
          f"{REPEATS}, ms) ==")
    for qubits, row in rows.items():
        print(
            f"  {qubits:3d} qubits  lp {row['lp_ms']:7.1f}  "
            f"(warm {row['lp_warm_ms']:5.1f} / cold {row['lp_cold_ms']:5.1f})  "
            f"traces {row['traces_ms']:6.1f}  "
            f"crossings {row['crossings_cached_ms']:5.1f} cached / "
            f"{row['crossings_cold_ms']:5.1f} cold  "
            f"orient {row['orient_batched_ms']:5.2f} batched / "
            f"{row['orient_scalar_ms']:5.2f} scalar"
        )

    RESULT_PATH.write_text(json.dumps(rows, indent=2) + "\n")
    print(f"  kernel trajectory written to {RESULT_PATH.name}")

    # Generous absolute guards: an order of magnitude above the
    # vectorized kernels, far below a pure-Python regression.
    worst = rows[144]
    assert worst["lp_ms"] < 1000.0
    assert worst["traces_ms"] < 500.0
    assert worst["crossings_cold_ms"] < 800.0
