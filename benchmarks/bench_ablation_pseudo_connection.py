"""Ablation — pseudo connections vs snake connections (Fig. 5).

The paper motivates pseudo connections by the stringy post-GP resonator
footprint the snake netlist produces: harder legalization (more
displacement), more clusters, larger crosstalk perimeter.  This bench runs
the same flow under both net styles and compares resonator legalization
displacement, cluster count and Ph.
"""

from __future__ import annotations

import pytest

from repro.core.config import QGDPConfig
from repro.frequency.hotspots import hotspot_proportion
from repro.legalization import get_engine, run_legalization
from repro.metrics import displacement_stats, total_clusters
from repro.netlist import ConnectionStyle
from repro.placement import GlobalPlacer, build_layout
from repro.topologies import get_topology


#: Acceptable pseudo/snake displacement ratio per topology.  On Falcon the
#: compact blobs legalize with clearly less movement; the sparse 5x5 grid
#: is a wash (both styles legalize easily), so only a loose bound applies.
_DISPLACEMENT_RATIO = {"falcon": 1.05, "grid": 1.35}


@pytest.mark.parametrize("topology_name", ["falcon", "grid"])
def test_pseudo_connection_ablation(benchmark, topology_name):
    cfg = QGDPConfig()
    topology = get_topology(topology_name)

    def run_style(style):
        netlist, grid = build_layout(topology, cfg)
        GlobalPlacer(cfg).run(netlist, grid, style=style, seed=cfg.seed)
        gp_positions = netlist.snapshot()
        run_legalization(netlist, grid, get_engine("qgdp"), cfg)
        moves = displacement_stats(gp_positions, netlist.snapshot(), prefix="b")
        return {
            "displacement": moves.total,
            "clusters": total_clusters(netlist),
            "ph": hotspot_proportion(netlist, cfg.reach, cfg.delta_c),
        }

    def run_both():
        return {
            "pseudo": run_style(ConnectionStyle.PSEUDO),
            "snake": run_style(ConnectionStyle.SNAKE),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print(f"== pseudo-connection ablation on {topology_name} ==")
    for style, row in results.items():
        print(
            f"  {style:6s} block displacement {row['displacement']:8.1f}  "
            f"clusters {row['clusters']:4d}  Ph {row['ph']:.2f}%"
        )

    # Pseudo connections make legalization gentler: less block movement
    # (strict on the congested Falcon, loose on the easy grid).
    assert (
        results["pseudo"]["displacement"]
        <= results["snake"]["displacement"] * _DISPLACEMENT_RATIO[topology_name]
    )
    # And never fragment more.
    assert results["pseudo"]["clusters"] <= results["snake"]["clusters"] + 1
