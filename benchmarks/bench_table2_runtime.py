"""Table II — legalization runtime: tq (qubits) and te (resonators), ms.

Expected shape (paper Table II): quantum qubit legalization (qGDP-LG,
Q-Abacus, Q-Tetris) costs more tq than the classical macro legalizer
(spacing relaxation retries); Eagle is the slowest topology by an order of
magnitude; all times stay in the millisecond range.

Absolute numbers differ from the paper (pure Python here vs. their C++
kernels on a Xeon E5-2687W), but within-table ratios are comparable.
"""

from __future__ import annotations

from repro.core.config import QGDPConfig
from repro.evaluation import format_table2
from repro.legalization import PAPER_ENGINE_ORDER, get_engine, run_legalization
from repro.placement import GlobalPlacer, build_layout
from repro.topologies import PAPER_TOPOLOGIES, get_topology

#: Paper Table II means (ms).
PAPER_MEAN_TQ = {"qgdp": 7.78, "q-abacus": 7.68, "q-tetris": 7.75, "abacus": 3.89, "tetris": 4.37}
PAPER_MEAN_TE = {"qgdp": 2.43, "q-abacus": 1.76, "q-tetris": 1.57, "abacus": 1.53, "tetris": 1.32}


def test_table2_legalization_runtime(benchmark, engine_evaluations):
    print()
    print(format_table2(engine_evaluations, PAPER_TOPOLOGIES, PAPER_ENGINE_ORDER))
    print("paper means (ms): tq", PAPER_MEAN_TQ, "te", PAPER_MEAN_TE)

    mean_tq = {
        engine: sum(
            engine_evaluations[t][engine].qubit_time_s for t in PAPER_TOPOLOGIES
        )
        / len(PAPER_TOPOLOGIES)
        for engine in PAPER_ENGINE_ORDER
    }
    # Shape: quantum qubit legalization costs at least as much as classical
    # (relaxation retries), echoing the paper's tq ordering.
    assert mean_tq["qgdp"] >= mean_tq["tetris"] * 0.8
    # The two largest devices (Eagle 127q, Aspen-M 80q) dominate tq within
    # every engine, as in the paper's Table II.
    for engine in PAPER_ENGINE_ORDER:
        times = {
            t: engine_evaluations[t][engine].qubit_time_s
            for t in PAPER_TOPOLOGIES
        }
        slowest_two = sorted(times, key=times.get)[-2:]
        assert "eagle" in slowest_two or "aspenm" in slowest_two
        assert times["eagle"] >= max(
            times[t] for t in ("grid", "falcon", "xtree", "aspen11")
        )

    # pytest-benchmark timing: one representative qGDP legalization on
    # Falcon (GP excluded), the unit Table II times.
    cfg = QGDPConfig()
    netlist, grid = build_layout(get_topology("falcon"), cfg)
    GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)
    gp_positions = netlist.snapshot()
    engine = get_engine("qgdp")

    def legalize_once():
        netlist.restore(gp_positions)
        return run_legalization(netlist, grid, engine, cfg)

    outcome = benchmark(legalize_once)
    assert outcome.qubit_time_s + outcome.resonator_time_s < 5.0
