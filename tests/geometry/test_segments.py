"""Segment intersection predicates."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import count_pairwise_crossings, segments_intersect

coords = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)


def test_plain_cross_detected():
    assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))


def test_parallel_segments_do_not_cross():
    assert not segments_intersect((0, 0), (2, 0), (0, 1), (2, 1))


def test_shared_endpoint_not_a_crossing():
    assert not segments_intersect((0, 0), (2, 2), (2, 2), (4, 0))


def test_collinear_overlap_not_a_crossing():
    assert not segments_intersect((0, 0), (4, 0), (2, 0), (6, 0))


def test_t_junction_not_a_proper_crossing():
    # q's endpoint lies on p's interior: not a transversal crossing.
    assert not segments_intersect((0, 0), (4, 0), (2, 0), (2, 3))


def test_near_miss_not_detected():
    assert not segments_intersect((0, 0), (2, 2), (0, 2), (0.9, 1.2))


def test_count_pairwise():
    a = [((0, 0), (4, 4)), ((0, 4), (4, 0))]
    b = [((0, 2), (4, 2))]
    assert count_pairwise_crossings(a, b) == 2
    assert count_pairwise_crossings(b, a) == 2


@given(points, points, points, points)
def test_intersection_is_symmetric(p1, p2, q1, q2):
    assert segments_intersect(p1, p2, q1, q2) == segments_intersect(
        q1, q2, p1, p2
    )


@given(points, points, points, points)
def test_intersection_invariant_to_endpoint_order(p1, p2, q1, q2):
    assert segments_intersect(p1, p2, q1, q2) == segments_intersect(
        p2, p1, q2, q1
    )


@given(points, points, points, points, coords, coords)
def test_intersection_translation_invariant(p1, p2, q1, q2, dx, dy):
    def shift(p):
        return (p[0] + dx, p[1] + dy)

    assert segments_intersect(p1, p2, q1, q2) == segments_intersect(
        shift(p1), shift(p2), shift(q1), shift(q2)
    )


@given(points, points, points)
def test_segment_never_crosses_degenerate(p1, p2, q):
    assert not segments_intersect(p1, p2, q, q)
