"""Point and distance helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, euclidean, manhattan

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def test_translated_moves_both_axes():
    p = Point(1.0, 2.0).translated(3.0, -4.0)
    assert p == Point(4.0, -2.0)


def test_point_is_immutable():
    p = Point(0.0, 0.0)
    with pytest.raises(AttributeError):
        p.x = 1.0


def test_manhattan_matches_hand_value():
    assert manhattan(Point(0, 0), Point(3, 4)) == 7.0


def test_euclidean_matches_hand_value():
    assert euclidean(Point(0, 0), Point(3, 4)) == 5.0


def test_as_tuple_round_trips():
    assert Point(1.5, -2.5).as_tuple() == (1.5, -2.5)


@given(coords, coords, coords, coords)
def test_distances_are_symmetric(x1, y1, x2, y2):
    a, b = Point(x1, y1), Point(x2, y2)
    assert manhattan(a, b) == manhattan(b, a)
    assert euclidean(a, b) == euclidean(b, a)


@given(coords, coords, coords, coords)
def test_euclidean_at_most_manhattan(x1, y1, x2, y2):
    a, b = Point(x1, y1), Point(x2, y2)
    assert euclidean(a, b) <= manhattan(a, b) + 1e-6


@given(coords, coords)
def test_self_distance_is_zero(x, y):
    p = Point(x, y)
    assert manhattan(p, p) == 0.0
    assert euclidean(p, p) == 0.0


@given(coords, coords, coords, coords, coords, coords)
def test_euclidean_triangle_inequality(x1, y1, x2, y2, x3, y3):
    a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
    assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-6


def test_manhattan_to_equals_module_function():
    a, b = Point(1, 2), Point(-3, 5)
    assert a.manhattan_to(b) == manhattan(a, b)
    assert math.isclose(a.euclidean_to(b), euclidean(a, b))
