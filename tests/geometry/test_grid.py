"""Site grid mapping and coverage."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect, SiteGrid


@pytest.fixture()
def grid():
    return SiteGrid(cols=8, rows=6, lb=1.0)


def test_rejects_degenerate_dimensions():
    with pytest.raises(ValueError):
        SiteGrid(cols=0, rows=5)
    with pytest.raises(ValueError):
        SiteGrid(cols=5, rows=5, lb=0.0)


def test_extents(grid):
    assert grid.width == 8.0
    assert grid.height == 6.0
    assert grid.num_sites == 48
    border = grid.border
    assert (border.xlo, border.ylo, border.xhi, border.yhi) == (0, 0, 8, 6)


def test_site_center_and_back(grid):
    center = grid.site_center(3, 2)
    assert center == Point(3.5, 2.5)
    assert grid.site_of(center) == (3, 2)


def test_site_center_out_of_grid_raises(grid):
    with pytest.raises(IndexError):
        grid.site_center(8, 0)


def test_site_of_clamps_outside_points(grid):
    assert grid.site_of(Point(-5.0, -5.0)) == (0, 0)
    assert grid.site_of(Point(100.0, 100.0)) == (7, 5)


def test_snap_is_idempotent(grid):
    p = grid.snap(Point(3.2, 4.9))
    assert grid.snap(p) == p


def test_clamp_rect_keeps_size_inside_border(grid):
    rect = Rect(0.0, 0.0, 3.0, 3.0)
    clamped = grid.clamp_rect(rect)
    assert clamped.inside(grid.border)
    assert (clamped.w, clamped.h) == (3.0, 3.0)


def test_sites_covered_macro(grid):
    rect = Rect(1.5, 1.5, 3.0, 3.0)  # covers cols 0-2, rows 0-2
    sites = grid.sites_covered(rect)
    assert len(sites) == 9
    assert (0, 0) in sites and (2, 2) in sites


def test_sites_covered_excludes_touching(grid):
    rect = Rect(0.5, 0.5, 1.0, 1.0)  # exactly site (0, 0)
    assert grid.sites_covered(rect) == [(0, 0)]


def test_neighbors4_corner_and_interior(grid):
    assert sorted(grid.neighbors4(0, 0)) == [(0, 1), (1, 0)]
    assert len(grid.neighbors4(3, 3)) == 4


@given(
    st.integers(0, 7),
    st.integers(0, 5),
)
def test_center_site_round_trip(col, row):
    grid = SiteGrid(cols=8, rows=6)
    assert grid.site_of(grid.site_center(col, row)) == (col, row)


@given(st.floats(0.1, 5.0))
def test_round_trip_with_pitch(lb):
    grid = SiteGrid(cols=5, rows=5, lb=lb)
    assert grid.site_of(grid.site_center(2, 3)) == (2, 3)
