"""Rectangle predicates and pairwise measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Rect,
    adjacency_length,
    gap_between,
    overlap_area,
    overlap_length_x,
    overlap_length_y,
)

centers = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
sizes = st.floats(0.1, 20, allow_nan=False, allow_infinity=False)
rects = st.builds(Rect, centers, centers, sizes, sizes)


def test_bounds_from_center_and_size():
    r = Rect(2.0, 3.0, 4.0, 6.0)
    assert (r.xlo, r.xhi, r.ylo, r.yhi) == (0.0, 4.0, 0.0, 6.0)
    assert r.area == 24.0


def test_from_bounds_round_trips():
    r = Rect.from_bounds(1.0, 2.0, 5.0, 8.0)
    assert (r.cx, r.cy, r.w, r.h) == (3.0, 5.0, 4.0, 6.0)


def test_from_bounds_rejects_degenerate():
    with pytest.raises(ValueError):
        Rect.from_bounds(1.0, 0.0, 0.0, 1.0)


def test_overlapping_rects_detected():
    a = Rect(0, 0, 2, 2)
    b = Rect(1, 1, 2, 2)
    assert a.overlaps(b)
    assert overlap_area(a, b) == pytest.approx(1.0)


def test_touching_edges_do_not_overlap():
    a = Rect(0, 0, 2, 2)
    b = Rect(2, 0, 2, 2)  # shares the x=1 edge
    assert not a.overlaps(b)
    assert gap_between(a, b) == 0.0


def test_diagonal_gap_is_euclidean():
    a = Rect(0, 0, 2, 2)
    b = Rect(5, 5, 2, 2)  # corner gap of (3, 3)
    assert gap_between(a, b) == pytest.approx((18) ** 0.5)


def test_inside_border():
    border = Rect(5, 5, 10, 10)
    assert Rect(5, 5, 2, 2).inside(border)
    assert not Rect(9.9, 5, 2, 2).inside(border)


def test_contains_point_boundary_inclusive():
    r = Rect(0, 0, 2, 2)
    from repro.geometry import Point

    assert r.contains_point(Point(1.0, 0.0))
    assert not r.contains_point(Point(1.1, 0.0))


def test_inflated_grows_every_side():
    r = Rect(0, 0, 2, 2).inflated(0.5)
    assert (r.w, r.h) == (3.0, 3.0)
    assert (r.cx, r.cy) == (0.0, 0.0)


def test_moved_to_preserves_size():
    r = Rect(0, 0, 2, 4).moved_to(7, 8)
    assert (r.cx, r.cy, r.w, r.h) == (7, 8, 2, 4)


def test_adjacency_length_facing_edges():
    a = Rect(0, 0, 2, 2)
    b = Rect(3, 0, 2, 2)  # gap 1, facing vertically over length 2
    assert adjacency_length(a, b, reach=2.0) == pytest.approx(2.0)


def test_adjacency_length_zero_beyond_reach():
    a = Rect(0, 0, 2, 2)
    b = Rect(10, 0, 2, 2)
    assert adjacency_length(a, b, reach=2.0) == 0.0


@given(rects, rects)
def test_overlap_measures_symmetric(a, b):
    assert overlap_length_x(a, b) == pytest.approx(overlap_length_x(b, a))
    assert overlap_length_y(a, b) == pytest.approx(overlap_length_y(b, a))
    assert overlap_area(a, b) == pytest.approx(overlap_area(b, a))
    assert gap_between(a, b) == pytest.approx(gap_between(b, a))


@given(rects, rects)
def test_gap_zero_iff_touching_or_overlapping(a, b):
    gap = gap_between(a, b)
    assert gap >= 0.0
    if a.overlaps(b):
        assert gap == 0.0


@given(rects)
def test_rect_overlaps_itself(r):
    assert r.overlaps(r)
    assert overlap_area(r, r) == pytest.approx(r.area, rel=1e-6)


@given(rects, rects)
def test_overlap_area_bounded_by_smaller_rect(a, b):
    assert overlap_area(a, b) <= min(a.area, b.area) + 1e-6
