"""Headline paper claims, asserted at test scale (small seed counts).

The full sweeps live in ``benchmarks/``; these tests pin the qualitative
results the paper leads with so a regression is caught by ``pytest tests``
alone.
"""

import pytest

from repro import (
    EvaluationConfig,
    QGDPConfig,
    evaluate_engines,
    evaluate_fidelity,
)

TOPOLOGIES = ["falcon", "aspen11"]
ENGINES = ["qgdp", "q-tetris", "tetris"]
BENCHMARKS = ["bv-4", "qaoa-4"]


@pytest.fixture(scope="module")
def eval_config():
    return EvaluationConfig(num_seeds=4, config=QGDPConfig(gp_iterations=120))


@pytest.fixture(scope="module")
def cells(eval_config):
    return evaluate_fidelity(TOPOLOGIES, BENCHMARKS, ENGINES, eval_config)


@pytest.fixture(scope="module")
def evaluations(eval_config):
    return {
        name: evaluate_engines(name, ENGINES, eval_config, with_dp_for=("qgdp",))
        for name in TOPOLOGIES
    }


def _mean(cells, topo, engine):
    values = [cells[(topo, b, engine)].mean for b in BENCHMARKS]
    return sum(values) / len(values)


@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_qgdp_beats_classical_tetris(cells, topo):
    assert _mean(cells, topo, "qgdp") > _mean(cells, topo, "tetris")


@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_quantum_hybrid_beats_classical(cells, topo):
    assert _mean(cells, topo, "q-tetris") > _mean(cells, topo, "tetris")


@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_qgdp_matches_or_beats_hybrid(cells, topo):
    assert _mean(cells, topo, "qgdp") >= _mean(cells, topo, "q-tetris") * 0.98


@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_qgdp_best_integration(evaluations, topo):
    unified = {e: evaluations[topo][e].metrics.unified for e in ENGINES}
    assert unified["qgdp"] == max(unified.values())


@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_classical_engines_violate_spacing(evaluations, topo):
    assert evaluations[topo]["qgdp"].metrics.spacing_violations == 0
    assert evaluations[topo]["q-tetris"].metrics.spacing_violations == 0
    assert evaluations[topo]["tetris"].metrics.spacing_violations > 0


@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_dp_never_regresses_lg(evaluations, topo):
    lg = evaluations[topo]["qgdp"].metrics
    dp = evaluations[topo]["qgdp"].dp_metrics
    assert dp.unified >= lg.unified
    assert dp.crossings <= lg.crossings
    assert dp.ph_percent <= lg.ph_percent + 1e-9


@pytest.mark.parametrize("topo", TOPOLOGIES)
def test_all_layouts_legal(evaluations, topo):
    for engine in ENGINES:
        assert evaluations[topo][engine].metrics.legality_violations == 0
