"""Benchmark generators (Table I)."""

import pytest

from repro.circuits import (
    PAPER_BENCHMARKS,
    bernstein_vazirani,
    get_benchmark,
    ising_chain,
    qaoa_maxcut,
    qgan_ansatz,
)


def test_bv_structure():
    qc = bernstein_vazirani(4)
    assert qc.num_qubits == 4
    # All-ones secret: 3 oracle CX onto the ancilla.
    assert qc.count_2q() == 3
    # 3 input H + (X,H) ancilla prep + 3 closing H.
    assert qc.count_1q() == 8
    assert all(g.qubits[1] == 3 for g in qc.gates if g.num_qubits == 2)


def test_bv_custom_secret():
    qc = bernstein_vazirani(5, secret="0101")
    assert qc.count_2q() == 2


def test_bv_rejects_bad_secret():
    with pytest.raises(ValueError):
        bernstein_vazirani(4, secret="11")
    with pytest.raises(ValueError):
        bernstein_vazirani(4, secret="1x1")
    with pytest.raises(ValueError):
        bernstein_vazirani(1)


def test_qaoa_structure():
    qc = qaoa_maxcut(4, p=1)
    assert qc.count_2q() == 4  # ring edges
    qc2 = qaoa_maxcut(4, p=3)
    assert qc2.count_2q() == 12


def test_qaoa_custom_edges():
    qc = qaoa_maxcut(4, edges=[(0, 1), (2, 3)])
    assert qc.two_qubit_pairs() == [(0, 1), (2, 3)]


def test_qaoa_validation():
    with pytest.raises(ValueError):
        qaoa_maxcut(1)
    with pytest.raises(ValueError):
        qaoa_maxcut(4, p=0)


def test_ising_structure():
    qc = ising_chain(4, steps=3)
    assert qc.count_2q() == 3 * 3  # chain bonds per step
    pairs = set(qc.two_qubit_pairs())
    assert pairs == {(0, 1), (1, 2), (2, 3)}  # linear chain only


def test_ising_validation():
    with pytest.raises(ValueError):
        ising_chain(1)
    with pytest.raises(ValueError):
        ising_chain(4, steps=0)


def test_qgan_structure():
    qc = qgan_ansatz(4, layers=2)
    assert qc.count_2q() == 8  # ring entangler per layer
    assert qc.count_1q() == 12  # 2 layers * 4 RY + final 4 RY


def test_qgan_deterministic():
    a = qgan_ansatz(4, seed=7)
    b = qgan_ansatz(4, seed=7)
    assert [g.params for g in a.gates] == [g.params for g in b.gates]
    c = qgan_ansatz(4, seed=8)
    assert [g.params for g in a.gates] != [g.params for g in c.gates]


def test_registry_builds_paper_benchmarks():
    for name in PAPER_BENCHMARKS:
        qc = get_benchmark(name)
        expected = int(name.split("-")[1])
        assert qc.num_qubits == expected
        assert qc.name == name


def test_registry_rejects_bad_names():
    with pytest.raises(KeyError):
        get_benchmark("bv4")
    with pytest.raises(KeyError):
        get_benchmark("magic-4")
    with pytest.raises(KeyError):
        get_benchmark("bv-x")
