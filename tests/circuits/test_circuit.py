"""Circuit IR behaviour."""

import pytest

from repro.circuits import QuantumCircuit


def test_builders_chain():
    qc = QuantumCircuit(3).h(0).cx(0, 1).rz(2, 0.5)
    assert qc.num_gates == 3
    assert qc.count_1q() == 2
    assert qc.count_2q() == 1


def test_out_of_range_qubit_rejected():
    qc = QuantumCircuit(2)
    with pytest.raises(ValueError):
        qc.h(2)


def test_min_one_qubit():
    with pytest.raises(ValueError):
        QuantumCircuit(0)


def test_depth_serial_chain():
    qc = QuantumCircuit(1)
    for _ in range(5):
        qc.x(0)
    assert qc.depth() == 5


def test_depth_parallel_gates():
    qc = QuantumCircuit(4)
    for q in range(4):
        qc.h(q)
    assert qc.depth() == 1
    qc.cx(0, 1).cx(2, 3)
    assert qc.depth() == 2
    qc.cx(1, 2)
    assert qc.depth() == 3


def test_two_qubit_pairs_in_order():
    qc = QuantumCircuit(4).cx(0, 1).rzz(2, 3, 0.1).cx(1, 2)
    assert qc.two_qubit_pairs() == [(0, 1), (2, 3), (1, 2)]


def test_empty_circuit_depth_zero():
    assert QuantumCircuit(3).depth() == 0


def test_repr_contains_stats():
    qc = QuantumCircuit(2, name="demo").h(0)
    assert "demo" in repr(qc)
    assert "gates=1" in repr(qc)
