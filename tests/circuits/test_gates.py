"""Gate primitives."""

import pytest

from repro.circuits import Gate, GATE_DURATIONS_NS, is_two_qubit


def test_one_qubit_gate():
    g = Gate("h", (3,))
    assert g.num_qubits == 1
    assert g.duration_ns == GATE_DURATIONS_NS[1]
    assert not is_two_qubit(g)


def test_two_qubit_gate():
    g = Gate("cx", (0, 1))
    assert g.num_qubits == 2
    assert g.duration_ns == GATE_DURATIONS_NS[2]
    assert is_two_qubit(g)


def test_params_carried():
    g = Gate("rz", (0,), (1.57,))
    assert g.params == (1.57,)


def test_unknown_gate_rejected():
    with pytest.raises(ValueError):
        Gate("foo", (0,))


def test_wrong_arity_rejected():
    with pytest.raises(ValueError):
        Gate("h", (0, 1))
    with pytest.raises(ValueError):
        Gate("cx", (0,))


def test_duplicate_qubits_rejected():
    with pytest.raises(ValueError):
        Gate("cx", (2, 2))


def test_gates_hashable_and_frozen():
    g = Gate("x", (0,))
    assert hash(g) == hash(Gate("x", (0,)))
    with pytest.raises(Exception):
        g.name = "y"
