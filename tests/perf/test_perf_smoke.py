"""Perf smoke guard: the qGDP hot path must stay interactive.

One small end-to-end flow (place → legalize → detailed-place on a 5×5
qubit grid) with a *generous* wall-clock budget — an order of magnitude
above the array-backed implementation's typical time, but far below the
seed's pure-Python time, so only a genuine hot-path regression trips it.
Part of the tier-1 run; select just this guard with ``pytest -m
perf_smoke``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import QGDPConfig
from repro.detailed import DetailedPlacer
from repro.legalization import get_engine, run_legalization
from repro.metrics import check_legality, integration_ratio
from repro.placement import GlobalPlacer, build_layout
from repro.topologies import grid_topology

#: Budget for legalization + detailed placement on a 5x5 grid, seconds.
#: Typical: ~0.07 s array-backed; ~1.1 s for the pre-array seed code.
SMOKE_BUDGET_S = 10.0


@pytest.mark.perf_smoke
def test_flow_5x5_within_budget():
    cfg = QGDPConfig()
    netlist, grid = build_layout(grid_topology(5), cfg)
    GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)

    t0 = time.perf_counter()
    outcome = run_legalization(netlist, grid, get_engine("qgdp"), cfg)
    DetailedPlacer(cfg).run(netlist, outcome.bins)
    elapsed = time.perf_counter() - t0

    assert check_legality(netlist, grid) == []
    unified, total = integration_ratio(netlist)
    assert unified >= 0.9 * total
    assert elapsed < SMOKE_BUDGET_S, (
        f"legalize+detailed took {elapsed:.2f}s on a 5x5 grid "
        f"(budget {SMOKE_BUDGET_S}s) — hot-path regression?"
    )
