"""Perf smoke guards: the qGDP hot paths must stay interactive.

One small end-to-end flow (place → legalize → detailed-place on a 5×5
qubit grid), analysis-kernel guards (legalize + MST trace build +
crossing count on 12×12 and 16×16 grids), a 24×24 legalize-only guard
(576 qubits — the BENCH_scaling ceiling), and a cache-server
round-trip guard (50 artifacts pushed and read back through a live
``serve-cache``), each with a *generous* wall-clock budget — an order
of magnitude above the implementations' typical time, but far below a
genuine regression, so only a real hot-path or protocol-overhead
regression trips them.  Part of the tier-1 run; select just these
guards with ``pytest -m perf_smoke``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.config import QGDPConfig
from repro.orchestration import (
    CacheServer,
    DirBackend,
    RemoteHTTPBackend,
    TieredStore,
)
from repro.detailed import DetailedPlacer
from repro.legalization import get_engine, run_legalization
from repro.metrics import check_legality, integration_ratio
from repro.placement import GlobalPlacer, build_layout
from repro.routing.crossings import build_traces, count_crossings
from repro.topologies import grid_topology

#: Budget for legalization + detailed placement on a 5x5 grid, seconds.
#: Typical: ~0.07 s array-backed; ~1.1 s for the pre-array seed code.
SMOKE_BUDGET_S = 10.0

#: Budget for legalize + trace build + crossing count on a 12x12 grid,
#: seconds.  Typical: ~0.09 s with the vectorized kernels (~0.16 s for
#: their scalar predecessors); the generous ceiling only trips on a
#: complexity-class regression in one of the three analysis kernels.
KERNEL_BUDGET_S = 5.0

#: Budget for legalize + trace build + crossing count on a 16x16 grid
#: (256 qubits), seconds.  Typical: ~0.4 s with the batched cluster and
#: orientation kernels; generous so CI machine noise never trips it.
KERNEL_16_BUDGET_S = 10.0

#: Budget for legalization alone on a 24x24 grid (576 qubits), seconds.
#: Typical: ~0.5 s with the warm-started, arc-reduced LP (~3 s for the
#: cold full-graph solve); trips only on a complexity-class regression
#: in the LP assembly, presolve or resonator pass.
LEGALIZE_24_BUDGET_S = 20.0

#: Budget for 50 artifacts pushed and read back through a live cache
#: server over loopback HTTP, seconds.  Typical: well under 0.5 s; the
#: ceiling trips only on a per-request overhead regression (connection
#: churn, payload re-encoding, server-side scans per artifact).
CACHE_SERVER_BUDGET_S = 15.0


@pytest.mark.perf_smoke
def test_flow_5x5_within_budget():
    cfg = QGDPConfig()
    netlist, grid = build_layout(grid_topology(5), cfg)
    GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)

    t0 = time.perf_counter()
    outcome = run_legalization(netlist, grid, get_engine("qgdp"), cfg)
    DetailedPlacer(cfg).run(netlist, outcome.bins)
    elapsed = time.perf_counter() - t0

    assert check_legality(netlist, grid) == []
    unified, total = integration_ratio(netlist)
    assert unified >= 0.9 * total
    assert elapsed < SMOKE_BUDGET_S, (
        f"legalize+detailed took {elapsed:.2f}s on a 5x5 grid "
        f"(budget {SMOKE_BUDGET_S}s) — hot-path regression?"
    )


@pytest.mark.perf_smoke
def test_analysis_kernels_12x12_within_budget():
    cfg = QGDPConfig()
    netlist, grid = build_layout(grid_topology(12), cfg)
    GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)

    t0 = time.perf_counter()
    outcome = run_legalization(netlist, grid, get_engine("qgdp"), cfg)
    traces = build_traces(netlist, cfg.lb)
    report = count_crossings(netlist, outcome.bins, traces=traces)
    elapsed = time.perf_counter() - t0

    assert check_legality(netlist, grid) == []
    assert report.total >= 0 and len(report.per_resonator) > 0
    assert elapsed < KERNEL_BUDGET_S, (
        f"legalize+traces+crossings took {elapsed:.2f}s on a 12x12 grid "
        f"(budget {KERNEL_BUDGET_S}s) — analysis-kernel regression?"
    )


@pytest.mark.perf_smoke
def test_analysis_kernels_16x16_within_budget():
    cfg = QGDPConfig()
    netlist, grid = build_layout(grid_topology(16), cfg)
    GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)

    t0 = time.perf_counter()
    outcome = run_legalization(netlist, grid, get_engine("qgdp"), cfg)
    traces = build_traces(netlist, cfg.lb)
    report = count_crossings(netlist, outcome.bins, traces=traces)
    elapsed = time.perf_counter() - t0

    assert check_legality(netlist, grid) == []
    assert report.total >= 0 and len(report.per_resonator) > 0
    assert elapsed < KERNEL_16_BUDGET_S, (
        f"legalize+traces+crossings took {elapsed:.2f}s on a 16x16 grid "
        f"(budget {KERNEL_16_BUDGET_S}s) — analysis-kernel regression?"
    )


@pytest.mark.perf_smoke
def test_legalize_24x24_within_budget():
    cfg = QGDPConfig()
    netlist, grid = build_layout(grid_topology(24), cfg)
    GlobalPlacer(cfg).run(netlist, grid, seed=cfg.seed)

    t0 = time.perf_counter()
    run_legalization(netlist, grid, get_engine("qgdp"), cfg)
    elapsed = time.perf_counter() - t0

    assert check_legality(netlist, grid) == []
    assert elapsed < LEGALIZE_24_BUDGET_S, (
        f"legalization took {elapsed:.2f}s on a 24x24 grid "
        f"(budget {LEGALIZE_24_BUDGET_S}s) — LP/resonator regression?"
    )


@pytest.mark.perf_smoke
def test_cache_server_round_trip_within_budget(tmp_path):
    """50 artifacts through a live serve-cache: put, cold get, tiered get."""
    payloads = {
        f"key{i:03d}": {"samples": [i / 7.0, i / 11.0], "seed": i}
        for i in range(50)
    }
    with CacheServer(DirBackend(str(tmp_path / "served"))) as server:
        client = RemoteHTTPBackend(server.url)

        t0 = time.perf_counter()
        for key, payload in payloads.items():
            client.put_text("fidelity", key, json.dumps(payload))
        for key, payload in payloads.items():  # cold reads over HTTP
            assert json.loads(client.get_text("fidelity", key)) == payload
        tiered = TieredStore(f"dir:{tmp_path / 'local'}", server.url)
        for key, payload in payloads.items():  # read-through + write-back
            assert tiered.get("fidelity", key) == payload
        elapsed = time.perf_counter() - t0

    assert elapsed < CACHE_SERVER_BUDGET_S, (
        f"150 cache-server round trips took {elapsed:.2f}s "
        f"(budget {CACHE_SERVER_BUDGET_S}s) — protocol overhead regression?"
    )
