"""Displacement stats and integration ratios."""

import pytest

from repro.metrics import displacement_stats, integration_ratio, total_clusters
from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock


def test_displacement_zero_for_identical_snapshots():
    snapshot = {("q", 0): (1.0, 2.0), ("b", (0, 1), 0): (3.0, 4.0)}
    stats = displacement_stats(snapshot, dict(snapshot))
    assert stats.total == 0.0
    assert stats.count == 2


def test_displacement_manhattan():
    before = {("q", 0): (0.0, 0.0)}
    after = {("q", 0): (3.0, 4.0)}
    stats = displacement_stats(before, after)
    assert stats.total == pytest.approx(7.0)
    assert stats.maximum == pytest.approx(7.0)
    assert stats.mean == pytest.approx(7.0)


def test_displacement_prefix_filter():
    before = {("q", 0): (0.0, 0.0), ("b", (0, 1), 0): (0.0, 0.0)}
    after = {("q", 0): (1.0, 0.0), ("b", (0, 1), 0): (5.0, 0.0)}
    assert displacement_stats(before, after, prefix="q").total == 1.0
    assert displacement_stats(before, after, prefix="b").total == 5.0


def test_displacement_ignores_missing_nodes():
    before = {("q", 0): (0.0, 0.0), ("q", 1): (0.0, 0.0)}
    after = {("q", 0): (2.0, 0.0)}
    stats = displacement_stats(before, after)
    assert stats.count == 1


def test_empty_displacement():
    stats = displacement_stats({}, {})
    assert stats == displacement_stats({"x": (0, 0)}, {})


def _netlist_with_clusters():
    nl = QuantumNetlist()
    nl.add_qubit(Qubit(index=0, w=3, h=3))
    nl.add_qubit(Qubit(index=1, w=3, h=3))
    nl.add_qubit(Qubit(index=2, w=3, h=3))
    r1 = nl.add_resonator(Resonator(qi=0, qj=1, wirelength=2.0))
    r1.blocks = [
        WireBlock(resonator_key=r1.key, ordinal=0, x=0.5, y=0.5),
        WireBlock(resonator_key=r1.key, ordinal=1, x=1.5, y=0.5),
    ]
    r2 = nl.add_resonator(Resonator(qi=1, qj=2, wirelength=2.0))
    r2.blocks = [
        WireBlock(resonator_key=r2.key, ordinal=0, x=5.5, y=0.5),
        WireBlock(resonator_key=r2.key, ordinal=1, x=8.5, y=0.5),  # split
    ]
    return nl


def test_integration_ratio_counts_unified():
    nl = _netlist_with_clusters()
    assert integration_ratio(nl) == (1, 2)


def test_total_clusters_sums():
    nl = _netlist_with_clusters()
    assert total_clusters(nl) == 1 + 2
