"""Legality checks detect planted violations."""

from repro.geometry import SiteGrid
from repro.metrics import check_legality, is_legal, qubit_spacing_violations
from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock


def _simple_netlist(q0_pos, q1_pos, block_sites=()):
    nl = QuantumNetlist()
    nl.add_qubit(Qubit(index=0, w=3, h=3, x=q0_pos[0], y=q0_pos[1]))
    nl.add_qubit(Qubit(index=1, w=3, h=3, x=q1_pos[0], y=q1_pos[1]))
    if block_sites:
        r = nl.add_resonator(Resonator(qi=0, qj=1, wirelength=1.0))
        r.blocks = [
            WireBlock(resonator_key=r.key, ordinal=k, x=x, y=y)
            for k, (x, y) in enumerate(block_sites)
        ]
    return nl


def test_clean_layout_is_legal():
    nl = _simple_netlist((1.5, 1.5), (10.5, 10.5), [(5.5, 5.5)])
    grid = SiteGrid(16, 16)
    assert is_legal(nl, grid)
    assert check_legality(nl, grid) == []


def test_qubit_overlap_detected():
    nl = _simple_netlist((5.5, 5.5), (6.5, 5.5))
    grid = SiteGrid(16, 16)
    violations = check_legality(nl, grid)
    assert any(v.kind == "overlap" for v in violations)


def test_border_violation_detected():
    nl = _simple_netlist((1.0, 1.5), (10.5, 10.5))  # q0 sticks out left
    grid = SiteGrid(16, 16)
    violations = check_legality(nl, grid)
    assert any(v.kind == "border" for v in violations)


def test_block_on_qubit_detected():
    nl = _simple_netlist((5.5, 5.5), (12.5, 12.5), [(5.5, 5.5)])
    grid = SiteGrid(16, 16)
    violations = check_legality(nl, grid)
    assert any(
        v.kind == "overlap"
        and {v.id_a[0], v.id_b[0]} == {"q", "b"}
        for v in violations
    )


def test_block_block_overlap_detected():
    nl = _simple_netlist((1.5, 1.5), (12.5, 12.5), [(6.5, 6.5), (6.7, 6.5)])
    grid = SiteGrid(16, 16)
    violations = check_legality(nl, grid)
    assert any(
        v.kind == "overlap" and v.id_a[0] == "b" and v.id_b[0] == "b"
        for v in violations
    )


def test_spacing_violation_reported_with_amount():
    nl = _simple_netlist((5.5, 5.5), (9.0, 5.5))  # gap 0.5 < 1.0
    violations = qubit_spacing_violations(nl, min_spacing=1.0)
    assert len(violations) == 1
    assert violations[0].kind == "qubit_spacing"
    assert violations[0].amount > 0.4


def test_spacing_satisfied_no_violation():
    nl = _simple_netlist((5.5, 5.5), (9.5, 5.5))  # gap exactly 1.0
    assert qubit_spacing_violations(nl, min_spacing=1.0) == []


def test_violation_str_readable():
    nl = _simple_netlist((5.5, 5.5), (6.5, 5.5))
    violation = check_legality(nl, SiteGrid(16, 16))[0]
    assert "overlap" in str(violation)
