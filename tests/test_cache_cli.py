"""The ``repro cache`` / ``repro serve-cache`` command surface.

Smoke + round-trip coverage: stats on dir and sqlite stores, push/pull
between them (and against a live HTTP cache server on an ephemeral
port), gc with backdated artifacts, and the self-documenting --help
text of every new verb.
"""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.orchestration import (
    ArtifactStore,
    CacheServer,
    DirBackend,
    SqliteBackend,
)


@pytest.fixture
def dir_store(tmp_path):
    root = str(tmp_path / "cache")
    store = ArtifactStore(root)
    store.put("gp", "key-a", {"x": 1.5})
    store.put("lg", "key-b", {"positions": [1, 2, 3]})
    return root


def test_cache_stats_dir(dir_store, capsys):
    assert main(["cache", "stats", f"dir:{dir_store}"]) == 0
    out = capsys.readouterr().out
    assert "2 artifacts" in out
    assert "gp" in out and "lg" in out


def test_cache_push_then_stats_sqlite(dir_store, tmp_path, capsys):
    db_url = f"sqlite:{tmp_path / 'cache.db'}"
    assert main(["cache", "push", f"dir:{dir_store}", db_url]) == 0
    assert "copied 2 artifacts" in capsys.readouterr().out

    assert main(["cache", "stats", db_url]) == 0
    assert "2 artifacts" in capsys.readouterr().out

    # Idempotent: nothing left to copy.
    assert main(["cache", "push", f"dir:{dir_store}", db_url]) == 0
    out = capsys.readouterr().out
    assert "copied 0 artifacts" in out and "skipped 2" in out


def test_cache_pull_round_trip_preserves_bytes(dir_store, tmp_path, capsys):
    db_url = f"sqlite:{tmp_path / 'cache.db'}"
    assert main(["cache", "push", f"dir:{dir_store}", db_url]) == 0
    pulled = str(tmp_path / "pulled")
    assert main(["cache", "pull", f"dir:{pulled}", db_url]) == 0
    assert "copied 2 artifacts" in capsys.readouterr().out
    for kind, key in (("gp", "key-a"), ("lg", "key-b")):
        original = open(os.path.join(dir_store, kind, f"{key}.json")).read()
        roundtripped = open(os.path.join(pulled, kind, f"{key}.json")).read()
        assert roundtripped == original


def test_cache_push_to_live_http_server(dir_store, tmp_path, capsys):
    with CacheServer(SqliteBackend(str(tmp_path / "served.db"))) as server:
        assert main(["cache", "push", f"dir:{dir_store}", server.url]) == 0
        assert "copied 2 artifacts" in capsys.readouterr().out
        assert main(["cache", "stats", server.url]) == 0
        assert "2 artifacts" in capsys.readouterr().out
        # pull into a fresh dir from the server round-trips the bytes
        pulled = str(tmp_path / "from_http")
        assert main(["cache", "pull", f"dir:{pulled}", server.url]) == 0
        original = open(os.path.join(dir_store, "gp", "key-a.json")).read()
        assert open(os.path.join(pulled, "gp", "key-a.json")).read() == original


def test_cache_gc_expires_old_artifacts(dir_store, capsys):
    # Backdate one artifact by ten days; keep the other fresh.
    old_path = os.path.join(dir_store, "gp", "key-a.json")
    backdated = os.path.getmtime(old_path) - 10 * 86400
    os.utime(old_path, (backdated, backdated))

    assert main(["cache", "gc", f"dir:{dir_store}", "--keep-days", "7",
                 "--dry-run"]) == 0
    assert "would remove 1 artifacts" in capsys.readouterr().out
    assert os.path.exists(old_path)  # dry run deletes nothing

    assert main(["cache", "gc", f"dir:{dir_store}", "--keep-days", "7"]) == 0
    out = capsys.readouterr().out
    assert "removed 1 artifacts" in out and "kept 1" in out
    assert not os.path.exists(old_path)
    assert os.path.exists(os.path.join(dir_store, "lg", "key-b.json"))


def test_cache_gc_sqlite_uses_insert_timestamps(tmp_path, capsys):
    db_path = str(tmp_path / "cache.db")
    with SqliteBackend(db_path) as backend:
        backend.put_text("gp", "old", '{"x": 1}')
        backend._conn.execute(  # backdate the row's insert timestamp
            "UPDATE artifacts SET created_at = created_at - 864000"
        )
        backend._conn.commit()
        backend.put_text("gp", "fresh", '{"x": 2}')
    assert main(["cache", "gc", f"sqlite:{db_path}", "--keep-days", "7"]) == 0
    assert "removed 1 artifacts" in capsys.readouterr().out
    with SqliteBackend(db_path) as backend:
        assert not backend.has("gp", "old")
        assert backend.has("gp", "fresh")


def test_cache_rejects_unknown_scheme(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["cache", "stats", "s3://bucket"])
    assert excinfo.value.code == 2
    assert "unsupported store URL scheme" in capsys.readouterr().err


def test_cache_unreachable_server_fails_cleanly(tmp_path, capsys):
    server = CacheServer(DirBackend(str(tmp_path / "gone")))
    url = server.url
    server.stop()
    assert main(["cache", "stats", url]) == 1
    assert "unreachable" in capsys.readouterr().err


def test_sweep_unreachable_cache_url_fails_before_computing(tmp_path, capsys):
    # A mistyped cache host must produce a clean error *before* any job
    # runs — never a traceback after an expensive gp job.
    server = CacheServer(DirBackend(str(tmp_path / "gone")))
    url = server.url
    server.stop()
    code = main(
        [
            "sweep",
            "--topologies", "grid",
            "--benchmarks", "bv-4",
            "--engines", "qgdp",
            "--seeds", "1",
            "--cache-url", url,
            "--cache-dir", str(tmp_path / "local"),
            "--quiet",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "unreachable" in captured.err
    assert "jobs computed" not in captured.out  # nothing ran


def test_tables_unreachable_cache_url_fails_cleanly(tmp_path, capsys):
    server = CacheServer(DirBackend(str(tmp_path / "gone")))
    url = server.url
    server.stop()
    code = main(
        [
            "tables", "--which", "table3", "--topologies", "grid",
            "--cache-url", url, "--cache-dir", str(tmp_path / "local"),
        ]
    )
    assert code == 1
    assert "unreachable" in capsys.readouterr().err


def test_sweep_cache_url_sqlite_end_to_end(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    db_url = f"sqlite:{tmp_path / 'cache.db'}"
    args = [
        "sweep",
        "--topologies", "grid",
        "--benchmarks", "bv-4",
        "--engines", "qgdp",
        "--seeds", "1",
        "--workers", "1",
        "--cache-url", db_url,
        "--cache-dir", str(tmp_path / "runs_host"),
        "--quiet",
    ]
    assert main(args) == 0
    assert "jobs computed" in capsys.readouterr().out
    assert main(args + ["--resume"]) == 0
    assert "0 jobs computed" in capsys.readouterr().out
    # Artifacts live in the database, not in a directory sprawl.
    with SqliteBackend(str(tmp_path / "cache.db")) as backend:
        kinds = {entry.kind for entry in backend.entries()}
    assert {"gp", "lg", "transpile", "analyze", "fidelity"} <= kinds


def test_serve_cache_parser_defaults():
    args = build_parser().parse_args(["serve-cache"])
    assert args.store == "dir:.repro_cache"
    assert args.host == "127.0.0.1"
    assert args.port == 8765
    args = build_parser().parse_args(
        ["serve-cache", "--store", "sqlite:x.db", "--port", "0", "--quiet"]
    )
    assert args.port == 0 and args.quiet


@pytest.mark.parametrize(
    "argv, expected",
    [
        (["cache", "--help"], ["stats", "gc", "push", "pull"]),
        (["cache", "stats", "--help"], ["dir:PATH", "sqlite:PATH"]),
        (["cache", "gc", "--help"], ["--keep-days", "--dry-run"]),
        (["cache", "push", "--help"], ["LOCAL", "REMOTE", "Idempotent"]),
        (["cache", "pull", "--help"], ["LOCAL", "REMOTE"]),
        (["serve-cache", "--help"], ["--store", "--port", "docs/storage.md"]),
    ],
)
def test_new_verbs_are_self_documenting(argv, expected, capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(argv)
    assert excinfo.value.code == 0
    help_text = capsys.readouterr().out
    for needle in expected:
        assert needle in help_text, (argv, needle)


def test_sweep_help_documents_cache_url(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--help"])
    help_text = capsys.readouterr().out
    assert "--cache-url" in help_text and "sqlite:PATH" in help_text
