"""Device topology construction: sizes, connectivity, geometry."""

import networkx as nx
import pytest

from repro.topologies import (
    PAPER_TOPOLOGIES,
    available_topologies,
    eagle_topology,
    falcon_topology,
    get_topology,
    grid_topology,
    heavy_hex_lattice,
    octagon_lattice,
    xtree_topology,
)

# (name, qubits, resonators) straight from the paper's Tables I and III.
PAPER_SIZES = {
    "grid": (25, 40),
    "falcon": (27, 28),
    "eagle": (127, 144),
    "aspen11": (40, 48),
    "aspenm": (80, 106),
    "xtree": (53, 52),
}


@pytest.mark.parametrize("name", PAPER_TOPOLOGIES)
def test_paper_sizes_match(name):
    topo = get_topology(name)
    qubits, edges = PAPER_SIZES[name]
    assert topo.num_qubits == qubits
    assert topo.num_edges == edges


@pytest.mark.parametrize("name", PAPER_TOPOLOGIES)
def test_coupling_graphs_connected(name):
    topo = get_topology(name)
    assert nx.is_connected(topo.graph)


@pytest.mark.parametrize("name", PAPER_TOPOLOGIES)
def test_edges_canonical_and_unique(name):
    topo = get_topology(name)
    assert all(qi < qj for qi, qj in topo.edges)
    assert len(set(topo.edges)) == len(topo.edges)


@pytest.mark.parametrize("name", PAPER_TOPOLOGIES)
def test_every_qubit_has_a_position(name):
    topo = get_topology(name)
    assert set(topo.ideal_positions) == set(range(topo.num_qubits))


@pytest.mark.parametrize("name", PAPER_TOPOLOGIES)
def test_positions_distinct(name):
    topo = get_topology(name)
    points = list(topo.ideal_positions.values())
    assert len({(round(x, 6), round(y, 6)) for x, y in points}) == len(points)


def test_registry_case_insensitive():
    assert get_topology("Falcon").name == "falcon"


def test_registry_unknown_name():
    with pytest.raises(KeyError, match="available"):
        get_topology("nonexistent")


def test_available_topologies_sorted():
    names = available_topologies()
    assert names == sorted(names)
    assert set(PAPER_TOPOLOGIES) <= set(names)


def test_grid_structure():
    topo = grid_topology(4)
    assert topo.num_qubits == 16
    assert topo.num_edges == 2 * 4 * 3
    degrees = sorted(topo.degree(q) for q in range(16))
    assert degrees[0] == 2 and degrees[-1] == 4


def test_grid_rejects_tiny_side():
    with pytest.raises(ValueError):
        grid_topology(1)


def test_falcon_degree_profile():
    topo = falcon_topology()
    degrees = sorted(topo.degree(q) for q in range(27))
    assert max(degrees) == 3  # heavy hex never exceeds degree 3
    assert degrees.count(1) == 6  # six pendant qubits


def test_eagle_degree_profile():
    topo = eagle_topology()
    assert max(topo.degree(q) for q in range(127)) == 3


def test_heavy_hex_lattice_connector_edges():
    num, edges, positions = heavy_hex_lattice(rows=3, row_len=7, connectors=2)
    graph = nx.Graph(edges)
    graph.add_nodes_from(range(num))
    assert nx.is_connected(graph)
    assert max(dict(graph.degree).values()) <= 3


def test_heavy_hex_rejects_degenerate():
    with pytest.raises(ValueError):
        heavy_hex_lattice(rows=1, row_len=7, connectors=2)


def test_octagon_ring_degrees():
    num, edges, _ = octagon_lattice(ring_cols=2, ring_rows=1)
    assert num == 16
    assert len(edges) == 16 + 2
    graph = nx.Graph(edges)
    # Ring-internal vertices have degree 2, coupled side vertices degree 3.
    assert sorted(dict(graph.degree).values()) == [2] * 12 + [3] * 4


def test_octagon_rejects_empty():
    with pytest.raises(ValueError):
        octagon_lattice(0, 1)


def test_xtree_is_a_tree():
    topo = xtree_topology()
    assert nx.is_tree(topo.graph)
    assert topo.num_qubits == 53


def test_xtree_custom_branching():
    topo = xtree_topology((2, 2))
    assert topo.num_qubits == 1 + 2 + 4
    assert nx.is_tree(topo.graph)


def test_xtree_rejects_bad_branching():
    with pytest.raises(ValueError):
        xtree_topology(())
    with pytest.raises(ValueError):
        xtree_topology((0, 2))


def test_edge_length_positive():
    topo = get_topology("grid")
    for qi, qj in topo.edges:
        assert topo.edge_length(qi, qj) > 0


def test_extent_matches_positions():
    topo = grid_topology(5)
    assert topo.extent() == (4.0, 4.0)


def test_neighbors_sorted():
    topo = grid_topology(3)
    assert topo.neighbors(4) == [1, 3, 5, 7]  # centre of 3x3


def test_topology_validates_edges():
    from repro.topologies.base import Topology

    with pytest.raises(ValueError):
        Topology("bad", "Bad", 2, [(1, 0)], {0: (0, 0), 1: (1, 0)})
    with pytest.raises(ValueError):
        Topology("bad", "Bad", 2, [(0, 5)], {0: (0, 0), 1: (1, 0)})
    with pytest.raises(ValueError):
        Topology("bad", "Bad", 2, [(0, 1)], {0: (0, 0)})
