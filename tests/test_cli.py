"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_topologies_listing(capsys):
    assert main(["topologies"]) == 0
    out = capsys.readouterr().out
    for name in ("grid", "falcon", "eagle", "aspen11", "aspenm", "xtree"):
        assert name in out


def test_benchmarks_listing(capsys):
    assert main(["benchmarks"]) == 0
    out = capsys.readouterr().out
    assert "bv-4" in out and "qgan-9" in out


def test_flow_command_runs(capsys, tmp_path):
    path = tmp_path / "layout.json"
    code = main(
        ["flow", "grid", "--engine", "qgdp", "--no-dp", "--json", str(path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "[gp]" in out and "[lg]" in out and "[dp]" not in out
    data = json.loads(path.read_text())
    assert len(data["qubits"]) == 25


def test_flow_render(capsys):
    assert main(["flow", "grid", "--no-dp", "--render"]) == 0
    out = capsys.readouterr().out
    assert "QQQ" in out  # a rendered qubit macro row


def test_fidelity_command(capsys):
    code = main(
        [
            "fidelity",
            "grid",
            "--benchmarks",
            "bv-4",
            "--engines",
            "qgdp",
            "tetris",
            "--seeds",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "qGDP-LG" in out and "Tetris" in out


def test_tables_command(capsys):
    code = main(
        ["tables", "--which", "table3", "--topologies", "grid", "--no-cache"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "LG Iedge" in out


def test_tables_cached_run_is_byte_identical_and_recomputes_nothing(
    capsys, tmp_path
):
    """Acceptance: two paper topologies, shared cache — the second run
    recomputes zero jobs and its stdout is byte-identical, and both equal
    the in-process evaluate_engines formatting."""
    cache = str(tmp_path / "cache")
    args = [
        "tables", "--which", "all",
        "--topologies", "grid", "aspen11",
        "--cache-dir", cache,
    ]
    assert main(args) == 0
    first = capsys.readouterr()
    assert "manifest:" in first.err
    assert "0 jobs computed" not in first.err  # the cold run did work

    assert main(args) == 0
    second = capsys.readouterr()
    assert second.out == first.out  # byte-identical tables
    assert "0 jobs computed" in second.err

    manifest = json.loads(
        next((tmp_path / "cache" / "runs").iterdir())
        .joinpath("manifest.json")
        .read_text()
    )
    assert manifest["jobs"]["computed"] == 0
    assert manifest["jobs"]["cached"] == manifest["jobs"]["total"]

    # The in-process path (serial, same artifacts via the shared cache)
    # formats the exact same bytes.
    from repro.evaluation import (
        EvaluationConfig,
        format_fig9,
        format_table2,
        format_table3,
        run_engine_evaluations,
    )
    from repro.legalization import PAPER_ENGINE_ORDER

    result = run_engine_evaluations(
        ["grid", "aspen11"],
        PAPER_ENGINE_ORDER,
        EvaluationConfig(),
        cache_dir=cache,
        resume=True,
    )
    topologies = ["grid", "aspen11"]
    in_process = (
        format_fig9(result.evaluations, topologies, PAPER_ENGINE_ORDER)
        + "\n"
        + format_table2(result.evaluations, topologies, PAPER_ENGINE_ORDER)
        + "\n"
        + format_table3(result.evaluations, topologies)
        + "\n"
    )
    assert first.out == in_process


def test_tables_out_keeps_same_spec_runs_diffable(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    base = [
        "tables", "--which", "fig9", "--topologies", "grid",
        "--cache-dir", cache,
    ]
    assert main(base + ["--out", str(tmp_path / "cold")]) == 0
    assert main(base + ["--out", str(tmp_path / "warm")]) == 0
    capsys.readouterr()
    # Cold vs warm of the same spec: same jobs/cells, but the warm run
    # reused everything the cold run computed → empty diff, exit 0.
    assert main(["diff", str(tmp_path / "cold"), str(tmp_path / "warm")]) == 0
    assert "identical" in capsys.readouterr().out
    cold = json.loads((tmp_path / "cold" / "manifest.json").read_text())
    warm = json.loads((tmp_path / "warm" / "manifest.json").read_text())
    assert cold["jobs"]["computed"] > 0
    assert warm["jobs"]["computed"] == 0


def test_diff_identical_runs_and_changed_spec(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    sweep = [
        "sweep",
        "--topologies", "grid",
        "--benchmarks", "bv-4",
        "--engines", "qgdp",
        "--seeds", "2",
        "--workers", "1",
        "--cache-dir", cache,
        "--quiet",
    ]
    assert main(sweep + ["--out", str(tmp_path / "a")]) == 0
    assert main(sweep + ["--resume", "--out", str(tmp_path / "b")]) == 0
    capsys.readouterr()

    # Identical spec, warm cache: empty diff, exit 0.
    assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 0
    assert "identical" in capsys.readouterr().out

    # One more seed: transpile/fidelity jobs change, the cell changes.
    changed = [
        "sweep",
        "--topologies", "grid",
        "--benchmarks", "bv-4",
        "--engines", "qgdp",
        "--seeds", "3",
        "--workers", "1",
        "--cache-dir", cache,
        "--resume",
        "--quiet",
        "--out", str(tmp_path / "c"),
    ]
    assert main(changed) == 0
    capsys.readouterr()
    assert main(["diff", str(tmp_path / "a"), str(tmp_path / "c")]) == 1
    out = capsys.readouterr().out
    assert "added" in out and "recomputed" in out
    assert "~ grid/bv-4/qgdp" in out


def test_diff_reports_recomputed_jobs(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    sweep = [
        "sweep",
        "--topologies", "grid",
        "--benchmarks", "bv-4",
        "--engines", "qgdp",
        "--seeds", "1",
        "--workers", "1",
        "--cache-dir", cache,
        "--quiet",
    ]
    assert main(sweep + ["--out", str(tmp_path / "a")]) == 0
    # Second run WITHOUT --resume recomputes everything: the diff must say so.
    assert main(sweep + ["--out", str(tmp_path / "b")]) == 0
    capsys.readouterr()
    assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 1
    out = capsys.readouterr().out
    assert "recomputed jobs" in out
    assert "0 changed" in out  # recompute is bit-identical, cells unchanged


def test_diff_rejects_unreadable_run(capsys, tmp_path):
    assert main(["diff", str(tmp_path / "nope"), str(tmp_path / "nope")]) == 2
    assert "diff:" in capsys.readouterr().err


def test_flow_all_runs_every_paper_topology(capsys):
    from repro.topologies import PAPER_TOPOLOGIES

    assert main(["flow", "all", "--no-dp"]) == 0
    out = capsys.readouterr().out
    for name in PAPER_TOPOLOGIES:
        assert f"=== {name} ===" in out
    assert out.count("[lg]") == len(PAPER_TOPOLOGIES)


def test_flow_all_rejects_json_export(capsys):
    assert main(["flow", "all", "--no-dp", "--json", "x.json"]) == 2


def test_sweep_command_writes_results_and_manifest(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    code = main(
        [
            "sweep",
            "--topologies", "grid",
            "--benchmarks", "bv-4",
            "--engines", "qgdp",
            "--seeds", "2",
            "--workers", "1",
            "--cache-dir", cache,
            "--quiet",
            "--table",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "qGDP-LG" in out  # the --table Fig. 8 rendering
    assert "results:" in out and "manifest:" in out

    run_dirs = list((tmp_path / "cache" / "runs").iterdir())
    assert len(run_dirs) == 1
    rows = [
        json.loads(line)
        for line in (run_dirs[0] / "results.jsonl").read_text().splitlines()
    ]
    assert len(rows) == 1
    assert rows[0]["topology"] == "grid"
    assert rows[0]["num_samples"] == 2
    assert 0.0 <= rows[0]["mean"] <= 1.0
    manifest = json.loads((run_dirs[0] / "manifest.json").read_text())
    assert manifest["jobs"]["computed"] > 0
    assert manifest["jobs"]["cached"] == 0


def test_sweep_resume_reports_zero_recomputed(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    args = [
        "sweep",
        "--topologies", "grid",
        "--benchmarks", "bv-4",
        "--engines", "qgdp",
        "--seeds", "2",
        "--workers", "1",
        "--cache-dir", cache,
        "--quiet",
    ]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "0 jobs computed" in out
    run_dirs = list((tmp_path / "cache" / "runs").iterdir())
    manifest = json.loads((run_dirs[0] / "manifest.json").read_text())
    assert manifest["jobs"]["computed"] == 0
    assert manifest["jobs"]["cached"] == manifest["jobs"]["total"]


def test_sweep_shard_selects_subset(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    code = main(
        [
            "sweep",
            "--topologies", "grid",
            "--benchmarks", "bv-4", "qaoa-4",
            "--engines", "qgdp",
            "--seeds", "1",
            "--workers", "1",
            "--shard", "1/2",
            "--cache-dir", cache,
            "--quiet",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1 cells" in out
    assert "shard1of2" in out


def test_sweep_rejects_malformed_shard():
    for bad in ("nonsense", "0/2", "3/2", "1/0"):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--shard", bad])


def test_sweep_no_cache_leaves_cache_dir_alone(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(
        [
            "sweep",
            "--topologies", "grid",
            "--benchmarks", "bv-4",
            "--engines", "qgdp",
            "--seeds", "1",
            "--workers", "1",
            "--no-cache",
            "--quiet",
        ]
    )
    assert code == 0
    assert not (tmp_path / ".repro_cache").exists()
    run_dirs = [p for p in tmp_path.iterdir() if p.name.startswith("repro-sweep-")]
    assert len(run_dirs) == 1
    assert (run_dirs[0] / "results.jsonl").exists()


def test_parser_rejects_unknown_topology():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["flow", "nonexistent"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
