"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_topologies_listing(capsys):
    assert main(["topologies"]) == 0
    out = capsys.readouterr().out
    for name in ("grid", "falcon", "eagle", "aspen11", "aspenm", "xtree"):
        assert name in out


def test_benchmarks_listing(capsys):
    assert main(["benchmarks"]) == 0
    out = capsys.readouterr().out
    assert "bv-4" in out and "qgan-9" in out


def test_flow_command_runs(capsys, tmp_path):
    path = tmp_path / "layout.json"
    code = main(
        ["flow", "grid", "--engine", "qgdp", "--no-dp", "--json", str(path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "[gp]" in out and "[lg]" in out and "[dp]" not in out
    data = json.loads(path.read_text())
    assert len(data["qubits"]) == 25


def test_flow_render(capsys):
    assert main(["flow", "grid", "--no-dp", "--render"]) == 0
    out = capsys.readouterr().out
    assert "QQQ" in out  # a rendered qubit macro row


def test_fidelity_command(capsys):
    code = main(
        [
            "fidelity",
            "grid",
            "--benchmarks",
            "bv-4",
            "--engines",
            "qgdp",
            "tetris",
            "--seeds",
            "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "qGDP-LG" in out and "Tetris" in out


def test_tables_command(capsys):
    code = main(["tables", "--which", "table3", "--topologies", "grid"])
    assert code == 0
    out = capsys.readouterr().out
    assert "LG Iedge" in out


def test_parser_rejects_unknown_topology():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["flow", "nonexistent"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
