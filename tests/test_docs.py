"""Docs can't silently rot: link integrity and example importability.

Runs the same checks the CI docs job runs (``tools/check_docs.py``), so
a broken intra-repo markdown link or an example that no longer imports
fails tier-1 locally, not just in CI.
"""

import importlib.util
import os

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    path = os.path.join(_ROOT, "tools", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_markdown_links_resolve():
    checker = _load_checker()
    assert checker.check_links(_ROOT) == []


def test_examples_import_cleanly():
    checker = _load_checker()
    assert checker.check_examples(_ROOT) == []


def test_python_fences_parse():
    checker = _load_checker()
    assert checker.check_fences(_ROOT) == []


def test_checker_catches_a_broken_fence(tmp_path):
    checker = _load_checker()
    (tmp_path / "README.md").write_text(
        "```python\ndef broken(:\n```\n"
        "```sh\nnot python, never compiled\n```\n"
        "```python\nprint('fine')\n```\n"
    )
    broken = checker.check_fences(str(tmp_path))
    assert len(broken) == 1
    assert broken[0][0] == "README.md" and broken[0][1] == 2


def test_lint_rule_catalog_in_sync():
    checker = _load_checker()
    assert checker.check_rule_catalog(_ROOT) == []


def test_catalog_checker_catches_drift(tmp_path):
    """A ghost heading and a missing rule are both reported."""
    checker = _load_checker()
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "lint.md").write_text("### RPR999 — ghost rule\n")
    problems = checker.check_rule_catalog(str(tmp_path))
    assert any("RPR999" in problem for problem in problems)
    assert any("RPR001" in problem for problem in problems)


def test_checker_catches_a_broken_link(tmp_path):
    checker = _load_checker()
    (tmp_path / "doc.md").write_text(
        "see [missing](nope.md) and [ok](doc.md)\n"
        "```\n[not a link](never-checked.md)\n```\n"
    )
    assert checker.check_links(str(tmp_path)) == [("doc.md", "nope.md")]
