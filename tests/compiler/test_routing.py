"""SWAP-insertion routing."""

import pytest

from repro.circuits import QuantumCircuit, get_benchmark
from repro.compiler import route_circuit
from repro.compiler.mapping import random_mapping
from repro.topologies import get_topology


@pytest.fixture(scope="module")
def grid():
    return get_topology("grid")


def test_all_physical_2q_gates_on_edges(grid):
    circuit = get_benchmark("bv-9")
    for seed in range(5):
        mapping = random_mapping(circuit, grid, seed=seed)
        gates, _final = route_circuit(circuit, grid, mapping)
        for gate in gates:
            if gate.num_qubits == 2:
                assert grid.graph.has_edge(*gate.qubits), gate


def test_adjacent_gate_needs_no_swaps(grid):
    circuit = QuantumCircuit(2).cx(0, 1)
    mapping = {0: 0, 1: 1}  # adjacent on the grid
    gates, final = route_circuit(circuit, grid, mapping)
    assert len(gates) == 1
    assert final == mapping


def test_distant_gate_inserts_swaps(grid):
    circuit = QuantumCircuit(2).cx(0, 1)
    mapping = {0: 0, 1: 24}  # opposite corners: distance 8
    gates, final = route_circuit(circuit, grid, mapping)
    assert len(gates) == 1 + 3 * 7  # 7 swaps of 3 CX, then the gate
    # Logical 0 walked to a neighbour of logical 1's position.
    assert grid.graph.has_edge(final[0], final[1])


def test_mapping_updates_consistently(grid):
    circuit = QuantumCircuit(3).cx(0, 2).cx(1, 2).cx(0, 1)
    mapping = {0: 0, 1: 12, 2: 24}
    gates, final = route_circuit(circuit, grid, mapping)
    assert sorted(final) == [0, 1, 2]
    assert len(set(final.values())) == 3


def test_one_qubit_gates_follow_mapping(grid):
    circuit = QuantumCircuit(2).h(0).cx(0, 1).h(0)
    mapping = {0: 0, 1: 24}
    gates, final = route_circuit(circuit, grid, mapping)
    h_gates = [g for g in gates if g.name == "h"]
    assert h_gates[0].qubits == (0,)  # before any swap
    assert h_gates[1].qubits == (final[0],)  # after the walk


def test_gate_names_preserved(grid):
    circuit = QuantumCircuit(2).rzz(0, 1, 0.3)
    mapping = {0: 0, 1: 1}
    gates, _ = route_circuit(circuit, grid, mapping)
    assert gates[0].name == "rzz"
    assert gates[0].params == (0.3,)
