"""Transpiler facade statistics."""

import pytest

from repro.circuits import get_benchmark
from repro.compiler import transpile
from repro.topologies import get_topology


@pytest.fixture(scope="module")
def transpiled():
    return transpile(get_benchmark("bv-9"), get_topology("falcon"), seed=4)


def test_stats_consistent_with_gates(transpiled):
    ones = sum(1 for g in transpiled.physical_gates if g.num_qubits == 1)
    twos = sum(1 for g in transpiled.physical_gates if g.num_qubits == 2)
    assert sum(transpiled.gates_1q.values()) == ones
    assert sum(transpiled.gates_2q.values()) == 2 * twos


def test_active_edges_are_coupling_edges(transpiled):
    falcon = get_topology("falcon")
    for a, b in transpiled.active_edges:
        assert a < b
        assert falcon.graph.has_edge(a, b)


def test_active_qubits_cover_mapping(transpiled):
    assert set(transpiled.initial_mapping.values()) <= transpiled.active_qubits


def test_duration_positive(transpiled):
    assert transpiled.duration_ns > 0
    assert transpiled.timing.duration_ns == transpiled.duration_ns


def test_seeded_transpile_deterministic():
    topo = get_topology("grid")
    circuit = get_benchmark("qaoa-4")
    a = transpile(circuit, topo, seed=9)
    b = transpile(circuit, topo, seed=9)
    assert a.initial_mapping == b.initial_mapping
    assert [g.qubits for g in a.physical_gates] == [
        g.qubits for g in b.physical_gates
    ]


def test_explicit_mapping_wins():
    topo = get_topology("grid")
    circuit = get_benchmark("qaoa-4")
    mapping = {0: 0, 1: 1, 2: 6, 3: 5}
    result = transpile(circuit, topo, initial_mapping=mapping)
    assert result.initial_mapping == mapping


def test_greedy_fallback_without_seed():
    topo = get_topology("grid")
    circuit = get_benchmark("qaoa-4")
    result = transpile(circuit, topo)
    assert len(set(result.initial_mapping.values())) == 4
