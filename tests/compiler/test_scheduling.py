"""ASAP scheduling."""

import pytest

from repro.circuits import Gate
from repro.compiler import schedule


def test_empty_schedule():
    s = schedule([])
    assert s.duration_ns == 0.0
    assert s.busy_ns == {}


def test_serial_gates_on_one_qubit():
    gates = [Gate("x", (0,)), Gate("x", (0,))]
    s = schedule(gates)
    assert s.duration_ns == pytest.approx(70.0)
    assert s.busy_ns[0] == pytest.approx(70.0)
    assert s.gate_start_ns == [0.0, 35.0]


def test_parallel_gates_overlap():
    gates = [Gate("x", (0,)), Gate("x", (1,))]
    s = schedule(gates)
    assert s.duration_ns == pytest.approx(35.0)
    assert s.gate_start_ns == [0.0, 0.0]


def test_two_qubit_gate_blocks_both():
    gates = [Gate("cx", (0, 1)), Gate("x", (1,))]
    s = schedule(gates)
    assert s.gate_start_ns == [0.0, 300.0]
    assert s.duration_ns == pytest.approx(335.0)


def test_idle_time_computed():
    gates = [Gate("cx", (0, 1)), Gate("x", (2,))]
    s = schedule(gates)
    assert s.idle_ns(2) == pytest.approx(300.0 - 35.0)
    assert s.idle_ns(0) == pytest.approx(0.0)


def test_dependency_chain_depth():
    gates = [Gate("cx", (0, 1)), Gate("cx", (1, 2)), Gate("cx", (2, 3))]
    s = schedule(gates)
    assert s.duration_ns == pytest.approx(900.0)
