"""Initial mapping strategies."""

import networkx as nx
import pytest

from repro.circuits import get_benchmark
from repro.compiler import greedy_mapping, random_mapping
from repro.topologies import get_topology


@pytest.fixture(scope="module")
def falcon():
    return get_topology("falcon")


@pytest.fixture(scope="module")
def bv9():
    return get_benchmark("bv-9")


def test_random_mapping_injective(falcon, bv9):
    mapping = random_mapping(bv9, falcon, seed=3)
    assert len(mapping) == 9
    assert len(set(mapping.values())) == 9
    assert set(mapping) == set(range(9))


def test_random_mapping_region_connected(falcon, bv9):
    for seed in range(10):
        mapping = random_mapping(bv9, falcon, seed=seed)
        region = falcon.graph.subgraph(mapping.values())
        assert nx.is_connected(region), f"seed {seed} not connected"


def test_random_mapping_deterministic(falcon, bv9):
    assert random_mapping(bv9, falcon, seed=5) == random_mapping(
        bv9, falcon, seed=5
    )


def test_random_mapping_varies_with_seed(falcon, bv9):
    maps = {tuple(sorted(random_mapping(bv9, falcon, seed=s).items())) for s in range(8)}
    assert len(maps) > 1


def test_random_mapping_rejects_oversize(falcon):
    from repro.circuits import QuantumCircuit

    with pytest.raises(ValueError):
        random_mapping(QuantumCircuit(28), falcon, seed=1)


def test_greedy_mapping_injective_and_tight(falcon, bv9):
    mapping = greedy_mapping(bv9, falcon)
    assert len(set(mapping.values())) == 9
    # The ancilla (most interactions) should sit next to many inputs.
    ancilla_phys = mapping[8]
    neighbors = set(falcon.graph.neighbors(ancilla_phys))
    mapped_inputs = {mapping[q] for q in range(8)}
    assert neighbors & mapped_inputs


def test_greedy_mapping_whole_device():
    grid = get_topology("grid")
    circuit = get_benchmark("bv-16")
    mapping = greedy_mapping(circuit, grid)
    assert len(set(mapping.values())) == 16
