"""Shared fixtures.

Expensive artifacts (built layouts, GP solutions, legalized layouts) are
session-scoped and computed once; tests that mutate positions must
snapshot/restore or build their own copies.
"""

from __future__ import annotations

import pytest

from repro.core.config import QGDPConfig
from repro.legalization.engines import get_engine, run_legalization
from repro.placement.builder import build_layout
from repro.placement.global_placer import GlobalPlacer
from repro.topologies.registry import get_topology


@pytest.fixture(scope="session")
def config():
    """The default flow configuration."""
    return QGDPConfig()


@pytest.fixture(scope="session")
def fast_config():
    """A cheaper configuration for tests that rebuild layouts."""
    return QGDPConfig(gp_iterations=60)


@pytest.fixture(scope="session")
def falcon():
    return get_topology("falcon")


@pytest.fixture(scope="session")
def grid5():
    return get_topology("grid")


@pytest.fixture(scope="session")
def falcon_gp(fast_config, falcon):
    """Falcon layout after global placement: (netlist, grid, gp_snapshot)."""
    netlist, grid = build_layout(falcon, fast_config)
    GlobalPlacer(fast_config).run(netlist, grid, seed=fast_config.seed)
    return (netlist, grid, netlist.snapshot())


@pytest.fixture()
def falcon_legalized(fast_config, falcon_gp):
    """Falcon layout legalized with qGDP-LG (fresh per test)."""
    netlist, grid, gp_positions = falcon_gp
    netlist.restore(gp_positions)
    outcome = run_legalization(netlist, grid, get_engine("qgdp"), fast_config)
    return (netlist, grid, outcome)
