"""Violation detection and window construction."""

from repro.core.config import QGDPConfig
from repro.detailed import build_window, find_violations
from repro.geometry import SiteGrid
from repro.legalization import BinGrid
from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock


def _layout(split=True):
    nl = QuantumNetlist()
    nl.add_qubit(Qubit(index=0, w=3, h=3, x=1.5, y=1.5, frequency=5.0))
    nl.add_qubit(Qubit(index=1, w=3, h=3, x=17.5, y=1.5, frequency=5.07))
    nl.add_qubit(Qubit(index=2, w=3, h=3, x=1.5, y=9.5, frequency=5.14))
    nl.add_qubit(Qubit(index=3, w=3, h=3, x=17.5, y=9.5, frequency=5.21))
    r1 = nl.add_resonator(Resonator(qi=0, qj=1, wirelength=4.0, frequency=7.0))
    sites1 = [(3, 1), (4, 1), (14, 1), (15, 1)] if split else [
        (c, 1) for c in range(3, 7)
    ]
    r1.blocks = [
        WireBlock(resonator_key=r1.key, ordinal=k, x=c + 0.5, y=w + 0.5, frequency=7.0)
        for k, (c, w) in enumerate(sites1)
    ]
    r2 = nl.add_resonator(Resonator(qi=2, qj=3, wirelength=4.0, frequency=7.1))
    r2.blocks = [
        WireBlock(resonator_key=r2.key, ordinal=k, x=c + 0.5, y=9.5, frequency=7.1)
        for k, c in enumerate(range(3, 7))
    ]
    bins = BinGrid(SiteGrid(21, 13))
    for q in nl.qubits:
        bins.occupy_rect(q.rect, q.node_id)
    for r in (r1, r2):
        for b in r.blocks:
            bins.occupy(*bins.grid.site_of(b.center), b.node_id)
    return (nl, bins)


def test_split_resonator_flagged():
    nl, bins = _layout(split=True)
    cfg = QGDPConfig()
    flagged = find_violations(nl, cfg.lb, cfg.reach, cfg.delta_c, bins=bins)
    assert (0, 1) in flagged


def test_clean_layout_not_flagged():
    nl, bins = _layout(split=False)
    cfg = QGDPConfig()
    flagged = find_violations(nl, cfg.lb, cfg.reach, cfg.delta_c, bins=bins)
    assert (0, 1) not in flagged


def test_window_bounds_cover_resonator_and_qubits():
    nl, bins = _layout(split=True)
    window = build_window(nl, bins.grid, (0, 1), halo=2)
    lo_col, lo_row, hi_col, hi_row = window.bounds
    # Covers qubit 0 (cols 0-2), qubit 1 (cols 16-18), blocks rows ~1.
    assert lo_col == 0
    assert hi_col >= 17
    assert window.contains_site((3, 1))
    assert not window.contains_site((3, hi_row + 1))


def test_window_membership_includes_adjacent_resonators():
    nl, bins = _layout(split=True)
    window = build_window(nl, bins.grid, (0, 1), halo=9)
    assert (0, 1) in window.resonator_keys
    assert (2, 3) in window.resonator_keys  # inside the big halo


def test_window_clamped_to_grid():
    nl, bins = _layout(split=True)
    window = build_window(nl, bins.grid, (0, 1), halo=50)
    lo_col, lo_row, hi_col, hi_row = window.bounds
    assert lo_col >= 0 and lo_row >= 0
    assert hi_col < bins.grid.cols and hi_row < bins.grid.rows
