"""Detailed placer: never regresses, preserves legality and consistency."""

import pytest

from repro.core.config import QGDPConfig
from repro.detailed import DetailedPlacer
from repro.frequency.hotspots import hotspot_proportion
from repro.metrics import check_legality, total_clusters
from repro.routing import count_crossings


@pytest.fixture()
def dp_run(fast_config, falcon_legalized):
    netlist, grid, outcome = falcon_legalized
    before = {
        "clusters": total_clusters(netlist),
        "ph": hotspot_proportion(netlist, fast_config.reach, fast_config.delta_c),
        "crossings": count_crossings(netlist, outcome.bins).total,
    }
    result = DetailedPlacer(fast_config).run(netlist, outcome.bins)
    return (netlist, grid, outcome.bins, before, result)


def test_layout_remains_legal(dp_run, fast_config):
    netlist, grid, _bins, _before, _result = dp_run
    assert check_legality(netlist, grid) == []


def test_clusters_never_regress(dp_run):
    netlist, _grid, _bins, before, result = dp_run
    assert total_clusters(netlist) <= before["clusters"]
    assert result.clusters_after <= result.clusters_before


def test_hotspots_never_regress(dp_run, fast_config):
    netlist, _grid, _bins, before, _result = dp_run
    after = hotspot_proportion(netlist, fast_config.reach, fast_config.delta_c)
    assert after <= before["ph"] + 1e-9


def test_crossings_never_regress(dp_run):
    netlist, _grid, bins, before, _result = dp_run
    assert count_crossings(netlist, bins).total <= before["crossings"]


def test_bins_consistent_after_dp(dp_run):
    netlist, grid, bins, _before, _result = dp_run
    occupied = 0
    for block in netlist.wire_blocks:
        site = grid.site_of(block.center)
        assert bins.occupant(*site) == block.node_id
        occupied += 1
    for qubit in netlist.qubits:
        occupied += len(grid.sites_covered(qubit.rect))
    assert grid.num_sites - bins.num_free == occupied


def test_accounting_adds_up(dp_run):
    _netlist, _grid, _bins, _before, result = dp_run
    assert result.attempted == result.accepted + result.reverted
    assert result.attempted <= result.flagged
