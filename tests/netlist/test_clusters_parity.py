"""Batched array cluster pass vs the historical scalar DFS.

``reference_block_clusters`` below is the pre-vectorization
``repro.netlist.clusters.block_clusters`` kept verbatim (id()-keyed
visited set, per-site buckets, ordinal-min seeding).  The shipped
:func:`~repro.netlist.clusters.block_cluster_map` must reproduce its
clusters — same partition, same cluster order (smallest block ordinal
first), same within-cluster block order — for every resonator of a
batch, including resonators whose blocks touch *other* resonators'
blocks (clusters never merge across resonators).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import Resonator, WireBlock, block_cluster_map, block_clusters


# -- verbatim scalar reference (historical implementation) ------------------


def _reference_site(block, lb: float) -> tuple:
    return (int(round(block.x / lb - 0.5)), int(round(block.y / lb - 0.5)))


def reference_block_clusters(resonator, lb: float = 1.0) -> list:
    blocks = resonator.blocks
    if not blocks:
        return []
    site_of = {id(b): _reference_site(b, lb) for b in blocks}
    by_site = {}
    for b in blocks:
        by_site.setdefault(site_of[id(b)], []).append(b)

    unvisited = {id(b): b for b in blocks}
    clusters = []
    while unvisited:
        _, seed = min(
            ((b.ordinal, b) for b in unvisited.values()), key=lambda t: t[0]
        )
        stack = [seed]
        del unvisited[id(seed)]
        cluster = []
        while stack:
            cur = stack.pop()
            cluster.append(cur)
            col, row = site_of[id(cur)]
            for ncol, nrow in (
                (col - 1, row),
                (col + 1, row),
                (col, row - 1),
                (col, row + 1),
                (col, row),
            ):
                for nb in by_site.get((ncol, nrow), ()):
                    if id(nb) in unvisited:
                        del unvisited[id(nb)]
                        stack.append(nb)
        cluster.sort(key=lambda b: b.ordinal)
        clusters.append(cluster)
    clusters.sort(key=lambda c: c[0].ordinal)
    return clusters


# -- strategies -------------------------------------------------------------

COLS = 9
ROWS = 7


@st.composite
def batches(draw):
    """A list of resonators with jittered block centres on a small grid.

    Jitter stays below half a site so the scalar round and the array
    ``np.rint`` agree; duplicate sites within and across resonators are
    allowed (same-site blocks cluster, cross-resonator contact must not).
    """
    lb = draw(st.sampled_from([1.0, 2.0]))
    num_resonators = draw(st.integers(1, 5))
    resonators = []
    for n in range(num_resonators):
        r = Resonator(qi=2 * n, qj=2 * n + 1, wirelength=1.0)
        sites = draw(
            st.lists(
                st.tuples(st.integers(0, COLS - 1), st.integers(0, ROWS - 1)),
                min_size=0,
                max_size=12,
            )
        )
        jitters = draw(
            st.lists(
                st.tuples(
                    st.floats(-0.45, 0.45, allow_nan=False),
                    st.floats(-0.45, 0.45, allow_nan=False),
                ),
                min_size=len(sites),
                max_size=len(sites),
            )
        )
        r.blocks = [
            WireBlock(
                resonator_key=r.key,
                ordinal=k,
                x=(c + 0.5 + jx) * lb,
                y=(w + 0.5 + jy) * lb,
            )
            for k, ((c, w), (jx, jy)) in enumerate(zip(sites, jitters))
        ]
        resonators.append(r)
    return (resonators, lb)


def _as_ids(clusters: list) -> list:
    return [[b.node_id for b in cluster] for cluster in clusters]


# -- parity -----------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(batch=batches())
def test_batched_map_matches_scalar_reference(batch):
    resonators, lb = batch
    batched = block_cluster_map(resonators, lb)
    assert set(batched) == {r.key for r in resonators}
    for r in resonators:
        expected = reference_block_clusters(r, lb)
        assert _as_ids(batched[r.key]) == _as_ids(expected)
        # The blocks themselves (not copies) come back, like the scalar.
        assert all(
            b is e
            for cluster, ref in zip(batched[r.key], expected)
            for b, e in zip(cluster, ref)
        )


@settings(max_examples=100, deadline=None)
@given(batch=batches())
def test_single_resonator_view_matches_batch(batch):
    resonators, lb = batch
    batched = block_cluster_map(resonators, lb)
    for r in resonators:
        assert _as_ids(block_clusters(r, lb)) == _as_ids(batched[r.key])


def test_adjacent_blocks_of_different_resonators_do_not_merge():
    a = Resonator(qi=0, qj=1, wirelength=1.0)
    a.blocks = [WireBlock(resonator_key=a.key, ordinal=0, x=0.5, y=0.5)]
    b = Resonator(qi=2, qj=3, wirelength=1.0)
    b.blocks = [
        WireBlock(resonator_key=b.key, ordinal=0, x=1.5, y=0.5),
        WireBlock(resonator_key=b.key, ordinal=1, x=0.5, y=0.5),
    ]
    clusters = block_cluster_map([a, b])
    assert len(clusters[a.key]) == 1
    # b's blocks are 4-adjacent to each other only through a's site —
    # which belongs to b's own block 1 here, so they do unify; a stays
    # its own single cluster regardless of sharing the site.
    assert len(clusters[b.key]) == 1
