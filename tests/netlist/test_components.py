"""Component dataclasses: qubits, wire blocks, resonators."""

import pytest

from repro.netlist import Qubit, Resonator, WireBlock


def test_qubit_rect_follows_position():
    q = Qubit(index=3, w=3.0, h=3.0, x=5.0, y=6.0)
    assert (q.rect.cx, q.rect.cy) == (5.0, 6.0)
    q.move_to(1.0, 2.0)
    assert (q.rect.cx, q.rect.cy) == (1.0, 2.0)


def test_qubit_identity():
    q = Qubit(index=7, w=3, h=3)
    assert q.name == "Q7"
    assert q.node_id == ("q", 7)


def test_wire_block_identity_and_rect():
    b = WireBlock(resonator_key=(2, 5), ordinal=3, size=1.0, x=1.5, y=2.5)
    assert b.name == "R(2,5)#3"
    assert b.node_id == ("b", (2, 5), 3)
    assert b.rect.area == 1.0


def test_resonator_canonicalizes_endpoints():
    r = Resonator(qi=5, qj=2, wirelength=10.0)
    assert r.key == (2, 5)
    assert r.name == "R(2,5)"


def test_resonator_rejects_self_loop():
    with pytest.raises(ValueError):
        Resonator(qi=3, qj=3, wirelength=1.0)


def test_resonator_rejects_nonpositive_length():
    with pytest.raises(ValueError):
        Resonator(qi=0, qj=1, wirelength=0.0)


def test_block_positions_reflect_blocks():
    r = Resonator(qi=0, qj=1, wirelength=2.0)
    r.blocks = [
        WireBlock(resonator_key=r.key, ordinal=0, x=1.0, y=1.0),
        WireBlock(resonator_key=r.key, ordinal=1, x=2.0, y=2.0),
    ]
    assert r.num_blocks == 2
    assert [p.as_tuple() for p in r.block_positions()] == [(1.0, 1.0), (2.0, 2.0)]
