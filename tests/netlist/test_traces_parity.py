"""Parity: the array Prim in ``mst_segments`` equals the scalar reference.

The reference below is a faithful transcription of the original
``_closest_pair`` / ``mst_segments`` double loops.  The vectorized Prim
must return the *same segment list* — same tree growth order, same
tie-breaks (first minimum in tree-insertion × candidate order, first
minimal point pair in row-major order), same endpoint tuples — because
both the crossing counter and the Eq. 4 hotspot walk consume these
segments directly and the flow output is held bit-identical.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock
from repro.netlist.traces import mst_segments, resonator_trace


def reference_closest_pair(points_a, points_b):
    """The original scalar ``_closest_pair``, verbatim."""
    best = None
    for pa in points_a:
        for pb in points_b:
            d2 = (pa[0] - pb[0]) ** 2 + (pa[1] - pb[1]) ** 2
            if best is None or d2 < best[0]:
                best = (d2, pa, pb)
    return best


def reference_mst_segments(terminal_sets):
    """The original scalar Prim, verbatim."""
    if len(terminal_sets) < 2:
        return []
    in_tree = [0]
    out = list(range(1, len(terminal_sets)))
    segments = []
    while out:
        best = None
        for i in in_tree:
            for j in out:
                d2, pa, pb = reference_closest_pair(
                    terminal_sets[i], terminal_sets[j]
                )
                if best is None or d2 < best[0]:
                    best = (d2, pa, pb, j)
        _, pa, pb, j = best
        segments.append((pa, pb))
        in_tree.append(j)
        out.remove(j)
    return segments


# A small coordinate alphabet forces plenty of exact distance ties
# (duplicate points, collinear sets, symmetric gaps) so the tie-break
# replication is actually exercised, not just the generic path.
tied_coord = st.sampled_from([0.0, 1.0, 2.0, 2.5, 4.0, 7.25])
free_coord = st.floats(-5.0, 15.0, allow_nan=False, allow_infinity=False)
point = st.tuples(
    st.one_of(tied_coord, free_coord), st.one_of(tied_coord, free_coord)
)
terminal_set = st.lists(point, min_size=1, max_size=6)
terminal_sets = st.lists(terminal_set, min_size=0, max_size=6)


@settings(max_examples=200, deadline=None)
@given(sets=terminal_sets)
def test_mst_segments_match_reference_exactly(sets):
    got = mst_segments(sets)
    want = reference_mst_segments(sets)
    assert got == want


def test_degenerate_inputs():
    assert mst_segments([]) == []
    assert mst_segments([[(1.0, 2.0)]]) == []  # single terminal set
    # Collinear duplicated sets: every cross distance ties.
    collinear = [[(0.0, 0.0), (1.0, 0.0)], [(2.0, 0.0)], [(1.0, 0.0)]]
    assert mst_segments(collinear) == reference_mst_segments(collinear)


def test_segment_endpoints_are_the_original_tuples():
    sets = [[(0.0, 0.0), (4.0, 0.0)], [(5.0, 0.0), (20.0, 0.0)]]
    ((pa, pb),) = mst_segments(sets)
    assert pa is sets[0][1] and pb is sets[1][0]


site = st.tuples(st.integers(0, 19), st.integers(0, 11))


@settings(max_examples=60, deadline=None)
@given(sites=st.sets(site, min_size=0, max_size=12))
def test_resonator_trace_matches_reference_pipeline(sites):
    nl = QuantumNetlist()
    nl.add_qubit(Qubit(index=0, w=3, h=3, x=1.5, y=1.5))
    nl.add_qubit(Qubit(index=1, w=3, h=3, x=17.5, y=1.5))
    r = nl.add_resonator(
        Resonator(qi=0, qj=1, wirelength=max(1.0, float(len(sites))))
    )
    r.blocks = [
        WireBlock(resonator_key=r.key, ordinal=k, x=c + 0.5, y=w + 0.5)
        for k, (c, w) in enumerate(sorted(sites))
    ]

    from repro.netlist.clusters import block_clusters
    from repro.netlist.traces import qubit_boundary

    terminal_sets = [
        qubit_boundary(nl.qubit(0)),
        qubit_boundary(nl.qubit(1)),
    ]
    for cluster in block_clusters(r, 1.0):
        terminal_sets.append([(b.x, b.y) for b in cluster])

    assert resonator_trace(nl, r, 1.0) == reference_mst_segments(
        terminal_sets
    )
