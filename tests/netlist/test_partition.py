"""Resonator reshaping and partitioning (Eq. 6)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netlist import Resonator, blocks_for_resonator, partition_resonator
from repro.netlist.partition import num_blocks, reshape_to_rectangle


def test_num_blocks_matches_eq6():
    # lpad * L = n * lb^2  ->  n = ceil(1.0 * 11.5 / 1.0) = 12
    assert num_blocks(11.5, pad=1.0, lb=1.0) == 12


def test_num_blocks_scales_with_pad_and_lb():
    assert num_blocks(10.0, pad=2.0, lb=1.0) == 20
    assert num_blocks(10.0, pad=1.0, lb=2.0) == 3  # ceil(10/4)


def test_num_blocks_rejects_bad_inputs():
    with pytest.raises(ValueError):
        num_blocks(0.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        num_blocks(1.0, 0.0, 1.0)


@given(st.floats(0.1, 500.0), st.floats(0.1, 5.0), st.floats(0.1, 5.0))
def test_num_blocks_covers_area(length, pad, lb):
    n = num_blocks(length, pad, lb)
    assert n >= 1
    assert n * lb * lb >= pad * length - 1e-6  # reserved area >= wire area
    assert (n - 1) * lb * lb < pad * length + lb * lb  # no gross over-reserve


def test_reshape_examples():
    assert reshape_to_rectangle(1) == (1, 1)
    assert reshape_to_rectangle(6) == (3, 2)
    assert reshape_to_rectangle(12) == (4, 3)


@given(st.integers(1, 2000))
def test_reshape_is_near_square_and_sufficient(n):
    cols, rows = reshape_to_rectangle(n)
    assert cols * rows >= n
    assert cols >= rows
    assert (cols - 1) * rows < n  # tight: one fewer column would not fit


def test_blocks_inherit_frequency_and_key():
    r = Resonator(qi=1, qj=4, wirelength=6.0, frequency=7.05)
    blocks = blocks_for_resonator(r, pad=1.0, lb=1.0)
    assert len(blocks) == 6
    assert all(b.frequency == 7.05 for b in blocks)
    assert all(b.resonator_key == (1, 4) for b in blocks)
    assert [b.ordinal for b in blocks] == list(range(6))


def test_partition_seeds_between_anchors():
    r = Resonator(qi=0, qj=1, wirelength=5.0)
    blocks = partition_resonator(r, 1.0, 1.0, (0.0, 0.0), (12.0, 0.0))
    xs = [b.x for b in blocks]
    assert xs == sorted(xs)
    assert 0.0 < min(xs) and max(xs) < 12.0
    assert all(b.y == 0.0 for b in blocks)


def test_partition_replaces_previous_blocks():
    r = Resonator(qi=0, qj=1, wirelength=5.0)
    partition_resonator(r, 1.0, 1.0, (0.0, 0.0), (1.0, 1.0))
    first = list(r.blocks)
    partition_resonator(r, 1.0, 1.0, (0.0, 0.0), (1.0, 1.0))
    assert len(r.blocks) == len(first)
    assert r.blocks is not first


def test_wirelength_drives_paper_cell_counts():
    # The paper's Table III implies ~11.6 blocks per resonator; the
    # reference length 11.3 at 7 GHz scaled by band must stay in 11-12.
    for freq in (6.8, 6.9, 7.0, 7.1, 7.2):
        n = num_blocks(11.3 * 7.0 / freq, pad=1.0, lb=1.0)
        assert n in (11, 12)
