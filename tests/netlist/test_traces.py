"""Resonator connection traces."""

from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock
from repro.netlist.traces import mst_segments, qubit_boundary, resonator_trace


def _netlist_with_blocks(sites: list) -> QuantumNetlist:
    nl = QuantumNetlist()
    nl.add_qubit(Qubit(index=0, w=3, h=3, x=1.5, y=1.5))
    nl.add_qubit(Qubit(index=1, w=3, h=3, x=13.5, y=1.5))
    r = nl.add_resonator(Resonator(qi=0, qj=1, wirelength=float(len(sites))))
    r.blocks = [
        WireBlock(resonator_key=r.key, ordinal=k, x=c + 0.5, y=w + 0.5)
        for k, (c, w) in enumerate(sites)
    ]
    return nl


def test_mst_segments_empty_for_single_set():
    assert mst_segments([[(0.0, 0.0)]]) == []


def test_mst_spans_all_terminal_sets():
    sets = [[(0.0, 0.0)], [(5.0, 0.0)], [(10.0, 0.0)]]
    segments = mst_segments(sets)
    assert len(segments) == 2


def test_mst_uses_closest_points_between_sets():
    sets = [[(0.0, 0.0), (4.0, 0.0)], [(5.0, 0.0), (20.0, 0.0)]]
    segments = mst_segments(sets)
    assert segments == [((4.0, 0.0), (5.0, 0.0))]


def test_qubit_boundary_points_on_perimeter():
    q = Qubit(index=0, w=3, h=3, x=1.5, y=1.5)
    for x, y in qubit_boundary(q):
        on_x_edge = abs(x - 0.0) < 1e-9 or abs(x - 3.0) < 1e-9
        on_y_edge = abs(y - 0.0) < 1e-9 or abs(y - 3.0) < 1e-9
        assert on_x_edge or on_y_edge


def test_unified_adjacent_resonator_has_short_trace():
    # Blocks run from qubit 0's right edge to qubit 1's left edge.
    nl = _netlist_with_blocks([(c, 1) for c in range(3, 12)])
    trace = resonator_trace(nl, nl.resonator(0, 1))
    total = sum(
        ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        for (x1, y1), (x2, y2) in trace
    )
    assert total < 2.0  # attachments only, no chords


def test_split_resonator_trace_has_chord():
    nl = _netlist_with_blocks([(3, 1), (4, 1), (9, 1), (10, 1)])
    trace = resonator_trace(nl, nl.resonator(0, 1))
    lengths = sorted(
        ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        for (x1, y1), (x2, y2) in trace
    )
    assert lengths[-1] >= 4.0  # the chord across the gap


def test_trace_segment_count_is_terminals_minus_one():
    nl = _netlist_with_blocks([(3, 1), (7, 1), (11, 1)])  # 3 clusters
    trace = resonator_trace(nl, nl.resonator(0, 1))
    assert len(trace) == 4  # 2 qubits + 3 clusters -> 5 terminals
