"""Wire-block cluster extraction."""

from hypothesis import given
from hypothesis import strategies as st

from repro.netlist import Resonator, WireBlock, block_clusters, cluster_count, is_unified


def _resonator_at(sites: list) -> Resonator:
    """A resonator with one unit block at each (col, row) site."""
    r = Resonator(qi=0, qj=1, wirelength=float(max(1, len(sites))))
    r.blocks = [
        WireBlock(resonator_key=r.key, ordinal=k, x=c + 0.5, y=w + 0.5)
        for k, (c, w) in enumerate(sites)
    ]
    return r


def test_empty_resonator_has_no_clusters():
    r = Resonator(qi=0, qj=1, wirelength=1.0)
    assert block_clusters(r) == []
    assert cluster_count(r) == 0


def test_contiguous_row_is_one_cluster():
    r = _resonator_at([(0, 0), (1, 0), (2, 0), (3, 0)])
    assert cluster_count(r) == 1
    assert is_unified(r)


def test_gap_splits_cluster():
    r = _resonator_at([(0, 0), (1, 0), (3, 0)])
    clusters = block_clusters(r)
    assert len(clusters) == 2
    assert [len(c) for c in clusters] == [2, 1]


def test_diagonal_contact_does_not_merge():
    r = _resonator_at([(0, 0), (1, 1)])
    assert cluster_count(r) == 2


def test_l_shape_is_unified():
    r = _resonator_at([(0, 0), (0, 1), (1, 1)])
    assert is_unified(r)


def test_clusters_ordered_by_smallest_ordinal():
    r = _resonator_at([(5, 5), (0, 0), (1, 0)])
    clusters = block_clusters(r)
    assert clusters[0][0].ordinal == 0  # block at (5,5) seeds first cluster
    assert {b.ordinal for b in clusters[1]} == {1, 2}


@given(
    st.sets(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=25
    )
)
def test_cluster_partition_is_exact(sites):
    r = _resonator_at(sorted(sites))
    clusters = block_clusters(r)
    seen = [b for cluster in clusters for b in cluster]
    assert len(seen) == len(r.blocks)
    assert {id(b) for b in seen} == {id(b) for b in r.blocks}


@given(
    st.sets(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=25
    )
)
def test_cluster_count_matches_grid_components(sites):
    """Cluster count equals 4-connected component count of the site set."""
    sites = set(sites)
    # brute-force flood fill
    remaining = set(sites)
    components = 0
    while remaining:
        components += 1
        stack = [remaining.pop()]
        while stack:
            c, w = stack.pop()
            for nbr in ((c - 1, w), (c + 1, w), (c, w - 1), (c, w + 1)):
                if nbr in remaining:
                    remaining.discard(nbr)
                    stack.append(nbr)
    r = _resonator_at(sorted(sites))
    assert cluster_count(r) == components


def test_cluster_respects_lb_scaling():
    r = Resonator(qi=0, qj=1, wirelength=2.0)
    r.blocks = [
        WireBlock(resonator_key=r.key, ordinal=0, size=2.0, x=1.0, y=1.0),
        WireBlock(resonator_key=r.key, ordinal=1, size=2.0, x=3.0, y=1.0),
    ]
    assert cluster_count(r, lb=2.0) == 1
