"""QuantumNetlist graph behaviour."""

import pytest

from repro.netlist import ConnectionStyle, QuantumNetlist, Qubit, Resonator


@pytest.fixture()
def triangle():
    nl = QuantumNetlist(name="tri")
    for i in range(3):
        nl.add_qubit(Qubit(index=i, w=3, h=3, x=float(5 * i), y=0.0))
    nl.add_resonator(Resonator(qi=0, qj=1, wirelength=5.0))
    nl.add_resonator(Resonator(qi=1, qj=2, wirelength=5.0))
    nl.add_resonator(Resonator(qi=0, qj=2, wirelength=5.0))
    return nl


def test_duplicate_qubit_rejected(triangle):
    with pytest.raises(ValueError):
        triangle.add_qubit(Qubit(index=0, w=3, h=3))


def test_resonator_requires_existing_endpoints():
    nl = QuantumNetlist()
    nl.add_qubit(Qubit(index=0, w=3, h=3))
    with pytest.raises(ValueError):
        nl.add_resonator(Resonator(qi=0, qj=9, wirelength=1.0))


def test_duplicate_resonator_rejected(triangle):
    with pytest.raises(ValueError):
        triangle.add_resonator(Resonator(qi=1, qj=0, wirelength=1.0))


def test_lookup_order_insensitive(triangle):
    assert triangle.resonator(1, 0) is triangle.resonator(0, 1)
    assert triangle.has_resonator(2, 0)
    assert not triangle.has_resonator(0, 0) if False else True


def test_counts_and_cells(triangle):
    triangle.partition_all(pad=1.0, lb=1.0)
    assert triangle.num_qubits == 3
    assert triangle.num_resonators == 3
    blocks = triangle.wire_blocks
    assert len(blocks) == sum(r.num_blocks for r in triangle.resonators)
    assert triangle.num_cells == 3 + len(blocks)


def test_coupling_graph_matches_edges(triangle):
    graph = triangle.coupling_graph()
    assert set(graph.nodes) == {0, 1, 2}
    assert graph.number_of_edges() == 3


def test_partition_seeds_blocks_between_qubits(triangle):
    triangle.partition_all(pad=1.0, lb=1.0)
    r = triangle.resonator(0, 1)
    for block in r.blocks:
        assert 0.0 <= block.x <= 5.0
        assert block.y == 0.0


def test_nets_styles_differ(triangle):
    triangle.partition_all(pad=1.0, lb=1.0)
    snake = triangle.nets(ConnectionStyle.SNAKE)
    pseudo = triangle.nets(ConnectionStyle.PSEUDO)
    assert len(pseudo) > len(snake)


def test_snapshot_restore_round_trip(triangle):
    triangle.partition_all(pad=1.0, lb=1.0)
    before = triangle.snapshot()
    for q in triangle.qubits:
        q.move_to(q.x + 10.0, q.y + 10.0)
    for b in triangle.wire_blocks:
        b.move_to(0.0, 0.0)
    assert triangle.snapshot() != before
    triangle.restore(before)
    assert triangle.snapshot() == before


def test_repr_mentions_counts(triangle):
    text = repr(triangle)
    assert "qubits=3" in text and "resonators=3" in text
