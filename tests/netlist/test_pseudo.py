"""Snake vs pseudo connection nets (Fig. 5)."""

from repro.netlist import (
    ConnectionStyle,
    Resonator,
    blocks_for_resonator,
    build_block_nets,
    pseudo_connection_nets,
    snake_connection_nets,
)
from repro.netlist.partition import reshape_to_rectangle
from repro.netlist.pseudo import block_node, qubit_node


def _resonator(n_blocks: int) -> Resonator:
    r = Resonator(qi=0, qj=1, wirelength=float(n_blocks))
    blocks_for_resonator(r, pad=1.0, lb=1.0)
    assert r.num_blocks == n_blocks
    return r


def test_snake_chain_structure():
    r = _resonator(4)
    nets = snake_connection_nets(r)
    assert nets[0] == (qubit_node(0), block_node((0, 1), 0))
    assert nets[-1] == (block_node((0, 1), 3), qubit_node(1))
    assert len(nets) == 5  # q-b0, b0-b1, b1-b2, b2-b3, b3-q


def test_snake_with_no_blocks_joins_qubits():
    r = Resonator(qi=0, qj=1, wirelength=1.0)
    assert snake_connection_nets(r) == [(qubit_node(0), qubit_node(1))]


def test_pseudo_is_superset_of_snake():
    r = _resonator(6)
    snake = {frozenset(n) for n in snake_connection_nets(r)}
    pseudo = {frozenset(n) for n in pseudo_connection_nets(r)}
    assert snake <= pseudo
    assert len(pseudo) > len(snake)


def test_pseudo_extras_are_grid_adjacent():
    n = 6
    r = _resonator(n)
    cols, _rows = reshape_to_rectangle(n)  # (3, 2)
    snake = {frozenset(p) for p in snake_connection_nets(r)}
    extra = [
        p for p in pseudo_connection_nets(r) if frozenset(p) not in snake
    ]
    assert extra, "pseudo connections must add nets for a 3x2 rectangle"
    for u, v in extra:
        # Both endpoints are blocks, adjacent in the reshaped rectangle.
        assert u[0] == "b" and v[0] == "b"
        i, j = u[2], v[2]
        ci, ri = i % cols, i // cols
        cj, rj = j % cols, j // cols
        assert abs(ci - cj) + abs(ri - rj) == 1


def test_pseudo_no_duplicate_nets():
    r = _resonator(12)
    nets = pseudo_connection_nets(r)
    assert len({frozenset(n) for n in nets}) == len(nets)


def test_single_block_pseudo_equals_snake():
    r = _resonator(1)
    assert pseudo_connection_nets(r) == snake_connection_nets(r)


def test_build_block_nets_dispatch():
    r1, r2 = _resonator(4), _resonator(4)
    r2.qi, r2.qj = 2, 3
    snake_total = build_block_nets([r1, r2], ConnectionStyle.SNAKE)
    pseudo_total = build_block_nets([r1, r2], ConnectionStyle.PSEUDO)
    assert len(snake_total) == 10
    assert len(pseudo_total) > len(snake_total)
