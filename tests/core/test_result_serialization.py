"""FlowResult / StageReport / snapshot serialization round trips."""

import json

import pytest

from repro.core.config import QGDPConfig
from repro.core.pipeline import run_flow
from repro.core.result import (
    FlowResult,
    StageReport,
    decode_snapshot,
    encode_snapshot,
)


def test_snapshot_roundtrip_is_exact():
    positions = {
        ("q", 0): (0.1 + 0.2, 1.0 / 3.0),
        ("q", 7): (-2.5, 1e-17),
        ("b", (0, 7), 0): (3.5, 4.5),
        ("b", (0, 7), 11): (7.000000000000001, 8.5),
    }
    rows = encode_snapshot(positions)
    # Through actual JSON text, as the artifact store does.
    rows = json.loads(json.dumps(rows))
    assert decode_snapshot(rows) == positions  # bit-exact floats, same keys


def test_snapshot_rejects_unknown_ids():
    with pytest.raises(ValueError):
        encode_snapshot({("z", 1): (0.0, 0.0)})
    with pytest.raises(ValueError):
        decode_snapshot([["z", 1, 0.0, 0.0]])


def test_stage_report_roundtrip():
    report = StageReport(
        stage="lg",
        runtime_s=0.25,
        positions={("q", 0): (1.5, 2.5), ("b", (0, 1), 2): (3.5, 4.5)},
        metrics={"iedge": "37/40", "crossings": 3, "ph_percent": 0.125},
    )
    back = StageReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert back == report


def test_flow_result_roundtrip_from_real_flow():
    _, result = run_flow(
        "grid", engine="qgdp", detailed=False,
        config=QGDPConfig(gp_iterations=30),
    )
    back = FlowResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert back.topology_name == result.topology_name
    assert back.engine == result.engine
    assert [s.stage for s in back.stages] == [s.stage for s in result.stages]
    for mine, theirs in zip(back.stages, result.stages):
        assert mine.positions == theirs.positions  # exact layout round trip
        assert mine.metrics == theirs.metrics
    assert back.final.metric("legality_violations") == 0
    assert back.stage("gp").positions == result.stage("gp").positions
