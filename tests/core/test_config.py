"""Configuration validation."""

import pytest

from repro.core.config import QGDPConfig


def test_defaults_valid():
    cfg = QGDPConfig()
    assert cfg.lb == 1.0
    assert cfg.qubit_size > cfg.lb
    assert cfg.initial_qubit_spacing >= cfg.min_qubit_spacing


def test_rejects_nonpositive_lb():
    with pytest.raises(ValueError):
        QGDPConfig(lb=0.0)


def test_rejects_tiny_qubits():
    with pytest.raises(ValueError):
        QGDPConfig(qubit_size=0.5)


def test_rejects_negative_spacing():
    with pytest.raises(ValueError):
        QGDPConfig(min_qubit_spacing=-1.0)


def test_rejects_inverted_spacing_schedule():
    with pytest.raises(ValueError):
        QGDPConfig(initial_qubit_spacing=0.5, min_qubit_spacing=1.0)


def test_rejects_extreme_utilization():
    with pytest.raises(ValueError):
        QGDPConfig(utilization=0.99)
    with pytest.raises(ValueError):
        QGDPConfig(utilization=0.01)


def test_custom_values_accepted():
    cfg = QGDPConfig(utilization=0.5, seed=7, delta_c=0.08)
    assert cfg.utilization == 0.5
    assert cfg.seed == 7
