"""Stage reports and flow results."""

import pytest

from repro.core.result import FlowResult, StageReport


def test_metric_accessor_default():
    report = StageReport(stage="lg", runtime_s=0.1, metrics={"x": 1})
    assert report.metric("x") == 1
    assert report.metric("missing") is None
    assert report.metric("missing", 7) == 7


def test_flow_result_stage_lookup():
    result = FlowResult("grid", "qgdp")
    result.stages.append(StageReport("gp", 0.1))
    result.stages.append(StageReport("lg", 0.2))
    assert result.stage("gp").runtime_s == 0.1
    assert result.final.stage == "lg"


def test_flow_result_missing_stage():
    result = FlowResult("grid", "qgdp")
    result.stages.append(StageReport("gp", 0.1))
    with pytest.raises(KeyError):
        result.stage("dp")


def test_empty_flow_result_final_raises():
    with pytest.raises(ValueError):
        FlowResult("grid", "qgdp").final
