"""End-to-end flow."""

import pytest

from repro.core import QGDPConfig
from repro.core.pipeline import QGDPFlow, run_flow
from repro.metrics import check_legality


@pytest.fixture(scope="module")
def flow_result():
    cfg = QGDPConfig(gp_iterations=60)
    flow = QGDPFlow("falcon", cfg)
    result = flow.run(engine="qgdp", detailed=True)
    return (flow, result)


def test_stage_sequence(flow_result):
    _flow, result = flow_result
    assert [s.stage for s in result.stages] == ["gp", "lg", "dp"]
    assert result.final.stage == "dp"


def test_stage_lookup(flow_result):
    _flow, result = flow_result
    assert result.stage("lg").stage == "lg"
    with pytest.raises(KeyError):
        result.stage("nope")


def test_lg_metrics_present(flow_result):
    _flow, result = flow_result
    lg = result.stage("lg").metrics
    for key in (
        "iedge",
        "crossings",
        "ph_percent",
        "hq",
        "qubit_time_s",
        "resonator_time_s",
        "legality_violations",
    ):
        assert key in lg
    assert lg["legality_violations"] == 0


def test_dp_never_regresses_lg(flow_result):
    _flow, result = flow_result
    lg = result.stage("lg").metrics
    dp = result.stage("dp").metrics
    assert dp["clusters"] <= lg["clusters"]
    assert dp["ph_percent"] <= lg["ph_percent"] + 1e-9
    assert dp["crossings"] <= lg["crossings"]


def test_final_layout_legal(flow_result):
    flow, _result = flow_result
    assert check_legality(flow.netlist, flow.grid) == []


def test_positions_snapshot_per_stage(flow_result):
    _flow, result = flow_result
    gp = result.stage("gp").positions
    lg = result.stage("lg").positions
    assert set(gp) == set(lg)
    assert gp != lg  # legalization moved things


def test_run_flow_convenience():
    flow, result = run_flow(
        "grid", engine="tetris", detailed=False, config=QGDPConfig(gp_iterations=40)
    )
    assert [s.stage for s in result.stages] == ["gp", "lg"]
    assert flow.netlist is not None


def test_flow_accepts_topology_object():
    from repro.topologies import get_topology

    flow = QGDPFlow(get_topology("grid"), QGDPConfig(gp_iterations=10))
    assert flow.topology.name == "grid"


def test_empty_flow_result_raises():
    from repro.core.result import FlowResult

    with pytest.raises(ValueError):
        FlowResult("grid", "qgdp").final
