"""Public API surface."""

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_paper_constants():
    assert len(repro.PAPER_TOPOLOGIES) == 6
    assert len(repro.PAPER_BENCHMARKS) == 7
    assert len(repro.PAPER_ENGINE_ORDER) == 5


def test_quickstart_snippet_runs():
    flow, result = repro.run_flow(
        "grid",
        engine="qgdp",
        detailed=False,
        config=repro.QGDPConfig(gp_iterations=30),
    )
    assert result.final.metrics["legality_violations"] == 0
