"""Stress and failure-injection tests for the legalization stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, SiteGrid
from repro.legalization import (
    BinGrid,
    abacus_legalize,
    integration_aware_legalize,
    tetris_legalize,
)
from repro.netlist import Resonator, WireBlock, cluster_count


def _blocks(n, x, y, key=(0, 1)):
    return [
        WireBlock(resonator_key=key, ordinal=k, x=x, y=y) for k in range(n)
    ]


def _resonator(key, n, x, y):
    r = Resonator(qi=key[0], qj=key[1], wirelength=float(n))
    r.blocks = _blocks(n, x, y, key)
    return r


@pytest.mark.parametrize("legalize", [tetris_legalize, abacus_legalize])
def test_near_full_grid_still_legal(legalize):
    """95% pre-occupied grid: the remaining cells must still fit legally."""
    bins = BinGrid(SiteGrid(10, 10))
    free = [(c, r) for c in range(10) for r in range(10)]
    for col, row in free[:95]:
        bins.occupy(col, row, ("b", (9, 10), 0))
    blocks = _blocks(5, 5.0, 5.0)
    legalize(blocks, bins)
    sites = {bins.grid.site_of(b.center) for b in blocks}
    assert len(sites) == 5
    assert bins.num_free == 0


def test_integration_on_near_full_grid():
    bins = BinGrid(SiteGrid(10, 10))
    free = [(c, r) for c in range(10) for r in range(10)]
    for col, row in free[:90]:
        bins.occupy(col, row, ("b", (9, 10), 0))
    r = _resonator((0, 1), 10, 5.0, 5.0)
    integration_aware_legalize([r], bins)
    assert bins.num_free == 0
    sites = {bins.grid.site_of(b.center) for b in r.blocks}
    assert len(sites) == 10


@settings(max_examples=15, deadline=None)
@given(
    seeds=st.lists(
        st.tuples(st.floats(1.0, 19.0), st.floats(1.0, 19.0)),
        min_size=1,
        max_size=6,
    ),
    sizes=st.lists(st.integers(2, 10), min_size=6, max_size=6),
)
def test_integration_random_instances_contiguous(seeds, sizes):
    """Random multi-resonator instances: legal and mostly contiguous."""
    bins = BinGrid(SiteGrid(24, 24))
    resonators = []
    for k, (x, y) in enumerate(seeds):
        resonators.append(_resonator((2 * k, 2 * k + 1), sizes[k], x, y))
    integration_aware_legalize(resonators, bins)
    occupied = set()
    for r in resonators:
        for b in r.blocks:
            site = bins.grid.site_of(b.center)
            assert site not in occupied
            occupied.add(site)
    # With 24x24 free space for <= 60 blocks, everything stays unified.
    for r in resonators:
        assert cluster_count(r) == 1


@pytest.mark.parametrize("legalize", [tetris_legalize, abacus_legalize])
def test_obstacle_maze_does_not_lose_blocks(legalize):
    """A comb of macro teeth: every block still gets a unique legal site."""
    bins = BinGrid(SiteGrid(20, 20))
    for col in range(2, 18, 4):
        bins.occupy_rect(Rect(col + 0.5, 8.0, 1.0, 14.0), ("q", col))
    blocks = _blocks(30, 10.0, 8.0)
    legalize(blocks, bins)
    sites = {bins.grid.site_of(b.center) for b in blocks}
    assert len(sites) == 30


def test_empty_resonator_list_noop():
    bins = BinGrid(SiteGrid(5, 5))
    result = integration_aware_legalize([], bins)
    assert result.placed == {}
    assert bins.num_free == 25


@pytest.mark.parametrize("legalize", [tetris_legalize, abacus_legalize])
def test_empty_block_list_noop(legalize):
    bins = BinGrid(SiteGrid(5, 5))
    assert legalize([], bins) == {}
