"""H/V constraint graph construction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.legalization import build_constraint_graphs


def _graphs(positions, sizes=None, spacing=0.0):
    indices = sorted(positions)
    sizes = sizes or {i: (3.0, 3.0) for i in indices}
    return build_constraint_graphs(indices, positions, sizes, spacing)


def test_horizontal_pair_gets_h_arc():
    h, v = _graphs({0: (0.0, 0.0), 1: (10.0, 0.1)})
    assert len(h) == 1 and len(v) == 0
    assert (h[0].lo, h[0].hi) == (0, 1)


def test_vertical_pair_gets_v_arc():
    h, v = _graphs({0: (0.0, 0.0), 1: (0.1, 10.0)})
    assert len(v) == 1 and len(h) == 0
    assert (v[0].lo, v[0].hi) == (0, 1)


def test_separation_includes_spacing():
    h, _v = _graphs({0: (0.0, 0.0), 1: (10.0, 0.0)}, spacing=1.5)
    assert h[0].separation == 3.0 + 1.5


def test_arc_orientation_follows_coordinates():
    h, _v = _graphs({0: (10.0, 0.0), 1: (0.0, 0.1)})
    assert (h[0].lo, h[0].hi) == (1, 0)


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.integers(0, 15),
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=2,
        max_size=12,
    )
)
def test_every_pair_in_exactly_one_graph(positions):
    indices = sorted(positions)
    h, v = _graphs(positions)
    pairs = {frozenset((a.lo, a.hi)) for a in h} | {
        frozenset((a.lo, a.hi)) for a in v
    }
    n = len(indices)
    assert len(h) + len(v) == n * (n - 1) // 2
    assert len(pairs) == n * (n - 1) // 2
