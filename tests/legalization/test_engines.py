"""The five named legalization engines, end to end."""

import pytest

from repro.legalization import (
    ENGINES,
    PAPER_ENGINE_ORDER,
    get_engine,
    run_legalization,
)
from repro.metrics import check_legality, integration_ratio, qubit_spacing_violations


def test_registry_contents():
    assert set(PAPER_ENGINE_ORDER) == set(ENGINES)
    assert get_engine("QGDP").display_name == "qGDP-LG"
    with pytest.raises(KeyError):
        get_engine("unknown")


def test_engine_traits():
    assert ENGINES["qgdp"].quantum_qubits
    assert ENGINES["qgdp"].resonator_method == "integration"
    assert not ENGINES["tetris"].quantum_qubits
    assert ENGINES["q-abacus"].resonator_method == "abacus"


@pytest.mark.parametrize("engine_name", PAPER_ENGINE_ORDER)
def test_every_engine_produces_legal_layout(
    engine_name, fast_config, falcon_gp
):
    netlist, grid, gp_positions = falcon_gp
    netlist.restore(gp_positions)
    outcome = run_legalization(
        netlist, grid, get_engine(engine_name), fast_config
    )
    assert check_legality(netlist, grid) == []
    assert outcome.qubit_time_s > 0
    assert outcome.resonator_time_s > 0


def test_quantum_engines_leave_no_spacing_violations(fast_config, falcon_gp):
    netlist, grid, gp_positions = falcon_gp
    for engine_name in ("qgdp", "q-abacus", "q-tetris"):
        netlist.restore(gp_positions)
        run_legalization(netlist, grid, get_engine(engine_name), fast_config)
        assert (
            qubit_spacing_violations(netlist, fast_config.min_qubit_spacing)
            == []
        )


def test_qgdp_integration_beats_classical(fast_config, falcon_gp):
    netlist, grid, gp_positions = falcon_gp

    def unified_count(engine_name):
        netlist.restore(gp_positions)
        run_legalization(netlist, grid, get_engine(engine_name), fast_config)
        unified, _total = integration_ratio(netlist)
        return unified

    assert unified_count("qgdp") >= unified_count("tetris")
    assert unified_count("qgdp") >= unified_count("abacus")


def test_qubits_identical_across_quantum_engines(fast_config, falcon_gp):
    netlist, grid, gp_positions = falcon_gp

    def qubit_positions(engine_name):
        netlist.restore(gp_positions)
        run_legalization(netlist, grid, get_engine(engine_name), fast_config)
        return {q.index: (q.x, q.y) for q in netlist.qubits}

    assert qubit_positions("qgdp") == qubit_positions("q-tetris")


def test_bins_consistent_with_netlist(fast_config, falcon_legalized):
    netlist, grid, outcome = falcon_legalized
    for block in netlist.wire_blocks:
        site = grid.site_of(block.center)
        assert outcome.bins.occupant(*site) == block.node_id
