"""LP macro legalization: legality, minimal movement, snapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, SiteGrid
from repro.legalization import legalize_macros


def _check_legal(result, indices, sizes, grid, spacing):
    assert result.feasible
    rects = {
        i: Rect(result.positions[i][0], result.positions[i][1], *sizes[i])
        for i in indices
    }
    border = grid.border
    for i in indices:
        assert rects[i].inside(border, tol=1e-6)
    for a_pos, i in enumerate(indices):
        for j in indices[a_pos + 1 :]:
            inflated = rects[i].inflated(spacing / 2.0)
            other = rects[j].inflated(spacing / 2.0)
            assert not inflated.overlaps(other, tol=1e-6), (i, j)


def test_already_legal_stays_put():
    grid = SiteGrid(20, 20)
    positions = {0: (1.5, 1.5), 1: (10.5, 10.5)}
    sizes = {0: (3.0, 3.0), 1: (3.0, 3.0)}
    result = legalize_macros([0, 1], positions, sizes, grid)
    assert result.feasible
    assert result.total_displacement == pytest.approx(0.0, abs=1e-6)
    assert result.positions[0] == pytest.approx(positions[0])


def test_overlapping_macros_separated():
    grid = SiteGrid(20, 20)
    positions = {0: (8.0, 8.0), 1: (9.0, 8.2)}
    sizes = {0: (3.0, 3.0), 1: (3.0, 3.0)}
    result = legalize_macros([0, 1], positions, sizes, grid)
    _check_legal(result, [0, 1], sizes, grid, 0.0)


def test_spacing_enforced():
    grid = SiteGrid(20, 20)
    positions = {0: (8.0, 8.0), 1: (11.2, 8.0)}  # gap 0.2 < spacing 1
    sizes = {0: (3.0, 3.0), 1: (3.0, 3.0)}
    result = legalize_macros([0, 1], positions, sizes, grid, spacing=1.0)
    _check_legal(result, [0, 1], sizes, grid, 1.0)
    gap = abs(result.positions[0][0] - result.positions[1][0]) - 3.0
    assert gap >= 1.0 - 1e-6


def test_positions_snap_to_sites():
    grid = SiteGrid(20, 20)
    positions = {0: (8.37, 8.91)}
    sizes = {0: (3.0, 3.0)}
    result = legalize_macros([0], positions, sizes, grid)
    x, y = result.positions[0]
    assert (x - 1.5) == pytest.approx(round(x - 1.5))
    assert (y - 1.5) == pytest.approx(round(y - 1.5))


def test_border_clamping():
    grid = SiteGrid(10, 10)
    positions = {0: (0.0, 0.0)}  # centre outside feasible range
    sizes = {0: (3.0, 3.0)}
    result = legalize_macros([0], positions, sizes, grid)
    assert result.feasible
    assert result.positions[0][0] >= 1.5 - 1e-9


def test_infeasible_when_macros_cannot_fit():
    grid = SiteGrid(5, 5)
    positions = {i: (2.5, 2.5) for i in range(4)}
    sizes = {i: (3.0, 3.0) for i in range(4)}
    result = legalize_macros(list(range(4)), positions, sizes, grid)
    assert not result.feasible
    # Contract: positions are unchanged (the input placement) on failure.
    assert result.positions == positions
    assert result.positions is not positions  # a defensive copy


def test_tight_border_tie_is_not_spuriously_infeasible():
    """Regression: snap rounding can tie two centres exactly (half-even
    rounding on an arc with a one-site separation).  The historical
    forward/backward repair re-oriented the arc along the tied order and
    reported infeasibility; the bound-respecting sweep must keep the arc
    direction and succeed."""
    grid = SiteGrid(8, 8)
    # Arc 1 -> 0 (qubit 1 left of qubit 0), separation exactly one site.
    positions = {0: (3.0, 4.5), 1: (2.0, 4.5)}
    sizes = {0: (1.0, 1.0), 1: (1.0, 1.0)}
    result = legalize_macros([0, 1], positions, sizes, grid)
    _check_legal(result, [0, 1], sizes, grid, 0.0)
    assert result.positions[0][0] - result.positions[1][0] >= 1.0 - 1e-9


def test_empty_input():
    grid = SiteGrid(5, 5)
    result = legalize_macros([], {}, {}, grid)
    assert result.feasible
    assert result.total_displacement == 0.0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(2, 28), st.floats(2, 28)),
        min_size=2,
        max_size=7,
        unique=True,
    )
)
def test_random_instances_legalize_legally(centers):
    grid = SiteGrid(40, 40)
    indices = list(range(len(centers)))
    positions = {i: centers[i] for i in indices}
    sizes = {i: (3.0, 3.0) for i in indices}
    result = legalize_macros(indices, positions, sizes, grid, spacing=1.0)
    _check_legal(result, indices, sizes, grid, 1.0)


# ---------------------------------------------------------------------------
# Warm-start presolve: certificate soundness and objective parity.
# ---------------------------------------------------------------------------

import numpy as np

from repro.legalization.constraint_graph import build_constraint_arrays
from repro.legalization.macro_lp import (
    _INFEASIBLE,
    _solve_axis,
    _warm_presolve,
)


def _axis_instance(centers, width, spacing):
    """One H-axis LP instance from equal 3×3 macros at the given centres."""
    indices = list(range(len(centers)))
    positions = {i: (c, 1.5) for i, c in enumerate(centers)}
    sizes = {i: (3.0, 3.0) for i in indices}
    ordered, h_arcs, _ = build_constraint_arrays(
        indices, positions, sizes, spacing
    )
    targets = np.array([positions[i][0] for i in indices])
    half = np.full(len(indices), 1.5)
    return indices, h_arcs, targets, half


def test_presolve_certifies_infeasible_axis():
    # Three 3-wide macros + spacing 1 need 11 units; only 10 exist.
    indices, arcs, targets, half = _axis_instance(
        [2.0, 5.0, 8.0], width=10.0, spacing=1.0
    )
    verdict, _ = _warm_presolve(indices, targets, half, arcs, 10.0)
    assert verdict == _INFEASIBLE
    # The cold solve agrees, so the fast-fail changes nothing observable.
    assert _solve_axis(arcs, targets, half, 10.0) is None


def test_presolve_optimal_clamp_matches_cold_solve_objective():
    # Already separated: the clamp shortcut must return the targets.
    indices, arcs, targets, half = _axis_instance(
        [2.0, 8.0, 14.0], width=20.0, spacing=1.0
    )
    verdict, warm = _warm_presolve(indices, targets, half, arcs, 20.0)
    assert verdict == "optimal"
    assert np.allclose(warm, targets)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(1.5, 38.5), min_size=2, max_size=8, unique=True
    ),
    st.sampled_from([0.0, 1.0, 2.0]),
)
def test_warm_axis_solve_matches_cold_objective(centers, spacing):
    """Warm and cold axis solves agree on feasibility and objective value."""
    indices, arcs, targets, half = _axis_instance(
        centers, width=40.0, spacing=spacing
    )
    cold = _solve_axis(arcs, targets, half, 40.0)
    warm = _solve_axis(
        arcs, targets, half, 40.0, ids=indices, warm_start=True
    )
    assert (cold is None) == (warm is None)
    if cold is None:
        return
    for sol in (cold, warm):
        assert np.all(sol[arcs.hi] - sol[arcs.lo] >= arcs.sep - 1e-6)
        assert np.all(sol >= half - 1e-6)
        assert np.all(sol <= 40.0 - half + 1e-6)
    cold_obj = np.abs(cold - targets).sum()
    warm_obj = np.abs(warm - targets).sum()
    assert warm_obj == pytest.approx(cold_obj, abs=1e-6)
