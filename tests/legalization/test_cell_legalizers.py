"""Tetris and Abacus standard-cell legalizers."""

import pytest

from repro.geometry import Rect, SiteGrid
from repro.legalization import BinGrid, abacus_legalize, tetris_legalize
from repro.netlist import Resonator, WireBlock


def _blocks(positions, key=(0, 1)):
    return [
        WireBlock(resonator_key=key, ordinal=k, x=x, y=y)
        for k, (x, y) in enumerate(positions)
    ]


def _assert_legal(blocks, bins):
    seen = set()
    for block in blocks:
        site = bins.grid.site_of(block.center)
        assert site not in seen, f"two blocks on {site}"
        seen.add(site)
        assert bins.occupant(*site) == block.node_id
        center = bins.grid.site_center(*site)
        assert (block.x, block.y) == (center.x, center.y)


@pytest.mark.parametrize("legalize", [tetris_legalize, abacus_legalize])
def test_overlapping_blocks_get_distinct_sites(legalize):
    bins = BinGrid(SiteGrid(12, 12))
    blocks = _blocks([(5.2, 5.2), (5.3, 5.3), (5.4, 5.1), (5.0, 5.4)])
    placed = legalize(blocks, bins)
    assert len(placed) == 4
    _assert_legal(blocks, bins)


@pytest.mark.parametrize("legalize", [tetris_legalize, abacus_legalize])
def test_blocks_avoid_macro_obstacles(legalize):
    bins = BinGrid(SiteGrid(12, 12))
    macro = Rect(5.5, 5.5, 3.0, 3.0)
    bins.occupy_rect(macro, ("q", 0))
    blocks = _blocks([(5.5, 5.5), (5.6, 5.4), (5.4, 5.6)])
    legalize(blocks, bins)
    macro_sites = set(bins.grid.sites_covered(macro))
    for block in blocks:
        assert bins.grid.site_of(block.center) not in macro_sites


@pytest.mark.parametrize("legalize", [tetris_legalize, abacus_legalize])
def test_already_placed_near_targets(legalize):
    bins = BinGrid(SiteGrid(16, 16))
    blocks = _blocks([(2.5, 2.5), (8.5, 8.5), (12.5, 3.5)])
    legalize(blocks, bins)
    for block, target in zip(blocks, [(2.5, 2.5), (8.5, 8.5), (12.5, 3.5)]):
        assert abs(block.x - target[0]) + abs(block.y - target[1]) <= 2.0


@pytest.mark.parametrize("legalize", [tetris_legalize, abacus_legalize])
def test_full_grid_raises(legalize):
    bins = BinGrid(SiteGrid(2, 2))
    for col in range(2):
        for row in range(2):
            bins.occupy(col, row, "x")
    with pytest.raises(RuntimeError):
        legalize(_blocks([(0.5, 0.5)]), bins)


@pytest.mark.parametrize("legalize", [tetris_legalize, abacus_legalize])
def test_exact_capacity_fits(legalize):
    bins = BinGrid(SiteGrid(3, 3))
    positions = [(c + 0.5, r + 0.5) for c in range(3) for r in range(3)]
    blocks = _blocks(positions)
    placed = legalize(blocks, bins)
    assert len(placed) == 9
    assert bins.num_free == 0


def test_tetris_frontier_cascades_rightward():
    """Cells contesting one site in a row cascade to increasing columns."""
    bins = BinGrid(SiteGrid(10, 1))
    blocks = _blocks([(2.5, 0.5), (2.6, 0.5), (2.7, 0.5)])
    tetris_legalize(blocks, bins)
    cols = sorted(bins.grid.site_of(b.center)[0] for b in blocks)
    assert cols == [2, 3, 4]


def test_abacus_clusters_center_on_targets():
    """Abacus balances a contested run around the mean target."""
    bins = BinGrid(SiteGrid(11, 1))
    blocks = _blocks([(5.5, 0.5), (5.5, 0.5), (5.5, 0.5)])
    abacus_legalize(blocks, bins)
    cols = sorted(bins.grid.site_of(b.center)[0] for b in blocks)
    assert cols == [4, 5, 6]


def test_abacus_respects_segment_boundaries():
    bins = BinGrid(SiteGrid(9, 1))
    bins.occupy(4, 0, ("q", 0))  # splits the row into two segments
    blocks = _blocks([(4.5, 0.5), (4.4, 0.5), (4.6, 0.5)])
    abacus_legalize(blocks, bins)
    for block in blocks:
        assert bins.grid.site_of(block.center) != (4, 0)


def test_tetris_row_tie_breaks_toward_lower_row():
    """Equidistant candidate rows resolve low-row-first, deterministically.

    Regression for the RPR001 finding in the row scan: iterating
    ``{target_row - dist, target_row + dist}`` directly exposed
    hash-table order, so the winner of a cost tie depended on the int
    hash layout instead of a documented rule.
    """
    bins = BinGrid(SiteGrid(5, 5))
    for col in range(5):
        bins.occupy(col, 2, ("q", 0))  # the target row is full
    blocks = _blocks([(2.5, 2.5)])
    placed = tetris_legalize(blocks, bins)
    # Rows 1 and 3 both offer column 2 at cost 1; the lower row wins.
    assert placed[blocks[0].name] == (2, 1)
