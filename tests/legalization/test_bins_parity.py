"""Property tests: BinGrid's array state never diverges from dict/bisect.

The flat ``kind`` / ``owner_idx`` / ``res_idx`` arrays are a redundant
representation of the occupant dict + per-row free lists; every mutation
(occupy, release, occupy_rect — including ones that raise) must leave the
two views equal.  ``check_consistency`` cross-checks them exhaustively.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, SiteGrid
from repro.legalization import BinGrid

COLS, ROWS = 7, 6

site_st = st.tuples(st.integers(0, COLS - 1), st.integers(0, ROWS - 1))

owner_st = st.one_of(
    st.builds(lambda i: ("q", i), st.integers(0, 5)),
    st.builds(
        lambda a, b, o: ("b", (min(a, b), max(a, b) + 1), o),
        st.integers(0, 4),
        st.integers(0, 4),
        st.integers(0, 3),
    ),
    st.sampled_from(["x", "marker"]),
)

op_st = st.one_of(
    st.tuples(st.just("occupy"), site_st, owner_st),
    st.tuples(st.just("release"), site_st, st.none()),
    st.tuples(
        st.just("rect"),
        st.tuples(
            st.integers(0, COLS - 2),
            st.integers(0, ROWS - 2),
            st.integers(1, 3),
            st.integers(1, 3),
        ),
        owner_st,
    ),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(op_st, max_size=40))
def test_array_and_dict_state_never_diverge(ops):
    bins = BinGrid(SiteGrid(COLS, ROWS))
    mirror = {}  # plain reference model: site -> owner
    for op, arg, owner in ops:
        if op == "occupy":
            col, row = arg
            if (col, row) in mirror:
                with pytest.raises(ValueError):
                    bins.occupy(col, row, owner)
            else:
                bins.occupy(col, row, owner)
                mirror[(col, row)] = owner
        elif op == "release":
            col, row = arg
            if (col, row) in mirror:
                bins.release(col, row)
                del mirror[(col, row)]
            else:
                with pytest.raises(ValueError):
                    bins.release(col, row)
        else:
            lo_col, lo_row, w, h = arg
            rect = Rect(
                lo_col + w / 2.0, lo_row + h / 2.0, float(w), float(h)
            )
            covered = bins.grid.sites_covered(rect)
            if any(site in mirror for site in covered):
                with pytest.raises(ValueError):
                    bins.occupy_rect(rect, owner)
            else:
                bins.occupy_rect(rect, owner)
                for site in covered:
                    mirror[site] = owner
        bins.check_consistency()

    # Array-backed reads agree with the reference model everywhere.
    for col in range(COLS):
        for row in range(ROWS):
            assert bins.is_free(col, row) == ((col, row) not in mirror)
            assert bins.occupant(col, row) == mirror.get((col, row))
    assert bins.num_free == COLS * ROWS - len(mirror)
    assert sorted(bins.free_sites()) == sorted(
        (c, r)
        for c in range(COLS)
        for r in range(ROWS)
        if (c, r) not in mirror
    )


def test_failed_occupy_rect_is_atomic():
    bins = BinGrid(SiteGrid(COLS, ROWS))
    bins.occupy(2, 2, "x")
    with pytest.raises(ValueError):
        bins.occupy_rect(Rect(2.0, 2.0, 2.0, 2.0), ("q", 0))
    bins.check_consistency()
    # Only the pre-existing occupant remains.
    assert bins.num_free == COLS * ROWS - 1
    assert bins.occupant(2, 2) == "x"


def test_out_of_grid_probes_are_safe():
    bins = BinGrid(SiteGrid(COLS, ROWS))
    assert not bins.is_free(-1, 0)
    assert not bins.is_free(0, ROWS)
    assert bins.occupant(-1, 0) is None
    assert bins.occupant(COLS, 0) is None
