"""Parity: the array-assembled qubit LP equals the scalar reference.

References are faithful transcriptions of the original scalar kernels:
the pairwise constraint-graph loop and the per-row LP assembly.  The
vectorized implementations must produce the same arc lists and the same
LP (same rows, columns and bounds, hence HiGHS returns the same vertex,
bit for bit).  The snap-and-repair sweep is compared against a scalar
dict-based transcription of the *repaired* algorithm (backward limit
propagation + one clamped forward sweep) — the historical
forward/backward pair is intentionally not the oracle because it is the
bug the repair fixes (see ``test_macro_lp.py``'s tight-border
regression); where the historical pass was sound the repaired sweep is
shown to agree with it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse
from scipy.optimize import linprog

from repro.geometry import Rect, SiteGrid
from repro.legalization import legalize_macros
from repro.legalization.constraint_graph import (
    Arc,
    build_constraint_arrays,
    build_constraint_graphs,
    transitive_reduction,
)
from repro.legalization.macro_lp import _snap_and_repair, _solve_axis


def reference_build_constraint_graphs(indices, positions, sizes, spacing):
    """The original scalar pair loop, verbatim."""
    h_arcs = []
    v_arcs = []
    ordered = sorted(indices)
    for a_pos, i in enumerate(ordered):
        xi, yi = positions[i]
        wi, hi = sizes[i]
        for j in ordered[a_pos + 1 :]:
            xj, yj = positions[j]
            wj, hj = sizes[j]
            sep_x = (wi + wj) / 2.0 + spacing
            sep_y = (hi + hj) / 2.0 + spacing
            ratio_x = abs(xi - xj) / sep_x
            ratio_y = abs(yi - yj) / sep_y
            if ratio_x >= ratio_y:
                lo, hi_ = (i, j) if xi <= xj else (j, i)
                h_arcs.append(Arc(lo, hi_, sep_x))
            else:
                lo, hi_ = (i, j) if yi <= yj else (j, i)
                v_arcs.append(Arc(lo, hi_, sep_y))
    return (h_arcs, v_arcs)


def reference_solve_axis(ids, targets, half_sizes, arcs, extent):
    """The original scalar per-row LP assembly, verbatim."""
    n = len(ids)
    pos_of = {node: k for k, node in enumerate(ids)}
    num_vars = 2 * n

    rows, cols, data, rhs = [], [], [], []

    def add_row(entries, bound):
        row = len(rhs)
        for col, coeff in entries:
            rows.append(row)
            cols.append(col)
            data.append(coeff)
        rhs.append(bound)

    for arc in arcs:
        lo, hi = pos_of[arc.lo], pos_of[arc.hi]
        add_row([(lo, 1.0), (hi, -1.0)], -arc.separation)
    for node in ids:
        k = pos_of[node]
        add_row([(k, 1.0), (n + k, -1.0)], targets[node])
        add_row([(k, -1.0), (n + k, -1.0)], -targets[node])

    a_ub = sparse.coo_matrix(
        (data, (rows, cols)), shape=(len(rhs), num_vars)
    ).tocsr()
    c = np.concatenate([np.zeros(n), np.ones(n)])
    bounds = [
        (half_sizes[node], extent - half_sizes[node]) for node in ids
    ] + [(0.0, None)] * n
    result = linprog(
        c, A_ub=a_ub, b_ub=np.array(rhs), bounds=bounds, method="highs"
    )
    if not result.success:
        return None
    return {node: float(result.x[pos_of[node]]) for node in ids}


def reference_snap_and_repair(ids, solution, half_sizes, arcs, extent, lb):
    """Scalar dict transcription of the bound-respecting repair sweep.

    Same semantics as the vectorized ``_snap_and_repair``: nodes are
    processed in arc-respecting (topological) order, ready nodes by
    ``(snapped, id)``; upper limits propagate backwards from the border,
    then one forward sweep pushes up and clamps.
    """
    import heapq

    snapped = {
        node: round((solution[node] - half_sizes[node]) / lb) * lb
        + half_sizes[node]
        for node in ids
    }
    indegree = {node: 0 for node in ids}
    out_edges = {node: [] for node in ids}
    in_edges = {node: [] for node in ids}
    for arc in arcs:
        indegree[arc.hi] += 1
        out_edges[arc.lo].append(arc)
        in_edges[arc.hi].append(arc)
    heap = [
        (snapped[node], node) for node in ids if indegree[node] == 0
    ]
    heapq.heapify(heap)
    order = []
    while heap:
        _, node = heapq.heappop(heap)
        order.append(node)
        for arc in out_edges[node]:
            indegree[arc.hi] -= 1
            if indegree[arc.hi] == 0:
                heapq.heappush(heap, (snapped[arc.hi], arc.hi))

    hi_limit = {node: extent - half_sizes[node] for node in ids}
    for node in reversed(order):
        for arc in out_edges[node]:
            hi_limit[node] = min(
                hi_limit[node], hi_limit[arc.hi] - arc.separation
            )
    for node in order:
        lo_bound = half_sizes[node]
        for arc in in_edges[node]:
            lo_bound = max(lo_bound, snapped[arc.lo] + arc.separation)
        snapped[node] = min(max(snapped[node], lo_bound), hi_limit[node])
    return snapped


def reference_historical_snap_and_repair(
    ids, solution, half_sizes, arcs, extent, lb
):
    """The original forward/backward repair, verbatim (the buggy oracle)."""
    snapped = {}
    for node in ids:
        half = half_sizes[node]
        snapped[node] = round((solution[node] - half) / lb) * lb + half

    order = sorted(ids, key=lambda node: (snapped[node], node))
    rank = {node: k for k, node in enumerate(order)}
    incoming = {node: [] for node in ids}
    outgoing = {node: [] for node in ids}
    for arc in arcs:
        lo, hi = arc.lo, arc.hi
        if rank[lo] > rank[hi]:
            lo, hi = hi, lo
        incoming[hi].append(Arc(lo, hi, arc.separation))
        outgoing[lo].append(Arc(lo, hi, arc.separation))

    for node in order:
        lo_bound = half_sizes[node]
        for arc in incoming[node]:
            lo_bound = max(lo_bound, snapped[arc.lo] + arc.separation)
        snapped[node] = max(snapped[node], lo_bound)
    for node in reversed(order):
        hi_bound = extent - half_sizes[node]
        for arc in outgoing[node]:
            hi_bound = min(hi_bound, snapped[arc.hi] - arc.separation)
        snapped[node] = min(snapped[node], hi_bound)
    return snapped


coord = st.floats(0.5, 29.5, allow_nan=False, allow_infinity=False)
size = st.sampled_from([1.0, 2.0, 3.0])
spacing_st = st.sampled_from([0.0, 1.0, 2.0])


@st.composite
def instances(draw, max_macros=7):
    centers = draw(
        st.lists(
            st.tuples(coord, coord),
            min_size=1,
            max_size=max_macros,
            unique=True,
        )
    )
    indices = list(range(len(centers)))
    positions = {i: centers[i] for i in indices}
    sizes = {
        i: (draw(size, label=f"w{i}"), draw(size, label=f"h{i}"))
        for i in indices
    }
    return (indices, positions, sizes, draw(spacing_st))


@settings(max_examples=80, deadline=None)
@given(inst=instances(max_macros=9))
def test_constraint_arrays_match_scalar_reference(inst):
    indices, positions, sizes, spacing = inst
    want = reference_build_constraint_graphs(indices, positions, sizes, spacing)
    assert build_constraint_graphs(indices, positions, sizes, spacing) == want


@settings(max_examples=25, deadline=None)
@given(inst=instances())
def test_solve_axis_matches_scalar_reference(inst):
    indices, positions, sizes, spacing = inst
    grid = SiteGrid(30, 30)
    h_ref, v_ref = reference_build_constraint_graphs(
        indices, positions, sizes, spacing
    )
    _, h_axis, v_axis = build_constraint_arrays(
        indices, positions, sizes, spacing
    )
    for arcs_ref, axis, coord_pos, extent in (
        (h_ref, h_axis, 0, grid.width),
        (v_ref, v_axis, 1, grid.height),
    ):
        targets = {i: positions[i][coord_pos] for i in indices}
        halves = {i: sizes[i][coord_pos] / 2.0 for i in indices}
        want = reference_solve_axis(indices, targets, halves, arcs_ref, extent)
        # The arrays index sorted ids; remap onto the reference id order.
        ordered = sorted(indices)
        pos_in_input = {node: k for k, node in enumerate(indices)}
        remap = np.array([pos_in_input[node] for node in ordered])
        axis = type(axis)(remap[axis.lo], remap[axis.hi], axis.sep)
        got = _solve_axis(
            axis,
            np.array([targets[i] for i in indices]),
            np.array([halves[i] for i in indices]),
            extent,
        )
        if want is None:
            assert got is None
        else:
            assert got is not None
            assert {i: float(got[k]) for k, i in enumerate(indices)} == want


@settings(max_examples=60, deadline=None)
@given(inst=instances(), extent=st.sampled_from([12.0, 20.0, 30.0]))
def test_snap_and_repair_matches_scalar_reference(inst, extent):
    indices, positions, sizes, spacing = inst
    h_ref, _ = reference_build_constraint_graphs(
        indices, positions, sizes, spacing
    )
    _, h_axis, _ = build_constraint_arrays(indices, positions, sizes, spacing)
    pos_in_input = {node: k for k, node in enumerate(indices)}
    remap = np.array([pos_in_input[node] for node in sorted(indices)])
    h_axis = type(h_axis)(remap[h_axis.lo], remap[h_axis.hi], h_axis.sep)

    solution = {i: positions[i][0] for i in indices}
    halves = {i: sizes[i][0] / 2.0 for i in indices}
    want = reference_snap_and_repair(
        indices, solution, halves, h_ref, extent, 1.0
    )
    got = _snap_and_repair(
        indices,
        np.array([solution[i] for i in indices]),
        np.array([halves[i] for i in indices]),
        h_axis,
        extent,
        1.0,
    )
    assert {i: float(got[k]) for k, i in enumerate(indices)} == want

    # Where the historical pass produced a sound answer, the repaired
    # sweep agrees with it exactly.
    historical = reference_historical_snap_and_repair(
        indices, solution, halves, h_ref, extent, 1.0
    )
    sound = all(
        historical[a.hi] - historical[a.lo] >= a.separation - 1e-9
        for a in h_ref
    ) and all(
        halves[i] - 1e-9 <= historical[i] <= extent - halves[i] + 1e-9
        for i in indices
    )
    if sound:
        assert want == historical


@settings(max_examples=25, deadline=None)
@given(inst=instances())
def test_legalize_macros_matches_reference_pipeline(inst):
    indices, positions, sizes, spacing = inst
    grid = SiteGrid(30, 30)
    # The cold full-graph path is the scalar oracle; the default
    # warm-started / arc-reduced path is pinned by tests/golden/ and the
    # objective-equality suite in test_macro_lp.py instead.
    result = legalize_macros(
        indices, positions, sizes, grid, spacing,
        reduce_arcs=False, warm_start=False,
    )

    h_ref, v_ref = reference_build_constraint_graphs(
        indices, positions, sizes, spacing
    )
    half_w = {i: sizes[i][0] / 2.0 for i in indices}
    half_h = {i: sizes[i][1] / 2.0 for i in indices}
    sol_x = reference_solve_axis(
        indices, {i: positions[i][0] for i in indices}, half_w, h_ref, grid.width
    )
    sol_y = reference_solve_axis(
        indices, {i: positions[i][1] for i in indices}, half_h, v_ref, grid.height
    )
    if sol_x is None or sol_y is None:
        assert not result.feasible
        assert result.positions == positions
        return
    sol_x = reference_snap_and_repair(
        indices, sol_x, half_w, h_ref, grid.width, grid.lb
    )
    sol_y = reference_snap_and_repair(
        indices, sol_y, half_h, v_ref, grid.height, grid.lb
    )
    feasible = all(
        sol_x[a.hi] - sol_x[a.lo] >= a.separation - 1e-6 for a in h_ref
    ) and all(
        sol_y[a.hi] - sol_y[a.lo] >= a.separation - 1e-6 for a in v_ref
    )
    assert result.feasible == feasible
    if feasible:
        assert result.positions == {
            i: (sol_x[i], sol_y[i]) for i in indices
        }


def test_single_macro_degenerate():
    grid = SiteGrid(10, 10)
    result = legalize_macros([3], {3: (4.2, 5.9)}, {3: (3.0, 3.0)}, grid)
    assert result.feasible
    ref = reference_snap_and_repair(
        [3], {3: 4.2}, {3: 1.5}, [], grid.width, grid.lb
    )
    assert result.positions[3][0] == ref[3]


@settings(max_examples=25, deadline=None)
@given(inst=instances())
def test_transitive_reduction_preserves_legality(inst):
    indices, positions, sizes, spacing = inst
    grid = SiteGrid(30, 30)
    full = legalize_macros(
        indices, positions, sizes, grid, spacing,
        reduce_arcs=False, warm_start=False,
    )
    reduced = legalize_macros(
        indices, positions, sizes, grid, spacing, reduce_arcs=True
    )
    # Same feasible region: the reduced LP succeeds iff the full one does,
    # and its solution is legal (positions may differ on degenerate optima).
    assert reduced.feasible == full.feasible
    if not reduced.feasible:
        return
    border = grid.border
    rects = {
        i: Rect(reduced.positions[i][0], reduced.positions[i][1], *sizes[i])
        for i in indices
    }
    for i in indices:
        assert rects[i].inside(border, tol=1e-6)
    for a_pos, i in enumerate(indices):
        for j in indices[a_pos + 1 :]:
            assert not rects[i].inflated(spacing / 2.0).overlaps(
                rects[j].inflated(spacing / 2.0), tol=1e-6
            ), (i, j)


@settings(max_examples=40, deadline=None)
@given(inst=instances(max_macros=9))
def test_transitive_reduction_is_sound_and_minimalish(inst):
    indices, positions, sizes, spacing = inst
    n = len(indices)
    for axis in build_constraint_arrays(indices, positions, sizes, spacing)[1:]:
        reduced = transitive_reduction(axis, n)
        assert len(reduced) <= len(axis)
        kept = set(
            zip(reduced.lo.tolist(), reduced.hi.tolist(), reduced.sep.tolist())
        )
        # Every dropped arc is implied by a path of kept arcs.
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        for lo, hi, sep in kept:
            graph.add_edge(lo, hi, weight=sep)
        longest = dict(nx.all_pairs_bellman_ford_path_length(
            nx.DiGraph(
                [(u, v, {"weight": -w["weight"]}) for u, v, w in graph.edges(data=True)]
            )
        )) if graph.number_of_edges() else {}
        for lo, hi, sep in zip(
            axis.lo.tolist(), axis.hi.tolist(), axis.sep.tolist()
        ):
            if (lo, hi, sep) in kept:
                continue
            assert lo in longest and hi in longest[lo]
            assert -longest[lo][hi] >= sep - 1e-9
