"""Integration-aware resonator legalization (Algorithm 1)."""

import pytest

from repro.geometry import Rect, SiteGrid
from repro.legalization import BinGrid, integration_aware_legalize
from repro.netlist import (
    QuantumNetlist,
    Qubit,
    Resonator,
    WireBlock,
    cluster_count,
    is_unified,
)


def _resonator(key, positions):
    r = Resonator(qi=key[0], qj=key[1], wirelength=float(len(positions)))
    r.blocks = [
        WireBlock(resonator_key=key, ordinal=k, x=x, y=y)
        for k, (x, y) in enumerate(positions)
    ]
    return r


def test_single_resonator_stays_unified():
    bins = BinGrid(SiteGrid(12, 12))
    r = _resonator((0, 1), [(5.0 + 0.1 * k, 5.0) for k in range(8)])
    result = integration_aware_legalize([r], bins)
    assert is_unified(r)
    assert result.fallback_blocks == 0
    assert len(result.placed) == 8


def test_two_resonators_each_unified_when_space_permits():
    bins = BinGrid(SiteGrid(20, 20))
    r1 = _resonator((0, 1), [(4.0, 4.0)] * 6)
    r2 = _resonator((2, 3), [(14.0, 14.0)] * 6)
    integration_aware_legalize([r1, r2], bins)
    assert is_unified(r1) and is_unified(r2)


def test_contested_region_keeps_contiguity():
    """Both resonators target the same spot; each must stay unified."""
    bins = BinGrid(SiteGrid(10, 10))
    r1 = _resonator((0, 1), [(5.0, 5.0)] * 8)
    r2 = _resonator((2, 3), [(5.0, 5.0)] * 8)
    integration_aware_legalize([r1, r2], bins)
    assert is_unified(r1)
    assert is_unified(r2)


def test_blocks_avoid_fixed_macros():
    bins = BinGrid(SiteGrid(12, 12))
    macro = Rect(5.5, 5.5, 3.0, 3.0)
    bins.occupy_rect(macro, ("q", 0))
    r = _resonator((0, 1), [(5.5, 5.5)] * 6)
    integration_aware_legalize([r], bins)
    macro_sites = set(bins.grid.sites_covered(macro))
    for block in r.blocks:
        assert bins.grid.site_of(block.center) not in macro_sites


def test_displacement_accumulates():
    bins = BinGrid(SiteGrid(12, 12))
    r = _resonator((0, 1), [(3.5, 3.5), (4.5, 3.5)])
    result = integration_aware_legalize([r], bins)
    assert result.total_displacement >= 0.0


def test_out_of_space_raises():
    bins = BinGrid(SiteGrid(2, 1))
    r = _resonator((0, 1), [(0.5, 0.5)] * 3)
    with pytest.raises(RuntimeError):
        integration_aware_legalize([r], bins)


def test_attachment_seeding_starts_at_qubit():
    """With a netlist, the first block lands adjacent to qubit A's pad."""
    nl = QuantumNetlist()
    nl.add_qubit(Qubit(index=0, w=3, h=3, x=1.5, y=1.5))
    nl.add_qubit(Qubit(index=1, w=3, h=3, x=14.5, y=1.5))
    r = nl.add_resonator(Resonator(qi=0, qj=1, wirelength=6.0))
    r.blocks = [
        WireBlock(resonator_key=r.key, ordinal=k, x=7.5, y=1.5)
        for k in range(6)
    ]
    bins = BinGrid(SiteGrid(18, 8))
    for q in nl.qubits:
        bins.occupy_rect(q.rect, q.node_id)
    integration_aware_legalize([r], bins, nl)
    qubit_sites = set(bins.grid.sites_covered(nl.qubit(0).rect))
    first_site = bins.grid.site_of(r.blocks[0].center)
    adjacent = {
        nbr
        for site in qubit_sites
        for nbr in bins.grid.neighbors4(*site)
        if nbr not in qubit_sites
    }
    assert first_site in adjacent
    assert is_unified(r)


def test_fallback_counted_when_enclosed():
    """A resonator walled into a 1-site pocket must restart elsewhere."""
    bins = BinGrid(SiteGrid(8, 8))
    # Wall off (0,0) leaving it free but isolated.
    bins.occupy(1, 0, "w")
    bins.occupy(0, 1, "w")
    bins.occupy(1, 1, "w")
    r = _resonator((0, 1), [(0.5, 0.5), (0.5, 0.5)])
    result = integration_aware_legalize([r], bins)
    assert result.fallback_blocks == 1
    assert cluster_count(r) == 2
