"""Bin-aided free-space index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, SiteGrid
from repro.legalization import BinGrid


@pytest.fixture()
def bins():
    return BinGrid(SiteGrid(cols=10, rows=8))


def test_initially_all_free(bins):
    assert bins.num_free == 80
    assert bins.is_free(0, 0)
    assert bins.occupant(0, 0) is None


def test_occupy_and_release(bins):
    bins.occupy(3, 4, ("b", (0, 1), 0))
    assert not bins.is_free(3, 4)
    assert bins.occupant(3, 4) == ("b", (0, 1), 0)
    bins.release(3, 4)
    assert bins.is_free(3, 4)


def test_double_occupy_rejected(bins):
    bins.occupy(1, 1, "x")
    with pytest.raises(ValueError):
        bins.occupy(1, 1, "y")


def test_release_free_site_rejected(bins):
    with pytest.raises(ValueError):
        bins.release(0, 0)


def test_occupy_out_of_grid_rejected(bins):
    with pytest.raises(IndexError):
        bins.occupy(99, 0, "x")


def test_occupy_rect_covers_macro(bins):
    sites = bins.occupy_rect(Rect(1.5, 1.5, 3.0, 3.0), ("q", 0))
    assert len(sites) == 9
    assert bins.num_free == 80 - 9
    assert not bins.is_free(1, 1)


def test_nearest_free_prefers_self(bins):
    assert bins.nearest_free(5, 5) == (5, 5)


def test_nearest_free_skips_occupied(bins):
    bins.occupy(5, 5, "x")
    site = bins.nearest_free(5, 5)
    assert site != (5, 5)
    assert abs(site[0] - 5) + abs(site[1] - 5) == 1


def test_nearest_free_none_when_full():
    bins = BinGrid(SiteGrid(cols=2, rows=2))
    for col in range(2):
        for row in range(2):
            bins.occupy(col, row, "x")
    assert bins.nearest_free(0, 0) is None


def test_free_neighbors_updates(bins):
    bins.occupy(5, 5, "x")
    assert (5, 5) not in bins.free_neighbors(5, 4)
    assert set(bins.free_neighbors(5, 5)) == {(4, 5), (6, 5), (5, 4), (5, 6)}


def test_free_sites_row_major(bins):
    bins.occupy(0, 0, "x")
    sites = bins.free_sites()
    assert len(sites) == 79
    assert sites[0] == (1, 0)


@settings(max_examples=40, deadline=None)
@given(
    occupied=st.sets(
        st.tuples(st.integers(0, 9), st.integers(0, 7)), max_size=60
    ),
    query=st.tuples(st.integers(0, 9), st.integers(0, 7)),
)
def test_nearest_free_matches_brute_force(occupied, query):
    bins = BinGrid(SiteGrid(cols=10, rows=8))
    for col, row in sorted(occupied):
        bins.occupy(col, row, "x")
    result = bins.nearest_free(*query)
    free = bins.free_sites()
    if not free:
        assert result is None
        return

    def dist2(site):
        return (site[0] - query[0]) ** 2 + (site[1] - query[1]) ** 2

    assert result in free
    assert dist2(result) == min(dist2(s) for s in free)


# -- flat-array probes (the RPR005 replacements for dict/bisect reads) --------
def test_free_cols_in_row_tracks_occupancy(bins):
    assert list(bins.free_cols_in_row(3)) == list(range(10))
    bins.occupy(4, 3, "x")
    bins.occupy(7, 3, "x")
    assert list(bins.free_cols_in_row(3)) == [0, 1, 2, 3, 5, 6, 8, 9]
    bins.release(4, 3)
    assert list(bins.free_cols_in_row(3)) == [0, 1, 2, 3, 4, 5, 6, 8, 9]


def test_first_free_col_at_or_after(bins):
    bins.occupy(0, 2, "x")
    bins.occupy(1, 2, "x")
    assert bins.first_free_col_at_or_after(2, 0) == 2
    assert bins.first_free_col_at_or_after(2, 2) == 2
    assert bins.first_free_col_at_or_after(2, 3) == 3
    assert bins.first_free_col_at_or_after(2, -5) == 2  # clamped left
    assert bins.first_free_col_at_or_after(2, 10) is None  # past the row
    for col in range(2, 10):
        bins.occupy(col, 2, "x")
    assert bins.first_free_col_at_or_after(2, 0) is None  # row full


@settings(max_examples=40, deadline=None)
@given(
    occupied=st.sets(
        st.tuples(st.integers(0, 9), st.integers(0, 7)), max_size=60
    ),
    row=st.integers(0, 7),
    col=st.integers(-2, 11),
)
def test_flat_probes_match_legacy_free_lists(occupied, row, col):
    """The flat-array probes agree with the per-row sorted free lists."""
    import bisect

    bins = BinGrid(SiteGrid(cols=10, rows=8))
    for site in sorted(occupied):
        bins.occupy(*site, "x")
    reference = bins._free_rows[row]
    assert list(bins.free_cols_in_row(row)) == reference
    idx = bisect.bisect_left(reference, max(col, 0))
    expected = reference[idx] if idx < len(reference) else None
    assert bins.first_free_col_at_or_after(row, col) == expected
