"""Suppression comments: coverage, rationale form, and unused detection."""

import textwrap

from repro.lint import (
    PARSE_ERROR_ID,
    UNUSED_SUPPRESSION_ID,
    lint_source,
    select_rules,
)

PATH = "src/repro/placement/fixture.py"


def lint(text, rules=("RPR001",)):
    return lint_source(textwrap.dedent(text), PATH, select_rules(list(rules)))


def test_inline_suppression_silences_the_line():
    findings = lint(
        """\
        import time

        def stamp():
            return time.time()  # repro: lint-ignore[RPR001] test fixture
        """
    )
    assert findings == []


def test_standalone_suppression_covers_next_code_line():
    findings = lint(
        """\
        import time

        def stamp():
            # repro: lint-ignore[RPR001] wall clock is the payload here
            return time.time()
        """
    )
    assert findings == []


def test_multiline_rationale_still_reaches_the_code():
    findings = lint(
        """\
        import time

        def stamp():
            # repro: lint-ignore[RPR001] the rationale for this one is
            # long enough to continue onto a second comment line
            return time.time()
        """
    )
    assert findings == []


def test_unused_suppression_reported_as_rpr000():
    findings = lint(
        """\
        def quiet():
            # repro: lint-ignore[RPR001] nothing to suppress below
            return 1
        """
    )
    assert [f.rule for f in findings] == [UNUSED_SUPPRESSION_ID]
    assert "lint-ignore[RPR001]" in findings[0].message


def test_suppression_for_unselected_rule_not_judged():
    # A --rule RPR005 run must not call RPR001 ignores unused.
    findings = lint(
        """\
        import time

        def stamp():
            return time.time()  # repro: lint-ignore[RPR001] fixture
        """,
        rules=("RPR005",),
    )
    assert findings == []


def test_suppression_lists_multiple_rules():
    findings = lint(
        """\
        import json
        import time

        def build():
            # repro: lint-ignore[RPR001, RPR002] fixture covers both
            return json.dumps({"at": time.time()})
        """,
        rules=("RPR001", "RPR002"),
    )
    assert findings == []


def test_docstring_mention_is_not_a_live_suppression():
    findings = lint(
        '''\
        def document():
            """Suppress with ``# repro: lint-ignore[RPR001]``."""
            return 1
        '''
    )
    assert findings == []


def test_mid_comment_mention_is_not_a_live_suppression():
    findings = lint(
        """\
        # The syntax is `# repro: lint-ignore[RPR001]`, documented here.
        VALUE = 1
        """
    )
    assert findings == []


def test_wrong_rule_id_does_not_suppress():
    findings = lint(
        """\
        import time

        def stamp():
            return time.time()  # repro: lint-ignore[RPR005] wrong rule
        """,
        rules=("RPR001", "RPR005"),
    )
    rules = sorted(f.rule for f in findings)
    assert rules == sorted(["RPR001", UNUSED_SUPPRESSION_ID])


def test_syntax_error_becomes_e001():
    findings = lint_source("def broken(:\n", PATH, select_rules(["RPR001"]))
    assert [f.rule for f in findings] == [PARSE_ERROR_ID]
    assert findings[0].path == PATH
