"""RPR004 fixture: module-level callables only — zero findings."""

import multiprocessing
from functools import partial


def execute(job):
    return job.run()


def run(pool, jobs):
    futures = [pool.submit(execute, job) for job in jobs]
    futures.append(pool.submit(partial(execute, jobs[0])))
    worker = multiprocessing.Process(target=execute, args=(jobs[0],))
    return futures, worker
