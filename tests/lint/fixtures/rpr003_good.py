"""RPR003 fixture: lock discipline respected — zero findings."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.unguarded = 0  # no declaration: not checked

    def record_hit(self):
        with self._lock:
            self.hits += 1

    def _bump_misses(self):  # holds: _lock
        self.misses += 1

    def snapshot(self):
        self.unguarded += 1
        with self._lock:
            return self.hits, self.misses
