"""RPR002 fixture: canonical, pure counterparts — zero findings."""

import json

from repro.orchestration.jobs import job_key


def canonical(document):
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def stable_key(params):
    return job_key("place", {"topology": params["topology"]})
