"""RPR001 fixture: deterministic counterparts — zero findings."""

import random
import time

import numpy as np


def seeded_draws(seed):
    rng = random.Random(seed)  # explicit seed
    gen = np.random.default_rng(seed)  # explicit seed
    return rng.random(), gen.random()


def monotonic_timing():
    return time.perf_counter()  # timing, not wall clock


def ordered_sets(items):
    for value in sorted({3, 1, 2}):  # sorted before iterating
        items.append(value)
    total = sum(v for v in {9, 8})  # order-insensitive reduction
    biggest = max({4, 7})
    as_set = {v * 2 for v in {1, 2}}  # set-to-set stays unordered
    return items, total, biggest, as_set
