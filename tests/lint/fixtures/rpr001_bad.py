"""RPR001 fixture: every statement below is a nondeterminism finding."""

import random
import time

import numpy as np


def unseeded_draws():
    a = random.random()  # unseeded module-level RNG
    rng = random.Random()  # unseeded instance
    b = np.random.rand(3)  # legacy global numpy RNG
    gen = np.random.default_rng()  # no seed argument
    return a, rng, b, gen


def wall_clock():
    return time.time()  # wall-clock read


def set_order():
    total = 0
    for value in {3, 1, 2}:  # hash-table iteration order
        total = total * 10 + value
    ordered = [v for v in {9, 8}]  # comprehension keeps set order
    return total, ordered
