"""RPR005 fixture: legacy dict/bisect/identity probes in a site-probe module."""

import bisect
from bisect import bisect_left


def frontier(bins, row, col):
    free = bins._free_rows[row]  # legacy per-row free list
    idx = bisect.bisect_left(free, col)
    return free[idx] if idx < len(free) else None


def owner(bins, col, row):
    return bins._occupant.get((col, row))  # legacy occupant dict


def clusters(blocks):
    visited = {id(b): False for b in blocks}  # identity-keyed bookkeeping
    by_site = {}
    for b in blocks:
        by_site.setdefault((b.x, b.y), []).append(b)  # dict-path site bucket
    return visited, by_site
