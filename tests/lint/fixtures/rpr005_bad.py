"""RPR005 fixture: legacy dict/bisect probes in a site-probe module."""

import bisect
from bisect import bisect_left


def frontier(bins, row, col):
    free = bins._free_rows[row]  # legacy per-row free list
    idx = bisect.bisect_left(free, col)
    return free[idx] if idx < len(free) else None


def owner(bins, col, row):
    return bins._occupant.get((col, row))  # legacy occupant dict
