"""RPR005 fixture: flat-array probes — zero findings."""

import numpy as np


def frontier(bins, row, col):
    return bins.first_free_col_at_or_after(row, col)


def free_mask(bins):
    return np.flatnonzero(bins.kind_flat == 0)


def owner(bins, col, row):
    return bins.occupant(col, row)


def clusters(blocks):
    # Array pass: integer site keys, component labels, positional index.
    keys = [int(b.x) * 1000 + int(b.y) for b in blocks]
    order = sorted(range(len(blocks)), key=lambda k: blocks[k].ordinal)
    return keys, order
