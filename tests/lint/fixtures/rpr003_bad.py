"""RPR003 fixture: a guarded attribute touched without its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def record_hit(self):
        self.hits += 1  # no lock held

    def snapshot(self):
        with self._lock:
            hits = self.hits
        return hits, self.misses  # read escaped the with-block
