"""RPR002 fixture: content-key purity violations."""

import json
import time

from repro.orchestration.jobs import Job, job_key


def non_canonical(document):
    return json.dumps(document)  # no sort_keys: non-canonical text


def identity_leaks(obj):
    return id(obj), hash(obj)  # process-local identities


def clock_in_key(params):
    key = job_key("place", dict(params, at=time.time()))  # clock in key
    job = Job.create("route", {"stamp": time.time_ns()})  # clock in params
    return key, job
