"""RPR004 fixture: unpicklable callables crossing a process boundary."""

import multiprocessing
from functools import partial


class Runner:
    def run(self, pool, jobs):
        futures = [pool.submit(lambda j: j.execute(), j) for j in jobs]

        def helper(job):
            return job.execute()

        futures.append(pool.submit(helper, jobs[0]))  # locally defined
        futures.append(pool.submit(self.handle, jobs[0]))  # bound method
        futures.append(pool.submit(partial(self.handle, jobs[0])))
        worker = multiprocessing.Process(target=helper, args=(jobs[0],))
        return futures, worker

    def handle(self, job):
        return job.execute()
