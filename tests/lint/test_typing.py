"""The typed surface: py.typed ships, and mypy passes when available.

mypy is not a runtime dependency of the reproduction — the container
may not have it — so the checker test skips cleanly when the module is
absent.  CI installs mypy in the lint job, where this same
configuration (``mypy.ini``: permissive baseline, strict signatures in
``repro.orchestration``) gates the build.
"""

import importlib.util
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def test_py_typed_marker_ships():
    assert os.path.isfile(
        os.path.join(REPO_ROOT, "src", "repro", "py.typed")
    )


def test_mypy_config_present():
    assert os.path.isfile(os.path.join(REPO_ROOT, "mypy.ini"))


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (CI installs it for the lint job)",
)
def test_mypy_passes_on_orchestration():
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            os.path.join(REPO_ROOT, "mypy.ini"),
            "-p",
            "repro.orchestration",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
