"""The ``repro lint`` subcommand: exit codes, --rule, --format, --root."""

import json

from repro.cli import main

BAD_SOURCE = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


def write_tree(tmp_path, source=BAD_SOURCE):
    target = tmp_path / "src" / "repro" / "placement"
    target.mkdir(parents=True)
    (target / "mod.py").write_text(source, encoding="utf-8")
    return tmp_path


def test_clean_tree_exits_zero(tmp_path, capsys):
    write_tree(tmp_path, source="VALUE = 1\n")
    code = main(["lint", "--root", str(tmp_path), "src"])
    assert code == 0
    assert "repro lint: clean" in capsys.readouterr().out


def test_findings_exit_one_with_text(tmp_path, capsys):
    write_tree(tmp_path)
    code = main(["lint", "--root", str(tmp_path), "src"])
    assert code == 1
    out = capsys.readouterr().out
    assert "src/repro/placement/mod.py:4" in out
    assert "RPR001" in out


def test_rule_filter(tmp_path, capsys):
    write_tree(tmp_path)
    code = main(
        ["lint", "--root", str(tmp_path), "--rule", "RPR005", "src"]
    )
    assert code == 0
    assert "repro lint: clean" in capsys.readouterr().out


def test_json_format(tmp_path, capsys):
    write_tree(tmp_path)
    code = main(
        ["lint", "--root", str(tmp_path), "--format", "json", "src"]
    )
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["count"] == 1
    assert document["rules"] == ["RPR001"]


def test_github_format(tmp_path, capsys):
    write_tree(tmp_path)
    code = main(
        ["lint", "--root", str(tmp_path), "--format", "github", "src"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=src/repro/placement/mod.py,line=4")


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    write_tree(tmp_path)
    code = main(["lint", "--root", str(tmp_path), "--rule", "RPR999", "src"])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_explicit_file_path(tmp_path, capsys):
    write_tree(tmp_path)
    code = main(
        ["lint", "--root", str(tmp_path), "src/repro/placement/mod.py"]
    )
    assert code == 1
    assert "RPR001" in capsys.readouterr().out
