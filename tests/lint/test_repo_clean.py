"""Meta-test: the live repository is lint-clean.

This is the zero-findings baseline the CI lint job also enforces — any
new finding (or newly-unused suppression) in shipped code fails tier-1,
so the analyzer's verdict can never silently rot.
"""

import os

from repro.lint import DEFAULT_PATHS, lint_paths, rule_ids

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def test_repository_is_lint_clean():
    paths = [
        path
        for path in DEFAULT_PATHS
        if os.path.exists(os.path.join(REPO_ROOT, path))
    ]
    assert paths, "default lint paths missing from the repository"
    findings = lint_paths(paths, root=REPO_ROOT)
    formatted = "\n".join(
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in findings
    )
    assert findings == [], f"repository lint findings:\n{formatted}"


def test_all_five_rules_are_registered():
    assert rule_ids() == ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005"]
