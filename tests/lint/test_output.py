"""Output formats: the JSON schema, GitHub annotations, and text form."""

import json

import pytest

from repro.lint import Finding, render
from repro.lint.output import FORMATS

FINDINGS = [
    Finding(
        path="src/repro/a.py",
        line=3,
        col=7,
        rule="RPR001",
        message="first message",
    ),
    Finding(
        path="src/repro/b.py",
        line=10,
        col=0,
        rule="RPR005",
        message="second message\nwith % and a newline",
    ),
]


def test_json_schema():
    document = json.loads(render(FINDINGS, "json"))
    assert set(document) == {"findings", "count", "rules"}
    assert document["count"] == 2
    assert document["rules"] == ["RPR001", "RPR005"]
    row = document["findings"][0]
    assert row == {
        "path": "src/repro/a.py",
        "line": 3,
        "col": 7,
        "rule": "RPR001",
        "message": "first message",
    }


def test_json_round_trips_empty():
    document = json.loads(render([], "json"))
    assert document == {"findings": [], "count": 0, "rules": []}


def test_text_format():
    text = render(FINDINGS, "text")
    assert "src/repro/a.py:3:7: RPR001 first message" in text
    assert text.endswith("repro lint: 2 findings")
    assert render([], "text") == "repro lint: clean"
    one = render(FINDINGS[:1], "text")
    assert one.endswith("repro lint: 1 finding")


def test_github_format_escapes_workflow_commands():
    text = render(FINDINGS, "github")
    lines = text.splitlines()
    assert lines[0] == (
        "::error file=src/repro/a.py,line=3,col=7,"
        "title=RPR001::first message"
    )
    # %, CR and LF must be escaped or the annotation body truncates.
    assert "%25" in lines[1] and "%0A" in lines[1]
    assert "\n" not in lines[1]


def test_unknown_format_raises():
    with pytest.raises(ValueError, match="unknown format"):
        render([], "sarif")


def test_formats_tuple_matches_renderers():
    for fmt in FORMATS:
        assert isinstance(render([], fmt), str)
