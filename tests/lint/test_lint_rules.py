"""Every lint rule fires on its bad fixture and stays quiet on the good one.

Fixtures live in ``fixtures/`` as real Python files (they must parse);
each is linted under a *virtual* display path inside the rule's scope,
so the scope machinery is exercised too.  The counts pin the exact
number of violations each bad fixture deliberately contains — a rule
that starts double-reporting or missing a shape fails here first.
"""

import os

import pytest

from repro.lint import lint_source, select_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: rule id -> (virtual path inside the rule's scope, bad-fixture findings)
CASES = {
    "RPR001": ("src/repro/placement/fixture.py", 7),
    "RPR002": ("src/repro/orchestration/fixture.py", 5),
    "RPR003": ("src/repro/orchestration/fixture.py", 2),
    "RPR004": ("src/repro/orchestration/fixture.py", 5),
    "RPR005": ("src/repro/legalization/fixture.py", 6),
}


def fixture_text(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as fh:
        return fh.read()


def run_rule(rule_id, fixture, path):
    return lint_source(fixture_text(fixture), path, select_rules([rule_id]))


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_bad_fixture_fires(rule_id):
    path, expected = CASES[rule_id]
    findings = run_rule(rule_id, f"{rule_id.lower()}_bad.py", path)
    assert len(findings) == expected
    assert all(f.rule == rule_id for f in findings)
    assert all(f.path == path for f in findings)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_good_fixture_is_clean(rule_id):
    path, _ = CASES[rule_id]
    assert run_rule(rule_id, f"{rule_id.lower()}_good.py", path) == []


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_out_of_scope_path_is_skipped(rule_id):
    findings = run_rule(
        rule_id, f"{rule_id.lower()}_bad.py", "examples/fixture.py"
    )
    if rule_id in ("RPR003", "RPR004"):  # unscoped rules run everywhere
        assert findings
    else:
        assert findings == []


def test_rpr001_exempt_paths():
    findings = lint_source(
        fixture_text("rpr001_bad.py"),
        "src/repro/visualization/fixture.py",
        select_rules(["RPR001"]),
    )
    assert findings == []


def test_rpr005_exempts_bins_itself():
    findings = lint_source(
        fixture_text("rpr005_bad.py"),
        "src/repro/legalization/bins.py",
        select_rules(["RPR005"]),
    )
    assert findings == []


def test_findings_are_sorted_and_stable():
    path, _ = CASES["RPR001"]
    findings = run_rule("RPR001", "rpr001_bad.py", path)
    assert findings == sorted(findings)
    lines = [f.line for f in findings]
    assert lines == sorted(lines)
