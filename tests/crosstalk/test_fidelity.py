"""The Eq. 7 fidelity estimator on real layouts."""

import pytest

from repro.circuits import get_benchmark
from repro.compiler import transpile
from repro.crosstalk import NoiseParameters, program_fidelity
from repro.routing import count_crossings
from repro.topologies import get_topology


@pytest.fixture(scope="module")
def falcon_topology():
    return get_topology("falcon")


@pytest.fixture()
def falcon_fidelity(fast_config, falcon_legalized, falcon_topology):
    netlist, _grid, outcome = falcon_legalized
    transpiled = transpile(get_benchmark("bv-4"), falcon_topology, seed=2)
    crossings = count_crossings(netlist, outcome.bins)
    breakdown = program_fidelity(netlist, transpiled, crossings, fast_config)
    return (netlist, outcome, transpiled, crossings, breakdown)


def test_factors_in_unit_interval(falcon_fidelity):
    *_rest, breakdown = falcon_fidelity
    for factor in (
        breakdown.fidelity,
        breakdown.qubit_factor,
        breakdown.qubit_crosstalk_factor,
        breakdown.resonator_factor,
    ):
        assert 0.0 <= factor <= 1.0


def test_fidelity_is_product_of_factors(falcon_fidelity):
    *_rest, breakdown = falcon_fidelity
    assert breakdown.fidelity == pytest.approx(
        breakdown.qubit_factor
        * breakdown.qubit_crosstalk_factor
        * breakdown.resonator_factor
    )


def test_clean_quantum_layout_has_no_qubit_crosstalk(falcon_fidelity):
    *_rest, breakdown = falcon_fidelity
    # qGDP legalization enforces the minimum spacing, so no εg factors.
    assert breakdown.num_violating_pairs == 0
    assert breakdown.qubit_crosstalk_factor == 1.0


def test_heavier_benchmark_lower_fidelity(
    fast_config, falcon_legalized, falcon_topology
):
    netlist, _grid, outcome = falcon_legalized
    crossings = count_crossings(netlist, outcome.bins)

    def fidelity(name):
        transpiled = transpile(get_benchmark(name), falcon_topology, seed=2)
        return program_fidelity(
            netlist, transpiled, crossings, fast_config
        ).fidelity

    assert fidelity("bv-16") < fidelity("bv-9") < fidelity("bv-4")


def test_noisier_device_lower_fidelity(
    fast_config, falcon_legalized, falcon_topology
):
    netlist, _grid, outcome = falcon_legalized
    transpiled = transpile(get_benchmark("bv-4"), falcon_topology, seed=2)
    crossings = count_crossings(netlist, outcome.bins)
    base = program_fidelity(netlist, transpiled, crossings, fast_config)
    noisy = program_fidelity(
        netlist,
        transpiled,
        crossings,
        fast_config,
        params=NoiseParameters(error_2q=0.05),
    )
    assert noisy.fidelity < base.fidelity


def test_precomputed_artifacts_match_recompute(
    fast_config, falcon_legalized, falcon_topology
):
    from repro.frequency.hotspots import hotspot_pairs
    from repro.metrics import qubit_spacing_violations

    netlist, _grid, outcome = falcon_legalized
    transpiled = transpile(get_benchmark("bv-4"), falcon_topology, seed=2)
    crossings = count_crossings(netlist, outcome.bins)
    lazy = program_fidelity(netlist, transpiled, crossings, fast_config)
    eager = program_fidelity(
        netlist,
        transpiled,
        crossings,
        fast_config,
        hotspots=hotspot_pairs(netlist, fast_config.reach, fast_config.delta_c),
        violations=qubit_spacing_violations(
            netlist, fast_config.min_qubit_spacing
        ),
    )
    assert lazy.fidelity == pytest.approx(eager.fidelity)
