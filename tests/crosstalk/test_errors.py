"""Error-model properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crosstalk import (
    NoiseParameters,
    crossing_error,
    effective_coupling_ghz,
    qubit_error,
    rabi_crosstalk_error,
    resonator_pair_error,
)

durations = st.floats(0.0, 1e5, allow_nan=False)
gaps = st.floats(0.0, 10.0, allow_nan=False)
freqs = st.floats(4.5, 7.5, allow_nan=False)


def test_qubit_error_zero_for_empty_program():
    assert qubit_error(0, 0, 0.0) == pytest.approx(0.0)


def test_qubit_error_grows_with_gates():
    assert qubit_error(10, 0, 0.0) < qubit_error(10, 5, 0.0)
    assert qubit_error(0, 5, 0.0) < qubit_error(0, 10, 0.0)


def test_qubit_error_grows_with_duration():
    assert qubit_error(0, 0, 1000.0) < qubit_error(0, 0, 10000.0)


def test_qubit_error_rejects_negative():
    with pytest.raises(ValueError):
        qubit_error(-1, 0, 0.0)


@given(st.integers(0, 200), st.integers(0, 200), durations)
def test_qubit_error_in_unit_interval(n1, n2, t):
    assert 0.0 <= qubit_error(n1, n2, t) <= 1.0


def test_effective_coupling_decays_with_gap():
    g0 = effective_coupling_ghz(0.0, 5.0, 5.0, 0.04)
    g1 = effective_coupling_ghz(1.0, 5.0, 5.0, 0.04)
    assert g1 < g0


def test_effective_coupling_decays_with_detuning():
    near = effective_coupling_ghz(0.0, 5.0, 5.01, 0.04)
    far = effective_coupling_ghz(0.0, 5.0, 5.5, 0.04)
    assert far < near
    # Detuning floor keeps a residual coupling.
    assert far > 0.0


def test_negative_gap_clamped():
    assert effective_coupling_ghz(-2.0, 5.0, 5.0, 0.04) == pytest.approx(
        effective_coupling_ghz(0.0, 5.0, 5.0, 0.04)
    )


@given(gaps, freqs, freqs, durations)
def test_rabi_error_bounded_by_half(gap, fa, fb, t):
    eps = rabi_crosstalk_error(gap, fa, fb, t, 0.04)
    assert 0.0 <= eps <= 0.5


def test_rabi_error_zero_at_zero_time():
    assert rabi_crosstalk_error(0.0, 5.0, 5.0, 0.0, 0.04) == pytest.approx(0.0)


def test_rabi_error_monotone_in_duration():
    e1 = rabi_crosstalk_error(0.5, 5.0, 5.0, 500.0, 0.04)
    e2 = rabi_crosstalk_error(0.5, 5.0, 5.0, 5000.0, 0.04)
    assert e1 <= e2


def test_crossing_error_wire_vs_padded():
    wire = crossing_error(7.0, 7.0, 2000.0, 0.04, wire_to_wire=True)
    padded = crossing_error(7.0, 7.0, 2000.0, 0.04, wire_to_wire=False)
    assert padded < wire


def test_crossing_error_detuning_helps():
    resonant = crossing_error(7.0, 7.0, 2000.0, 0.04)
    detuned = crossing_error(7.0, 7.2, 2000.0, 0.04)
    assert detuned < resonant


def test_resonator_pair_error_zero_for_no_contribution():
    assert resonator_pair_error(0.0, 2000.0) == 0.0


def test_resonator_pair_error_roughly_linear_for_small_contributions():
    small = resonator_pair_error(0.1, 2000.0)
    double = resonator_pair_error(0.2, 2000.0)
    assert double == pytest.approx(2 * small, rel=0.1)


@given(st.floats(0.0, 100.0), durations)
def test_resonator_pair_error_bounded(contribution, t):
    assert 0.0 <= resonator_pair_error(contribution, t) <= 0.5


def test_custom_parameters_flow_through():
    hot = NoiseParameters(error_2q=0.5)
    assert qubit_error(0, 1, 0.0, hot) == pytest.approx(0.5)
