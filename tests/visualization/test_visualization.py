"""ASCII rendering and export round trips."""

import csv
import json

import pytest

from repro.geometry import SiteGrid
from repro.legalization import BinGrid
from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock
from repro.visualization import (
    layout_to_dict,
    render_layout,
    render_occupancy,
    save_layout_json,
    save_metrics_csv,
)


@pytest.fixture()
def small_layout():
    nl = QuantumNetlist(name="demo")
    nl.add_qubit(Qubit(index=0, w=3, h=3, x=1.5, y=1.5, frequency=5.0))
    nl.add_qubit(Qubit(index=1, w=3, h=3, x=8.5, y=1.5, frequency=5.07))
    r = nl.add_resonator(Resonator(qi=0, qj=1, wirelength=3.0, frequency=7.0))
    r.blocks = [
        WireBlock(resonator_key=r.key, ordinal=k, x=3.5 + k, y=1.5)
        for k in range(3)
    ]
    return nl


def test_render_layout_marks_components(small_layout):
    grid = SiteGrid(12, 6)
    art = render_layout(small_layout, grid)
    lines = art.splitlines()
    assert len(lines) == 6
    assert all(len(line) == 12 for line in lines)
    assert art.count("Q") == 18  # two 3x3 macros
    assert art.count("a") == 3  # first resonator letter


def test_render_occupancy(small_layout):
    grid = SiteGrid(12, 6)
    bins = BinGrid(grid)
    for q in small_layout.qubits:
        bins.occupy_rect(q.rect, q.node_id)
    for b in small_layout.wire_blocks:
        bins.occupy(*grid.site_of(b.center), b.node_id)
    art = render_occupancy(bins)
    assert art.count("Q") == 18
    assert art.count("o") == 3


def test_layout_dict_structure(small_layout):
    data = layout_to_dict(small_layout)
    assert data["name"] == "demo"
    assert len(data["qubits"]) == 2
    assert len(data["resonators"]) == 1
    assert len(data["resonators"][0]["blocks"]) == 3


def test_save_layout_json(tmp_path, small_layout):
    path = tmp_path / "layout.json"
    save_layout_json(small_layout, str(path))
    data = json.loads(path.read_text())
    assert data["qubits"][0]["index"] == 0


def test_save_metrics_csv(tmp_path):
    path = tmp_path / "metrics.csv"
    save_metrics_csv(
        [{"topology": "grid", "x": 1}, {"topology": "falcon", "ph": 0.5}],
        str(path),
    )
    rows = list(csv.DictReader(path.open()))
    assert rows[0]["topology"] == "grid"
    assert set(rows[0]) == {"topology", "x", "ph"}


def test_save_metrics_csv_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        save_metrics_csv([], str(tmp_path / "x.csv"))
