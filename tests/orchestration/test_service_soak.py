"""Two-tenant service soak: sustained concurrent submissions.

Runs for ``REPRO_SERVICE_SOAK_S`` seconds (default 3, CI sets 60):
two tenants loop submit → wait → verify against one live service,
alternating between two overlapping specs each, so every round
exercises fresh computation, warm-cache reuse, cross-tenant sharing
and the fair scheduler under real thread concurrency.  Every round's
accounting must balance (``computed + cached == total``) and every
stream must complete.

Marked ``service_soak``; the default duration keeps it tier-1-cheap.
"""

import os
import threading
import time

import pytest

from repro.core.config import QGDPConfig
from repro.orchestration import config_to_dict
from repro.orchestration.service import JobService, ServiceClient, ServiceToken

pytestmark = pytest.mark.service_soak

_CFG = config_to_dict(QGDPConfig(gp_iterations=40))

ALICE = ServiceToken("alice-soak", tenant="alice")
BOB = ServiceToken("bob-soak", tenant="bob")


def _doc(engines, num_seeds):
    return {
        "topologies": ["grid"],
        "benchmarks": ["bv-4"],
        "engines": list(engines),
        "num_seeds": num_seeds,
        "config": _CFG,
    }


def test_two_tenant_soak(tmp_path):
    duration_s = float(os.environ.get("REPRO_SERVICE_SOAK_S", "3"))
    deadline = time.monotonic() + duration_s
    errors = []
    rounds = {"alice": 0, "bob": 0}

    with JobService(
        f"dir:{tmp_path / 'cache'}",
        [ALICE, BOB],
        workers=2,
        runs_root=str(tmp_path / "runs"),
        poll_s=0.02,
    ) as service:

        def tenant_loop(token, engines):
            client = ServiceClient(service.url, token.secret)
            while time.monotonic() < deadline:
                # Alternate seeds so each tenant cycles two distinct
                # specs: cold compute, then warm reuse, repeatedly.
                num_seeds = 1 + rounds[token.tenant] % 2
                try:
                    receipt = client.submit(_doc(engines, num_seeds))
                    status = client.wait(
                        receipt["run_id"], poll_s=0.05, timeout_s=600
                    )
                    if status["state"] != "done":
                        raise AssertionError(
                            f"run {receipt['run_id']} ended "
                            f"{status['state']!r}: {status['failures']}"
                        )
                    results = client.results(receipt["run_id"])
                    if not results["complete"]:
                        raise AssertionError(
                            f"run {receipt['run_id']} stream incomplete"
                        )
                    manifest = client.manifest(receipt["run_id"])
                    jobs = manifest["jobs"]
                    if jobs["computed"] + jobs["cached"] != jobs["total"]:
                        raise AssertionError(
                            f"unbalanced manifest for "
                            f"{receipt['run_id']}: {jobs}"
                        )
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append(f"{token.tenant}: {exc!r}")
                    return
                rounds[token.tenant] += 1

        threads = [
            threading.Thread(
                target=tenant_loop, args=(ALICE, ("qgdp", "tetris"))
            ),
            threading.Thread(
                target=tenant_loop, args=(BOB, ("qgdp", "abacus"))
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not errors, errors
    assert rounds["alice"] >= 1 and rounds["bob"] >= 1, rounds
