"""Executor semantics: serial/parallel equivalence, caching, failure."""

import pytest

from repro.core.config import QGDPConfig
from repro.orchestration import (
    ArtifactStore,
    Job,
    JobFailure,
    JobGraph,
    config_to_dict,
    run_jobs,
)

_CFG = config_to_dict(QGDPConfig(gp_iterations=40))


def _small_graph():
    graph = JobGraph()
    gp = graph.add(
        Job.create(
            "gp", {"topology": "grid", "config": _CFG, "seed": _CFG["seed"]}
        )
    )
    for engine in ("qgdp", "tetris"):
        graph.add(
            Job.create(
                "lg",
                {"topology": "grid", "engine": engine, "config": _CFG},
                deps=(gp.key,),
            )
        )
    for seed in (11, 988):
        graph.add(
            Job.create(
                "transpile",
                {"topology": "grid", "benchmark": "bv-4", "seed": seed},
            )
        )
    return graph


_WALLCLOCK_KEYS = ("runtime_s", "qubit_time_s", "resonator_time_s", "dp_time_s")


def _strip_timings(payloads):
    return {
        key: {k: v for k, v in payload.items() if k not in _WALLCLOCK_KEYS}
        for key, payload in payloads.items()
    }


def test_parallel_results_equal_serial():
    graph = _small_graph()
    serial, serial_stats = run_jobs(graph, ArtifactStore(), workers=1)
    parallel, parallel_stats = run_jobs(graph, ArtifactStore(), workers=3)
    # Bit-identical payloads key for key; only wall-clock fields may vary.
    assert _strip_timings(serial) == _strip_timings(parallel)
    assert list(serial) == [j.key for j in graph.ordered()]
    assert list(parallel) == list(serial)
    assert serial_stats.computed == len(graph)
    assert parallel_stats.computed == len(graph)


def test_resume_uses_cache(tmp_path):
    graph = _small_graph()
    store = ArtifactStore(str(tmp_path / "cache"))
    first, first_stats = run_jobs(graph, store, workers=1)
    assert first_stats.computed == len(graph) and first_stats.cached == 0

    fresh_store = ArtifactStore(str(tmp_path / "cache"))
    second, second_stats = run_jobs(graph, fresh_store, workers=1, resume=True)
    assert second_stats.computed == 0
    assert second_stats.cached == len(graph)
    assert second == first


def test_without_resume_cache_is_ignored(tmp_path):
    graph = _small_graph()
    store = ArtifactStore(str(tmp_path / "cache"))
    run_jobs(graph, store, workers=1)
    _, stats = run_jobs(graph, ArtifactStore(str(tmp_path / "cache")), workers=1)
    assert stats.computed == len(graph)
    assert stats.cached == 0


def test_stats_count_by_kind():
    graph = _small_graph()
    _, stats = run_jobs(graph, ArtifactStore(), workers=1)
    assert stats.by_kind["gp"]["computed"] == 1
    assert stats.by_kind["lg"]["computed"] == 2
    assert stats.by_kind["transpile"]["computed"] == 2
    assert stats.to_dict()["total"] == len(graph)


def test_failing_job_raises_jobfailure():
    graph = JobGraph()
    graph.add(
        Job.create(
            "transpile",
            {"topology": "grid", "benchmark": "no-such-99", "seed": 1},
        )
    )
    with pytest.raises(JobFailure):
        run_jobs(graph, ArtifactStore(), workers=1)


def test_progress_events_cover_every_job():
    graph = _small_graph()
    events = []
    run_jobs(
        graph,
        ArtifactStore(),
        workers=1,
        progress=lambda job, status: events.append((job.kind, status)),
    )
    assert sum(1 for _, s in events if s == "start") == len(graph)
    assert sum(1 for _, s in events if s == "done") == len(graph)
