"""Executor semantics: serial/parallel equivalence, caching, failure."""

import time

import pytest

import repro.orchestration.executor as executor_module
from repro.core.config import QGDPConfig
from repro.orchestration import (
    ArtifactStore,
    Job,
    JobFailure,
    JobGraph,
    config_to_dict,
    run_jobs,
)
from repro.orchestration.stages import execute_job as real_execute_job

_CFG = config_to_dict(QGDPConfig(gp_iterations=40))


def _small_graph():
    graph = JobGraph()
    gp = graph.add(
        Job.create(
            "gp", {"topology": "grid", "config": _CFG, "seed": _CFG["seed"]}
        )
    )
    for engine in ("qgdp", "tetris"):
        graph.add(
            Job.create(
                "lg",
                {"topology": "grid", "engine": engine, "config": _CFG},
                deps=(gp.key,),
            )
        )
    for seed in (11, 988):
        graph.add(
            Job.create(
                "transpile",
                {"topology": "grid", "benchmark": "bv-4", "seed": seed},
            )
        )
    return graph


_WALLCLOCK_KEYS = ("runtime_s", "qubit_time_s", "resonator_time_s", "dp_time_s")


def _strip_timings(payloads):
    return {
        key: {k: v for k, v in payload.items() if k not in _WALLCLOCK_KEYS}
        for key, payload in payloads.items()
    }


def test_parallel_results_equal_serial():
    graph = _small_graph()
    serial, serial_stats = run_jobs(graph, ArtifactStore(), workers=1)
    parallel, parallel_stats = run_jobs(graph, ArtifactStore(), workers=3)
    # Bit-identical payloads key for key; only wall-clock fields may vary.
    assert _strip_timings(serial) == _strip_timings(parallel)
    assert list(serial) == [j.key for j in graph.ordered()]
    assert list(parallel) == list(serial)
    assert serial_stats.computed == len(graph)
    assert parallel_stats.computed == len(graph)


def test_resume_uses_cache(tmp_path):
    graph = _small_graph()
    store = ArtifactStore(str(tmp_path / "cache"))
    first, first_stats = run_jobs(graph, store, workers=1)
    assert first_stats.computed == len(graph) and first_stats.cached == 0

    fresh_store = ArtifactStore(str(tmp_path / "cache"))
    second, second_stats = run_jobs(graph, fresh_store, workers=1, resume=True)
    assert second_stats.computed == 0
    assert second_stats.cached == len(graph)
    assert second == first


def test_without_resume_cache_is_ignored(tmp_path):
    graph = _small_graph()
    store = ArtifactStore(str(tmp_path / "cache"))
    run_jobs(graph, store, workers=1)
    _, stats = run_jobs(graph, ArtifactStore(str(tmp_path / "cache")), workers=1)
    assert stats.computed == len(graph)
    assert stats.cached == 0


def test_stats_count_by_kind():
    graph = _small_graph()
    _, stats = run_jobs(graph, ArtifactStore(), workers=1)
    assert stats.by_kind["gp"]["computed"] == 1
    assert stats.by_kind["lg"]["computed"] == 2
    assert stats.by_kind["transpile"]["computed"] == 2
    assert stats.to_dict()["total"] == len(graph)


def test_failing_job_raises_jobfailure():
    graph = JobGraph()
    graph.add(
        Job.create(
            "transpile",
            {"topology": "grid", "benchmark": "no-such-99", "seed": 1},
        )
    )
    with pytest.raises(JobFailure):
        run_jobs(graph, ArtifactStore(), workers=1)


def _bad_job_graph():
    graph = JobGraph()
    graph.add(
        Job.create(
            "transpile",
            {"topology": "grid", "benchmark": "no-such-99", "seed": 1},
        )
    )
    return graph


def test_retries_recover_flaky_jobs(monkeypatch):
    graph = _small_graph()
    state = {"gp_failures": 0}

    def flaky(kind, params, deps):
        if kind == "gp" and state["gp_failures"] < 2:
            state["gp_failures"] += 1
            raise RuntimeError("flaky worker")
        return real_execute_job(kind, params, deps)

    monkeypatch.setattr(executor_module, "execute_job", flaky)
    results, stats = run_jobs(graph, ArtifactStore(), workers=1, retries=2)

    assert stats.computed == len(graph)
    assert len(results) == len(graph)
    # Both flaky attempts are in the manifest failure log.
    assert [f["attempt"] for f in stats.failures] == [1, 2]
    for entry in stats.failures:
        assert entry["kind"] == "gp"
        assert entry["error_type"] == "RuntimeError"
        assert entry["error"] == "flaky worker"
        assert "flaky worker" in entry["traceback"]
        assert entry["key"]
    assert stats.to_dict()["failures"] == stats.failures


def test_exhausted_retries_raise_with_failure_log():
    with pytest.raises(JobFailure) as info:
        run_jobs(_bad_job_graph(), ArtifactStore(), workers=1, retries=1)
    failures = info.value.failures
    assert [f["attempt"] for f in failures] == [1, 2]
    assert all(f["kind"] == "transpile" for f in failures)
    assert all(f["key"] == info.value.job.key for f in failures)


def test_negative_retries_rejected():
    # A negative count would skip execution entirely and store a stale
    # payload; it must be rejected up front.
    with pytest.raises(ValueError):
        run_jobs(_small_graph(), ArtifactStore(), workers=1, retries=-1)


def test_pool_exhausted_retries_raise_with_failure_log():
    with pytest.raises(JobFailure) as info:
        run_jobs(_bad_job_graph(), ArtifactStore(), workers=2, retries=1)
    assert [f["attempt"] for f in info.value.failures] == [1, 2]


class _FakeBrokenPool:
    """A pool whose workers die abruptly: every future (or, after
    ``break_submits`` more calls, every submission) raises
    BrokenProcessPool — the SIGKILL/OOM failure mode, minus the corpse."""

    instances = 0  # rebuilt-pool counter, reset per test

    def __init__(self, max_workers):
        type(self).instances += 1

    def submit(self, fn, *args):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        future = Future()
        future.set_exception(BrokenProcessPool("worker died abruptly"))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_always_broken_pool_aborts_with_jobfailure(monkeypatch):
    """A pool that breaks on every rebuild must exhaust the job's attempt
    budget and abort with JobFailure (carrying the failure log) — not
    leak a raw BrokenExecutor, and not rebuild pools forever."""
    _FakeBrokenPool.instances = 0
    monkeypatch.setattr(
        executor_module, "ProcessPoolExecutor", _FakeBrokenPool
    )
    with pytest.raises(JobFailure) as info:
        run_jobs(_bad_job_graph(), ArtifactStore(), workers=2, retries=3)
    # retries + 1 grace attempts were all granted and all logged.
    assert [f["attempt"] for f in info.value.failures] == [1, 2, 3, 4, 5]
    assert info.value.failures[0]["error_type"] == "BrokenProcessPool"
    # Each break tore the dead pool down and built a fresh one.
    assert _FakeBrokenPool.instances == 5


def test_broken_pool_is_rebuilt_and_run_continues(monkeypatch):
    """One abrupt worker death must cost a failure-log entry and a pool
    rebuild, not the sweep: the job is resubmitted to a fresh pool and
    the remaining DAG completes even with retries=0."""
    from concurrent.futures import ProcessPoolExecutor as RealPool

    class BreaksOnce(_FakeBrokenPool):
        def __init__(self, max_workers):
            super().__init__(max_workers)
            self._real = None if type(self).instances == 1 else RealPool(
                max_workers=max_workers
            )

        def submit(self, fn, *args):
            if self._real is None:
                return super().submit(fn, *args)
            return self._real.submit(fn, *args)

        def shutdown(self, wait=True, cancel_futures=False):
            if self._real is not None:
                self._real.shutdown(wait=wait, cancel_futures=cancel_futures)

    BreaksOnce.instances = 0
    monkeypatch.setattr(executor_module, "ProcessPoolExecutor", BreaksOnce)
    graph = _small_graph()
    results, stats = run_jobs(graph, ArtifactStore(), workers=2)
    assert len(results) == len(graph)
    assert stats.computed == len(graph)
    assert BreaksOnce.instances == 2  # the dead pool plus its replacement
    # Every job in flight when the pool broke left a ledger entry.
    assert stats.failures
    assert {f["error_type"] for f in stats.failures} == {"BrokenProcessPool"}


def test_progress_events_cover_every_job():
    graph = _small_graph()
    events = []
    run_jobs(
        graph,
        ArtifactStore(),
        workers=1,
        progress=lambda job, status: events.append((job.kind, status)),
    )
    assert sum(1 for _, s in events if s == "start") == len(graph)
    assert sum(1 for _, s in events if s == "done") == len(graph)


# -- job-level wall-clock timeouts -------------------------------------------
# The timeout wrapper forks a child that runs the module-global
# execute_job, so (with the default fork start method) monkeypatching
# executor_module.execute_job reaches the child exactly like the serial
# path — and pool workers created after the patch inherit it too.


def _sleeping(kind, params, deps):
    import time as _time

    _time.sleep(60)
    return real_execute_job(kind, params, deps)


def test_timeout_kills_hung_job_serially(monkeypatch):
    monkeypatch.setattr(executor_module, "execute_job", _sleeping)
    t0 = time.perf_counter()
    with pytest.raises(JobFailure) as info:
        run_jobs(_bad_job_graph(), ArtifactStore(), workers=1, timeout_s=0.5)
    assert time.perf_counter() - t0 < 30
    assert info.value.failures[0]["error_type"] == "JobTimeout"


def test_timeout_kills_hung_job_in_pool(monkeypatch):
    monkeypatch.setattr(executor_module, "execute_job", _sleeping)
    t0 = time.perf_counter()
    with pytest.raises(JobFailure) as info:
        run_jobs(_bad_job_graph(), ArtifactStore(), workers=2, timeout_s=0.5)
    assert time.perf_counter() - t0 < 30
    assert info.value.failures[0]["error_type"] == "JobTimeout"


def test_timeout_generous_budget_is_bit_identical():
    graph = _small_graph()
    plain, _ = run_jobs(graph, ArtifactStore(), workers=1)
    timed, stats = run_jobs(
        graph, ArtifactStore(), workers=1, timeout_s=600.0
    )
    assert _strip_timings(timed) == _strip_timings(plain)
    assert stats.computed == len(graph)


def test_timeout_attempts_count_against_retries(tmp_path, monkeypatch):
    flag = tmp_path / "first-attempt-done"

    def slow_once(kind, params, deps):
        import time as _time

        if kind == "gp" and not flag.exists():
            flag.touch()
            _time.sleep(60)
        return real_execute_job(kind, params, deps)

    monkeypatch.setattr(executor_module, "execute_job", slow_once)
    graph = _small_graph()
    results, stats = run_jobs(
        graph, ArtifactStore(), workers=1, retries=1, timeout_s=5.0
    )
    assert stats.computed == len(graph)
    assert len(results) == len(graph)
    assert [f["error_type"] for f in stats.failures] == ["JobTimeout"]
    assert stats.failures[0]["attempt"] == 1


def test_timeout_preserves_job_error_types_and_traceback():
    # A failing (not hanging) job under a timeout must still report its
    # original exception type — and the failing stage's traceback frames,
    # which don't pickle and are forwarded as a formatted string instead.
    with pytest.raises(JobFailure) as info:
        run_jobs(_bad_job_graph(), ArtifactStore(), workers=1, timeout_s=30.0)
    entry = info.value.failures[0]
    assert entry["error_type"] == "KeyError"
    assert "registry" in entry["traceback"]  # the frame that actually raised


def test_invalid_timeout_rejected():
    for bad in (0, -1.0):
        with pytest.raises(ValueError):
            run_jobs(_small_graph(), ArtifactStore(), workers=1, timeout_s=bad)


def test_run_stats_entries_ledger(tmp_path):
    graph = _small_graph()
    store = ArtifactStore(str(tmp_path / "cache"))
    _, first = run_jobs(graph, store, workers=1)
    assert len(first.entries) == len(graph)
    assert {e["status"] for e in first.entries} == {"computed"}
    assert {e["key"] for e in first.entries} == set(graph.jobs)
    assert first.to_dict()["entries"] == first.entries

    _, second = run_jobs(
        graph,
        ArtifactStore(str(tmp_path / "cache")),
        workers=1,
        resume=True,
    )
    assert {e["status"] for e in second.entries} == {"cached"}
    entry = second.entries[0]
    assert set(entry) == {
        "key", "kind", "topology", "engine", "benchmark", "seed", "status"
    }


def test_entries_ledger_is_in_graph_order_even_with_pool():
    graph = _small_graph()
    _, stats = run_jobs(graph, ArtifactStore(), workers=3)
    assert [e["key"] for e in stats.entries] == [j.key for j in graph.ordered()]
