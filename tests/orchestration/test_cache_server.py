"""The ``repro serve-cache`` HTTP protocol against a live server.

Every test runs a real ThreadingHTTPServer on an ephemeral port and
talks to it over actual sockets — both through the RemoteHTTPBackend
client and through raw urllib requests that exercise the protocol's
error paths (bad paths, traversal attempts, invalid JSON bodies).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.orchestration import (
    CacheServer,
    DirBackend,
    FleetCoordinator,
    RemoteHTTPBackend,
    SqliteBackend,
)


@pytest.fixture(params=["dir", "sqlite"])
def server(request, tmp_path):
    if request.param == "dir":
        backend = DirBackend(str(tmp_path / "served"))
    else:
        backend = SqliteBackend(str(tmp_path / "served.db"))
    with CacheServer(backend) as running:
        yield running
    backend.close()


@pytest.fixture
def client(server):
    return RemoteHTTPBackend(server.url, timeout_s=10.0)


def _raw(url, method="GET", body=None, headers=None):
    request = urllib.request.Request(
        url, data=body, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def test_ping_reports_store(server, client):
    ping = client.ping()
    assert ping["ok"] is True
    assert ping["store"] == server.backend.describe()


def test_artifact_roundtrip_over_http(server, client):
    text = json.dumps({"x": 0.1 + 0.2, "nested": [1, 2]})
    client.put_text("gp", "abc123", text)
    assert client.get_text("gp", "abc123") == text  # byte-preserved
    assert client.has("gp", "abc123")
    assert server.backend.get_text("gp", "abc123") == text


def test_missing_artifact_is_404_not_error(client):
    assert client.get_text("gp", "missing") is None
    assert not client.has("gp", "missing")
    assert not client.delete("gp", "missing")


def test_list_and_stats_endpoints(server, client):
    client.put_text("gp", "a", '{"x": 1}')
    client.put_text("lg", "b", '{"y": 23}')
    entries = {(e.kind, e.key): e.size for e in client.entries()}
    assert entries == {("gp", "a"): 8, ("lg", "b"): 9}
    status, body = _raw(f"{server.url}/v1/stats")
    assert status == 200
    stats = json.loads(body)
    assert stats == {"entries": 2, "bytes": 17}


def test_delete_over_http(server, client):
    client.put_text("gp", "doomed", '{"x": 1}')
    assert client.delete("gp", "doomed")
    assert not server.backend.has("gp", "doomed")


def test_unknown_paths_rejected(server):
    for path in ("/v1/artifact/onlykind", "/v2/artifact/a/b", "/etc/passwd"):
        status, _ = _raw(f"{server.url}{path}")
        assert status == 400, path


def test_traversal_segments_rejected(server):
    # kind/key are path tokens on a DirBackend server: separators and
    # dotfile prefixes must never reach the filesystem join.
    for kind, key in ((".." , "x"), ("a%2F..%2Fb", "x"), ("gp", ".hidden")):
        status, _ = _raw(f"{server.url}/v1/artifact/{kind}/{key}")
        assert status == 400, (kind, key)


def test_put_rejects_negative_content_length(server):
    # read(-1) would block the handler thread until the client hangs
    # up; the server must refuse the header instead.
    status, body = _raw(
        f"{server.url}/v1/artifact/gp/key",
        method="PUT",
        body=b"",
        headers={"Content-Length": "-1"},
    )
    assert status == 400
    assert b"negative Content-Length" in body


def test_put_rejects_non_json_bodies(server, client):
    status, body = _raw(
        f"{server.url}/v1/artifact/gp/key",
        method="PUT",
        body=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    assert status == 400
    assert b"not valid JSON" in body
    assert not client.has("gp", "key")


def test_concurrent_clients_share_one_store(server):
    # The threading server handles interleaved clients; last-write-wins
    # on the same key and both clients observe each other's artifacts.
    one = RemoteHTTPBackend(server.url)
    two = RemoteHTTPBackend(server.url)
    one.put_text("gp", "shared", '{"from": 1}')
    assert two.get_text("gp", "shared") == '{"from": 1}'
    two.put_text("gp", "shared", '{"from": 2}')
    assert one.get_text("gp", "shared") == '{"from": 2}'


def test_ephemeral_port_allocation(tmp_path):
    first = CacheServer(DirBackend(str(tmp_path / "a")))
    second = CacheServer(DirBackend(str(tmp_path / "b")))
    try:
        assert first.port != 0 and second.port != 0
        assert first.port != second.port
        assert first.url.endswith(str(first.port))
    finally:
        first.stop()
        second.stop()


def test_put_rejects_oversized_body(tmp_path):
    # A configurable ceiling so one absurd upload can't make a handler
    # thread buffer gigabytes; the refusal is a clean 413, not a hang.
    backend = DirBackend(str(tmp_path / "small"))
    with CacheServer(backend, max_body_bytes=64) as server:
        huge = b'{"pad": "' + b"x" * 200 + b'"}'
        status, body = _raw(
            f"{server.url}/v1/artifact/gp/key", method="PUT", body=huge
        )
        assert status == 413
        assert b"exceeds the server limit" in body
        assert not backend.has("gp", "key")
        # A body under the ceiling still lands.
        status, _ = _raw(
            f"{server.url}/v1/artifact/gp/key", method="PUT", body=b'{"x": 1}'
        )
        assert status == 204
        assert backend.get_text("gp", "key") == '{"x": 1}'
    backend.close()


def test_stalled_connection_is_dropped_not_wedged(tmp_path):
    # A client that connects and never sends a request must not pin a
    # handler thread forever: the per-connection timeout closes it.
    import socket
    import time

    backend = DirBackend(str(tmp_path / "served"))
    with CacheServer(backend, socket_timeout_s=0.3) as server:
        stalled = socket.create_connection((server.host, server.port))
        stalled.settimeout(5.0)
        deadline = time.monotonic() + 5.0
        try:
            assert stalled.recv(1) == b""  # server hung up on us
            assert time.monotonic() < deadline
        finally:
            stalled.close()
        # The server is still healthy for well-behaved clients.
        healthy = RemoteHTTPBackend(server.url)
        healthy.put_text("gp", "k", '{"x": 1}')
        assert healthy.get_text("gp", "k") == '{"x": 1}'
        healthy.close()
    backend.close()


def _post(url, document):
    body = json.dumps(document).encode("utf-8")
    return _raw(url, method="POST", body=body,
                headers={"Content-Type": "application/json"})


def test_ping_reports_fleet_flag(server, client):
    # The default fixture server has no coordinator attached.
    assert client.ping()["fleet"] is False


def test_fleet_endpoints_disabled_without_coordinator(server):
    status, body = _post(f"{server.url}/v1/fleet/lease", {"worker": "w"})
    assert status == 404
    assert b"fleet endpoints disabled" in body
    status, body = _raw(f"{server.url}/v1/fleet/status")
    assert status == 404
    assert b"fleet endpoints disabled" in body


def test_fleet_protocol_over_http(tmp_path):
    backend = DirBackend(str(tmp_path / "served"))
    coordinator = FleetCoordinator(lease_ttl_s=60.0, max_attempts=3)
    with CacheServer(backend, coordinator=coordinator) as server:
        client = RemoteHTTPBackend(server.url)
        assert client.ping()["fleet"] is True

        job = {"kind": "gp", "key": "k0", "params": {}, "deps": [],
               "dep_kinds": []}
        status, body = _post(f"{server.url}/v1/fleet/enqueue", {"jobs": [job]})
        assert status == 200
        assert json.loads(body)["accepted"] == 1

        status, body = _post(
            f"{server.url}/v1/fleet/lease", {"worker": "w", "max_jobs": 2}
        )
        assert status == 200
        leased = json.loads(body)["jobs"]
        assert [j["key"] for j in leased] == ["k0"]

        status, body = _post(f"{server.url}/v1/fleet/heartbeat", {"worker": "w"})
        assert status == 200
        assert json.loads(body)["keys"] == ["k0"]

        status, body = _post(
            f"{server.url}/v1/fleet/complete",
            {"worker": "w", "key": "k0", "status": "computed"},
        )
        assert status == 200

        status, body = _raw(f"{server.url}/v1/fleet/status")
        assert status == 200
        counts = json.loads(body)["counts"]
        assert counts["done"] == 1
        assert json.loads(body)["outstanding"] == 0
        client.close()
    backend.close()


def test_invalid_fleet_requests_are_400(tmp_path):
    backend = DirBackend(str(tmp_path / "served"))
    coordinator = FleetCoordinator()
    with CacheServer(backend, coordinator=coordinator) as server:
        # Missing required field.
        status, body = _post(f"{server.url}/v1/fleet/lease", {})
        assert status == 400
        assert b"invalid fleet request" in body
        # Body that is not a JSON object at all.
        status, body = _raw(
            f"{server.url}/v1/fleet/lease", method="POST", body=b"[1, 2]"
        )
        assert status == 400
        assert b"not a JSON object" in body
        # Semantically invalid verb arguments surface as 400, not 500.
        status, body = _post(
            f"{server.url}/v1/fleet/complete",
            {"worker": "w", "key": "ghost", "status": "computed"},
        )
        assert status == 400
        assert b"invalid fleet request" in body
    backend.close()
