"""Job model and artifact store unit behavior."""

import json
import os

import pytest

from repro.orchestration import ArtifactStore, Job, JobGraph, job_key


def test_job_key_is_order_insensitive():
    a = job_key("gp", {"topology": "grid", "seed": 1})
    b = job_key("gp", {"seed": 1, "topology": "grid"})
    assert a == b


def test_job_key_changes_with_params_and_deps():
    base = job_key("gp", {"topology": "grid"})
    assert job_key("gp", {"topology": "falcon"}) != base
    assert job_key("lg", {"topology": "grid"}) != base
    assert job_key("gp", {"topology": "grid"}, ("somedep",)) != base


def test_create_rejects_unknown_kind():
    with pytest.raises(ValueError):
        Job.create("mystery", {})


def test_graph_validates_dependencies():
    graph = JobGraph()
    orphan = Job.create("lg", {"x": 1}, deps=(job_key("gp", {}),))
    with pytest.raises(ValueError):
        graph.add(orphan)


def test_graph_deduplicates_identical_jobs():
    graph = JobGraph()
    first = graph.add(Job.create("gp", {"topology": "grid"}))
    second = graph.add(Job.create("gp", {"topology": "grid"}))
    assert first is second
    assert len(graph) == 1


def test_restricted_to_keeps_transitive_closure():
    graph = JobGraph()
    gp = graph.add(Job.create("gp", {"t": "grid"}))
    lg_a = graph.add(Job.create("lg", {"e": "a"}, deps=(gp.key,)))
    lg_b = graph.add(Job.create("lg", {"e": "b"}, deps=(gp.key,)))
    fid = graph.add(Job.create("fidelity", {"c": 1}, deps=(lg_a.key,)))
    sub = graph.restricted_to([fid.key])
    assert set(sub.jobs) == {gp.key, lg_a.key, fid.key}
    assert lg_b.key not in sub
    # Order is preserved (still topological).
    assert [j.key for j in sub.ordered()] == [gp.key, lg_a.key, fid.key]


def test_memory_store_roundtrip():
    store = ArtifactStore()
    assert store.get("gp", "k") is None
    assert not store.has("gp", "k")
    put = store.put("gp", "k", {"x": 0.1 + 0.2, "n": [1, 2]})
    assert store.get("gp", "k") == put
    assert put["x"] == 0.1 + 0.2  # float survives the JSON round trip exactly


def test_disk_store_persists_across_instances(tmp_path):
    root = str(tmp_path / "cache")
    ArtifactStore(root).put("lg", "abc", {"positions": [["q", 0, 1.5, 2.5]]})
    fresh = ArtifactStore(root)
    assert fresh.has("lg", "abc")
    assert fresh.get("lg", "abc") == {"positions": [["q", 0, 1.5, 2.5]]}
    path = os.path.join(root, "lg", "abc.json")
    assert os.path.exists(path)
    assert not [p for p in os.listdir(os.path.dirname(path)) if p.endswith(".tmp")]


def test_disk_store_ignores_corrupt_artifacts(tmp_path):
    root = str(tmp_path / "cache")
    store = ArtifactStore(root)
    os.makedirs(os.path.join(root, "gp"), exist_ok=True)
    with open(os.path.join(root, "gp", "bad.json"), "w") as fh:
        fh.write("{not json")
    assert store.get("gp", "bad") is None


def test_store_canonicalizes_payloads(tmp_path):
    store = ArtifactStore(str(tmp_path / "cache"))
    returned = store.put("fidelity", "k", {"samples": (0.25, 0.5)})
    assert returned == {"samples": [0.25, 0.5]}  # tuple -> list, like disk
    on_disk = json.load(open(os.path.join(str(tmp_path / "cache"), "fidelity", "k.json")))
    assert on_disk == returned
