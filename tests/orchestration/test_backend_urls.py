"""Property tests for store-URL resolution (``backend_from_url`` /
``resolve_store``).

The URL grammar is tiny but it fronts every CLI entry point, so the
properties are pinned over generated inputs: ``dir:`` / ``sqlite:``
prefixes strip exactly once, bare paths (including Windows drive-letter
paths, dotted relatives and trailing slashes) open directory stores,
``http(s)://`` URLs pass through verbatim (percent-encoding intact,
trailing slash normalized), and anything that *looks* like an unknown
scheme fails loudly instead of silently creating a directory called
``redis:...``.
"""

import os
import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.orchestration import (
    ArtifactStore,
    DirBackend,
    RemoteHTTPBackend,
    SqliteBackend,
    TieredStore,
    backend_from_url,
    resolve_store,
)

# Constructing Dir/Sqlite backends touches the filesystem (mkdir /
# connect), so every generated relative path is resolved inside a
# sandbox cwd; the fixture is chdir-idempotent across examples, which
# is why suppressing the function-scoped-fixture health check is safe.
_SANDBOXED = settings(
    max_examples=40,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
    deadline=None,
)

_SEGMENT = st.text(
    alphabet=string.ascii_lowercase + string.digits + "_-. %",
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip(" .") and ".." not in s)

_RELATIVE_PATH = st.lists(_SEGMENT, min_size=1, max_size=4).map(
    lambda parts: "/".join(parts)
)


@pytest.fixture()
def sandbox_cwd(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


@_SANDBOXED
@given(path=_RELATIVE_PATH, trailing=st.booleans())
def test_bare_path_is_a_directory_store(sandbox_cwd, path, trailing):
    url = path + "/" if trailing else path
    backend = backend_from_url(url)
    assert isinstance(backend, DirBackend)
    assert os.path.normpath(backend.root) == os.path.normpath(path)
    # Resolution is deterministic: the same URL opens the same root.
    assert backend_from_url(url).root == backend.root


@_SANDBOXED
@given(path=_RELATIVE_PATH)
def test_dir_prefix_strips_exactly_once(sandbox_cwd, path):
    backend = backend_from_url(f"dir:{path}")
    assert isinstance(backend, DirBackend)
    assert backend.root == path
    # A path that itself contains ":" survives the prefix strip.
    nested = backend_from_url(f"dir:dir:{path}")
    assert nested.root == f"dir:{path}"


@_SANDBOXED
@given(name=_SEGMENT)
def test_sqlite_prefix_opens_the_database_path(sandbox_cwd, name):
    backend = backend_from_url(f"sqlite:{name}.db")
    try:
        assert isinstance(backend, SqliteBackend)
        assert backend.path == f"{name}.db"
    finally:
        backend.close()


@_SANDBOXED
@given(
    drive=st.sampled_from(string.ascii_letters),
    rest=_SEGMENT,
    sep=st.sampled_from(["/", "\\"]),
)
def test_windows_drive_letter_is_a_path_not_a_scheme(
    sandbox_cwd, drive, rest, sep
):
    # "C:\cache" / "C:/cache" must open a directory store, not raise
    # "unsupported scheme 'c'".
    url = f"{drive}:{sep}{rest}"
    backend = backend_from_url(url)
    assert isinstance(backend, DirBackend)
    assert backend.root == url


@given(
    scheme=st.text(
        alphabet=string.ascii_lowercase, min_size=2, max_size=10
    ).filter(lambda s: s not in ("dir", "sqlite", "http", "https")),
    rest=_SEGMENT,
)
@settings(max_examples=60, deadline=None)
def test_unknown_schemes_fail_loudly(scheme, rest):
    with pytest.raises(ValueError) as info:
        backend_from_url(f"{scheme}:{rest}")
    assert repr(scheme) in str(info.value)


@given(
    secure=st.booleans(),
    host=st.sampled_from(["localhost", "cache.example.com", "10.0.0.7"]),
    port=st.integers(min_value=1, max_value=65535),
    segments=st.lists(
        st.text(
            alphabet=string.ascii_lowercase + string.digits + "%",
            min_size=1,
            max_size=8,
        ),
        max_size=3,
    ),
    trailing=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_http_urls_pass_through_verbatim(
    secure, host, port, segments, trailing
):
    scheme = "https" if secure else "http"
    path = "".join(f"/{segment}" for segment in segments)
    url = f"{scheme}://{host}:{port}{path}"
    backend = backend_from_url(url + "/" if trailing else url)
    assert isinstance(backend, RemoteHTTPBackend)
    # Percent-encoded octets (e.g. %20) are preserved, the trailing
    # slash is normalized away, nothing else is rewritten.
    assert backend.base_url == url


def test_existing_backend_passes_through(tmp_path):
    backend = DirBackend(str(tmp_path / "cache"))
    assert backend_from_url(backend) is backend


def test_resolve_store_matrix(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    memory = resolve_store()
    assert isinstance(memory, ArtifactStore) and memory.backend is None

    historical = resolve_store(cache_dir="historical")
    assert isinstance(historical.backend, DirBackend)

    direct = resolve_store(cache_url="dir:direct")
    assert isinstance(direct.backend, DirBackend)
    assert direct.backend.root == "direct"

    database = resolve_store(cache_url="sqlite:artifacts.db")
    try:
        assert isinstance(database.backend, SqliteBackend)
    finally:
        database.backend.close()

    # A local cache_dir next to a local cache_url is redundant tiering
    # and is ignored for artifacts.
    local_pair = resolve_store(cache_url="dir:direct", cache_dir="other")
    assert isinstance(local_pair.backend, DirBackend)
    assert local_pair.backend.root == "direct"

    remote = resolve_store(cache_url="http://localhost:1/")
    assert isinstance(remote.backend, RemoteHTTPBackend)

    tiered = resolve_store(
        cache_url="http://localhost:1/", cache_dir="fast"
    )
    assert isinstance(tiered, TieredStore)


@_SANDBOXED
@given(path=_RELATIVE_PATH)
def test_resolve_store_dir_urls_round_trip(sandbox_cwd, path):
    store = resolve_store(cache_url=f"dir:{path}")
    assert isinstance(store.backend, DirBackend)
    assert store.backend.root == path
